"""Unit tests for steady-state maps and the Fig. 2 tradeoff."""

import pytest

from repro.models.steady_state import (
    optimal_rpm_per_utilization,
    steady_state_map,
    steady_state_point,
)


class TestSteadyStatePoint:
    def test_full_load_band(self):
        hot = steady_state_point(100.0, 1800.0)
        cool = steady_state_point(100.0, 4200.0)
        assert hot.avg_junction_c == pytest.approx(85.0, abs=3.0)
        assert cool.avg_junction_c == pytest.approx(57.0, abs=3.0)

    def test_leakage_decreases_with_fan_speed(self):
        leaks = [
            steady_state_point(100.0, rpm).cpu_leakage_w
            for rpm in (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)
        ]
        assert leaks == sorted(leaks, reverse=True)

    def test_fan_power_increases_with_speed(self):
        fans = [
            steady_state_point(100.0, rpm).fan_power_w
            for rpm in (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)
        ]
        assert fans == sorted(fans)

    def test_leak_plus_fan_property(self):
        p = steady_state_point(75.0, 2400.0)
        assert p.leak_plus_fan_w == pytest.approx(p.cpu_leakage_w + p.fan_power_w)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            steady_state_point(150.0, 2400.0)


class TestFig2Convexity:
    def test_minimum_at_interior_speed_full_load(self):
        """Fig. 2(a): the sum has its minimum at 2400 RPM (~70-73 degC),
        not at either end of the speed range."""
        speeds = (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)
        sums = {
            rpm: steady_state_point(100.0, rpm).leak_plus_fan_w for rpm in speeds
        }
        best = min(sums, key=sums.get)
        assert best == 2400.0
        best_temp = steady_state_point(100.0, best).avg_junction_c
        assert 68.0 < best_temp < 75.0

    def test_optimum_never_hotter_than_75(self):
        """Paper SIV: 'for all the optimum points, average temperature
        is never higher than 70-75 degC'."""
        speeds = (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)
        for u in (25.0, 50.0, 75.0, 90.0, 100.0):
            sums = {
                rpm: steady_state_point(u, rpm).leak_plus_fan_w for rpm in speeds
            }
            best = min(sums, key=sums.get)
            assert steady_state_point(u, best).avg_junction_c <= 75.0

    def test_fan_only_savings_reach_30w(self):
        """Paper SIV: 'power savings achieved only by setting the
        appropriate fan speed can reach 30 W'."""
        speeds = (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)
        sums = [steady_state_point(100.0, rpm).leak_plus_fan_w for rpm in speeds]
        assert max(sums) - min(sums) >= 30.0


class TestSteadyStateMap:
    def test_grid_size(self):
        grid = steady_state_map([25.0, 100.0], [1800.0, 4200.0])
        assert len(grid) == 4

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            steady_state_map([], [1800.0])

    def test_lookup_by_key(self):
        grid = steady_state_map([50.0], [2400.0])
        point = grid[(50.0, 2400.0)]
        assert point.utilization_pct == 50.0
        assert point.fan_rpm == 2400.0


class TestOptimalRpmSelection:
    def test_low_util_picks_low_speed(self):
        grid = steady_state_map(
            [10.0, 100.0], [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
        )
        best = optimal_rpm_per_utilization(grid)
        assert best[10.0].fan_rpm == 1800.0

    def test_high_util_picks_2400(self):
        grid = steady_state_map(
            [100.0], [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
        )
        best = optimal_rpm_per_utilization(grid)
        assert best[100.0].fan_rpm == 2400.0

    def test_temperature_cap_excludes_hot_points(self):
        grid = steady_state_map(
            [100.0], [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
        )
        best = optimal_rpm_per_utilization(grid, max_temperature_c=75.0)
        assert best[100.0].max_junction_c <= 75.0

    def test_impossible_cap_falls_back_to_fastest(self):
        grid = steady_state_map([100.0], [1800.0, 2400.0])
        best = optimal_rpm_per_utilization(grid, max_temperature_c=30.0)
        assert best[100.0].fan_rpm == 2400.0

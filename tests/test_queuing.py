"""Unit tests for the M/M/c queueing simulator (Test-4 substrate)."""

import numpy as np
import pytest

from repro.workloads.queuing import (
    MMcQueueSimulator,
    queue_utilization_trace,
)


class TestConstruction:
    def test_offered_load(self):
        sim = MMcQueueSimulator(
            servers=256, arrival_rate_per_s=51.2, mean_service_s=2.0
        )
        assert sim.offered_load == pytest.approx(0.4)

    def test_for_target_utilization(self):
        sim = MMcQueueSimulator.for_target_utilization(40.0, servers=256)
        assert sim.offered_load == pytest.approx(0.4)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            MMcQueueSimulator.for_target_utilization(0.0)
        with pytest.raises(ValueError):
            MMcQueueSimulator.for_target_utilization(100.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MMcQueueSimulator(servers=0)
        with pytest.raises(ValueError):
            MMcQueueSimulator(arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            MMcQueueSimulator(mean_service_s=0.0)


class TestSimulation:
    def test_mean_utilization_near_offered_load(self):
        sim = MMcQueueSimulator.for_target_utilization(40.0, seed=3)
        _, utilization, stats = sim.run(duration_s=2400.0)
        assert stats.mean_utilization_pct == pytest.approx(40.0, abs=4.0)
        assert np.mean(utilization) == pytest.approx(40.0, abs=4.0)

    def test_utilization_bounds(self):
        sim = MMcQueueSimulator.for_target_utilization(60.0, seed=1)
        _, utilization, _ = sim.run(duration_s=600.0)
        assert np.all(utilization >= 0.0)
        assert np.all(utilization <= 100.0)

    def test_sample_grid(self):
        sim = MMcQueueSimulator.for_target_utilization(30.0, seed=1)
        times, utilization, _ = sim.run(duration_s=100.0, sample_dt_s=1.0)
        assert len(times) == len(utilization) == 101
        assert times[0] == 0.0 and times[-1] == 100.0

    def test_conservation(self):
        """Arrived jobs = completed + in service + queued at the end."""
        sim = MMcQueueSimulator(
            servers=4, arrival_rate_per_s=1.5, mean_service_s=2.0, seed=9
        )
        _, _, stats = sim.run(duration_s=1000.0)
        assert stats.jobs_completed <= stats.jobs_arrived
        # In a 1000 s run with ~1500 arrivals, nearly all complete.
        assert stats.jobs_completed > 0.9 * stats.jobs_arrived

    def test_deterministic_for_seed(self):
        a = MMcQueueSimulator.for_target_utilization(40.0, seed=5)
        b = MMcQueueSimulator.for_target_utilization(40.0, seed=5)
        _, util_a, _ = a.run(300.0)
        _, util_b, _ = b.run(300.0)
        np.testing.assert_array_equal(util_a, util_b)

    def test_heavy_load_queues(self):
        """Near saturation, jobs actually wait."""
        sim = MMcQueueSimulator(
            servers=2, arrival_rate_per_s=0.95, mean_service_s=2.0, seed=2
        )
        _, _, stats = sim.run(duration_s=2000.0)
        assert stats.mean_wait_s > 0.0
        assert stats.mean_queue_length > 0.0

    def test_light_load_rarely_queues(self):
        sim = MMcQueueSimulator(
            servers=64, arrival_rate_per_s=2.0, mean_service_s=1.0, seed=2
        )
        _, _, stats = sim.run(duration_s=1000.0)
        assert stats.mean_wait_s == pytest.approx(0.0, abs=0.01)

    def test_busy_never_exceeds_servers(self):
        sim = MMcQueueSimulator(
            servers=8, arrival_rate_per_s=10.0, mean_service_s=2.0, seed=4
        )
        _, utilization, _ = sim.run(duration_s=500.0)
        assert np.max(utilization) <= 100.0


class TestConvenienceTrace:
    def test_trace_shape(self):
        times, util = queue_utilization_trace(600.0, target_utilization_pct=50.0)
        assert len(times) == len(util)
        assert times[-1] == 600.0

    def test_trace_mean(self):
        _, util = queue_utilization_trace(
            2400.0, target_utilization_pct=50.0, seed=8
        )
        assert np.mean(util) == pytest.approx(50.0, abs=5.0)

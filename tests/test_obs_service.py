"""In-process tests for the live telemetry HTTP service.

Each test binds an ephemeral port (``port=0``), drives the asyncio
loop to completion, and speaks plain HTTP/1.1 over a stream pair — no
external client dependencies.
"""

import asyncio
import json

import pytest

from repro.core.controllers.pid import PIController
from repro.fleet import FleetEngine, build_uniform_fleet
from repro.fleet.faults import FaultSchedule, SensorFaultEvent
from repro.obs.service import LiveTelemetryService, ServiceConfig
from repro.workloads.profile import StaircaseProfile


def make_service(steps=20, dt_s=60.0, faults=None, **config_kwargs):
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
    profile = StaircaseProfile([40.0, 70.0], steps * dt_s / 2.0)
    engine = FleetEngine(
        fleet,
        profile,
        controller_factory=lambda i: PIController(),
        faults=faults,
    )
    config = ServiceConfig(port=0, dt_s=dt_s, **config_kwargs)
    return LiveTelemetryService(engine, config)


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60.0))


async def http_get(port, path):
    """Minimal HTTP/1.1 GET returning (status, body-str)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode("latin-1")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode("utf-8")


class TestEndpoints:
    def test_full_scenario_and_routes(self):
        async def scenario():
            service = make_service()
            await service.run_to_completion()
            port = service.port
            assert service.finished

            status, body = await http_get(port, "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["finished"] is True
            assert health["tick"] == health["steps"] == 20

            status, body = await http_get(port, "/metrics")
            assert status == 200
            assert "repro_fleet_ticks_total 20" in body
            assert "repro_service_requests_total" in body
            assert "repro_store_samples_total" in body

            status, body = await http_get(port, "/channels")
            names = [c["name"] for c in json.loads(body)["channels"]]
            assert "s0.junction_c" in names
            assert "fleet.power_w" in names

            status, body = await http_get(port, "/channels/s0.junction_c")
            series = json.loads(body)
            assert len(series["times_s"]) == 20
            assert series["unit"] == "degC"

            cutoff = series["times_s"][14]
            status, body = await http_get(
                port, f"/channels/s0.junction_c?since={cutoff}"
            )
            assert len(json.loads(body)["times_s"]) == 5

            status, body = await http_get(port, "/alerts")
            alerts = json.loads(body)
            assert status == 200
            assert alerts["finished"] is True

            status, _ = await http_get(port, "/channels/no.such")
            assert status == 404
            status, _ = await http_get(port, "/nope")
            assert status == 404
            status, _ = await http_get(
                port, "/channels/s0.junction_c?since=abc"
            )
            assert status == 400

            await service.stop()

        run_async(scenario())

    def test_tier_endpoint(self):
        async def scenario():
            # 120 ticks fills the first downsample tier several times.
            service = make_service(steps=120, dt_s=60.0)
            await service.run_to_completion()
            status, body = await http_get(
                service.port, "/channels/s0.junction_c?tier=0"
            )
            rollup = json.loads(body)
            assert status == 200
            assert rollup["tier"] == 0
            assert len(rollup["times"]) >= 1
            assert len(rollup["mean"]) == len(rollup["times"])
            status, _ = await http_get(
                service.port, "/channels/s0.junction_c?tier=99"
            )
            assert status == 404
            await service.stop()

        run_async(scenario())

    def test_report_served_when_faults_scheduled(self):
        async def scenario():
            faults = FaultSchedule(events=(
                SensorFaultEvent(
                    server=0, mode="stuck", value=30.0,
                    start_s=300.0, end_s=900.0,
                ),
            ))
            service = make_service(faults=faults)
            await service.run_to_completion()
            _, body = await http_get(service.port, "/alerts")
            payload = json.loads(body)
            assert "report" in payload
            assert len(payload["report"]["outcomes"]) == 1
            assert payload["report"]["outcomes"][0]["kind"] == "sensor"
            await service.stop()

        run_async(scenario())


class TestStreaming:
    def test_sse_client_receives_ticks_and_done(self):
        async def scenario():
            # Pace the run (~5 ms/tick) so the client attaches early.
            service = make_service(steps=40, dt_s=10.0, time_scale=2000.0)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(b"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()

            events = []
            current = None
            while True:
                line = (await reader.readline()).decode("utf-8").strip()
                if line.startswith("event:"):
                    current = line.split(":", 1)[1].strip()
                elif line.startswith("data:") and current:
                    events.append((current, json.loads(line.split(":", 1)[1])))
                    if current == "done":
                        break
            writer.close()
            kinds = {kind for kind, _ in events}
            assert "tick" in kinds and "done" in kinds
            ticks = [p["tick"] for kind, p in events if kind == "tick"]
            assert ticks == sorted(ticks)
            assert events[-1][1]["ticks"] == 40
            await service.stop()

        run_async(scenario())


class TestLifecycle:
    def test_port_requires_started_server(self):
        service = make_service()
        with pytest.raises(RuntimeError, match="not started"):
            service.port

    def test_requires_vector_backend(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        engine = FleetEngine(
            fleet, StaircaseProfile([50.0], 600.0), backend="vector-legacy"
        )
        with pytest.raises(ValueError, match="vector"):
            LiveTelemetryService(engine)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(dt_s=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(time_scale=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(sse_every_ticks=0)

    def test_stop_releases_stream_clients(self):
        async def scenario():
            service = make_service(steps=10)
            await service.run_to_completion()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            writer.write(b"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            # Read response headers, then the handshake comment.
            while (await reader.readline()).strip():
                pass
            assert b"stream open" in await reader.readline()
            await service.stop()
            # The server closed its end; the client read must finish.
            await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()

        run_async(scenario())


class TestGracefulDegradation:
    """Checkpoint-on-shutdown, resume-on-start, bounded SSE queues."""

    def test_shutdown_seals_checkpoint_and_resume_matches(self, tmp_path):
        import numpy as np

        columns = (
            "times_s", "total_power_w", "fan_power_w", "max_junction_c",
            "utilization_pct", "inlet_c", "mean_rpm", "unserved_pct",
        )

        async def golden_run():
            service = make_service(steps=40)
            await service.run_to_completion()
            await service.stop()
            return service.engine.last_result, service

        async def interrupted_run():
            service = make_service(
                steps=40,
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_s=600.0,
            )
            await service.start()
            while service._tick < 20:
                await asyncio.sleep(0)
            service.request_shutdown()
            await service._stopping.wait()
            await service.stop()
            return service

        async def resumed_run():
            service = make_service(
                steps=40,
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every_s=600.0,
            )
            await service.run_to_completion()
            await service.stop()
            return service.engine.last_result, service

        golden, golden_svc = run_async(golden_run())
        interrupted = run_async(interrupted_run())
        assert interrupted.interrupted_checkpoint is not None
        assert not interrupted.finished or interrupted._stopping.is_set()

        resumed, resumed_svc = run_async(resumed_run())
        assert resumed_svc.resume_tick > 0
        for name in columns:
            a = np.asarray(getattr(golden, name))
            b = np.asarray(getattr(resumed, name))
            assert np.array_equal(a, b), f"column {name} differs"
        golden_alerts = [a.to_dict() for a in golden_svc.detector.alerts]
        resumed_alerts = [a.to_dict() for a in resumed_svc.detector.alerts]
        assert golden_alerts == resumed_alerts

    def test_stalled_sse_client_drops_and_counts(self):
        async def scenario():
            service = make_service(steps=20, sse_queue_maxsize=2)
            await service.start()
            # A subscriber that never drains: events beyond the bound
            # are dropped and counted, the run itself never stalls.
            queue = asyncio.Queue(maxsize=2)
            service._subscribers.add(queue)
            await service._finished.wait()
            assert queue.qsize() == 2
            dropped = service.metrics.counter(
                "repro_service_sse_dropped_total",
                "SSE events dropped on stalled client queues",
            ).value
            assert dropped >= 18
            await service.stop()

        run_async(scenario())

    def test_queue_maxsize_validated(self):
        with pytest.raises(ValueError, match="sse_queue_maxsize"):
            ServiceConfig(sse_queue_maxsize=0)

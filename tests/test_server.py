"""Unit tests for the composed server simulator."""

import numpy as np
import pytest

from repro.server.ambient import ConstantAmbient
from repro.server.server import CriticalTemperatureError, ServerSimulator
from repro.server.specs import CpuSocketSpec, ServerSpec


@pytest.fixture
def sim():
    return ServerSimulator(seed=3, initial_fan_rpm=3000.0)


class TestStepping:
    def test_time_advances(self, sim):
        sim.step(1.0, 50.0)
        sim.step(1.0, 50.0)
        assert sim.time_s == 2.0

    def test_state_snapshot_consistency(self, sim):
        state = sim.step(1.0, 50.0)
        assert state.time_s == sim.time_s
        assert state.utilization_pct == 50.0
        assert len(state.fan_rpms) == 6

    def test_energy_accumulates(self, sim):
        sim.step(10.0, 50.0)
        e1 = sim.energy_joules
        sim.step(10.0, 50.0)
        assert sim.energy_joules > e1 > 0

    def test_fan_energy_below_total(self, sim):
        sim.step(10.0, 50.0)
        assert 0 < sim.fan_energy_joules < sim.energy_joules

    def test_negative_dt_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.step(-1.0, 50.0)

    def test_invalid_utilization_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.step(1.0, 150.0)


class TestActuation:
    def test_set_fan_rpm_slews(self, sim):
        sim.set_fan_rpm(4200.0)
        state = sim.step(1.0, 0.0)
        assert state.mean_fan_rpm < 4200.0
        for _ in range(5):
            state = sim.step(1.0, 0.0)
        assert state.mean_fan_rpm == pytest.approx(4200.0)

    def test_group_actuation(self, sim):
        sim.set_fan_group_rpm(0, 4200.0)
        for _ in range(5):
            state = sim.step(1.0, 0.0)
        assert state.fan_rpms[0] == 4200.0
        assert state.fan_rpms[5] == 3000.0


class TestSteadyStateJump:
    def test_settle_matches_long_transient(self):
        jumped = ServerSimulator(seed=0, initial_fan_rpm=2400.0)
        jumped.settle_to_steady_state(75.0)

        integrated = ServerSimulator(seed=0, initial_fan_rpm=2400.0)
        for _ in range(5400):
            integrated.step(1.0, 75.0)

        assert integrated.state.max_junction_c == pytest.approx(
            jumped.state.max_junction_c, abs=0.3
        )

    def test_settle_updates_power(self, sim):
        state = sim.settle_to_steady_state(100.0)
        assert state.power.cpu_active_w > 300.0


class TestCriticalTrip:
    def test_trips_when_cooked(self):
        # One socket with absurdly high power and minimum airflow must
        # cross the 90 degC critical threshold and raise.
        hot_socket = CpuSocketSpec(k_active_w_per_pct=6.0)
        spec = ServerSpec(sockets=(hot_socket, hot_socket))
        sim = ServerSimulator(spec=spec, seed=0, initial_fan_rpm=1800.0)
        with pytest.raises(CriticalTemperatureError):
            for _ in range(3600):
                sim.step(1.0, 100.0)

    def test_trip_can_be_disabled(self):
        hot_socket = CpuSocketSpec(k_active_w_per_pct=6.0)
        spec = ServerSpec(sockets=(hot_socket, hot_socket))
        sim = ServerSimulator(
            spec=spec, seed=0, initial_fan_rpm=1800.0, trip_on_critical=False
        )
        for _ in range(3600):
            sim.step(1.0, 100.0)
        assert sim.state.max_junction_c > spec.critical_temperature_c

    def test_normal_operation_never_trips(self, sim):
        for _ in range(1800):
            sim.step(1.0, 100.0)
        assert sim.state.max_junction_c < 90.0


class TestMeasuredChannels:
    def test_cpu_channel_count(self, sim):
        assert len(sim.measured_cpu_temperatures_c()) == 4

    def test_dimm_channel_count(self, sim):
        assert len(sim.measured_dimm_temperatures_c()) == 32

    def test_core_channel_counts(self, sim):
        assert len(sim.measured_core_voltages_v()) == 32
        assert len(sim.measured_core_currents_a()) == 32

    def test_measured_power_tracks_truth(self, sim):
        sim.settle_to_steady_state(50.0)
        readings = [sim.measured_system_power_w() for _ in range(200)]
        assert np.mean(readings) == pytest.approx(
            sim.state.power.compute_w, abs=1.0
        )

    def test_measured_temps_track_truth(self, sim):
        sim.settle_to_steady_state(50.0)
        truth = sim.state.thermal.mean_junction_c
        readings = [
            np.mean(sim.measured_cpu_temperatures_c()) for _ in range(200)
        ]
        assert np.mean(readings) == pytest.approx(truth, abs=0.5)

    def test_measurements_are_noisy(self, sim):
        sim.settle_to_steady_state(50.0)
        readings = [sim.measured_system_power_w() for _ in range(50)]
        assert np.std(readings) > 0.5

    def test_seeded_reproducibility(self):
        a = ServerSimulator(seed=11, initial_fan_rpm=3000.0)
        b = ServerSimulator(seed=11, initial_fan_rpm=3000.0)
        a.step(1.0, 40.0)
        b.step(1.0, 40.0)
        assert a.measured_cpu_temperatures_c() == b.measured_cpu_temperatures_c()


class TestAmbientCoupling:
    def test_warmer_room_warmer_cpu(self):
        cool = ServerSimulator(
            ambient=ConstantAmbient(18.0), seed=0, initial_fan_rpm=3000.0
        )
        warm = ServerSimulator(
            ambient=ConstantAmbient(30.0), seed=0, initial_fan_rpm=3000.0
        )
        cool.settle_to_steady_state(100.0)
        warm.settle_to_steady_state(100.0)
        delta = warm.state.max_junction_c - cool.state.max_junction_c
        assert delta == pytest.approx(12.0, abs=3.0)

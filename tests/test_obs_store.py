"""Unit tests for the bounded in-memory timeseries store."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.store import (
    DEFAULT_TIERS,
    StoreChannel,
    TierSpec,
    TimeseriesStore,
)


def _fill(channel, n, t0=0.0, dt=1.0):
    times = t0 + dt * np.arange(n)
    values = np.arange(n, dtype=float)
    channel.append_block(times, values)
    return times, values


class TestTierSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TierSpec(factor=1, capacity=10)
        with pytest.raises(ValueError):
            TierSpec(factor=10, capacity=0)


class TestStoreChannel:
    def test_retains_everything_under_capacity(self):
        ch = StoreChannel("x", "W", capacity=100)
        times, values = _fill(ch, 50)
        t, v = ch.series()
        assert np.array_equal(t, times)
        assert np.array_equal(v, values)
        assert ch.latest == (49.0, 49.0)

    def test_ring_wraparound_keeps_newest(self):
        ch = StoreChannel("x", "W", capacity=10, tiers=())
        _fill(ch, 25)
        t, v = ch.series()
        assert len(t) == 10
        assert t[0] == 15.0 and t[-1] == 24.0
        assert np.all(np.diff(t) > 0)
        stats = ch.stats
        assert stats.appended == 25
        assert stats.dropped == 15
        assert stats.retained_fraction == pytest.approx(10 / 25)

    def test_block_larger_than_capacity(self):
        ch = StoreChannel("x", "W", capacity=8, tiers=())
        _fill(ch, 100)
        t, v = ch.series()
        assert np.array_equal(t, np.arange(92.0, 100.0))

    def test_chunked_ingest_matches_bulk(self):
        bulk = StoreChannel("a", "W", capacity=64, tiers=())
        chunked = StoreChannel("b", "W", capacity=64, tiers=())
        times = np.arange(200.0)
        values = np.sin(times)
        bulk.append_block(times, values)
        # odd-size chunks cross the wrap boundary at every offset
        for start in range(0, 200, 7):
            sl = slice(start, min(start + 7, 200))
            chunked.append_block(times[sl], values[sl])
        tb, vb = bulk.series()
        tc, vc = chunked.series()
        assert np.array_equal(tb, tc)
        assert np.array_equal(vb, vc)

    def test_non_monotonic_rejected(self):
        ch = StoreChannel("x", "W")
        ch.append(10.0, 1.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            ch.append(5.0, 2.0)
        with pytest.raises(ValueError, match="non-monotonic"):
            ch.append_block(
                np.asarray([11.0, 10.5]), np.asarray([1.0, 2.0])
            )

    def test_since_query(self):
        ch = StoreChannel("x", "W", capacity=100)
        _fill(ch, 50)
        t, v = ch.since(44.0)
        assert t.tolist() == [45.0, 46.0, 47.0, 48.0, 49.0]
        t, v = ch.since(1000.0)
        assert len(t) == 0

    def test_tier_aggregation(self):
        ch = StoreChannel(
            "x", "W", capacity=1000, tiers=(TierSpec(factor=10, capacity=50),)
        )
        _fill(ch, 100)
        rollup = ch.tier(0)
        assert len(rollup["times"]) == 10
        # bucket 0 covers values 0..9
        assert rollup["mean"][0] == pytest.approx(4.5)
        assert rollup["min"][0] == 0.0
        assert rollup["max"][0] == 9.0
        # bucket timestamps are the bucket-closing sample times
        assert rollup["times"][0] == 9.0

    def test_tier_partial_bucket_held_back(self):
        ch = StoreChannel(
            "x", "W", capacity=1000, tiers=(TierSpec(factor=10, capacity=50),)
        )
        _fill(ch, 15)
        assert len(ch.tier(0)["times"]) == 1
        _fill(ch, 5, t0=15.0)
        assert len(ch.tier(0)["times"]) == 2

    def test_default_tiers_present(self):
        ch = StoreChannel("x", "W")
        assert ch.tier_count == len(DEFAULT_TIERS)


class TestTimeseriesStore:
    def test_register_rejects_duplicates(self):
        store = TimeseriesStore()
        store.register("x", "W")
        with pytest.raises(ValueError):
            store.register("x", "W")

    def test_append_chunk_bulk_and_autoregister(self):
        store = TimeseriesStore()
        store.register("known", "W")
        times = np.arange(10.0)
        store.append_chunk(
            times, {"known": times * 2, "new.channel": times * 3}
        )
        assert "new.channel" in store
        t, v = store.channel("new.channel").series()
        assert np.array_equal(v, times * 3)
        assert store.total_samples() == 20
        assert sorted(store.channel_names()) == ["known", "new.channel"]

    def test_latest_map(self):
        store = TimeseriesStore()
        store.append("a", 1.0, 10.0)
        store.append("a", 2.0, 20.0)
        assert store.latest() == {"a": (2.0, 20.0)}

    def test_metrics_integration(self):
        reg = MetricsRegistry()
        store = TimeseriesStore(metrics=reg)
        store.append_chunk(np.arange(5.0), {"x": np.ones(5)})
        assert reg.counter("repro_store_samples_total").value == 5

"""Unit tests for the fleet placement policies and workload splitter."""

import numpy as np
import pytest

from repro.fleet.scheduler import (
    PLACEMENT_POLICIES,
    CoolestFirstPolicy,
    DvfsAwarePolicy,
    FleetScheduler,
    FleetWorkload,
    LeakageAwarePolicy,
    LeastUtilizedPolicy,
    RoundRobinPolicy,
    ServerLoadView,
)
from repro.workloads.profile import ConstantProfile


def make_views(**columns):
    """Build N views from parallel per-field lists (defaults filled)."""
    n = len(next(iter(columns.values())))
    defaults = {
        "utilization_pct": [0.0] * n,
        "max_junction_c": [50.0] * n,
        "inlet_c": [24.0] * n,
        "leakage_w": [30.0] * n,
        "leakage_slope_w_per_c": [0.3] * n,
        "pstate_index": [0] * n,
    }
    defaults.update(columns)
    return [
        ServerLoadView(
            index=i,
            rack_index=0,
            utilization_pct=defaults["utilization_pct"][i],
            max_junction_c=defaults["max_junction_c"][i],
            inlet_c=defaults["inlet_c"][i],
            leakage_w=defaults["leakage_w"][i],
            leakage_slope_w_per_c=defaults["leakage_slope_w_per_c"][i],
            pstate_index=defaults["pstate_index"][i],
        )
        for i in range(n)
    ]


class TestPolicyOrders:
    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy()
        views = make_views(utilization_pct=[0.0, 0.0, 0.0])
        assert list(policy.order(views)) == [0, 1, 2]
        assert list(policy.order(views)) == [1, 2, 0]
        assert list(policy.order(views)) == [2, 0, 1]
        policy.reset()
        assert list(policy.order(views)) == [0, 1, 2]

    def test_least_utilized_prefers_idle(self):
        views = make_views(utilization_pct=[80.0, 10.0, 40.0])
        assert list(LeastUtilizedPolicy().order(views)) == [1, 2, 0]

    def test_coolest_first_prefers_cold(self):
        views = make_views(max_junction_c=[70.0, 45.0, 55.0])
        assert list(CoolestFirstPolicy().order(views)) == [1, 2, 0]

    def test_leakage_aware_prefers_flat_slope(self):
        views = make_views(leakage_slope_w_per_c=[0.9, 0.2, 0.5])
        assert list(LeakageAwarePolicy().order(views)) == [1, 2, 0]

    def test_leakage_aware_ties_break_on_inlet(self):
        views = make_views(
            leakage_slope_w_per_c=[0.4, 0.4], inlet_c=[28.0, 22.0]
        )
        assert list(LeakageAwarePolicy().order(views)) == [1, 0]

    def test_dvfs_aware_prefers_nominal_frequency(self):
        views = make_views(pstate_index=[3, 0, 2])
        assert list(DvfsAwarePolicy().order(views)) == [1, 2, 0]

    def test_dvfs_aware_ties_break_on_busier_server(self):
        """Among equal p-states the *busier* server goes first: keeping
        the busy set stable is what prevents the one-tick deficit
        window every reallocation opens."""
        views = make_views(
            pstate_index=[0, 0, 3, 3],
            utilization_pct=[20.0, 90.0, 0.0, 66.0],
        )
        assert list(DvfsAwarePolicy().order(views)) == [1, 0, 3, 2]

    def test_pstate_index_defaults_to_nominal(self):
        """Views built by DVFS-unaware callers stay valid."""
        view = ServerLoadView(
            index=0,
            rack_index=0,
            utilization_pct=10.0,
            max_junction_c=50.0,
            inlet_c=24.0,
            leakage_w=30.0,
            leakage_slope_w_per_c=0.3,
        )
        assert view.pstate_index == 0

    def test_registry_names(self):
        assert set(PLACEMENT_POLICIES) == {
            "round-robin",
            "least-utilized",
            "coolest-first",
            "leakage-aware",
            "dvfs-aware",
        }
        for name, cls in PLACEMENT_POLICIES.items():
            assert cls().name == name


class TestGreedyFill:
    def test_demand_conserved(self):
        scheduler = FleetScheduler(CoolestFirstPolicy())
        views = make_views(max_junction_c=[60.0, 40.0, 50.0])
        decision = scheduler.assign(views, 180.0)
        assert decision.allocations_pct.sum() == pytest.approx(180.0)
        assert decision.unserved_pct == 0.0

    def test_fills_priority_order_to_cap(self):
        scheduler = FleetScheduler(CoolestFirstPolicy())
        views = make_views(max_junction_c=[60.0, 40.0, 50.0])
        decision = scheduler.assign(views, 150.0)
        # coolest (index 1) gets 100, next coolest (index 2) the rest.
        assert decision.allocations_pct == pytest.approx([0.0, 100.0, 50.0])

    def test_overload_reports_unserved(self):
        scheduler = FleetScheduler(RoundRobinPolicy())
        views = make_views(utilization_pct=[0.0, 0.0])
        decision = scheduler.assign(views, 250.0)
        assert decision.allocations_pct == pytest.approx([100.0, 100.0])
        assert decision.unserved_pct == pytest.approx(50.0)

    def test_zero_demand_idles_everyone(self):
        scheduler = FleetScheduler(LeastUtilizedPolicy())
        decision = scheduler.assign(make_views(utilization_pct=[5.0, 7.0]), 0.0)
        assert np.all(decision.allocations_pct == 0.0)

    def test_negative_demand_rejected(self):
        scheduler = FleetScheduler(RoundRobinPolicy())
        with pytest.raises(ValueError):
            scheduler.assign(make_views(utilization_pct=[0.0]), -1.0)

    def test_empty_views_rejected(self):
        scheduler = FleetScheduler(RoundRobinPolicy())
        with pytest.raises(ValueError):
            scheduler.assign([], 10.0)

    def test_bad_policy_order_detected(self):
        class BrokenPolicy(RoundRobinPolicy):
            def order(self, views):
                return [0, 0]

        scheduler = FleetScheduler(BrokenPolicy())
        with pytest.raises(ValueError, match="invalid order"):
            scheduler.assign(make_views(utilization_pct=[0.0, 0.0]), 10.0)


class TestFleetWorkload:
    def test_total_demand_scales_with_fleet_size(self):
        workload = FleetWorkload(ConstantProfile(40.0, 600.0), server_count=8)
        assert workload.total_demand_pct(0.0) == pytest.approx(320.0)
        assert workload.fleet_average_pct(0.0) == pytest.approx(40.0)
        assert workload.duration_s == 600.0

    def test_split_round_trips_through_scheduler(self):
        workload = FleetWorkload(ConstantProfile(50.0, 600.0), server_count=2)
        scheduler = FleetScheduler(RoundRobinPolicy())
        decision = workload.split(
            scheduler, make_views(utilization_pct=[0.0, 0.0]), 0.0
        )
        assert decision.allocations_pct.sum() == pytest.approx(100.0)

    def test_view_count_must_match(self):
        workload = FleetWorkload(ConstantProfile(50.0, 600.0), server_count=3)
        scheduler = FleetScheduler(RoundRobinPolicy())
        with pytest.raises(ValueError):
            workload.split(scheduler, make_views(utilization_pct=[0.0]), 0.0)

    def test_invalid_server_count_rejected(self):
        with pytest.raises(ValueError):
            FleetWorkload(ConstantProfile(50.0, 600.0), server_count=0)

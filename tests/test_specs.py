"""Unit tests for the hardware specification dataclasses."""

import dataclasses

import pytest

from repro.server.specs import (
    CpuSocketSpec,
    FanSpec,
    MemorySpec,
    SensorNoiseSpec,
    ServerSpec,
    default_server_spec,
)


class TestFanSpec:
    def test_defaults_match_paper_range(self):
        fan = FanSpec()
        assert fan.rpm_min == 1800.0
        assert fan.rpm_max == 4200.0
        assert fan.power_exponent == 3.0

    def test_rpm_max_must_exceed_min(self):
        with pytest.raises(ValueError):
            FanSpec(rpm_min=4000.0, rpm_max=3000.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            FanSpec(power_at_ref_w=-1.0)

    def test_sub_linear_exponent_rejected(self):
        with pytest.raises(ValueError):
            FanSpec(power_exponent=0.5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FanSpec().rpm_min = 1000.0


class TestCpuSocketSpec:
    def test_t3_thread_count(self):
        socket = CpuSocketSpec()
        assert socket.hardware_threads == 128

    def test_paper_leakage_constants(self):
        socket = CpuSocketSpec()
        assert socket.leak_k2_w == pytest.approx(0.3231)
        assert socket.leak_k3_per_c == pytest.approx(0.04749)

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            CpuSocketSpec(core_count=0)

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            CpuSocketSpec(r_heatsink_air_ref_k_w=-0.1)


class TestMemorySpec:
    def test_default_dimm_count(self):
        assert MemorySpec().dimm_count == 32

    def test_preheat_fraction_bounds(self):
        with pytest.raises(ValueError):
            MemorySpec(preheat_fraction=1.5)

    def test_zero_dimms_rejected(self):
        with pytest.raises(ValueError):
            MemorySpec(dimm_count=0)


class TestSensorNoiseSpec:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SensorNoiseSpec(temperature_sigma_c=-0.1)


class TestServerSpec:
    def test_default_is_two_socket_256_threads(self):
        spec = default_server_spec()
        assert spec.socket_count == 2
        assert spec.hardware_threads == 256

    def test_six_fans_in_three_pairs(self):
        spec = default_server_spec()
        assert spec.fan_count == 6
        assert spec.fan_group_count == 3

    def test_default_fan_rpm_is_3300(self):
        assert default_server_spec().default_fan_rpm == 3300.0

    def test_reliability_ceiling_below_critical(self):
        spec = default_server_spec()
        assert spec.target_max_temperature_c == 75.0
        assert spec.critical_temperature_c == 90.0

    def test_requires_at_least_one_socket(self):
        with pytest.raises(ValueError):
            ServerSpec(sockets=())

    def test_fan_count_must_divide_into_groups(self):
        with pytest.raises(ValueError):
            ServerSpec(fan_count=7, fans_per_group=2)

    def test_target_must_be_below_critical(self):
        with pytest.raises(ValueError):
            ServerSpec(target_max_temperature_c=95.0, critical_temperature_c=90.0)

    def test_default_rpm_must_be_within_fan_range(self):
        with pytest.raises(ValueError):
            ServerSpec(default_fan_rpm=5000.0)

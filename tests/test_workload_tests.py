"""Unit tests for the paper's four test workloads."""

import numpy as np
import pytest

from repro.units import minutes
from repro.workloads.tests import (
    PAPER_TEST_DURATION_S,
    build_test1_ramp,
    build_test2_periods,
    build_test3_random_steps,
    build_test4_stochastic,
    paper_test_profiles,
)


class TestDurations:
    def test_all_tests_last_80_minutes(self):
        for name, profile in paper_test_profiles().items():
            assert profile.duration_s == pytest.approx(
                PAPER_TEST_DURATION_S, rel=0.01
            ), name


class TestTest1:
    def test_triangle_shape(self):
        profile = build_test1_ramp()
        assert profile.utilization_pct(0.0) == 0.0
        assert profile.utilization_pct(minutes(40.0)) == pytest.approx(100.0)
        assert profile.utilization_pct(minutes(80.0)) == pytest.approx(0.0)

    def test_gradual_change(self):
        """Test-1 changes by < 0.1% per second (gradual, not sudden)."""
        profile = build_test1_ramp()
        _, values = profile.sample(dt_s=1.0)
        assert np.max(np.abs(np.diff(values))) < 0.1


class TestTest2:
    def test_alternates_between_two_levels(self):
        profile = build_test2_periods()
        _, values = profile.sample(dt_s=10.0)
        assert set(np.unique(values)) == {10.0, 90.0}

    def test_first_period_is_five_minutes_high(self):
        profile = build_test2_periods()
        assert profile.utilization_pct(minutes(2.0)) == 90.0
        assert profile.utilization_pct(minutes(7.0)) == 10.0

    def test_fifteen_minute_period_present(self):
        profile = build_test2_periods()
        # Minutes 30-45 are the 15-minute high block.
        for m in (31.0, 38.0, 44.0):
            assert profile.utilization_pct(minutes(m)) == 90.0

    def test_custom_levels(self):
        profile = build_test2_periods(high_pct=80.0, low_pct=20.0)
        _, values = profile.sample(dt_s=10.0)
        assert set(np.unique(values)) == {20.0, 80.0}


class TestTest3:
    def test_changes_every_five_minutes(self):
        profile = build_test3_random_steps(seed=3)
        for t in np.arange(0.0, profile.duration_s, minutes(5.0)):
            start = profile.utilization_pct(t + 1.0)
            end = profile.utilization_pct(t + minutes(5.0) - 1.0)
            assert start == end

    def test_has_multiple_distinct_levels(self):
        profile = build_test3_random_steps(seed=3)
        _, values = profile.sample(dt_s=30.0)
        assert len(np.unique(values)) >= 4

    def test_seeded(self):
        a = build_test3_random_steps(seed=3)
        b = build_test3_random_steps(seed=3)
        _, va = a.sample(dt_s=60.0)
        _, vb = b.sample(dt_s=60.0)
        np.testing.assert_array_equal(va, vb)


class TestTest4:
    def test_mean_near_target(self):
        profile = build_test4_stochastic(target_utilization_pct=40.0, seed=2)
        assert profile.mean_utilization_pct(dt_s=5.0) == pytest.approx(
            40.0, abs=5.0
        )

    def test_values_in_range(self):
        profile = build_test4_stochastic(seed=2)
        _, values = profile.sample(dt_s=5.0)
        assert np.all(values >= 0.0)
        assert np.all(values <= 100.0)

    def test_stochastic_variation_present(self):
        profile = build_test4_stochastic(seed=2)
        _, values = profile.sample(dt_s=5.0)
        assert np.std(values) > 1.0


class TestProfilesFactory:
    def test_contains_all_four(self):
        profiles = paper_test_profiles()
        assert set(profiles) == {"test1", "test2", "test3", "test4"}

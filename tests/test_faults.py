"""Unit tests for sensor fault injection."""

import math

import pytest

from repro.server.faults import (
    DriftFault,
    DropoutFault,
    FaultableSensor,
    OffsetFault,
    SpikeFault,
    StuckFault,
)
from repro.server.server import ServerSimulator


class TestFaultScheduling:
    def test_inactive_before_start(self):
        fault = StuckFault(50.0, start_s=100.0)
        assert not fault.active(99.0)
        assert fault.active(100.0)

    def test_inactive_after_end(self):
        fault = StuckFault(50.0, start_s=0.0, end_s=10.0)
        assert fault.active(5.0)
        assert not fault.active(10.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            StuckFault(50.0, start_s=10.0, end_s=10.0)
        with pytest.raises(ValueError):
            StuckFault(50.0, start_s=-1.0)


class TestFaultModes:
    def test_stuck(self):
        assert StuckFault(42.0).apply(0.0, 70.0) == 42.0

    def test_offset(self):
        assert OffsetFault(-5.0).apply(0.0, 70.0) == 65.0

    def test_drift_grows_from_onset(self):
        fault = DriftFault(rate_per_s=0.01, start_s=100.0)
        assert fault.apply(100.0, 70.0) == pytest.approx(70.0)
        assert fault.apply(200.0, 70.0) == pytest.approx(71.0)

    def test_dropout_is_nan(self):
        assert math.isnan(DropoutFault().apply(0.0, 70.0))

    def test_spike_distribution(self):
        fault = SpikeFault(magnitude=20.0, probability=0.5, seed=1)
        readings = [fault.apply(0.0, 70.0) for _ in range(400)]
        spiked = [r for r in readings if abs(r - 70.0) > 1.0]
        assert 100 < len(spiked) < 300
        assert all(abs(abs(r - 70.0) - 20.0) < 1e-9 for r in spiked)

    def test_spike_invalid_probability(self):
        with pytest.raises(ValueError):
            SpikeFault(magnitude=20.0, probability=1.5)


class TestFaultableSensor:
    def test_healthy_passthrough(self):
        assert FaultableSensor().transform(0.0, 70.0) == 70.0

    def test_faults_compose_in_order(self):
        sensor = FaultableSensor()
        sensor.inject(OffsetFault(5.0))
        sensor.inject(OffsetFault(-2.0))
        assert sensor.transform(0.0, 70.0) == 73.0

    def test_stuck_dominates_prior_offset(self):
        sensor = FaultableSensor()
        sensor.inject(OffsetFault(5.0))
        sensor.inject(StuckFault(40.0))
        assert sensor.transform(0.0, 70.0) == 40.0

    def test_clear_repairs(self):
        sensor = FaultableSensor()
        sensor.inject(StuckFault(40.0))
        sensor.clear()
        assert sensor.transform(0.0, 70.0) == 70.0
        assert sensor.fault_count == 0

    def test_inactive_fault_ignored(self):
        sensor = FaultableSensor()
        sensor.inject(StuckFault(40.0, start_s=100.0))
        assert sensor.transform(0.0, 70.0) == 70.0


class TestSimulatorIntegration:
    def test_stuck_cpu_sensor(self):
        sim = ServerSimulator(seed=0, initial_fan_rpm=3000.0)
        sim.settle_to_steady_state(100.0)
        sim.inject_cpu_temp_fault(0, StuckFault(30.0))
        readings = sim.measured_cpu_temperatures_c()
        assert readings[0] == 30.0
        # The other channels still track the hot junction.
        assert all(r > 50.0 for r in readings[1:])

    def test_power_sensor_offset(self):
        sim = ServerSimulator(seed=0, initial_fan_rpm=3000.0)
        sim.settle_to_steady_state(50.0)
        truth = sim.state.power.compute_w
        sim.inject_power_sensor_fault(OffsetFault(100.0))
        reading = sim.measured_system_power_w()
        assert reading == pytest.approx(truth + 100.0, abs=10.0)

    def test_out_of_range_sensor_index(self):
        sim = ServerSimulator(seed=0)
        with pytest.raises(IndexError):
            sim.inject_cpu_temp_fault(4, StuckFault(30.0))

    def test_clear_sensor_faults(self):
        sim = ServerSimulator(seed=0, initial_fan_rpm=3000.0)
        sim.settle_to_steady_state(100.0)
        sim.inject_cpu_temp_fault(0, StuckFault(30.0))
        sim.clear_sensor_faults()
        assert sim.measured_cpu_temperatures_c()[0] > 50.0

"""Differential suite: ``backend="sharded"`` vs ``backend="vector"``.

The sharded fleet backend's whole value proposition is "same numbers,
bigger machine", so every test here demands *bit* equality
(``np.testing.assert_array_equal``, never ``allclose``) between a
sharded run — 1, 2 or 4 shards, inline or forked worker processes —
and the single-process vector kernel, across:

* every builtin placement policy (array-ranked fast path),
* a custom view-based policy (the coordinator's legacy fallback),
* coordinated fan+DVFS control (cross-layer p-state actuation),
* a compound fault schedule whose outage respill crosses a shard
  boundary,
* capture taps, persistent streamed trace directories, critical-trip
  propagation, and the run-stats surface.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.controllers.coordinated import CoordinatedController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.pid import PIController
from repro.core.lut import build_lut_from_spec
from repro.engine.sharded import resolve_shard_mode
from repro.fleet import (
    PLACEMENT_POLICIES,
    CracExcursionEvent,
    FanDegradationEvent,
    FaultSchedule,
    FleetEngine,
    FleetScheduler,
    FleetWorkload,
    PlacementPolicy,
    SensorFaultEvent,
    ServerOutageEvent,
    build_uniform_fleet,
)
from repro.obs.capture import FleetCapture
from repro.server.dvfs import default_dvfs_ladder
from repro.server.server import CriticalTemperatureError
from repro.server.specs import ServerSpec, default_server_spec
from repro.telemetry.segments import FleetTraceReader
from repro.workloads.profile import StaircaseProfile

#: Every FleetResult trace column, compared bit-for-bit.
FLEET_TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
    "fault_active",
    "respilled_pct",
    "fault_unserved_pct",
)

DT_S = 2.0
DURATION_S = 240.0

PROFILE = StaircaseProfile([25.0, 85.0, 55.0, 95.0], 60.0)

#: Compound schedule on a 6-server fleet: the outage takes down a
#: whole shard-0 server while demand is high, so its respilled work
#: lands on shard-1 servers — the cross-shard attribution path.
FAULTS = FaultSchedule(
    events=(
        SensorFaultEvent(
            server=1, mode="stuck", value=35.0, start_s=40.0, end_s=160.0
        ),
        SensorFaultEvent(
            server=4, mode="dropout", start_s=60.0, end_s=120.0, seed=3
        ),
        FanDegradationEvent(server=2, rpm_factor=0.7, start_s=80.0),
        ServerOutageEvent(server=0, start_s=60.0, end_s=180.0),
        CracExcursionEvent(delta_c=3.0, rack=1, start_s=100.0, end_s=200.0),
    )
)


class HottestFirstPolicy(PlacementPolicy):
    """View-based custom policy: exercises the coordinator fallback."""

    name = "hottest-first"

    def order(self, views):
        """Hottest junction first (deterministic index tiebreak)."""
        return sorted(
            range(len(views)),
            key=lambda i: (-views[i].max_junction_c, i),
        )


def run_fleet(
    backend,
    policy=None,
    controller_factory=None,
    faults=None,
    spec=None,
    capture=None,
    **sharded_kw,
):
    """One 120-tick 2x3 fleet run with the given backend/options."""
    fleet = build_uniform_fleet(
        rack_count=2, servers_per_rack=3, spec=spec
    )
    engine = FleetEngine(
        fleet,
        FleetWorkload(PROFILE, fleet.server_count),
        scheduler=FleetScheduler(
            policy if policy is not None else PLACEMENT_POLICIES["coolest-first"]()
        ),
        controller_factory=controller_factory,
        backend=backend,
        faults=faults,
        capture=capture,
        **sharded_kw,
    )
    return engine.run(dt_s=DT_S, duration_s=DURATION_S), engine


def assert_results_identical(expected, actual):
    """Bit equality over every trace column plus the metrics block."""
    for name in FLEET_TRACES:
        left = getattr(expected, name)
        right = getattr(actual, name)
        np.testing.assert_array_equal(
            np.asarray(left), np.asarray(right), err_msg=name
        )
    assert expected.metrics == actual.metrics
    assert expected.scheduler_name == actual.scheduler_name
    assert expected.controller_name == actual.controller_name


class TestBuiltinPolicies:
    @pytest.mark.parametrize("policy_name", sorted(PLACEMENT_POLICIES))
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_policy_bit_identical(self, policy_name, shards):
        base, _ = run_fleet(
            "vector", policy=PLACEMENT_POLICIES[policy_name]()
        )
        sharded, _ = run_fleet(
            "sharded",
            policy=PLACEMENT_POLICIES[policy_name](),
            shards=shards,
            shard_mode="inline",
        )
        assert_results_identical(base, sharded)
        assert sharded.backend == "sharded"

    def test_custom_view_policy_fallback(self):
        base, _ = run_fleet("vector", policy=HottestFirstPolicy())
        sharded, _ = run_fleet(
            "sharded",
            policy=HottestFirstPolicy(),
            shards=3,
            shard_mode="inline",
        )
        assert_results_identical(base, sharded)


class TestProcessMode:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_forked_workers_bit_identical(self, shards):
        if resolve_shard_mode("auto") != "process":
            pytest.skip("fork start method unavailable")
        base, _ = run_fleet(
            "vector", controller_factory=lambda i: PIController()
        )
        sharded, engine = run_fleet(
            "sharded",
            controller_factory=lambda i: PIController(),
            faults=None,
            shards=shards,
            shard_mode="process",
        )
        assert_results_identical(base, sharded)
        assert engine.last_run_stats["shard_mode"] == "process"
        assert engine.last_run_stats["ru_maxrss_children_kb"] > 0

    def test_forked_workers_with_faults(self):
        if resolve_shard_mode("auto") != "process":
            pytest.skip("fork start method unavailable")
        base, _ = run_fleet(
            "vector",
            controller_factory=lambda i: PIController(),
            faults=FAULTS,
        )
        sharded, _ = run_fleet(
            "sharded",
            controller_factory=lambda i: PIController(),
            faults=FAULTS,
            shards=2,
            shard_mode="process",
        )
        assert_results_identical(base, sharded)


class TestCoordinatedDvfs:
    def test_coordinated_control_bit_identical(self):
        spec = replace(default_server_spec(), dvfs=default_dvfs_ladder())
        lut = build_lut_from_spec(spec)

        def factory(index):
            return CoordinatedController(lut, spec.dvfs)

        base, _ = run_fleet(
            "vector",
            policy=PLACEMENT_POLICIES["dvfs-aware"](),
            controller_factory=factory,
            spec=spec,
        )
        assert (np.asarray(base.pstate_index) > 0).any(), (
            "scenario must actually exercise deep p-states"
        )
        for shards in (2, (1, 4, 1)):
            sharded, _ = run_fleet(
                "sharded",
                policy=PLACEMENT_POLICIES["dvfs-aware"](),
                controller_factory=factory,
                spec=spec,
                shards=shards,
                shard_mode="inline",
            )
            assert_results_identical(base, sharded)


class TestFaultSchedules:
    def test_cross_shard_outage_respill_bit_identical(self):
        base, _ = run_fleet(
            "vector",
            controller_factory=lambda i: PIController(),
            faults=FAULTS,
        )
        # the drill must exercise the attribution paths it claims to
        assert np.asarray(base.respilled_pct).sum() > 0.0
        assert np.asarray(base.fault_active).any()
        for shards in (1, 2, 4):
            sharded, _ = run_fleet(
                "sharded",
                controller_factory=lambda i: PIController(),
                faults=FAULTS,
                shards=shards,
                shard_mode="inline",
            )
            assert_results_identical(base, sharded)

    def test_mixed_controllers_uneven_shards(self):
        def factory(index):
            if index % 2:
                return PIController(poll_interval_s=4.0)
            return FixedSpeedController()

        base, _ = run_fleet(
            "vector", controller_factory=factory, faults=FAULTS
        )
        sharded, _ = run_fleet(
            "sharded",
            controller_factory=factory,
            faults=FAULTS,
            shards=(1, 4, 1),
            shard_mode="inline",
        )
        assert base.controller_name == "mixed"
        assert_results_identical(base, sharded)


class TestCriticalTrip:
    def _fleet_with_fragile_server(self):
        fragile = ServerSpec(
            critical_temperature_c=76.0, target_max_temperature_c=70.0
        )
        # server 4 (inside the second of two shards) trips first
        specs = [default_server_spec()] * 6
        specs[4] = fragile
        from repro.fleet import Fleet, Rack

        return Fleet(
            racks=(
                Rack(name="r0", servers=tuple(specs[:3])),
                Rack(name="r1", servers=tuple(specs[3:])),
            )
        )

    @pytest.mark.parametrize("shard_mode", ["inline", "process"])
    def test_trip_matches_vector_message(self, shard_mode):
        if shard_mode == "process" and resolve_shard_mode("auto") != "process":
            pytest.skip("fork start method unavailable")
        fleet = self._fleet_with_fragile_server()

        def build(backend, **kw):
            return FleetEngine(
                fleet,
                FleetWorkload(
                    StaircaseProfile([100.0], 600.0), fleet.server_count
                ),
                controller_factory=lambda i: FixedSpeedController(rpm=1800.0),
                backend=backend,
                **kw,
            )

        with pytest.raises(CriticalTemperatureError) as vector_exc:
            build("vector").run(dt_s=5.0, duration_s=600.0)
        with pytest.raises(CriticalTemperatureError) as sharded_exc:
            build("sharded", shards=2, shard_mode=shard_mode).run(
                dt_s=5.0, duration_s=600.0
            )
        assert str(sharded_exc.value) == str(vector_exc.value)
        assert "server 4" in str(sharded_exc.value)


class TestCaptureAndPersistence:
    def test_capture_streams_bit_identical(self):
        base_capture = FleetCapture(chunk_ticks=16)
        sharded_capture = FleetCapture(chunk_ticks=16)
        base, _ = run_fleet("vector", capture=base_capture)
        sharded, _ = run_fleet(
            "sharded",
            capture=sharded_capture,
            shards=2,
            shard_mode="inline",
            stream_chunk_ticks=24,  # gcd(24, 16) = 8: forces realignment
        )
        assert_results_identical(base, sharded)
        assert base_capture.store.channel_names()
        for name in sorted(base_capture.store.channel_names()):
            t_base, v_base = base_capture.store.channel(name).series()
            t_shard, v_shard = sharded_capture.store.channel(name).series()
            np.testing.assert_array_equal(t_base, t_shard, err_msg=name)
            np.testing.assert_array_equal(v_base, v_shard, err_msg=name)

    def test_trace_dir_roundtrips_bit_exactly(self, tmp_path):
        trace_dir = tmp_path / "segments"
        base, _ = run_fleet("vector", faults=FAULTS)
        sharded, engine = run_fleet(
            "sharded",
            faults=FAULTS,
            shards=2,
            shard_mode="inline",
            trace_dir=str(trace_dir),
        )
        assert_results_identical(base, sharded)
        assert (trace_dir / "meta.json").exists()
        assert engine.last_run_stats["trace_dir"] == str(trace_dir)

        reader = FleetTraceReader(trace_dir)
        reloaded = reader.to_result(engine.fleet)
        assert_results_identical(base, reloaded)
        # lazily-mapped columns must be read-only views over the files
        assert not reader.column("power").flags.writeable
        with pytest.raises(ValueError):
            np.asarray(reloaded.total_power_w)[0, 0] = 0.0

    def test_temporary_trace_dir_is_cleaned_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            _, engine = run_fleet(
                "sharded", shards=2, shard_mode="inline"
            )
        finally:
            tempfile.tempdir = None
        assert engine.last_run_stats["trace_dir"] is None
        assert list(tmp_path.glob("repro-sharded-*")) == []


class TestValidation:
    def test_sharded_params_require_sharded_backend(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        workload = FleetWorkload(PROFILE, fleet.server_count)
        with pytest.raises(ValueError, match="backend='sharded'"):
            FleetEngine(fleet, workload, backend="vector", shards=2)
        with pytest.raises(ValueError, match="backend='sharded'"):
            FleetEngine(fleet, workload, backend="vector", trace_dir="/tmp/x")

    def test_bad_partitions_fail_at_construction(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        workload = FleetWorkload(PROFILE, fleet.server_count)
        with pytest.raises(ValueError):
            FleetEngine(fleet, workload, backend="sharded", shards=3)
        with pytest.raises(ValueError):
            FleetEngine(fleet, workload, backend="sharded", shards=(1, 2))
        with pytest.raises(ValueError):
            FleetEngine(fleet, workload, backend="sharded", shards=0)
        with pytest.raises(ValueError, match="shard_mode"):
            FleetEngine(
                fleet, workload, backend="sharded", shard_mode="threads"
            )

    def test_run_stats_surface(self):
        _, engine = run_fleet("sharded", shards=2, shard_mode="inline")
        stats = engine.last_run_stats
        assert stats["backend"] == "sharded"
        assert stats["shards"] == 2
        assert stats["server_count"] == 6
        assert stats["sim_time_s"] == DURATION_S
        assert stats["ru_maxrss_stream_kb"] > 0
        assert 0 < stats["wall_stream_s"] <= stats["wall_total_s"]

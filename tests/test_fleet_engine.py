"""Engine tests: vector/reference equivalence, recirculation, DVFS.

The ``dvfs_spec``, ``single_server_fleet`` and ``small_fleet``
fixtures live in ``conftest.py`` (shared with the kernel-equivalence
and fault suites).
"""

import numpy as np
import pytest

from repro.core.controllers.coordinated import CoordinatedController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.pid import PIController
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.fleet import (
    CoolestFirstPolicy,
    DvfsAwarePolicy,
    Fleet,
    FleetEngine,
    FleetScheduler,
    FleetWorkload,
    LeakageAwarePolicy,
    Rack,
    build_recirculation_matrix,
    build_uniform_fleet,
    compute_fleet_metrics,
)
from repro.server.ambient import SinusoidalAmbient
from repro.server.server import CriticalTemperatureError, ServerSimulator
from repro.server.specs import CpuSocketSpec, ServerSpec, default_server_spec
from repro.workloads.profile import ConstantProfile, StaircaseProfile


class TestSingleServerEquivalence:
    def test_vector_engine_matches_server_simulator(self, single_server_fleet):
        """N=1, no coupling: the batched math must reproduce the
        single-server simulator's trajectory."""
        profile = StaircaseProfile([30.0, 90.0, 10.0], 200.0)
        engine = FleetEngine(
            single_server_fleet(),
            profile,
            controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
        )
        result = engine.run(dt_s=1.0)

        sim = ServerSimulator(spec=default_server_spec())
        sim.set_fan_rpm(3000.0)
        junctions, powers, rpms = [], [], []
        for tick in range(600):
            state = sim.step(1.0, profile.utilization_pct(tick * 1.0))
            junctions.append(state.max_junction_c)
            powers.append(state.power.total_w)
            rpms.append(state.mean_fan_rpm)

        np.testing.assert_allclose(
            result.max_junction_c[:, 0], junctions, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            result.total_power_w[:, 0], powers, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            result.mean_rpm[:, 0], rpms, rtol=0, atol=1e-9
        )

    def test_energy_matches_server_simulator_accumulator(
        self, single_server_fleet
    ):
        engine = FleetEngine(
            single_server_fleet(),
            ConstantProfile(70.0, 300.0),
            controller_factory=lambda i: FixedSpeedController(rpm=3300.0),
        )
        result = engine.run(dt_s=1.0)

        sim = ServerSimulator(spec=default_server_spec())
        sim.set_fan_rpm(3300.0)
        for _ in range(300):
            sim.step(1.0, 70.0)
        assert result.metrics.energy_kwh * 3.6e6 == pytest.approx(
            sim.energy_joules, rel=1e-12
        )


class TestCoordinatedSingleServerAnchor:
    """The correctness anchor for fleet-scale DVFS: a 1-server fleet
    under a CoordinatedController must reproduce ``run_experiment`` on
    a real ``ServerSimulator`` trace for trace — power, junction, rpm,
    p-state, and accumulated work deficit.

    The configurations are aligned so every observable matches: the
    runner uses ``direct`` load synthesis (no PWM), a monitor window of
    one tick (the fleet controllers observe the previous tick's
    executed utilization), and the fleet engine cold-starts exactly
    like the experiment protocol.  The coordinated policy reads only
    utilization, so the runner's noisy temperature channels don't
    enter the decisions.
    """

    @pytest.fixture(scope="class")
    def anchor(self, paper_lut, dvfs_spec):
        spec = dvfs_spec
        profile = StaircaseProfile([20.0, 70.0, 40.0, 95.0, 10.0], 180.0)
        config = ExperimentConfig(
            dt_s=1.0, monitor_window_s=1.0, loadgen_mode="direct"
        )
        runner = run_experiment(
            CoordinatedController(paper_lut, spec.dvfs),
            profile,
            spec=spec,
            config=config,
        )
        return spec, profile, paper_lut, runner

    @pytest.mark.parametrize("backend", ["vector", "reference"])
    def test_traces_match_run_experiment(
        self, anchor, backend, single_server_fleet
    ):
        spec, profile, lut, runner = anchor
        fleet = single_server_fleet(spec)
        result = FleetEngine(
            fleet,
            profile,
            controller_factory=lambda i: CoordinatedController(lut, spec.dvfs),
            backend=backend,
            cold_start=True,
        ).run(dt_s=1.0)

        # integer traces and everything untouched by numpy sum
        # reordering must be *exactly* equal
        np.testing.assert_array_equal(
            result.pstate_index[:, 0], runner.column("pstate_index")
        )
        np.testing.assert_array_equal(
            result.mean_rpm[:, 0], runner.column("mean_rpm")
        )
        np.testing.assert_array_equal(
            result.utilization_pct[:, 0], runner.column("executed_util_pct")
        )
        np.testing.assert_array_equal(
            result.work_deficit_pct_s[:, 0],
            runner.column("work_deficit_pct_s"),
        )
        np.testing.assert_allclose(
            result.total_power_w[:, 0],
            runner.column("power_total_w"),
            rtol=0,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            result.max_junction_c[:, 0],
            runner.column("max_junction_c"),
            rtol=0,
            atol=1e-9,
        )
        # the run must actually exercise the ladder and pay a deficit
        # during the 95% phase entered from a parked state
        assert set(result.pstate_index[:, 0]) >= {0, 3}
        assert result.work_deficit_pct_s[-1, 0] > 0.0

    def test_reference_backend_is_bit_equal(self, anchor, single_server_fleet):
        """The reference backend wraps real simulators, so even the
        float traces match the runner bit for bit."""
        spec, profile, lut, runner = anchor
        fleet = single_server_fleet(spec)
        result = FleetEngine(
            fleet,
            profile,
            controller_factory=lambda i: CoordinatedController(lut, spec.dvfs),
            backend="reference",
            cold_start=True,
        ).run(dt_s=1.0)
        np.testing.assert_array_equal(
            result.total_power_w[:, 0], runner.column("power_total_w")
        )
        np.testing.assert_array_equal(
            result.max_junction_c[:, 0], runner.column("max_junction_c")
        )


class TestBackendEquivalence:
    @pytest.mark.parametrize("policy_cls", [CoolestFirstPolicy, LeakageAwarePolicy])
    def test_vector_matches_reference_with_recirculation(self, policy_cls):
        """4 coupled servers under a closed-loop controller: the numpy
        batch and the naive per-simulator loop must agree."""
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
        profile = StaircaseProfile([20.0, 80.0, 50.0], 120.0)

        def build(backend):
            return FleetEngine(
                fleet,
                profile,
                scheduler=FleetScheduler(policy_cls()),
                controller_factory=lambda i: PIController(),
                backend=backend,
            ).run(dt_s=2.0)

        vec, ref = build("vector"), build("reference")
        np.testing.assert_allclose(
            vec.max_junction_c, ref.max_junction_c, rtol=0, atol=1e-7
        )
        np.testing.assert_allclose(
            vec.total_power_w, ref.total_power_w, rtol=0, atol=1e-6
        )
        np.testing.assert_allclose(
            vec.utilization_pct, ref.utilization_pct, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.inlet_c, ref.inlet_c, rtol=0, atol=1e-9
        )
        assert vec.metrics.energy_kwh == pytest.approx(
            ref.metrics.energy_kwh, rel=1e-9
        )

    def test_vector_matches_reference_with_dvfs_at_16_servers(
        self, paper_lut, dvfs_spec
    ):
        """16 coupled servers with active p-state actuation: the
        batched DVFS stretch/deficit/power math must agree with the
        per-simulator loop on every trace."""
        spec = dvfs_spec
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=8, spec=spec)
        profile = StaircaseProfile([15.0, 60.0, 35.0], 120.0)

        def build(backend):
            return FleetEngine(
                fleet,
                profile,
                scheduler=FleetScheduler(DvfsAwarePolicy()),
                controller_factory=lambda i: CoordinatedController(
                    paper_lut, spec.dvfs
                ),
                backend=backend,
            ).run(dt_s=2.0)

        vec, ref = build("vector"), build("reference")
        np.testing.assert_array_equal(vec.pstate_index, ref.pstate_index)
        np.testing.assert_array_equal(vec.utilization_pct, ref.utilization_pct)
        np.testing.assert_array_equal(
            vec.work_deficit_pct, ref.work_deficit_pct
        )
        np.testing.assert_array_equal(vec.mean_rpm, ref.mean_rpm)
        np.testing.assert_allclose(
            vec.max_junction_c, ref.max_junction_c, rtol=0, atol=1e-7
        )
        np.testing.assert_allclose(
            vec.total_power_w, ref.total_power_w, rtol=0, atol=1e-6
        )
        # the ladder is exercised across the fleet
        assert vec.pstate_index.max() > 0
        assert vec.metrics.dvfs_deficit_pct_s == pytest.approx(
            ref.metrics.dvfs_deficit_pct_s
        )

    def test_vector_matches_reference_with_time_varying_supply(self):
        """A sinusoidal CRAC supply under recirculation coupling: the
        supply evaluation and the RecirculationAmbient offset path must
        agree between backends while the inlet actually varies."""
        spec = default_server_spec()
        racks = tuple(
            Rack(
                name=f"r{i}",
                servers=(spec, spec),
                crac=SinusoidalAmbient(
                    mean_c=23.0, amplitude_c=2.0, period_s=300.0
                ),
            )
            for i in range(2)
        )
        fleet = Fleet(
            racks=racks,
            recirculation=build_recirculation_matrix(
                [2, 2], intra_rack_coupling=0.08, cross_rack_coupling=0.01
            ),
        )
        profile = StaircaseProfile([30.0, 80.0], 300.0)

        def build(backend):
            return FleetEngine(
                fleet,
                profile,
                scheduler=FleetScheduler(CoolestFirstPolicy()),
                controller_factory=lambda i: PIController(),
                backend=backend,
            ).run(dt_s=2.0)

        vec, ref = build("vector"), build("reference")
        np.testing.assert_allclose(
            vec.inlet_c, ref.inlet_c, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.max_junction_c, ref.max_junction_c, rtol=0, atol=1e-7
        )
        np.testing.assert_allclose(
            vec.total_power_w, ref.total_power_w, rtol=0, atol=1e-6
        )
        # the inlet trace follows the supply oscillation and sits above
        # it (recirculation only adds heat)
        supply = np.array(
            [fleet.supply_temperatures_c(t) for t in vec.times_s - 2.0]
        )
        assert np.all(vec.inlet_c >= supply - 1e-12)
        assert vec.inlet_c.min() < 23.0  # the cold half-period shows
        assert np.ptp(vec.inlet_c) > 3.0


class TestRecirculation:
    def test_coupling_warms_inlets_and_costs_energy(self):
        profile = ConstantProfile(80.0, 900.0)

        def run(intra, cross):
            fleet = build_uniform_fleet(
                rack_count=2,
                servers_per_rack=2,
                intra_rack_coupling=intra,
                cross_rack_coupling=cross,
            )
            engine = FleetEngine(
                fleet,
                profile,
                controller_factory=lambda i: FixedSpeedController(rpm=2400.0),
            )
            return engine.run(dt_s=5.0)

        isolated = run(0.0, 0.0)
        coupled = run(0.08, 0.01)
        assert np.all(isolated.inlet_c == pytest.approx(24.0))
        assert coupled.inlet_c[-1].mean() > 24.5
        assert coupled.metrics.hot_spot_c > isolated.metrics.hot_spot_c
        # warmer junctions leak more at identical fan speeds
        assert coupled.metrics.energy_kwh > isolated.metrics.energy_kwh

    def test_zero_coupling_equals_constant_ambient_room(self):
        """A zero recirculation matrix must reproduce the isolated-room
        simulator exactly (ConstantAmbient semantics)."""
        fleet = Fleet(
            racks=(Rack(name="r", servers=(default_server_spec(),) * 2),),
            recirculation=np.zeros((2, 2)),
        )
        result = FleetEngine(
            fleet,
            ConstantProfile(100.0, 300.0),
            controller_factory=lambda i: FixedSpeedController(rpm=3300.0),
        ).run(dt_s=1.0)

        sim = ServerSimulator(spec=default_server_spec())
        sim.set_fan_rpm(3300.0)
        for _ in range(300):
            sim.step(1.0, 100.0)
        # a saturating demand pins every server at 100%
        assert result.utilization_pct[-1] == pytest.approx([100.0, 100.0])
        np.testing.assert_allclose(
            result.max_junction_c[-1],
            [sim.state.max_junction_c] * 2,
            rtol=0,
            atol=1e-9,
        )


class TestEngineBehaviour:
    def test_critical_trip_raises(self, single_server_fleet):
        spec = ServerSpec(
            critical_temperature_c=76.0, target_max_temperature_c=70.0
        )
        engine = FleetEngine(
            single_server_fleet(spec),
            ConstantProfile(100.0, 3600.0),
            controller_factory=lambda i: FixedSpeedController(rpm=1800.0),
        )
        with pytest.raises(CriticalTemperatureError):
            engine.run(dt_s=5.0)

    def test_heterogeneous_sockets_need_reference_backend(self):
        mixed = Fleet(
            racks=(
                Rack(
                    name="r0",
                    servers=(
                        default_server_spec(),
                        ServerSpec(sockets=(CpuSocketSpec(name="CPU0"),)),
                    ),
                ),
            )
        )
        profile = ConstantProfile(40.0, 60.0)
        with pytest.raises(ValueError, match="socket count"):
            FleetEngine(mixed, profile).run(dt_s=1.0)
        result = FleetEngine(mixed, profile, backend="reference").run(dt_s=1.0)
        assert result.total_power_w.shape == (60, 2)

    def test_sla_violations_recorded_under_capped_capacity(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        engine = FleetEngine(
            fleet,
            ConstantProfile(90.0, 120.0),
            scheduler=FleetScheduler(CoolestFirstPolicy(), server_cap_pct=60.0),
        )
        result = engine.run(dt_s=2.0)
        # demand 180 (%·servers) vs capped capacity 120 -> 60 unserved/tick
        assert np.all(result.unserved_pct == pytest.approx(60.0))
        m = result.metrics
        assert m.sla_violation_ticks == 60
        assert m.sla_unserved_pct_s == pytest.approx(60.0 * 120.0)

    def test_out_of_range_controller_command_rejected(
        self, single_server_fleet
    ):
        engine = FleetEngine(
            single_server_fleet(),
            ConstantProfile(50.0, 60.0),
            controller_factory=lambda i: FixedSpeedController(rpm=9000.0),
        )
        with pytest.raises(ValueError, match="outside supported range"):
            engine.run(dt_s=1.0)

    def test_workload_size_mismatch_rejected(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        workload = FleetWorkload(ConstantProfile(50.0, 60.0), server_count=3)
        with pytest.raises(ValueError, match="sized for"):
            FleetEngine(fleet, workload)

    def test_unknown_backend_rejected(self, single_server_fleet):
        with pytest.raises(ValueError, match="backend"):
            FleetEngine(
                single_server_fleet(),
                ConstantProfile(50.0, 60.0),
                backend="gpu",
            )

    def test_cold_start_rpm_outside_fan_range_rejected(
        self, single_server_fleet
    ):
        with pytest.raises(ValueError, match="cold_start_rpm"):
            FleetEngine(
                single_server_fleet(),
                ConstantProfile(50.0, 60.0),
                cold_start=True,
                cold_start_rpm=9000.0,
            )

    @pytest.mark.parametrize("backend", ["vector", "reference"])
    def test_cold_start_begins_at_idle_equilibrium(
        self, backend, single_server_fleet
    ):
        """A cold-started fleet begins warm (idle equilibrium at 3600
        RPM), not at the ambient temperature."""
        result = FleetEngine(
            single_server_fleet(),
            ConstantProfile(0.0, 30.0),
            controller_factory=lambda i: FixedSpeedController(rpm=3600.0),
            backend=backend,
            cold_start=True,
        ).run(dt_s=1.0)
        assert result.max_junction_c[0, 0] == pytest.approx(35.0, abs=2.5)

    def test_out_of_range_pstate_command_rejected(
        self, single_server_fleet, dvfs_spec
    ):
        class BadPstateController(FixedSpeedController):
            def decide_pstate(self, observation):
                return 7

        engine = FleetEngine(
            single_server_fleet(dvfs_spec),
            ConstantProfile(50.0, 60.0),
            controller_factory=lambda i: BadPstateController(rpm=3000.0),
        )
        with pytest.raises(ValueError, match="p-state"):
            engine.run(dt_s=1.0)


class TestFleetDvfsAccounting:
    def test_parked_pstate_stretches_and_accrues_deficit(self, dvfs_spec):
        """Servers pinned in the deepest p-state execute stretched
        utilization and accrue the exact ladder deficit when demand
        saturates them."""
        spec = dvfs_spec

        class DeepPark(FixedSpeedController):
            def decide_pstate(self, observation):
                return 3

        fleet = Fleet(racks=(Rack(name="r", servers=(spec, spec)),))
        result = FleetEngine(
            fleet,
            ConstantProfile(40.0, 120.0),  # 80 total: one server at 80%
            # dvfs-aware placement keeps the whole 80% share pinned on
            # server 0 (round-robin would rotate it every tick)
            scheduler=FleetScheduler(DvfsAwarePolicy()),
            controller_factory=lambda i: DeepPark(rpm=3000.0),
        ).run(dt_s=1.0)

        ratio = spec.dvfs.frequency_ratio(3)
        assert np.all(result.pstate_index == 3)
        # 80% demand at f/f_nom ~ 0.606 saturates: executed pins at 100
        assert np.all(result.utilization_pct[:, 0] == 100.0)
        expected_rate = spec.dvfs.work_deficit_pct(80.0, 3)
        np.testing.assert_allclose(
            result.work_deficit_pct[:, 0], expected_rate
        )
        # the idle server is stretched but never saturates
        assert np.all(result.work_deficit_pct[:, 1] == 0.0)
        m = result.metrics
        assert m.dvfs_deficit_pct_s == pytest.approx(expected_rate * 120.0)
        assert m.sla_total_pct_s == pytest.approx(
            m.sla_unserved_pct_s + m.dvfs_deficit_pct_s
        )
        assert m.sla_violation_ticks == 120
        assert sum(r.dvfs_deficit_pct_s for r in m.racks) == pytest.approx(
            m.dvfs_deficit_pct_s
        )
        # sanity: the stretch itself matches the ladder on the idle
        # server given the 0% allocation and ratio on the busy one
        assert ratio < 1.0

    def test_nominal_ladder_keeps_legacy_semantics(self, single_server_fleet):
        """Without a DVFS ladder nothing changes: executed equals the
        demanded allocation, no deficit, p-state 0 everywhere."""
        result = FleetEngine(
            single_server_fleet(),
            ConstantProfile(55.0, 60.0),
            controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
        ).run(dt_s=1.0)
        assert np.all(result.pstate_index == 0)
        assert np.all(result.work_deficit_pct == 0.0)
        assert np.all(result.utilization_pct == 55.0)
        assert result.metrics.dvfs_deficit_pct_s == 0.0


class TestFleetMetrics:
    def test_rack_breakdown_sums_to_fleet(self):
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
        result = FleetEngine(
            fleet,
            ConstantProfile(55.0, 600.0),
            scheduler=FleetScheduler(CoolestFirstPolicy()),
        ).run(dt_s=5.0)
        m = result.metrics
        assert m.energy_kwh == pytest.approx(
            sum(r.energy_kwh for r in m.racks)
        )
        assert m.fan_energy_kwh == pytest.approx(
            sum(r.fan_energy_kwh for r in m.racks)
        )
        assert m.hot_spot_c == max(r.hot_spot_c for r in m.racks)
        # coincident fleet peak can exceed no rack's peak sum mismatch
        assert m.peak_power_w <= sum(r.peak_power_w for r in m.racks) + 1e-9
        assert m.duration_s == pytest.approx(600.0)
        assert m.avg_power_w == pytest.approx(
            m.energy_kwh * 3.6e6 / 600.0
        )
        # fleet inlet mean is server-weighted, not a mean of rack means
        assert m.mean_inlet_c == pytest.approx(float(result.inlet_c.mean()))

    def test_shape_validation(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        good = np.zeros((5, 2))
        with pytest.raises(ValueError, match="traces"):
            compute_fleet_metrics(
                fleet, 1.0, np.zeros((5, 3)), good, good, good, good,
                np.zeros(5),
            )
        with pytest.raises(ValueError, match="dt_s"):
            compute_fleet_metrics(
                fleet, 0.0, good, good, good, good, good, np.zeros(5)
            )

"""Engine tests: vector/reference equivalence, recirculation, metrics."""

import numpy as np
import pytest

from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.pid import PIController
from repro.fleet import (
    CoolestFirstPolicy,
    Fleet,
    FleetEngine,
    FleetScheduler,
    FleetWorkload,
    LeakageAwarePolicy,
    Rack,
    build_uniform_fleet,
    compute_fleet_metrics,
)
from repro.server.server import CriticalTemperatureError, ServerSimulator
from repro.server.specs import CpuSocketSpec, ServerSpec, default_server_spec
from repro.workloads.profile import ConstantProfile, StaircaseProfile


def single_server_fleet(spec=None):
    spec = spec if spec is not None else default_server_spec()
    return Fleet(racks=(Rack(name="r0", servers=(spec,)),))


class TestSingleServerEquivalence:
    def test_vector_engine_matches_server_simulator(self):
        """N=1, no coupling: the batched math must reproduce the
        single-server simulator's trajectory."""
        profile = StaircaseProfile([30.0, 90.0, 10.0], 200.0)
        engine = FleetEngine(
            single_server_fleet(),
            profile,
            controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
        )
        result = engine.run(dt_s=1.0)

        sim = ServerSimulator(spec=default_server_spec())
        sim.set_fan_rpm(3000.0)
        junctions, powers, rpms = [], [], []
        for tick in range(600):
            state = sim.step(1.0, profile.utilization_pct(tick * 1.0))
            junctions.append(state.max_junction_c)
            powers.append(state.power.total_w)
            rpms.append(state.mean_fan_rpm)

        np.testing.assert_allclose(
            result.max_junction_c[:, 0], junctions, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            result.total_power_w[:, 0], powers, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            result.mean_rpm[:, 0], rpms, rtol=0, atol=1e-9
        )

    def test_energy_matches_server_simulator_accumulator(self):
        engine = FleetEngine(
            single_server_fleet(),
            ConstantProfile(70.0, 300.0),
            controller_factory=lambda i: FixedSpeedController(rpm=3300.0),
        )
        result = engine.run(dt_s=1.0)

        sim = ServerSimulator(spec=default_server_spec())
        sim.set_fan_rpm(3300.0)
        for _ in range(300):
            sim.step(1.0, 70.0)
        assert result.metrics.energy_kwh * 3.6e6 == pytest.approx(
            sim.energy_joules, rel=1e-12
        )


class TestBackendEquivalence:
    @pytest.mark.parametrize("policy_cls", [CoolestFirstPolicy, LeakageAwarePolicy])
    def test_vector_matches_reference_with_recirculation(self, policy_cls):
        """4 coupled servers under a closed-loop controller: the numpy
        batch and the naive per-simulator loop must agree."""
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
        profile = StaircaseProfile([20.0, 80.0, 50.0], 120.0)

        def build(backend):
            return FleetEngine(
                fleet,
                profile,
                scheduler=FleetScheduler(policy_cls()),
                controller_factory=lambda i: PIController(),
                backend=backend,
            ).run(dt_s=2.0)

        vec, ref = build("vector"), build("reference")
        np.testing.assert_allclose(
            vec.max_junction_c, ref.max_junction_c, rtol=0, atol=1e-7
        )
        np.testing.assert_allclose(
            vec.total_power_w, ref.total_power_w, rtol=0, atol=1e-6
        )
        np.testing.assert_allclose(
            vec.utilization_pct, ref.utilization_pct, rtol=0, atol=1e-9
        )
        np.testing.assert_allclose(
            vec.inlet_c, ref.inlet_c, rtol=0, atol=1e-9
        )
        assert vec.metrics.energy_kwh == pytest.approx(
            ref.metrics.energy_kwh, rel=1e-9
        )


class TestRecirculation:
    def test_coupling_warms_inlets_and_costs_energy(self):
        profile = ConstantProfile(80.0, 900.0)

        def run(intra, cross):
            fleet = build_uniform_fleet(
                rack_count=2,
                servers_per_rack=2,
                intra_rack_coupling=intra,
                cross_rack_coupling=cross,
            )
            engine = FleetEngine(
                fleet,
                profile,
                controller_factory=lambda i: FixedSpeedController(rpm=2400.0),
            )
            return engine.run(dt_s=5.0)

        isolated = run(0.0, 0.0)
        coupled = run(0.08, 0.01)
        assert np.all(isolated.inlet_c == pytest.approx(24.0))
        assert coupled.inlet_c[-1].mean() > 24.5
        assert coupled.metrics.hot_spot_c > isolated.metrics.hot_spot_c
        # warmer junctions leak more at identical fan speeds
        assert coupled.metrics.energy_kwh > isolated.metrics.energy_kwh

    def test_zero_coupling_equals_constant_ambient_room(self):
        """A zero recirculation matrix must reproduce the isolated-room
        simulator exactly (ConstantAmbient semantics)."""
        fleet = Fleet(
            racks=(Rack(name="r", servers=(default_server_spec(),) * 2),),
            recirculation=np.zeros((2, 2)),
        )
        result = FleetEngine(
            fleet,
            ConstantProfile(100.0, 300.0),
            controller_factory=lambda i: FixedSpeedController(rpm=3300.0),
        ).run(dt_s=1.0)

        sim = ServerSimulator(spec=default_server_spec())
        sim.set_fan_rpm(3300.0)
        for _ in range(300):
            sim.step(1.0, 100.0)
        # a saturating demand pins every server at 100%
        assert result.utilization_pct[-1] == pytest.approx([100.0, 100.0])
        np.testing.assert_allclose(
            result.max_junction_c[-1],
            [sim.state.max_junction_c] * 2,
            rtol=0,
            atol=1e-9,
        )


class TestEngineBehaviour:
    def test_critical_trip_raises(self):
        spec = ServerSpec(
            critical_temperature_c=76.0, target_max_temperature_c=70.0
        )
        engine = FleetEngine(
            single_server_fleet(spec),
            ConstantProfile(100.0, 3600.0),
            controller_factory=lambda i: FixedSpeedController(rpm=1800.0),
        )
        with pytest.raises(CriticalTemperatureError):
            engine.run(dt_s=5.0)

    def test_heterogeneous_sockets_need_reference_backend(self):
        mixed = Fleet(
            racks=(
                Rack(
                    name="r0",
                    servers=(
                        default_server_spec(),
                        ServerSpec(sockets=(CpuSocketSpec(name="CPU0"),)),
                    ),
                ),
            )
        )
        profile = ConstantProfile(40.0, 60.0)
        with pytest.raises(ValueError, match="socket count"):
            FleetEngine(mixed, profile).run(dt_s=1.0)
        result = FleetEngine(mixed, profile, backend="reference").run(dt_s=1.0)
        assert result.total_power_w.shape == (60, 2)

    def test_sla_violations_recorded_under_capped_capacity(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        engine = FleetEngine(
            fleet,
            ConstantProfile(90.0, 120.0),
            scheduler=FleetScheduler(CoolestFirstPolicy(), server_cap_pct=60.0),
        )
        result = engine.run(dt_s=2.0)
        # demand 180 (%·servers) vs capped capacity 120 -> 60 unserved/tick
        assert np.all(result.unserved_pct == pytest.approx(60.0))
        m = result.metrics
        assert m.sla_violation_ticks == 60
        assert m.sla_unserved_pct_s == pytest.approx(60.0 * 120.0)

    def test_out_of_range_controller_command_rejected(self):
        engine = FleetEngine(
            single_server_fleet(),
            ConstantProfile(50.0, 60.0),
            controller_factory=lambda i: FixedSpeedController(rpm=9000.0),
        )
        with pytest.raises(ValueError, match="outside supported range"):
            engine.run(dt_s=1.0)

    def test_workload_size_mismatch_rejected(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        workload = FleetWorkload(ConstantProfile(50.0, 60.0), server_count=3)
        with pytest.raises(ValueError, match="sized for"):
            FleetEngine(fleet, workload)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            FleetEngine(
                single_server_fleet(),
                ConstantProfile(50.0, 60.0),
                backend="gpu",
            )


class TestFleetMetrics:
    def test_rack_breakdown_sums_to_fleet(self):
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
        result = FleetEngine(
            fleet,
            ConstantProfile(55.0, 600.0),
            scheduler=FleetScheduler(CoolestFirstPolicy()),
        ).run(dt_s=5.0)
        m = result.metrics
        assert m.energy_kwh == pytest.approx(
            sum(r.energy_kwh for r in m.racks)
        )
        assert m.fan_energy_kwh == pytest.approx(
            sum(r.fan_energy_kwh for r in m.racks)
        )
        assert m.hot_spot_c == max(r.hot_spot_c for r in m.racks)
        # coincident fleet peak can exceed no rack's peak sum mismatch
        assert m.peak_power_w <= sum(r.peak_power_w for r in m.racks) + 1e-9
        assert m.duration_s == pytest.approx(600.0)
        assert m.avg_power_w == pytest.approx(
            m.energy_kwh * 3.6e6 / 600.0
        )
        # fleet inlet mean is server-weighted, not a mean of rack means
        assert m.mean_inlet_c == pytest.approx(float(result.inlet_c.mean()))

    def test_shape_validation(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        good = np.zeros((5, 2))
        with pytest.raises(ValueError, match="traces"):
            compute_fleet_metrics(
                fleet, 1.0, np.zeros((5, 3)), good, good, good, good,
                np.zeros(5),
            )
        with pytest.raises(ValueError, match="dt_s"):
            compute_fleet_metrics(
                fleet, 0.0, good, good, good, good, good, np.zeros(5)
            )

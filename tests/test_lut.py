"""Unit tests for LUT construction, querying, and serialization."""

import pytest

from repro.core.lut import (
    LookupTable,
    PAPER_FAN_SPEEDS_RPM,
    build_lut_from_characterization,
    build_lut_from_spec,
)


class TestLookupTableQuery:
    def test_rounds_up_to_next_level(self):
        lut = LookupTable(levels_pct=(0.0, 50.0, 100.0), rpms=(1800.0, 2400.0, 3000.0))
        assert lut.query(0.0) == 1800.0
        assert lut.query(10.0) == 2400.0
        assert lut.query(50.0) == 2400.0
        assert lut.query(51.0) == 3000.0

    def test_exact_levels(self):
        lut = LookupTable(levels_pct=(25.0, 75.0), rpms=(1800.0, 2400.0))
        assert lut.query(25.0) == 1800.0
        assert lut.query(75.0) == 2400.0

    def test_above_top_level_uses_last(self):
        lut = LookupTable(levels_pct=(25.0, 75.0), rpms=(1800.0, 2400.0))
        assert lut.query(99.0) == 2400.0

    def test_invalid_utilization_rejected(self):
        lut = LookupTable(levels_pct=(50.0,), rpms=(1800.0,))
        with pytest.raises(ValueError):
            lut.query(101.0)


class TestLookupTableValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(levels_pct=(0.0, 50.0), rpms=(1800.0,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(levels_pct=(), rpms=())

    def test_non_increasing_levels_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(levels_pct=(50.0, 50.0), rpms=(1800.0, 2400.0))

    def test_non_positive_rpm_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(levels_pct=(50.0,), rpms=(0.0,))


class TestSerialization:
    def test_json_roundtrip(self):
        lut = LookupTable(levels_pct=(0.0, 50.0, 100.0), rpms=(1800.0, 1800.0, 2400.0))
        assert LookupTable.from_json(lut.to_json()) == lut

    def test_file_roundtrip(self, tmp_path):
        lut = LookupTable(levels_pct=(0.0, 100.0), rpms=(1800.0, 2400.0))
        path = lut.save(tmp_path / "lut.json")
        assert LookupTable.load(path) == lut

    def test_from_mapping_sorts(self):
        lut = LookupTable.from_mapping({100.0: 2400.0, 0.0: 1800.0})
        assert lut.levels_pct == (0.0, 100.0)

    def test_as_dict(self):
        lut = LookupTable(levels_pct=(0.0, 100.0), rpms=(1800.0, 2400.0))
        assert lut.as_dict() == {0.0: 1800.0, 100.0: 2400.0}


class TestBuildFromCharacterization:
    def test_pipeline_lut_shape(
        self, characterization_samples, fitted_model, fan_model
    ):
        lut, results = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        # One entry per characterized level plus the idle entry.
        assert len(lut) == 9
        assert lut.levels_pct[0] == 0.0
        assert len(results) == 9

    def test_low_utilization_gets_lowest_speed(
        self, characterization_samples, fitted_model, fan_model
    ):
        lut, _ = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        assert lut.query(10.0) == 1800.0

    def test_full_load_gets_2400(
        self, characterization_samples, fitted_model, fan_model
    ):
        lut, _ = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        assert lut.query(100.0) == 2400.0

    def test_monotone_rpm_in_utilization(
        self, characterization_samples, fitted_model, fan_model
    ):
        lut, _ = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        assert list(lut.rpms) == sorted(lut.rpms)

    def test_predicted_temperatures_under_cap(
        self, characterization_samples, fitted_model, fan_model
    ):
        _, results = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        for result in results:
            assert result.predicted_temperature_c <= 75.0
            assert not result.constraint_fallback

    def test_tighter_cap_raises_speeds(
        self, characterization_samples, fitted_model, fan_model
    ):
        loose, _ = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model, max_temperature_c=75.0
        )
        tight, _ = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model, max_temperature_c=65.0
        )
        assert all(t >= l for t, l in zip(tight.rpms, loose.rpms))


class TestBuildFromSpec:
    def test_oracle_lut_agrees_with_data_driven(
        self, spec, characterization_samples, fitted_model, fan_model
    ):
        """With clean characterization, the data-driven LUT must match
        the ground-truth (oracle) LUT on the shared levels."""
        oracle = build_lut_from_spec(spec)
        data_driven, _ = build_lut_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        for level in data_driven.levels_pct:
            assert data_driven.query(level) == oracle.query(level), level

    def test_candidates_respected(self, spec):
        lut = build_lut_from_spec(spec, candidates_rpm=(3000.0, 3600.0))
        assert set(lut.rpms) <= {3000.0, 3600.0}

    def test_paper_speed_set(self, spec):
        lut = build_lut_from_spec(spec)
        assert set(lut.rpms) <= set(PAPER_FAN_SPEEDS_RPM)

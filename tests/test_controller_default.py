"""Unit tests for the default fixed-speed controller."""

import pytest

from repro.core.controllers.base import ControllerObservation
from repro.core.controllers.default import FixedSpeedController


def obs(time_s=0.0, t_max=60.0, util=50.0, rpm=3300.0):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=t_max,
        avg_cpu_temperature_c=t_max - 1.0,
        utilization_pct=util,
        current_rpm_command=rpm,
    )


class TestFixedSpeedController:
    def test_name(self):
        assert FixedSpeedController().name == "Default"

    def test_initial_rpm(self):
        assert FixedSpeedController(rpm=3300.0).initial_rpm() == 3300.0

    def test_holds_when_already_at_speed(self):
        controller = FixedSpeedController(rpm=3300.0)
        assert controller.decide(obs(rpm=3300.0)) is None

    def test_corrects_when_off_speed(self):
        controller = FixedSpeedController(rpm=3300.0)
        assert controller.decide(obs(rpm=1800.0)) == 3300.0

    def test_ignores_temperature_and_utilization(self):
        controller = FixedSpeedController(rpm=3300.0)
        assert controller.decide(obs(t_max=95.0, util=100.0, rpm=3300.0)) is None
        assert controller.decide(obs(t_max=20.0, util=0.0, rpm=3300.0)) is None

    def test_invalid_rpm_rejected(self):
        with pytest.raises(ValueError):
            FixedSpeedController(rpm=0.0)

    def test_invalid_poll_interval_rejected(self):
        with pytest.raises(ValueError):
            FixedSpeedController(poll_interval_s=0.0)

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCharacterize:
    def test_prints_table_and_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "samples.csv"
        assert main(["characterize", "--output", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "P_compute(W)" in captured
        assert out.exists()
        header = out.read_text().splitlines()[0]
        assert header.startswith("utilization_pct,fan_rpm")

    def test_raw_mode_multiplies_rows(self, tmp_path):
        agg = tmp_path / "agg.csv"
        raw = tmp_path / "raw.csv"
        main(["characterize", "--output", str(agg)])
        main(["characterize", "--output", str(raw), "--raw"])
        assert len(raw.read_text().splitlines()) > len(
            agg.read_text().splitlines()
        )


class TestFitAndLut:
    @pytest.fixture(scope="class")
    def samples_csv(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "samples.csv"
        main(["characterize", "--output", str(path)])
        return path

    def test_fit_from_csv(self, samples_csv, capsys):
        assert main(["fit", "--samples", str(samples_csv)]) == 0
        out = capsys.readouterr().out
        assert "k3 =" in out
        assert "RMSE" in out

    def test_lut_build_and_save(self, samples_csv, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        assert (
            main(
                [
                    "lut",
                    "--samples",
                    str(samples_csv),
                    "--output",
                    str(lut_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "leak+fan(W)" in out
        assert lut_path.exists()

    def test_missing_columns_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(SystemExit):
            main(["fit", "--samples", str(bad)])


class TestRun:
    def test_run_lut_controller(self, tmp_path, capsys):
        samples = tmp_path / "s.csv"
        lut = tmp_path / "lut.json"
        main(["characterize", "--output", str(samples)])
        main(["lut", "--samples", str(samples), "--output", str(lut)])
        trace = tmp_path / "trace.csv"
        assert (
            main(
                [
                    "run",
                    "--controller",
                    "lut",
                    "--test",
                    "test3",
                    "--lut",
                    str(lut),
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "energy" in out
        assert trace.exists()
        assert len(trace.read_text().splitlines()) > 4000

    def test_run_default_controller(self, capsys):
        assert main(["run", "--controller", "default", "--test", "test1"]) == 0
        out = capsys.readouterr().out
        assert "fan changes: 0" in out

    def test_unknown_test_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--test", "nope"])


class TestFig:
    @pytest.mark.parametrize("figure", ["1a", "1b", "2a", "2b"])
    def test_figure_charts(self, figure, capsys):
        assert main(["fig", "--figure", figure]) == 0
        out = capsys.readouterr().out
        assert "degC" in out or "temp" in out
        assert "|" in out  # chart frame

    def test_fig2a_reports_minimum(self, capsys):
        main(["fig", "--figure", "2a"])
        out = capsys.readouterr().out
        assert "minimum" in out
        assert "RPM" in out


class TestFleet:
    def test_coordinated_controller_reports_deficit_and_sla(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--controller",
                    "coordinated",
                    "--policy",
                    "dvfs-aware",
                    "--racks",
                    "1",
                    "--servers-per-rack",
                    "2",
                    "--hours",
                    "0.5",
                    "--dt",
                    "60",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "controller Coordinated" in out
        assert "deficit(%s)" in out
        assert "DVFS deficit" in out
        assert "lost work" in out

    def test_fan_only_fleet_still_runs(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--controller",
                    "default",
                    "--racks",
                    "1",
                    "--servers-per-rack",
                    "2",
                    "--hours",
                    "0.5",
                    "--dt",
                    "60",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "SLA" in out
        assert "0.0 pct*s DVFS deficit" in out

    def test_fault_spec_reports_degraded_operation(self, tmp_path, capsys):
        import json

        spec = tmp_path / "faults.json"
        spec.write_text(
            json.dumps(
                [
                    {
                        "kind": "sensor",
                        "server": 0,
                        "mode": "stuck",
                        "value": 30.0,
                        "start_s": 120.0,
                        "end_s": 900.0,
                    },
                    {
                        "kind": "outage",
                        "server": 1,
                        "start_s": 300.0,
                        "end_s": 1500.0,
                    },
                ]
            )
        )
        assert (
            main(
                [
                    "fleet",
                    "--controller",
                    "pi",
                    "--racks",
                    "1",
                    "--servers-per-rack",
                    "2",
                    "--hours",
                    "0.5",
                    "--dt",
                    "60",
                    "--faults",
                    str(spec),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults     : 2 events" in out
        assert "degraded operation" in out
        assert "respilled" in out

    def test_bad_fault_spec_rejected(self, tmp_path):
        spec = tmp_path / "faults.json"
        spec.write_text('[{"kind": "meteor"}]')
        with pytest.raises(SystemExit, match="fault spec"):
            main(["fleet", "--faults", str(spec)])
        with pytest.raises(SystemExit, match="fault spec"):
            main(["fleet", "--faults", str(tmp_path / "missing.json")])


class TestSweep:
    _ARGS = [
        "sweep",
        "--racks", "1",
        "--servers-per-rack", "1,2",
        "--policy", "round-robin",
        "--controller", "default",
        "--crac", "24",
        "--workload", "batch",
        "--hours", "0.25",
        "--dt", "60",
        "--workers", "2",
        "--quiet",
    ]

    def test_cross_product_table_and_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        args = self._ARGS + [
            "--cache-dir", str(tmp_path / "cache"), "--csv", str(csv_path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "E(kWh)" in out and "hotspot(C)" in out
        assert "2 total, 2 executed, 0 cached" in out
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("racks,")
        assert "energy_kwh" in header

    def test_second_invocation_served_from_cache(self, tmp_path, capsys):
        args = self._ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 total, 0 executed, 2 cached" in out

    def test_no_cache_always_executes(self, capsys):
        args = self._ARGS + ["--no-cache"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 executed" in out
        assert "cache      :" not in out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--policy", "warp-drive", "--no-cache"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["fig", "--figure", "9z"])


class TestFleetCheckpoint:
    """Exit-code hygiene: 0 clean, 75 resumable interruption, 1 failure."""

    ARGS = [
        "fleet",
        "--racks", "1",
        "--servers-per-rack", "2",
        "--controller", "pi",
        "--hours", "1",
        "--dt", "60",
    ]

    def test_interrupt_resume_roundtrip(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli
        from repro.engine.checkpoint import EX_TEMPFAIL
        from repro.fleet.engine import FleetEngine

        golden = ["--seed", "3"] + self.ARGS
        assert main(golden) == 0
        golden_out = capsys.readouterr().out

        class StoppingEngine(FleetEngine):
            def _kernel_tick_stream(self, *args, **kwargs):
                stream = super()._kernel_tick_stream(*args, **kwargs)
                for i, item in enumerate(stream):
                    if i == 20:
                        self.request_stop()
                    yield item

        ckpt = tmp_path / "ckpt"
        flags = ["--checkpoint-dir", str(ckpt), "--checkpoint-every", "300"]
        monkeypatch.setattr(cli, "FleetEngine", StoppingEngine)
        assert main(golden + flags) == EX_TEMPFAIL
        captured = capsys.readouterr()
        assert "--resume" in captured.err
        monkeypatch.setattr(cli, "FleetEngine", FleetEngine)

        assert main(golden + flags + ["--resume", str(ckpt)]) == 0
        resumed_out = capsys.readouterr().out
        # The CLI report (energies, hotspot, SLA, power sparkline) of
        # the resumed run matches the uninterrupted one exactly.
        assert resumed_out == golden_out

    def test_mismatched_resume_exits_1(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        flags = ["--checkpoint-dir", str(ckpt), "--checkpoint-every", "900"]
        assert main(self.ARGS + flags) == 0
        capsys.readouterr()
        # Same checkpoint, different grid: refused, unrecoverable.
        other = [a if a != "60" else "30" for a in self.ARGS]
        assert main(other + ["--resume", str(ckpt)]) == 1
        assert "checkpoint" in capsys.readouterr().err

    def test_missing_resume_dir_exits_1(self, tmp_path, capsys):
        missing = tmp_path / "nothing"
        assert main(self.ARGS + ["--resume", str(missing)]) == 1
        assert "checkpoint" in capsys.readouterr().err


class TestServeCheckpointArgs:
    def test_serve_namespace_builds_engine_with_checkpoint(self, tmp_path):
        # serve defines --checkpoint-dir but not --max-restarts; the
        # engine builder must not assume the fleet-only flags exist.
        import repro.cli as cli

        args = cli.build_parser().parse_args(
            [
                "serve",
                "--racks", "1",
                "--servers-per-rack", "2",
                "--hours", "1",
                "--dt", "60",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
            ]
        )
        engine = cli._build_fleet_engine(args, backend="vector")
        assert engine.checkpoint is not None
        assert engine.checkpoint.max_restarts == 2


class TestSweepIsolation:
    def test_failed_point_reported_and_exit_1(self, capsys, monkeypatch):
        import repro.sweep.scenarios as scenarios

        real = scenarios.SCENARIO_KINDS["fleet"]

        def flaky(params):
            if params["policy"] == "coolest-first":
                raise RuntimeError("rigged failure")
            return real(params)

        monkeypatch.setitem(scenarios.SCENARIO_KINDS, "fleet", flaky)
        code = main(
            [
                "sweep",
                "--racks", "1",
                "--servers-per-rack", "2",
                "--policy", "round-robin,coolest-first",
                "--controller", "pi",
                "--hours", "0.5",
                "--dt", "60",
                "--no-cache",
                "--quiet",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED: RuntimeError: rigged failure" in out
        assert "failures   : 1 point(s)" in out
        # the healthy point still produced real numbers
        assert "round-robin" in out

"""Failure-injection integration tests.

What happens to each controller when a thermal sensor lies, and does
the telemetry watchdog catch the lie in time?  These tests close the
loop between :mod:`repro.server.faults`, the controllers, and
:mod:`repro.telemetry.anomaly`.
"""

import numpy as np

from repro.core.controllers.bangbang import BangBangController
from repro.core.controllers.base import ControllerObservation
from repro.core.controllers.lut import LUTController
from repro.core.lut import LookupTable
from repro.server.faults import DriftFault, StuckFault
from repro.server.server import ServerSimulator
from repro.telemetry.anomaly import TelemetryWatchdog
from repro.workloads.loadgen import LoadGen, UtilizationMonitor
from repro.workloads.profile import ConstantProfile


def run_with_fault(controller, fault, sensor_index=0, duration_s=2400.0, util=100.0):
    """Closed loop with a faulted CPU temp sensor; returns (sim, trace)."""
    sim = ServerSimulator(seed=2, initial_fan_rpm=3600.0, trip_on_critical=False)
    sim.settle_to_steady_state(0.0)
    if fault is not None:
        sim.inject_cpu_temp_fault(sensor_index, fault)
    initial = controller.initial_rpm()
    rpm = initial if initial is not None else sim.fans.mean_rpm
    sim.set_fan_rpm(rpm)
    gen = LoadGen(ConstantProfile(util, duration_s), mode="direct")
    monitor = UtilizationMonitor()
    next_poll = 0.0
    temps = []
    time_s = 0.0
    for _ in range(int(duration_s)):
        load = gen.instantaneous_pct(time_s)
        if time_s >= next_poll:
            measured = sim.measured_cpu_temperatures_c()
            observation = ControllerObservation(
                time_s=time_s,
                max_cpu_temperature_c=max(measured),
                avg_cpu_temperature_c=float(np.mean(measured)),
                utilization_pct=monitor.utilization_pct(),
                current_rpm_command=rpm,
            )
            decision = controller.decide(observation)
            if decision is not None:
                rpm = decision
                sim.set_fan_rpm(rpm)
            next_poll += controller.poll_interval_s
        state = sim.step(1.0, load)
        monitor.observe(time_s, state.utilization_pct, 1.0)
        time_s = state.time_s
        temps.append(state.max_junction_c)
    return sim, np.array(temps)


class TestBangBangUnderSensorFaults:
    def test_healthy_baseline_stays_in_band(self):
        _, temps = run_with_fault(BangBangController(), fault=None)
        assert temps.max() <= 80.0

    def test_stuck_low_sensor_on_one_channel_is_survivable(self):
        """One sensor stuck at 30 degC: T_max over the remaining three
        channels still drives the controller, so the machine stays
        within the emergency envelope."""
        _, temps = run_with_fault(
            BangBangController(), StuckFault(30.0), sensor_index=0
        )
        assert temps.max() <= 80.0

    def test_all_sensors_stuck_low_overheats_the_machine(self):
        """If every die sensor freezes at a cold value the bang-bang
        controller drops the fans to minimum under full load — the
        blind-controller scenario motivating telemetry prognostics."""
        controller = BangBangController()
        sim = ServerSimulator(
            seed=2, initial_fan_rpm=3600.0, trip_on_critical=False
        )
        sim.settle_to_steady_state(0.0)
        for index in range(4):
            sim.inject_cpu_temp_fault(index, StuckFault(30.0))
        rpm = 3600.0
        sim.set_fan_rpm(rpm)
        next_poll = 0.0
        time_s = 0.0
        peak = 0.0
        for _ in range(2400):
            if time_s >= next_poll:
                measured = sim.measured_cpu_temperatures_c()
                observation = ControllerObservation(
                    time_s=time_s,
                    max_cpu_temperature_c=max(measured),
                    avg_cpu_temperature_c=float(np.mean(measured)),
                    utilization_pct=100.0,
                    current_rpm_command=rpm,
                )
                decision = controller.decide(observation)
                if decision is not None:
                    rpm = decision
                    sim.set_fan_rpm(rpm)
                next_poll += controller.poll_interval_s
            state = sim.step(1.0, 100.0)
            time_s = state.time_s
            peak = max(peak, state.max_junction_c)
        # Controller saw 30 degC forever -> commanded 1800 RPM -> ~85 degC.
        assert peak > 80.0

    def test_stuck_high_sensor_wastes_fan_power(self):
        """A sensor stuck at 85 degC drives the fans to maximum."""
        sim, _ = run_with_fault(
            BangBangController(), StuckFault(85.0), sensor_index=0, util=10.0
        )
        assert sim.fans.mean_rpm >= 4100.0


class TestLutControllerUnderSensorFaults:
    def test_lut_immune_to_temperature_sensor_faults(self):
        """The LUT controller never reads temperature (paper §V), so a
        lying thermal sensor cannot change its commands."""
        lut = LookupTable(levels_pct=(0.0, 100.0), rpms=(1800.0, 2400.0))
        sim_faulty, temps_faulty = run_with_fault(
            LUTController(lut), StuckFault(30.0), sensor_index=0
        )
        sim_healthy, temps_healthy = run_with_fault(LUTController(lut), None)
        np.testing.assert_allclose(temps_faulty, temps_healthy, atol=1e-9)


class TestWatchdogInTheLoop:
    def _collect_telemetry(self, sim, monitor_util, n, fault=None, onset_sample=0):
        rows = []
        for k in range(n):
            if fault is not None and k == onset_sample:
                sim.inject_cpu_temp_fault(0, fault)
            sim.step(10.0, monitor_util)
            measured = sim.measured_cpu_temperatures_c()
            rows.append(list(measured) + [sim.measured_system_power_w()])
        return np.array(rows)

    def test_watchdog_catches_drifting_die_sensor(self):
        """Train on healthy telemetry at mixed load, then catch a
        0.02 degC/s drift on one die sensor within the run."""
        sim = ServerSimulator(seed=5, initial_fan_rpm=3000.0)
        # Healthy training across the utilization envelope.
        training = []
        for util in (0.0, 25.0, 50.0, 75.0, 100.0):
            sim.settle_to_steady_state(util)
            training.append(self._collect_telemetry(sim, util, 40))
        training = np.vstack(training)
        names = ("cpu0.t0", "cpu0.t1", "cpu1.t0", "cpu1.t1", "power")
        watchdog = TelemetryWatchdog(names, memory_size=80).fit(training)

        # Healthy stream: quiet.
        sim.settle_to_steady_state(50.0)
        healthy = self._collect_telemetry(sim, 50.0, 60)
        for row in healthy:
            watchdog.observe(row)
        assert watchdog.alarmed_channels == []

        # Drift onset: the faulty channel is named first.
        faulty = self._collect_telemetry(
            sim, 50.0, 240, fault=DriftFault(rate_per_s=0.02, start_s=sim.time_s)
        )
        first_alarm = None
        for row in faulty:
            alarmed = watchdog.observe(row)
            if alarmed and first_alarm is None:
                first_alarm = list(alarmed)
        assert first_alarm == ["cpu0.t0"]

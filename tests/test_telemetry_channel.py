"""Unit tests for telemetry channels."""

import numpy as np
import pytest

from repro.telemetry.channel import TelemetryChannel, TelemetrySample


class TestTelemetryChannel:
    def test_empty_channel(self):
        channel = TelemetryChannel("cpu0.temp0", "degC")
        assert len(channel) == 0
        assert channel.latest is None

    def test_append_and_latest(self):
        channel = TelemetryChannel("cpu0.temp0", "degC")
        channel.append(0.0, 50.0)
        channel.append(10.0, 51.0)
        assert len(channel) == 2
        assert channel.latest == TelemetrySample(10.0, 51.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TelemetryChannel("", "degC")

    def test_rejects_time_going_backwards(self):
        channel = TelemetryChannel("p", "W")
        channel.append(10.0, 1.0)
        with pytest.raises(ValueError):
            channel.append(5.0, 2.0)

    def test_ring_buffer_bounds_history(self):
        channel = TelemetryChannel("p", "W", maxlen=10)
        for i in range(100):
            channel.append(float(i), float(i))
        assert len(channel) == 10
        assert channel.values()[0] == 90.0

    def test_series_arrays(self):
        channel = TelemetryChannel("p", "W")
        for i in range(5):
            channel.append(float(i), float(i * 2))
        times, values = channel.as_series()
        np.testing.assert_allclose(times, [0, 1, 2, 3, 4])
        np.testing.assert_allclose(values, [0, 2, 4, 6, 8])

    def test_window_selects_half_open_interval(self):
        channel = TelemetryChannel("p", "W")
        for i in range(10):
            channel.append(float(i), float(i))
        window = channel.window(2.0, 5.0)
        assert [s.time_s for s in window] == [2.0, 3.0, 4.0]

    def test_mean_over_window(self):
        channel = TelemetryChannel("p", "W")
        for i in range(10):
            channel.append(float(i), float(i))
        assert channel.mean_over(0.0, 4.0) == pytest.approx(1.5)

    def test_mean_over_empty_window_raises(self):
        channel = TelemetryChannel("p", "W")
        channel.append(0.0, 1.0)
        with pytest.raises(ValueError):
            channel.mean_over(100.0, 200.0)

    def test_backwards_window_rejected(self):
        channel = TelemetryChannel("p", "W")
        with pytest.raises(ValueError):
            channel.window(5.0, 2.0)

    def test_iteration(self):
        channel = TelemetryChannel("p", "W")
        channel.append(0.0, 1.0)
        channel.append(1.0, 2.0)
        assert [s.value for s in channel] == [1.0, 2.0]

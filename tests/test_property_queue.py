"""Property-based tests on the M/M/c queueing simulator."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.workloads.queuing import MMcQueueSimulator


class TestQueueInvariants:
    @given(
        servers=st.integers(1, 64),
        rho=st.floats(0.05, 0.9),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_utilization_bounded(self, servers, rho, seed):
        sim = MMcQueueSimulator(
            servers=servers,
            arrival_rate_per_s=rho * servers / 2.0,
            mean_service_s=2.0,
            seed=seed,
        )
        _, util, stats = sim.run(duration_s=300.0)
        assert np.all(util >= 0.0)
        assert np.all(util <= 100.0)
        assert 0.0 <= stats.mean_utilization_pct <= 100.0

    @given(
        servers=st.integers(1, 32),
        rho=st.floats(0.05, 0.9),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_job_conservation(self, servers, rho, seed):
        sim = MMcQueueSimulator(
            servers=servers,
            arrival_rate_per_s=rho * servers / 2.0,
            mean_service_s=2.0,
            seed=seed,
        )
        _, _, stats = sim.run(duration_s=300.0)
        assert stats.jobs_completed <= stats.jobs_arrived
        assert stats.mean_busy_threads <= servers
        assert stats.mean_queue_length >= 0.0
        assert stats.mean_wait_s >= 0.0

    @given(target=st.floats(5.0, 90.0), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_long_run_utilization_tracks_target(self, target, seed):
        sim = MMcQueueSimulator.for_target_utilization(
            target, servers=128, seed=seed
        )
        _, _, stats = sim.run(duration_s=1800.0)
        # Within 6 points absolute or 25% relative of the target.
        tolerance = max(6.0, 0.25 * target)
        assert abs(stats.mean_utilization_pct - target) < tolerance

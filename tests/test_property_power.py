"""Property-based tests on the power models (hypothesis)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.models.leakage import ActivePowerModel, FanPowerModel, LeakageModel
from repro.server.power import PowerModel
from repro.server.specs import default_server_spec

utilizations = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
temperatures = st.floats(min_value=20.0, max_value=95.0, allow_nan=False)
rpms = st.floats(min_value=1800.0, max_value=4200.0, allow_nan=False)


@pytest.fixture(scope="module")
def model():
    return PowerModel(default_server_spec())


model_global = PowerModel(default_server_spec())
socket_global = model_global.spec.sockets[0]


class TestGroundTruthPowerProperties:
    @given(u=utilizations)
    def test_active_power_bounded(self, u):
        value = model_global.socket_active_w(socket_global, u)
        idle = socket_global.p_idle_w
        full = idle + socket_global.k_active_w_per_pct * 100.0
        assert idle <= value <= full

    @given(u1=utilizations, u2=utilizations)
    def test_active_power_monotone(self, u1, u2):
        if u1 > u2:
            u1, u2 = u2, u1
        assert model_global.socket_active_w(
            socket_global, u1
        ) <= model_global.socket_active_w(socket_global, u2)

    @given(t1=temperatures, t2=temperatures)
    def test_leakage_monotone_in_temperature(self, t1, t2):
        if t1 > t2:
            t1, t2 = t2, t1
        assert model_global.socket_leakage_w(
            socket_global, t1
        ) <= model_global.socket_leakage_w(socket_global, t2)

    @given(t=temperatures)
    def test_leakage_has_positive_floor(self, t):
        assert model_global.socket_leakage_w(socket_global, t) > (
            socket_global.leak_const_w
        )

    @given(u=utilizations, t1=temperatures, t2=temperatures, fan=st.floats(0.0, 60.0))
    def test_breakdown_total_consistency(self, u, t1, t2, fan):
        b = model_global.breakdown(u, [t1, t2], fan_power_w=fan)
        assert b.total_w == pytest.approx(
            b.board_w + b.memory_w + b.cpu_active_w + b.cpu_leakage_w + b.fan_w
        )
        assert b.total_w > 0

    @given(u=utilizations, t=temperatures)
    def test_current_reconstruction(self, u, t):
        currents = model_global.per_core_current_a(u, [t, t])
        voltage = model_global.core_voltage_v(u)
        total = sum(currents) * voltage
        expected = 2.0 * model_global.socket_heat_w(socket_global, u, t)
        assert total == pytest.approx(expected, rel=1e-9)


class TestAnalyticalModelProperties:
    @given(
        t=temperatures,
        c=st.floats(0.0, 100.0),
        k2=st.floats(0.01, 5.0),
        k3=st.floats(0.001, 0.1),
    )
    def test_leakage_decomposition(self, t, c, k2, k3):
        model = LeakageModel(c_w=c, k2_w=k2, k3_per_c=k3)
        assert model.power_w(t) == pytest.approx(
            c + model.variable_power_w(t), rel=1e-9
        )

    @given(t=temperatures, k2=st.floats(0.01, 5.0), k3=st.floats(0.001, 0.1))
    def test_leakage_slope_positive(self, t, k2, k3):
        model = LeakageModel(c_w=0.0, k2_w=k2, k3_per_c=k3)
        assert model.slope_w_per_c(t) > 0

    @given(u=utilizations, k1=st.floats(0.0, 10.0))
    def test_active_proportionality(self, u, k1):
        model = ActivePowerModel(k1_w_per_pct=k1)
        assert model.power_w(u) == pytest.approx(k1 * u)

    @given(r=rpms, coeff=st.floats(1.0, 200.0), exp=st.floats(1.0, 4.0))
    @settings(max_examples=50)
    def test_fan_power_positive_and_bounded_by_ref(self, r, coeff, exp):
        model = FanPowerModel(coeff_w=coeff, exponent=exp, rpm_ref=4200.0)
        value = model.power_w(r)
        assert 0 < value <= coeff + 1e-9

    @given(r1=rpms, r2=rpms, coeff=st.floats(1.0, 200.0), exp=st.floats(1.0, 4.0))
    @settings(max_examples=50)
    def test_fan_power_monotone(self, r1, r2, coeff, exp):
        model = FanPowerModel(coeff_w=coeff, exponent=exp, rpm_ref=4200.0)
        if r1 > r2:
            r1, r2 = r2, r1
        assert model.power_w(r1) <= model.power_w(r2) + 1e-9

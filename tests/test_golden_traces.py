"""Golden-trace regression suite.

Four small seeded scenarios — a single-server ``run_experiment``, a
4-server coordinated fleet, a compound fault drill, and a 2-shard
sharded-backend drill — are committed as exact-round-trip CSVs under
``tests/golden/``.  Recomputing each
scenario must reproduce its committed trace bit for bit after the CSV
round-trip; any diff means the simulation semantics changed.

If the change is *intentional* (a model fix, a schema extension),
regenerate and commit the traces alongside it::

    PYTHONPATH=src python tests/regen_golden_traces.py

The committed traces are produced on the reference platform (Linux
x86-64 / glibc, the CI runner).  The physics crosses libm ``exp`` /
``pow``, whose last-ulp rounding can differ on other platforms; a
failure that reproduces only off-platform is environment skew, not a
regression — verify on the reference platform before regenerating.
"""

import numpy as np
import pytest

from regen_golden_traces import (
    GOLDEN_BUILDERS,
    GOLDEN_DIR,
    read_golden,
)

REGEN_HINT = (
    "golden trace mismatch — if this change is intentional, regenerate "
    "with:  PYTHONPATH=src python tests/regen_golden_traces.py  and "
    "commit the updated tests/golden/*.csv"
)


@pytest.mark.parametrize("name", sorted(GOLDEN_BUILDERS))
def test_golden_trace_matches(name):
    path = GOLDEN_DIR / name
    if not path.is_file():
        pytest.fail(
            f"missing golden trace {path}; generate it with: "
            "PYTHONPATH=src python tests/regen_golden_traces.py"
        )
    golden = read_golden(path)
    names, columns = GOLDEN_BUILDERS[name]()
    assert list(golden) == names, REGEN_HINT
    for column_name, computed in zip(names, columns):
        # the committed file stores repr(float): parsing returns the
        # exact float64 the builder produced, so equality is exact
        expected = golden[column_name]
        try:
            np.testing.assert_array_equal(
                np.asarray(computed, dtype=float),
                expected,
                err_msg=f"{name}:{column_name}",
            )
        except AssertionError as exc:
            raise AssertionError(f"{exc}\n\n{REGEN_HINT}") from None


def test_golden_traces_are_small_and_complete():
    """Every committed trace has the advertised ~200-row shape."""
    for name in GOLDEN_BUILDERS:
        golden = read_golden(GOLDEN_DIR / name)
        lengths = {len(column) for column in golden.values()}
        assert lengths == {200}, name

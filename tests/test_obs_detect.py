"""Unit tests for the streaming fleet anomaly-detection pipeline."""

import math

import numpy as np
import pytest

from repro.fleet.faults import (
    CracExcursionEvent,
    FaultSchedule,
    SensorFaultEvent,
    ServerOutageEvent,
)
from repro.obs.detect import (
    Alert,
    DetectorConfig,
    StreamingFleetDetector,
    VectorSprt,
    replay_channels,
    score_alerts,
)
from repro.obs.metrics import MetricsRegistry

N = 6
DT = 60.0
#: Per-server operating points with enough power spread for the peer
#: fit (min_peer_spread_w = 20 W).
POWER_W = np.asarray([200.0, 250.0, 300.0, 350.0, 400.0, 450.0])
SLOPE_C_PER_W = 0.04


def healthy_junction():
    return 30.0 + SLOPE_C_PER_W * POWER_W


def make_detector(**overrides):
    cfg = DetectorConfig(**overrides)
    return StreamingFleetDetector(N, DT, config=cfg)


def warm_up(det, ticks=None):
    """Feed steady healthy telemetry through the warm-up window."""
    steps = ticks if ticks is not None else int(det.config.warmup_s / DT) + 2
    t = 0.0
    for _ in range(steps):
        alerts = det.observe_tick(
            t,
            healthy_junction(),
            power_w=POWER_W,
            inlet_c=np.full(N, 24.0),
            utilization_pct=np.full(N, 50.0),
        )
        assert alerts == []
        t += DT
    return t


class TestVectorSprt:
    def test_sustained_shift_alarms_only_shifted_tests(self):
        sprt = VectorSprt(3, sigma=1.0, shift=4.0)
        alarmed_at = None
        for k in range(50):
            mask = sprt.update(np.asarray([0.0, 6.0, 0.0]))
            if mask[1] and alarmed_at is None:
                alarmed_at = k
            assert not mask[0] and not mask[2]
        assert alarmed_at is not None and alarmed_at <= 3

    def test_zero_mean_noise_never_alarms(self):
        sprt = VectorSprt(2, sigma=1.0, shift=8.0)
        rng = np.random.default_rng(7)
        for _ in range(5000):
            assert not sprt.update(rng.normal(0.0, 1.0, 2)).any()

    def test_non_finite_residual_alarms_immediately(self):
        sprt = VectorSprt(2, sigma=1.0, shift=4.0)
        mask = sprt.update(np.asarray([0.0, math.nan]))
        assert mask.tolist() == [False, True]

    def test_alarm_resets_statistic(self):
        sprt = VectorSprt(1, sigma=1.0, shift=4.0)
        while not sprt.update(np.asarray([6.0]))[0]:
            pass
        assert sprt.statistic[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorSprt(0, sigma=1.0, shift=1.0)
        with pytest.raises(ValueError):
            VectorSprt(1, sigma=0.0, shift=1.0)
        with pytest.raises(ValueError):
            VectorSprt(1, sigma=1.0, shift=1.0, false_alarm=0.0)


class TestStreamingFleetDetector:
    def test_healthy_fleet_never_alerts(self):
        det = make_detector()
        t = warm_up(det)
        rng = np.random.default_rng(11)
        for _ in range(300):
            alerts = det.observe_tick(
                t,
                healthy_junction() + rng.normal(0.0, 0.3, N),
                power_w=POWER_W,
                inlet_c=np.full(N, 24.0) + rng.normal(0.0, 0.1, N),
                utilization_pct=np.full(N, 50.0),
            )
            assert alerts == []
            t += DT
        assert det.alerts == []

    def test_junction_step_fault_detected_on_right_server(self):
        det = make_detector()
        t = warm_up(det)
        onset = t
        detected = None
        for _ in range(60):
            obs = healthy_junction()
            obs[2] += 12.0  # a lying sensor, way past the 5 degC dead zone
            alerts = det.observe_tick(
                t, obs, power_w=POWER_W,
                inlet_c=np.full(N, 24.0),
                utilization_pct=np.full(N, 50.0),
            )
            if alerts:
                detected = (t - onset, alerts)
                break
            t += DT
        assert detected is not None
        ttd, alerts = detected
        assert [a.server for a in alerts] == [2]
        assert alerts[0].channel == "junction"
        assert ttd <= 15 * DT

    def test_sensor_dropout_alarms_immediately(self):
        det = make_detector()
        t = warm_up(det)
        obs = healthy_junction()
        obs[4] = math.nan
        alerts = det.observe_tick(
            t, obs, power_w=POWER_W,
            inlet_c=np.full(N, 24.0),
            utilization_pct=np.full(N, 50.0),
        )
        assert [a.server for a in alerts] == [4]

    def test_alert_latched_not_repeated(self):
        det = make_detector()
        t = warm_up(det)
        total = 0
        for _ in range(30):
            obs = healthy_junction()
            obs[2] += 12.0
            total += len(det.observe_tick(
                t, obs, power_w=POWER_W,
                inlet_c=np.full(N, 24.0),
                utilization_pct=np.full(N, 50.0),
            ))
            t += DT
        assert total == 1

    def test_inlet_excursion_detected(self):
        det = make_detector()
        t = warm_up(det)
        alerts = []
        for _ in range(30):
            inlet = np.full(N, 24.0)
            inlet[1] += 4.0
            alerts += det.observe_tick(
                t, healthy_junction(), power_w=POWER_W,
                inlet_c=inlet, utilization_pct=np.full(N, 50.0),
            )
            if alerts:
                break
            t += DT
        assert alerts and alerts[0].server == 1
        assert alerts[0].channel == "inlet"

    def test_availability_alert_after_hold(self):
        det = make_detector()
        t = warm_up(det)
        hold_ticks = int(det.config.availability_hold_s / DT)
        util = np.full(N, 50.0)
        util[3] = 0.0
        alerts = []
        ticks = 0
        while not alerts:
            alerts = det.observe_tick(
                t, healthy_junction(), power_w=POWER_W,
                inlet_c=np.full(N, 24.0), utilization_pct=util,
            )
            # the idle server must not raise a junction/inlet alert
            assert all(a.channel == "availability" for a in alerts)
            t += DT
            ticks += 1
            assert ticks <= hold_ticks + 2
        assert alerts[0].server == 3
        assert ticks == hold_ticks

    def test_short_idle_is_not_an_outage(self):
        det = make_detector()
        t = warm_up(det)
        hold_ticks = int(det.config.availability_hold_s / DT)
        for k in range(hold_ticks * 3):
            util = np.full(N, 50.0)
            # idles long but always one tick short of the hold
            if k % hold_ticks != 0:
                util[3] = 0.0
            assert det.observe_tick(
                t, healthy_junction(), power_w=POWER_W,
                inlet_c=np.full(N, 24.0), utilization_pct=util,
            ) == []
            t += DT

    def test_fleetwide_idle_is_not_an_outage(self):
        # A coordinated idle period (batch gap) zeroes every server;
        # with no serving peers the availability monitor must hold.
        det = make_detector()
        t = warm_up(det)
        for _ in range(60):
            assert det.observe_tick(
                t, healthy_junction(), power_w=POWER_W,
                inlet_c=np.full(N, 24.0),
                utilization_pct=np.zeros(N),
            ) == []
            t += DT

    def test_metrics_counters(self):
        reg = MetricsRegistry()
        det = StreamingFleetDetector(N, DT, metrics=reg)
        t = warm_up(det)
        obs = healthy_junction()
        obs[0] = math.nan
        det.observe_tick(t, obs, power_w=POWER_W)
        assert reg.counter("repro_detector_alerts_total").value == 1
        assert reg.counter("repro_detector_ticks_total").value > 0

    def test_sigma_floors_applied(self):
        det = make_detector()
        warm_up(det)
        assert det.ready
        assert det.sigma_junction_c >= det.config.sigma_floor_junction_c
        assert det.sigma_inlet_c >= det.config.sigma_floor_inlet_c

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(warmup_s=-1.0)
        with pytest.raises(ValueError):
            DetectorConfig(shift_sigmas=0.0)
        with pytest.raises(ValueError):
            StreamingFleetDetector(0, DT)
        with pytest.raises(ValueError):
            StreamingFleetDetector(N, 0.0)


class TestScoring:
    def _alert(self, t, server, channel="junction"):
        return Alert(time_s=t, server=server, channel=channel, residual=9.0)

    def test_scores_ttd_and_recall(self):
        schedule = FaultSchedule(events=(
            SensorFaultEvent(
                server=2, mode="stuck", value=30.0, start_s=1000.0, end_s=5000.0
            ),
            ServerOutageEvent(server=4, start_s=2000.0, end_s=6000.0),
        ))
        alerts = [
            self._alert(1300.0, 2),
            self._alert(2900.0, 4, "availability"),
            self._alert(100.0, 0),  # before any event: false positive
        ]
        report = score_alerts(alerts, schedule, N, horizon_s=8000.0)
        assert report.detected_count == 2
        by_kind = {o.kind: o for o in report.outcomes}
        assert by_kind["sensor"].time_to_detect_s == 300.0
        assert by_kind["outage"].time_to_detect_s == 900.0
        assert by_kind["outage"].alert_channel == "availability"
        assert report.recall_by_kind == {"sensor": 1.0, "outage": 1.0}
        assert len(report.false_positives) == 1
        assert report.false_positives[0].server == 0
        assert report.false_positive_rate_per_server_hour > 0

    def test_crac_event_expands_by_rack(self):
        schedule = FaultSchedule(events=(
            CracExcursionEvent(delta_c=4.0, rack=1, start_s=1000.0, end_s=2000.0),
        ))
        rack_of = [0, 0, 0, 1, 1, 1]
        report = score_alerts(
            [self._alert(1100.0, 4, "inlet")],
            schedule, N, horizon_s=4000.0, rack_of=rack_of,
        )
        outcome = report.outcomes[0]
        assert outcome.servers == (3, 4, 5)
        assert outcome.detected
        assert outcome.time_to_detect_s == 100.0

    def test_undetected_event_has_nan_ttd(self):
        schedule = FaultSchedule(events=(
            ServerOutageEvent(server=1, start_s=1000.0, end_s=2000.0),
        ))
        report = score_alerts([], schedule, N, horizon_s=4000.0)
        outcome = report.outcomes[0]
        assert not outcome.detected
        assert math.isnan(outcome.time_to_detect_s)
        assert report.recall_by_kind == {"outage": 0.0}

    def test_report_round_trips_to_dict(self):
        schedule = FaultSchedule(events=(
            ServerOutageEvent(server=1, start_s=1000.0, end_s=2000.0),
        ))
        report = score_alerts(
            [self._alert(1500.0, 1)], schedule, N, horizon_s=4000.0
        )
        payload = report.to_dict()
        assert payload["outcomes"][0]["detected"] is True
        assert payload["alert_count"] == 1


class TestReplay:
    def test_replay_matches_streaming(self):
        steps = 120
        times = DT * np.arange(1, steps + 1)
        junction = np.tile(healthy_junction(), (steps, 1))
        junction[60:, 2] += 12.0
        power = np.tile(POWER_W, (steps, 1))
        inlet = np.full((steps, N), 24.0)
        util = np.full((steps, N), 50.0)

        detector = replay_channels(
            times, junction, power_w=power, inlet_c=inlet,
            utilization_pct=util,
        )
        assert [a.server for a in detector.alerts] == [2]
        assert detector.alerts[0].channel == "junction"

    def test_replay_accepts_transposed_layout(self):
        steps = 80
        times = DT * np.arange(1, steps + 1)
        junction = np.tile(healthy_junction(), (steps, 1))
        det_a = replay_channels(times, junction, power_w=np.tile(POWER_W, (steps, 1)))
        det_b = replay_channels(
            times, junction.T, power_w=np.tile(POWER_W, (steps, 1)).T
        )
        assert det_a.alerts == det_b.alerts == []

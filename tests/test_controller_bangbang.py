"""Unit tests for the bang-bang controller's five-way action table."""

import pytest

from repro.core.controllers.bangbang import BangBangController, BangBangThresholds
from repro.core.controllers.base import ControllerObservation


def obs(t_max, rpm=3000.0, time_s=0.0):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=t_max,
        avg_cpu_temperature_c=t_max - 1.0,
        utilization_pct=50.0,
        current_rpm_command=rpm,
    )


@pytest.fixture
def controller():
    return BangBangController()


class TestActionTable:
    def test_cold_sets_minimum(self, controller):
        """(i) T < 60: lowest speed."""
        assert controller.decide(obs(55.0, rpm=3000.0)) == 1800.0

    def test_cool_band_steps_down(self, controller):
        """(ii) 60 <= T < 65: lower by 600 RPM."""
        assert controller.decide(obs(62.0, rpm=3000.0)) == 2400.0

    def test_desirable_band_holds(self, controller):
        """(iii) 65 <= T <= 75: no action."""
        assert controller.decide(obs(70.0, rpm=3000.0)) is None
        assert controller.decide(obs(65.0, rpm=3000.0)) is None
        assert controller.decide(obs(75.0, rpm=3000.0)) is None

    def test_hot_band_steps_up(self, controller):
        """(iv) 75 < T <= 80: raise by 600 RPM."""
        assert controller.decide(obs(77.0, rpm=3000.0)) == 3600.0

    def test_emergency_jumps_to_max(self, controller):
        """(v) T > 80: straight to 4200 RPM."""
        assert controller.decide(obs(81.0, rpm=1800.0)) == 4200.0

    def test_step_down_clamps_at_minimum(self, controller):
        assert controller.decide(obs(62.0, rpm=1800.0)) is None

    def test_step_up_clamps_at_maximum(self, controller):
        assert controller.decide(obs(77.0, rpm=4200.0)) is None

    def test_cold_at_minimum_already(self, controller):
        assert controller.decide(obs(50.0, rpm=1800.0)) is None


class TestThresholds:
    def test_default_paper_values(self):
        th = BangBangThresholds()
        assert (th.release_c, th.lower_band_c, th.upper_band_c, th.emergency_c) == (
            60.0,
            65.0,
            75.0,
            80.0,
        )

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            BangBangThresholds(release_c=70.0, lower_band_c=65.0)

    def test_custom_band(self):
        controller = BangBangController(
            thresholds=BangBangThresholds(
                release_c=55.0, lower_band_c=70.0, upper_band_c=75.0, emergency_c=80.0
            )
        )
        # 65 degC is now inside the step-down band.
        assert controller.decide(obs(65.0, rpm=3000.0)) == 2400.0


class TestValidation:
    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            BangBangController(step_rpm=0.0)

    def test_inverted_speed_range_rejected(self):
        with pytest.raises(ValueError):
            BangBangController(min_rpm=4200.0, max_rpm=1800.0)

    def test_poll_interval_is_csth_rate(self):
        assert BangBangController().poll_interval_s == 10.0

    def test_name(self):
        assert BangBangController().name == "Bang-bang"

"""Unit tests for Table I metrics."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    ExperimentMetrics,
    compute_metrics,
    count_command_changes,
    energy_kwh,
    net_savings_pct,
)


class TestEnergy:
    def test_constant_power(self):
        times = np.arange(0.0, 3601.0, 1.0)
        power = np.full_like(times, 1000.0)
        assert energy_kwh(times, power) == pytest.approx(1.0)

    def test_triangular_power(self):
        times = np.array([0.0, 3600.0])
        power = np.array([0.0, 2000.0])
        assert energy_kwh(times, power) == pytest.approx(1.0)

    def test_paper_magnitude(self):
        """An 80-minute run at ~500 W is ~0.67 kWh (Table I scale)."""
        times = np.arange(0.0, 4801.0, 1.0)
        power = np.full_like(times, 502.0)
        assert energy_kwh(times, power) == pytest.approx(0.6693, abs=0.001)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            energy_kwh([0.0, 1.0], [1.0])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            energy_kwh([1.0, 0.0], [1.0, 1.0])


class TestCommandChanges:
    def test_constant_command(self):
        assert count_command_changes([3300.0] * 100) == 0

    def test_counts_distinct_transitions(self):
        commands = [1800.0] * 10 + [2400.0] * 10 + [1800.0] * 10
        assert count_command_changes(commands) == 2

    def test_short_series(self):
        assert count_command_changes([3300.0]) == 0


class TestComputeMetrics:
    def _metrics(self, static_idle_w=256.0):
        times = np.arange(0.0, 101.0, 1.0)
        power = np.full_like(times, 500.0)
        temps = np.concatenate([np.full(50, 60.0), np.full(51, 72.5)])
        commands = np.concatenate([np.full(60, 1800.0), np.full(41, 2400.0)])
        rpms = commands.copy()
        util = np.full_like(times, 40.0)
        return compute_metrics(times, power, temps, commands, rpms, util, static_idle_w)

    def test_all_fields(self):
        m = self._metrics()
        assert m.peak_power_w == 500.0
        assert m.max_temperature_c == 72.5
        assert m.fan_speed_changes == 1
        assert m.avg_utilization_pct == 40.0
        assert m.duration_s == 100.0

    def test_net_energy_subtracts_idle(self):
        m = self._metrics(static_idle_w=256.0)
        expected_net = (500.0 - 256.0) * 100.0 / 3.6e6
        assert m.net_energy_kwh == pytest.approx(expected_net)

    def test_avg_power(self):
        m = self._metrics()
        assert m.avg_power_w == pytest.approx(500.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError):
            self._metrics(static_idle_w=-1.0)


class TestNetSavings:
    def _m(self, net):
        return ExperimentMetrics(
            energy_kwh=net + 0.3,
            net_energy_kwh=net,
            peak_power_w=700.0,
            max_temperature_c=70.0,
            fan_speed_changes=0,
            avg_rpm=3300.0,
            avg_utilization_pct=50.0,
            duration_s=4800.0,
        )

    def test_positive_saving(self):
        assert net_savings_pct(self._m(0.34), self._m(0.31)) == pytest.approx(
            100.0 * 0.03 / 0.34
        )

    def test_zero_saving(self):
        assert net_savings_pct(self._m(0.34), self._m(0.34)) == 0.0

    def test_negative_saving_possible(self):
        assert net_savings_pct(self._m(0.34), self._m(0.40)) < 0.0

    def test_non_positive_baseline_rejected(self):
        with pytest.raises(ValueError):
            net_savings_pct(self._m(0.0), self._m(0.1))

"""Unit tests for ASCII reporting primitives."""

import numpy as np
import pytest

from repro.reporting import ascii_chart, format_table, sparkline


class TestAsciiChart:
    def _series(self):
        x = np.linspace(0.0, 10.0, 50)
        return {"up": (x, x), "down": (x, 10.0 - x)}

    def test_contains_legend_and_labels(self):
        chart = ascii_chart(self._series(), xlabel="time", ylabel="degC")
        assert "o=up" in chart
        assert "x=down" in chart
        assert "[degC]" in chart
        assert "time" in chart

    def test_axis_bounds_printed(self):
        chart = ascii_chart(self._series())
        assert "10.0" in chart
        assert "0.0" in chart

    def test_line_count_matches_height(self):
        chart = ascii_chart(self._series(), height=12, ylabel="y")
        # height rows + ylabel + axis + footer + legend.
        assert len(chart.splitlines()) == 12 + 4

    def test_markers_placed(self):
        chart = ascii_chart({"only": (np.array([0.0, 1.0]), np.array([0.0, 1.0]))})
        assert chart.count("o") >= 2

    def test_constant_series_handled(self):
        chart = ascii_chart({"flat": (np.array([0.0, 1.0]), np.array([5.0, 5.0]))})
        assert "o" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"e": (np.array([]), np.array([]))})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"bad": (np.array([1.0]), np.array([1.0, 2.0]))})

    def test_too_many_series_rejected(self):
        x = np.array([0.0, 1.0])
        series = {f"s{i}": (x, x) for i in range(9)}
        with pytest.raises(ValueError):
            ascii_chart(series)

    def test_tiny_chart_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(self._series(), width=5)


class TestSparkline:
    def test_length(self):
        assert len(sparkline(np.arange(100.0), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_ramp_ends_high(self):
        line = sparkline(np.arange(50.0))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_constant_is_flat(self):
        assert set(sparkline([5.0] * 10)) == {" "}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(
            ["scheme", "energy"],
            [["Default", 0.6889], ["LUT", 0.6675]],
        )
        lines = table.splitlines()
        assert lines[0].startswith("scheme")
        assert set(lines[1]) == {"-"}
        assert "Default" in lines[2]

    def test_numeric_right_alignment(self):
        table = format_table(["name", "v"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        # Numbers align on the right edge.
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_custom_alignment(self):
        table = format_table(["aaa", "b"], [["x", "y"]], align="><")
        # First column right-aligned: the short cell gets leading pad.
        assert table.splitlines()[2].startswith("  x")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_bad_align_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x"]], align="^")

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

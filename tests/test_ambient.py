"""Unit tests for ambient temperature models."""

import math

import pytest

from repro.server.ambient import ConstantAmbient, SinusoidalAmbient


class TestConstantAmbient:
    def test_paper_default(self):
        assert ConstantAmbient().temperature_c(0.0) == 24.0

    def test_time_invariant(self):
        ambient = ConstantAmbient(22.0)
        assert ambient.temperature_c(0.0) == ambient.temperature_c(1e6)

    def test_unphysical_rejected(self):
        with pytest.raises(ValueError):
            ConstantAmbient(-300.0)


class TestSinusoidalAmbient:
    def test_mean_at_zero_phase(self):
        ambient = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=3600.0)
        assert ambient.temperature_c(0.0) == pytest.approx(24.0)

    def test_peak_at_quarter_period(self):
        ambient = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=3600.0)
        assert ambient.temperature_c(900.0) == pytest.approx(26.0)

    def test_periodicity(self):
        ambient = SinusoidalAmbient(period_s=600.0)
        assert ambient.temperature_c(123.0) == pytest.approx(
            ambient.temperature_c(123.0 + 600.0)
        )

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalAmbient(period_s=0.0)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalAmbient(amplitude_c=-1.0)


class TestSinusoidalEdgeCases:
    """Boundary behaviour the fleet's CRAC supply models rely on."""

    def test_phase_shift_moves_the_peak_to_t_zero(self):
        ambient = SinusoidalAmbient(
            mean_c=24.0, amplitude_c=2.0, period_s=3600.0,
            phase_rad=math.pi / 2.0,
        )
        assert ambient.temperature_c(0.0) == pytest.approx(26.0)

    def test_full_phase_wrap_is_identity(self):
        base = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=600.0)
        wrapped = SinusoidalAmbient(
            mean_c=24.0, amplitude_c=2.0, period_s=600.0,
            phase_rad=2.0 * math.pi,
        )
        for t in (0.0, 37.0, 599.0):
            assert wrapped.temperature_c(t) == pytest.approx(
                base.temperature_c(t)
            )

    def test_period_boundary_continuity(self):
        ambient = SinusoidalAmbient(period_s=600.0, amplitude_c=3.0)
        eps = 1e-6
        assert ambient.temperature_c(600.0 - eps) == pytest.approx(
            ambient.temperature_c(600.0 + eps), abs=1e-3
        )

    def test_negative_time_extrapolates_the_sinusoid(self):
        ambient = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=600.0)
        assert ambient.temperature_c(-150.0) == pytest.approx(22.0)

    def test_zero_amplitude_is_constant(self):
        ambient = SinusoidalAmbient(mean_c=25.0, amplitude_c=0.0)
        constant = ConstantAmbient(25.0)
        for t in (0.0, 123.0, 1e5):
            assert ambient.temperature_c(t) == constant.temperature_c(t)

    def test_values_bounded_by_amplitude(self):
        ambient = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=60.0)
        for t in range(0, 180, 7):
            assert 22.0 <= ambient.temperature_c(float(t)) <= 26.0

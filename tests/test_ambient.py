"""Unit tests for ambient temperature models."""

import pytest

from repro.server.ambient import ConstantAmbient, SinusoidalAmbient


class TestConstantAmbient:
    def test_paper_default(self):
        assert ConstantAmbient().temperature_c(0.0) == 24.0

    def test_time_invariant(self):
        ambient = ConstantAmbient(22.0)
        assert ambient.temperature_c(0.0) == ambient.temperature_c(1e6)

    def test_unphysical_rejected(self):
        with pytest.raises(ValueError):
            ConstantAmbient(-300.0)


class TestSinusoidalAmbient:
    def test_mean_at_zero_phase(self):
        ambient = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=3600.0)
        assert ambient.temperature_c(0.0) == pytest.approx(24.0)

    def test_peak_at_quarter_period(self):
        ambient = SinusoidalAmbient(mean_c=24.0, amplitude_c=2.0, period_s=3600.0)
        assert ambient.temperature_c(900.0) == pytest.approx(26.0)

    def test_periodicity(self):
        ambient = SinusoidalAmbient(period_s=600.0)
        assert ambient.temperature_c(123.0) == pytest.approx(
            ambient.temperature_c(123.0 + 600.0)
        )

    def test_negative_period_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalAmbient(period_s=0.0)

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalAmbient(amplitude_c=-1.0)

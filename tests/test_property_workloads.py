"""Property-based tests on profiles, LoadGen, and the monitor."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.workloads.loadgen import LoadGen, UtilizationMonitor
from repro.workloads.profile import (
    CompositeProfile,
    ConstantProfile,
    RampProfile,
    SquareWaveProfile,
    StaircaseProfile,
)

levels = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)


class TestProfileRangeInvariant:
    @given(level=levels, t=times)
    def test_constant_in_range(self, level, t):
        assert 0.0 <= ConstantProfile(level, 100.0).utilization_pct(t) <= 100.0

    @given(
        points=st.lists(levels, min_size=2, max_size=8),
        t=times,
    )
    def test_ramp_in_range(self, points, t):
        profile = RampProfile(
            [(60.0 * i, u) for i, u in enumerate(points)]
        )
        assert 0.0 <= profile.utilization_pct(t) <= 100.0

    @given(
        step_levels=st.lists(levels, min_size=1, max_size=20),
        t=times,
    )
    def test_staircase_values_from_input_set(self, step_levels, t):
        profile = StaircaseProfile(step_levels, step_duration_s=60.0)
        assert profile.utilization_pct(t) in step_levels

    @given(high=levels, low=levels, duty=st.floats(0.0, 1.0), t=times)
    def test_square_wave_two_valued(self, high, low, duty, t):
        profile = SquareWaveProfile(high, low, period_s=120.0, duty=duty)
        assert profile.utilization_pct(t) in (high, low)

    @given(segments=st.lists(levels, min_size=1, max_size=5), t=times)
    def test_composite_in_range(self, segments, t):
        profile = CompositeProfile(
            [ConstantProfile(u, 60.0) for u in segments]
        )
        assert profile.utilization_pct(t) in segments


class TestLoadGenProperties:
    @given(level=levels)
    @settings(max_examples=40, deadline=None)
    def test_pwm_mean_equals_target(self, level):
        gen = LoadGen(ConstantProfile(level, 1e6), pwm_period_s=30.0)
        grid = np.arange(0.0, 3000.0, 0.25)
        mean = np.mean([gen.instantaneous_pct(t) for t in grid])
        assert abs(mean - level) < 1.0

    @given(level=levels, t=times)
    def test_pwm_output_binary(self, level, t):
        gen = LoadGen(ConstantProfile(level, 1e6), pwm_period_s=30.0)
        assert gen.instantaneous_pct(t) in (0.0, 100.0)

    @given(level=levels, t=times)
    def test_direct_mode_identity(self, level, t):
        gen = LoadGen(ConstantProfile(level, 1e6), mode="direct")
        assert gen.instantaneous_pct(t) == level


class TestMonitorProperties:
    @given(
        samples=st.lists(levels, min_size=1, max_size=200),
        window=st.floats(1.0, 120.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_within_observed_range(self, samples, window):
        monitor = UtilizationMonitor(window_s=window)
        for i, u in enumerate(samples):
            monitor.observe(float(i), u, 1.0)
        estimate = monitor.utilization_pct()
        assert 0.0 <= estimate <= 100.0
        recent = samples[-int(np.ceil(window)) :]
        assert min(recent) - 1e-6 <= estimate <= max(recent) + 1e-6

    @given(level=levels, n=st.integers(2, 100))
    def test_constant_stream_is_identity(self, level, n):
        monitor = UtilizationMonitor(window_s=30.0)
        for i in range(n):
            monitor.observe(float(i), level, 1.0)
        assert abs(monitor.utilization_pct() - level) < 1e-6

    @given(samples=st.lists(levels, min_size=1, max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_no_drift_from_running_integral(self, samples):
        """The incremental integral matches a from-scratch average."""
        window = 10.0
        monitor = UtilizationMonitor(window_s=window)
        for i, u in enumerate(samples):
            monitor.observe(float(i), u, 1.0)
        expected = np.mean(samples[-10:]) if len(samples) >= 10 else np.mean(samples)
        assert abs(monitor.utilization_pct() - expected) < 1e-6

"""Unit tests for the closed-loop experiment runner."""

import numpy as np
import pytest

from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.lut import LUTController
from repro.experiments.runner import (
    ExperimentConfig,
    TRACE_COLUMNS,
    run_experiment,
)
from repro.workloads.profile import ConstantProfile, StaircaseProfile


class TestRunnerBasics:
    def test_trace_schema(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(50.0, 120.0)
        )
        assert result.recorder.columns == TRACE_COLUMNS
        assert len(result.recorder) == 120

    def test_time_axis(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(50.0, 60.0)
        )
        times = result.column("time_s")
        assert times[0] == 1.0
        assert times[-1] == 60.0
        assert np.all(np.diff(times) == 1.0)

    def test_controller_initial_rpm_applied(self):
        result = run_experiment(
            FixedSpeedController(2400.0), ConstantProfile(0.0, 60.0)
        )
        # After slew, all fans run the controller's speed.
        assert result.column("mean_rpm")[-1] == pytest.approx(2400.0)

    def test_starts_from_cold_state(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(0.0, 30.0)
        )
        assert result.column("max_junction_c")[0] == pytest.approx(35.0, abs=2.5)

    def test_metrics_attached(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(50.0, 120.0)
        )
        assert result.metrics.duration_s == pytest.approx(119.0)
        assert result.metrics.energy_kwh > 0.0

    def test_too_short_profile_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(
                FixedSpeedController(3300.0), ConstantProfile(50.0, 0.1)
            )

    def test_seeded_runs_reproduce(self):
        config = ExperimentConfig(seed=5)
        a = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(50.0, 60.0), config=config
        )
        b = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(50.0, 60.0), config=config
        )
        np.testing.assert_array_equal(
            a.column("measured_max_cpu_c"), b.column("measured_max_cpu_c")
        )

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dt_s=0.0)


class TestLoadSynthesis:
    def test_pwm_mode_produces_binary_instantaneous(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(40.0, 300.0)
        )
        values = np.unique(result.column("instantaneous_util_pct"))
        assert set(values) <= {0.0, 100.0}

    def test_direct_mode_passthrough(self):
        config = ExperimentConfig(loadgen_mode="direct")
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(40.0, 60.0), config=config
        )
        assert np.all(result.column("instantaneous_util_pct") == 40.0)

    def test_monitor_converges_to_target(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(40.0, 300.0)
        )
        assert result.column("monitored_util_pct")[-1] == pytest.approx(40.0, abs=3.0)


class TestClosedLoopBehaviour:
    def test_lut_controller_tracks_load_steps(self, paper_lut):
        profile = StaircaseProfile([10.0, 100.0, 10.0], step_duration_s=600.0)
        result = run_experiment(LUTController(paper_lut), profile)
        commands = result.column("rpm_command")
        # Low phase at 1800, high phase raised to the 100% entry.
        assert commands[100] == 1800.0
        assert commands[1100] == paper_lut.query(100.0)
        assert commands[-1] == 1800.0

    def test_fan_change_count_matches_commands(self, paper_lut):
        profile = StaircaseProfile([10.0, 100.0, 10.0], step_duration_s=600.0)
        result = run_experiment(LUTController(paper_lut), profile)
        assert result.metrics.fan_speed_changes == 2

    def test_protocol_phases_extend_duration(self):
        config = ExperimentConfig(apply_protocol_phases=True)
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(50.0, 600.0), config=config
        )
        assert result.column("time_s")[-1] == pytest.approx(300.0 + 600.0 + 600.0)

    def test_power_trace_is_positive_and_bounded(self):
        result = run_experiment(
            FixedSpeedController(3300.0), ConstantProfile(100.0, 600.0)
        )
        power = result.column("power_total_w")
        assert np.all(power > 250.0)
        assert np.all(power < 800.0)

"""Property-based closed-loop safety invariants.

Whatever workload is thrown at them, the shipped controllers must keep
the default-spec server out of the critical region and inside their
design envelopes.  Hypothesis generates arbitrary staircase workloads;
each runs a shortened closed loop.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.controllers.bangbang import BangBangController
from repro.core.controllers.lut import LUTController
from repro.core.lut import build_lut_from_spec
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.server.specs import default_server_spec
from repro.workloads.profile import StaircaseProfile

SPEC = default_server_spec()
LUT = build_lut_from_spec(SPEC)

workloads = st.lists(
    st.sampled_from([0.0, 10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0]),
    min_size=2,
    max_size=6,
)


def run_short(controller, levels, seed):
    profile = StaircaseProfile(levels, step_duration_s=240.0)
    return run_experiment(
        controller,
        profile,
        spec=SPEC,
        config=ExperimentConfig(seed=seed),
    )


class TestLutSafety:
    @given(levels=workloads, seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_never_critical_and_mostly_in_envelope(self, levels, seed):
        result = run_short(LUTController(LUT), levels, seed)
        # Critical threshold (90 degC) is never approached.
        assert result.metrics.max_temperature_c < 85.0
        # The steady-state envelope (75 degC) may be transiently
        # exceeded only marginally during lockout windows.
        assert result.metrics.max_temperature_c <= 77.0

    @given(levels=workloads, seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_commands_stay_on_ladder(self, levels, seed):
        result = run_short(LUTController(LUT), levels, seed)
        commands = set(result.column("rpm_command"))
        assert commands <= set(LUT.rpms)


class TestBangBangSafety:
    @given(levels=workloads, seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_never_past_emergency_envelope(self, levels, seed):
        result = run_short(BangBangController(), levels, seed)
        # The emergency action (4200 RPM above 80 degC) bounds every
        # workload's excursion well below critical.
        assert result.metrics.max_temperature_c < 85.0

    @given(levels=workloads, seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_commands_within_actuator_range(self, levels, seed):
        result = run_short(BangBangController(), levels, seed)
        commands = result.column("rpm_command")
        assert commands.min() >= 1800.0
        assert commands.max() <= 4200.0

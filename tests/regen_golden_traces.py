#!/usr/bin/env python3
"""Build (or rebuild) the golden reference traces in ``tests/golden/``.

Each golden trace is a small seeded run committed as CSV; the
regression suite (``tests/test_golden_traces.py``) recomputes the same
scenarios and asserts exact (bit-for-bit after round-trip) equality.
Floats are written with ``repr`` — the shortest exact round-trip form
— so parsing a file reproduces the original float64 values exactly.

Regenerate after an *intentional* model or schema change::

    PYTHONPATH=src python tests/regen_golden_traces.py

and commit the updated CSVs together with the change that explains
them.  A diff you cannot explain is a regression, not a reason to
regenerate.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path
from typing import Dict, List, Tuple

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

if __name__ == "__main__":  # standalone: put src/ on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

Table = Tuple[List[str], List[np.ndarray]]


# ----------------------------------------------------------------------
# scenario builders (everything seeded, nothing expensive)
# ----------------------------------------------------------------------
def golden_run_experiment() -> Table:
    """Single-server closed loop: bang-bang on a 200 s staircase."""
    from repro.core.controllers.bangbang import BangBangController
    from repro.experiments.runner import (
        ExperimentConfig,
        TRACE_COLUMNS,
        run_experiment,
    )
    from repro.workloads.profile import StaircaseProfile

    result = run_experiment(
        BangBangController(),
        StaircaseProfile([25.0, 75.0, 100.0, 40.0], 50.0),
        config=ExperimentConfig(dt_s=1.0, seed=11),
    )
    names = list(TRACE_COLUMNS)
    return names, [np.asarray(result.column(name)) for name in names]


def _fleet_table(result) -> Table:
    """Flatten a FleetResult into per-server golden columns."""
    names: List[str] = ["time_s", "unserved_pct", "respilled_pct", "fault_unserved_pct"]
    columns: List[np.ndarray] = [
        result.times_s,
        result.unserved_pct,
        result.respilled_pct,
        result.fault_unserved_pct,
    ]
    per_server = (
        "total_power_w",
        "fan_power_w",
        "max_junction_c",
        "utilization_pct",
        "inlet_c",
        "mean_rpm",
        "pstate_index",
        "work_deficit_pct",
        "fault_active",
    )
    server_count = result.total_power_w.shape[1]
    for name in per_server:
        trace = np.asarray(getattr(result, name), dtype=float)
        for server in range(server_count):
            names.append(f"{name}_s{server}")
            columns.append(trace[:, server])
    return names, columns


def golden_fleet_coordinated() -> Table:
    """4 coupled servers under coordinated fan+DVFS control, 200 ticks."""
    from dataclasses import replace

    from repro.core.controllers.coordinated import CoordinatedController
    from repro.core.lut import build_lut_from_spec
    from repro.fleet import (
        FleetEngine,
        FleetScheduler,
        PLACEMENT_POLICIES,
        build_uniform_fleet,
    )
    from repro.server.dvfs import default_dvfs_ladder
    from repro.server.specs import default_server_spec
    from repro.workloads.profile import StaircaseProfile

    spec = replace(default_server_spec(), dvfs=default_dvfs_ladder())
    lut = build_lut_from_spec(spec)
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2, spec=spec)
    result = FleetEngine(
        fleet,
        StaircaseProfile([20.0, 70.0, 95.0, 40.0], 100.0),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["dvfs-aware"]()),
        controller_factory=lambda i: CoordinatedController(lut, spec.dvfs),
    ).run(dt_s=2.0)
    return _fleet_table(result)


def golden_fleet_fault_drill() -> Table:
    """The compound fault drill on a 2x2 fleet, 200 ticks.

    Sensor stuck-low + fan derate + one-server outage + CRAC
    excursion — the degraded-operation scenario family PR 5 opened.
    """
    from repro.core.controllers.pid import PIController
    from repro.fleet import (
        CracExcursionEvent,
        FanDegradationEvent,
        FaultSchedule,
        FleetEngine,
        FleetScheduler,
        PLACEMENT_POLICIES,
        SensorFaultEvent,
        ServerOutageEvent,
        build_uniform_fleet,
    )
    from repro.workloads.profile import StaircaseProfile

    schedule = FaultSchedule(
        events=(
            SensorFaultEvent(
                server=0, mode="stuck", value=30.0, start_s=60.0, end_s=260.0
            ),
            FanDegradationEvent(server=1, rpm_factor=0.6, start_s=120.0),
            ServerOutageEvent(server=3, start_s=100.0, end_s=300.0),
            CracExcursionEvent(delta_c=3.0, rack=1, start_s=40.0, end_s=200.0),
        )
    )
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
    result = FleetEngine(
        fleet,
        StaircaseProfile([30.0, 85.0, 55.0, 70.0], 100.0),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["coolest-first"]()),
        controller_factory=lambda i: PIController(),
        faults=schedule,
    ).run(dt_s=2.0)
    return _fleet_table(result)


def golden_fleet_sharded() -> Table:
    """2-shard sharded backend on a faulted 2x2 fleet, 200 ticks.

    Leakage-aware placement + bang-bang control (distinct from the
    other fleet goldens), with a mid-run outage whose respilled work
    crosses the shard boundary — pins the sharded coordinator/worker
    exchange and the streamed-trace reassembly to an exact CSV surface.
    """
    from repro.core.controllers.bangbang import BangBangController
    from repro.fleet import (
        FaultSchedule,
        FleetEngine,
        FleetScheduler,
        PLACEMENT_POLICIES,
        ServerOutageEvent,
        build_uniform_fleet,
    )
    from repro.workloads.profile import StaircaseProfile

    schedule = FaultSchedule(
        events=(ServerOutageEvent(server=1, start_s=120.0, end_s=280.0),)
    )
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
    result = FleetEngine(
        fleet,
        StaircaseProfile([35.0, 90.0, 65.0, 80.0], 100.0),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["leakage-aware"]()),
        controller_factory=lambda i: BangBangController(),
        faults=schedule,
        backend="sharded",
        shards=2,
        shard_mode="inline",
        stream_chunk_ticks=32,
    ).run(dt_s=2.0)
    return _fleet_table(result)


def golden_facility() -> Table:
    """Facility composition over a queue-driven 2x2 fleet, 200 ticks.

    Diurnal job arrivals feed the queue-driven workload; the fleet's
    IT power is composed through the cooling plant, UPS/PDU chain, and
    diurnal carbon model — pinning the whole facility surface (return
    temperature, COP, chain losses, per-tick carbon) to an exact CSV.
    """
    from repro.core.controllers.pid import PIController
    from repro.facility import (
        CoolingPlant,
        FacilityEngine,
        PowerChain,
        build_diurnal_carbon_model,
        build_job_queue,
    )
    from repro.fleet import (
        FleetEngine,
        FleetScheduler,
        PLACEMENT_POLICIES,
        build_uniform_fleet,
    )

    duration_s = 200 * 60.0
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
    queue = build_job_queue(
        "diurnal",
        fleet.server_count,
        duration_s=duration_s,
        seed=5,
        jobs_per_hour=9.0,
    )
    engine = FleetEngine(
        fleet,
        queue,
        scheduler=FleetScheduler(PLACEMENT_POLICIES["coolest-first"]()),
        controller_factory=lambda i: PIController(),
    )
    result = FacilityEngine(
        engine,
        cooling=CoolingPlant(),
        power=PowerChain(rated_power_w=fleet.server_count * 600.0),
        carbon=build_diurnal_carbon_model(duration_s=duration_s),
    ).run(dt_s=60.0)
    names = [
        "time_s",
        "it_power_w",
        "cooling_power_w",
        "utility_power_w",
        "return_c",
        "carbon_kg",
    ]
    columns = [
        result.times_s,
        result.fleet.total_power_w.sum(axis=1),
        result.cooling_power_w,
        result.utility_power_w,
        result.return_c,
        result.carbon_kg,
    ]
    return names, columns


#: Golden file name → builder.
GOLDEN_BUILDERS = {
    "run_experiment.csv": golden_run_experiment,
    "fleet_coordinated.csv": golden_fleet_coordinated,
    "fleet_fault_drill.csv": golden_fleet_fault_drill,
    "fleet_sharded.csv": golden_fleet_sharded,
    "facility.csv": golden_facility,
}


# ----------------------------------------------------------------------
# exact-round-trip CSV I/O
# ----------------------------------------------------------------------
def write_golden(path: Path, table: Table) -> None:
    """Write columns to *path* with exact-round-trip float formatting."""
    names, columns = table
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in zip(*columns):
            writer.writerow([repr(float(value)) for value in row])


def read_golden(path: Path) -> Dict[str, np.ndarray]:
    """Parse a golden CSV back into exact float64 columns."""
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        names = next(reader)
        rows = [[float(value) for value in row] for row in reader]
    data = np.asarray(rows)
    return {name: data[:, k] for k, name in enumerate(names)}


def main() -> int:
    """Rebuild every golden trace under ``tests/golden/``."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, builder in GOLDEN_BUILDERS.items():
        table = builder()
        write_golden(GOLDEN_DIR / name, table)
        rows = len(table[1][0])
        print(f"wrote {GOLDEN_DIR / name} ({rows} rows x {len(table[0])} cols)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Property-based tests on LUT querying and the analysis helpers."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.lut import LookupTable
from repro.telemetry.analysis import (
    count_thermal_cycles,
    count_threshold_crossings,
    max_overshoot,
    rolling_mean,
    summarize,
)

utilizations = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def lookup_tables(draw):
    n = draw(st.integers(1, 8))
    levels = sorted(
        draw(
            st.lists(
                st.floats(0.0, 100.0),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    rpms = draw(
        st.lists(
            st.sampled_from([1800.0, 2400.0, 3000.0, 3600.0, 4200.0]),
            min_size=n,
            max_size=n,
        )
    )
    return LookupTable(levels_pct=tuple(levels), rpms=tuple(rpms))


class TestLutProperties:
    @given(lut=lookup_tables(), u=utilizations)
    def test_query_returns_table_speed(self, lut, u):
        assert lut.query(u) in lut.rpms

    @given(lut=lookup_tables(), u=utilizations)
    def test_query_rounds_up(self, lut, u):
        """The selected entry's level is the smallest level >= u, unless
        u is above every level (then the last entry)."""
        rpm = lut.query(u)
        candidates = [l for l in lut.levels_pct if l >= u - 1e-9]
        if candidates:
            expected = lut.rpms[lut.levels_pct.index(candidates[0])]
            assert rpm == expected
        else:
            assert rpm == lut.rpms[-1]

    @given(lut=lookup_tables())
    def test_json_roundtrip(self, lut):
        assert LookupTable.from_json(lut.to_json()) == lut

    @given(lut=lookup_tables(), u1=utilizations, u2=utilizations)
    def test_monotone_tables_give_monotone_queries(self, lut, u1, u2):
        if list(lut.rpms) != sorted(lut.rpms):
            return  # only meaningful for monotone tables
        if u1 > u2:
            u1, u2 = u2, u1
        assert lut.query(u1) <= lut.query(u2)


series_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestAnalysisProperties:
    @given(values=series_strategy)
    def test_summary_bounds(self, values):
        s = summarize(values)
        # Epsilon absorbs float rounding of np.mean on constant series.
        eps = 1e-9
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.peak_to_peak >= 0.0
        assert s.count == len(values)

    @given(values=series_strategy, threshold=st.floats(0.0, 100.0))
    def test_overshoot_non_negative(self, values, threshold):
        assert max_overshoot(values, threshold) >= 0.0

    @given(values=series_strategy, threshold=st.floats(0.0, 100.0))
    def test_crossings_bounded_by_length(self, values, threshold):
        assert 0 <= count_threshold_crossings(values, threshold) <= len(values) // 2 + 1

    @given(values=series_strategy, amplitude=st.floats(0.5, 50.0))
    def test_cycles_bounded(self, values, amplitude):
        cycles = count_thermal_cycles(values, amplitude_c=amplitude)
        assert 0 <= cycles <= len(values)

    @given(values=series_strategy, window=st.floats(0.5, 50.0))
    @settings(max_examples=50)
    def test_rolling_mean_within_range(self, values, window):
        times = np.arange(float(len(values)))
        out = rolling_mean(times, values, window_s=window)
        assert np.all(out >= np.min(values) - 1e-9)
        assert np.all(out <= np.max(values) + 1e-9)

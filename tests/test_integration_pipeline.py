"""Integration tests: the full offline pipeline, end to end.

characterize -> fit power model -> fit fan model -> build LUT ->
run closed-loop experiments -> compute Table I metrics.
"""

import numpy as np
import pytest

from repro import (
    ExperimentConfig,
    LUTController,
    build_lut_from_characterization,
    fit_fan_power_model,
    fit_power_model,
    net_savings_pct,
    paper_controllers,
    run_characterization_steady,
    run_experiment,
)
from repro.workloads.profile import StaircaseProfile
from repro.workloads.tests import build_test3_random_steps


class TestOfflinePipeline:
    def test_pipeline_from_scratch(self, spec):
        samples = run_characterization_steady(spec=spec, seed=99)
        fitted = fit_power_model(samples)
        fan_model = fit_fan_power_model(
            [s.fan_rpm for s in samples], [s.fan_power_w for s in samples]
        )
        lut, results = build_lut_from_characterization(samples, fitted, fan_model)

        # The pipeline reproduces the paper's qualitative conclusions.
        assert lut.query(10.0) == 1800.0
        assert lut.query(100.0) == 2400.0
        assert all(r.predicted_temperature_c <= 75.0 for r in results)
        assert fitted.quality.accuracy_pct > 98.0

    def test_lut_is_seed_stable(self, spec):
        """Different telemetry noise realizations give the same LUT."""
        luts = []
        for seed in (1, 2, 3):
            samples = run_characterization_steady(spec=spec, seed=seed)
            fitted = fit_power_model(samples)
            fan_model = fit_fan_power_model(
                [s.fan_rpm for s in samples], [s.fan_power_w for s in samples]
            )
            lut, _ = build_lut_from_characterization(samples, fitted, fan_model)
            luts.append(lut)
        assert luts[0] == luts[1] == luts[2]


class TestClosedLoopEnergyOrdering:
    @pytest.fixture(scope="class")
    def test3_results(self, paper_lut, spec):
        profile = build_test3_random_steps(seed=1234)
        config = ExperimentConfig(seed=0)
        return {
            c.name: run_experiment(c, profile, spec=spec, config=config)
            for c in paper_controllers(lut=paper_lut, spec=spec)
        }

    def test_both_controllers_beat_default(self, test3_results):
        base = test3_results["Default"].metrics
        for scheme in ("Bang-bang", "LUT"):
            assert net_savings_pct(base, test3_results[scheme].metrics) > 0.0

    def test_lut_is_best(self, test3_results):
        base = test3_results["Default"].metrics
        lut_saving = net_savings_pct(base, test3_results["LUT"].metrics)
        bang_saving = net_savings_pct(base, test3_results["Bang-bang"].metrics)
        assert lut_saving >= bang_saving

    def test_savings_in_paper_band(self, test3_results):
        """Table I net savings fall in the 0-10% band."""
        base = test3_results["Default"].metrics
        for scheme in ("Bang-bang", "LUT"):
            saving = net_savings_pct(base, test3_results[scheme].metrics)
            assert 0.0 < saving < 12.0

    def test_lut_has_lowest_peak_power(self, test3_results):
        peaks = {k: v.metrics.peak_power_w for k, v in test3_results.items()}
        assert peaks["LUT"] == min(peaks.values())

    def test_lut_respects_reliability_ceiling(self, test3_results):
        assert test3_results["LUT"].metrics.max_temperature_c <= 75.5

    def test_default_never_changes_fans(self, test3_results):
        assert test3_results["Default"].metrics.fan_speed_changes == 0
        assert test3_results["Default"].metrics.avg_rpm == pytest.approx(
            3300.0, abs=5.0
        )

    def test_adaptive_schemes_run_slower_fans(self, test3_results):
        for scheme in ("Bang-bang", "LUT"):
            assert test3_results[scheme].metrics.avg_rpm < 2600.0

    def test_fan_changes_bounded(self, test3_results):
        """Both adaptive controllers keep fan changes modest (Table I
        reports at most 14 over 80 minutes)."""
        for scheme in ("Bang-bang", "LUT"):
            assert test3_results[scheme].metrics.fan_speed_changes <= 20


class TestProactivity:
    def test_lut_reacts_before_temperature_rises(self, paper_lut, spec):
        """On a 10 -> 100% load step the LUT controller must change fan
        speed while the junction is still far below the bang-bang
        trigger band — the proactive property the paper highlights."""
        profile = StaircaseProfile([10.0, 100.0], step_duration_s=900.0)
        result = run_experiment(
            LUTController(paper_lut), profile, spec=spec, config=ExperimentConfig(seed=3)
        )
        commands = result.column("rpm_command")
        temps = result.column("max_junction_c")
        times = result.column("time_s")
        change_indices = np.nonzero(np.diff(commands))[0]
        assert len(change_indices) >= 1
        first_change = change_indices[0]
        # Change happens within ~90 s of the step at t=900...
        assert 900.0 <= times[first_change] <= 990.0
        # ...while the CPU is still below the 75 degC trigger.
        assert temps[first_change] < 75.0

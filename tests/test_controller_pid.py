"""Unit tests for the PI temperature-tracking extension."""

import pytest

from repro.core.controllers.base import ControllerObservation
from repro.core.controllers.pid import PIController


def obs(time_s, t_max, rpm=1800.0):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=t_max,
        avg_cpu_temperature_c=t_max - 1.0,
        utilization_pct=50.0,
        current_rpm_command=rpm,
    )


class TestPIController:
    def test_hot_raises_speed(self):
        controller = PIController(target_c=70.0)
        command = controller.decide(obs(0.0, 80.0, rpm=1800.0))
        assert command is not None and command > 1800.0

    def test_cold_stays_at_minimum(self):
        controller = PIController(target_c=70.0)
        assert controller.decide(obs(0.0, 40.0, rpm=1800.0)) is None

    def test_command_clamped_to_range(self):
        controller = PIController(target_c=70.0, kp_rpm_per_c=1000.0)
        command = controller.decide(obs(0.0, 85.0, rpm=1800.0))
        assert command == 4200.0

    def test_deadband_suppresses_small_moves(self):
        controller = PIController(target_c=70.0, kp_rpm_per_c=10.0, ki_rpm_per_c_s=0.0)
        # Error of 1 degC -> 10 RPM demand, inside the 60 RPM deadband.
        assert controller.decide(obs(0.0, 71.0, rpm=1810.0)) is None

    def test_integral_accumulates(self):
        controller = PIController(
            target_c=70.0, kp_rpm_per_c=0.0, ki_rpm_per_c_s=5.0, deadband_rpm=0.0
        )
        first = controller.decide(obs(10.0, 75.0, rpm=1800.0))
        second = controller.decide(obs(20.0, 75.0, rpm=first))
        assert second is not None and second > first

    def test_anti_windup_bounds_integral(self):
        controller = PIController(
            target_c=70.0, kp_rpm_per_c=0.0, ki_rpm_per_c_s=100.0, deadband_rpm=0.0
        )
        for k in range(100):
            controller.decide(obs(10.0 * k, 85.0, rpm=4200.0))
        # After sustained saturation, one cool observation must be able
        # to bring the command back down within a bounded time.
        commands = []
        for k in range(100, 160):
            command = controller.decide(obs(10.0 * k, 40.0, rpm=4200.0))
            if command is not None:
                commands.append(command)
        assert commands and min(commands) == 1800.0

    def test_reset_clears_state(self):
        controller = PIController(
            target_c=70.0, kp_rpm_per_c=0.0, ki_rpm_per_c_s=5.0, deadband_rpm=0.0
        )
        a = controller.decide(obs(10.0, 75.0, rpm=1800.0))
        controller.reset()
        b = controller.decide(obs(10.0, 75.0, rpm=1800.0))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            PIController(min_rpm=4200.0, max_rpm=1800.0)
        with pytest.raises(ValueError):
            PIController(kp_rpm_per_c=-1.0)
        with pytest.raises(ValueError):
            PIController(poll_interval_s=0.0)
        with pytest.raises(ValueError):
            PIController(deadband_rpm=-1.0)

    def test_name(self):
        assert PIController().name == "PI"

"""Unit tests for characterization sweeps."""

import numpy as np
import pytest

from repro.experiments.characterization import (
    run_characterization_steady,
    run_characterization_transient,
    run_constant_load_experiment,
    steady_sample_from_transient,
)


class TestSteadyCharacterization:
    def test_grid_coverage(self):
        samples = run_characterization_steady(
            utilizations_pct=(25.0, 100.0), fan_rpms=(1800.0, 4200.0)
        )
        keys = {(s.utilization_pct, s.fan_rpm) for s in samples}
        assert keys == {
            (25.0, 1800.0),
            (25.0, 4200.0),
            (100.0, 1800.0),
            (100.0, 4200.0),
        }

    def test_raw_mode_multiplies_samples(self):
        aggregated = run_characterization_steady(
            utilizations_pct=(50.0,), fan_rpms=(3000.0,), telemetry_samples=10
        )
        raw = run_characterization_steady(
            utilizations_pct=(50.0,),
            fan_rpms=(3000.0,),
            telemetry_samples=10,
            aggregate=False,
        )
        assert len(aggregated) == 1
        assert len(raw) == 10

    def test_temperatures_ordered_by_fan_speed(self):
        samples = run_characterization_steady(
            utilizations_pct=(100.0,), fan_rpms=(1800.0, 3000.0, 4200.0)
        )
        by_rpm = {s.fan_rpm: s.avg_cpu_temperature_c for s in samples}
        assert by_rpm[1800.0] > by_rpm[3000.0] > by_rpm[4200.0]

    def test_compute_power_excludes_fan(self):
        samples = run_characterization_steady(
            utilizations_pct=(100.0,), fan_rpms=(4200.0,)
        )
        s = samples[0]
        # Fan power at max speed is ~55 W and must not be in compute power.
        assert s.fan_power_w == pytest.approx(55.0, abs=3.0)
        assert s.compute_power_w < 720.0

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            run_characterization_steady(telemetry_samples=0)


class TestTransientCharacterization:
    def test_constant_load_run_has_protocol_phases(self):
        result = run_constant_load_experiment(
            100.0, 2400.0, load_duration_s=300.0
        )
        times = result.column("time_s")
        assert times[-1] == pytest.approx(300.0 + 300.0 + 600.0)
        target = result.column("target_util_pct")
        assert target[0] == 0.0  # idle head
        assert target[-1] == 0.0  # idle tail

    def test_sample_extraction_from_transient(self):
        result = run_constant_load_experiment(
            100.0, 2400.0, load_duration_s=1200.0
        )
        sample = steady_sample_from_transient(
            result, 100.0, 2400.0, averaging_window_s=300.0
        )
        # The last minutes of the load phase sit near equilibrium.
        assert sample.avg_cpu_temperature_c == pytest.approx(72.9, abs=2.5)
        assert sample.fan_power_w == pytest.approx(10.3, abs=2.0)

    def test_transient_sweep_small_grid(self):
        runs = run_characterization_transient(
            utilizations_pct=(100.0,),
            fan_rpms=(2400.0,),
            load_duration_s=900.0,
        )
        assert len(runs) == 1
        run = runs[0]
        assert run.sample.utilization_pct == 100.0
        temps = run.result.column("cpu0_junction_c")
        # Temperature rises during load, falls during the idle tail.
        assert np.max(temps) > temps[0] + 20.0
        assert temps[-1] < np.max(temps) - 10.0

    def test_bad_averaging_window_rejected(self):
        result = run_constant_load_experiment(50.0, 3000.0, load_duration_s=300.0)
        with pytest.raises(ValueError):
            steady_sample_from_transient(
                result, 50.0, 3000.0, averaging_window_s=0.0
            )

"""Property-based fault-semantics invariants.

Hypothesis generates arbitrary fault schedules — any mix of sensor
faults, fan derates, outages and CRAC excursions with arbitrary
windows — and each runs a short fleet scenario.  Whatever the
schedule:

* every physical trace stays finite (dropouts corrupt *observations*,
  never power or temperature),
* outage servers execute exactly zero utilization while down,
* the kernelized ``vector`` loop stays bit-identical to the
  ``vector-legacy`` oracle,
* an empty schedule is bit-identical to a run without one.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.fleet import (
    CoolestFirstPolicy,
    CracExcursionEvent,
    FanDegradationEvent,
    FaultSchedule,
    FleetEngine,
    FleetScheduler,
    SensorFaultEvent,
    ServerOutageEvent,
    build_uniform_fleet,
)
from repro.core.controllers.pid import PIController
from repro.workloads.profile import StaircaseProfile

#: Run horizon: 60 ticks x 5 s (two poll intervals of slack at the end).
DURATION_S = 300.0
DT_S = 5.0
STEPS = int(DURATION_S / DT_S)
SERVERS = 3

FLEET = build_uniform_fleet(rack_count=1, servers_per_rack=SERVERS)

PHYSICAL_TRACES = (
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "work_deficit_pct",
)

windows = st.tuples(
    st.sampled_from([0.0, 20.0, 55.0, 110.0, 220.0]),
    st.sampled_from([10.0, 45.0, 130.0, 400.0]),
).map(lambda pair: (pair[0], pair[0] + pair[1]))

servers = st.integers(0, SERVERS - 1)

sensor_events = st.builds(
    lambda server, window, mode, value, seed: SensorFaultEvent(
        server=server,
        mode=mode,
        value=value,
        seed=seed,
        start_s=window[0],
        end_s=window[1],
    ),
    servers,
    windows,
    st.sampled_from(["stuck", "drift", "offset", "spike", "dropout"]),
    st.sampled_from([-40.0, -5.0, 0.05, 8.0, 30.0, 120.0]),
    st.integers(0, 3),
)
fan_events = st.builds(
    lambda server, window, factor: FanDegradationEvent(
        server=server, rpm_factor=factor, start_s=window[0], end_s=window[1]
    ),
    servers,
    windows,
    st.sampled_from([0.35, 0.6, 0.85, 1.0]),
)
outage_events = st.builds(
    lambda server, window: ServerOutageEvent(
        server=server, start_s=window[0], end_s=window[1]
    ),
    servers,
    windows,
)
crac_events = st.builds(
    lambda window, delta, whole_room: CracExcursionEvent(
        delta_c=delta,
        rack=None if whole_room else 0,
        start_s=window[0],
        end_s=window[1],
    ),
    windows,
    st.sampled_from([-4.0, -1.5, 2.0, 5.0]),
    st.booleans(),
)

schedules = st.lists(
    st.one_of(sensor_events, fan_events, outage_events, crac_events),
    min_size=0,
    max_size=5,
).map(lambda events: FaultSchedule(events=tuple(events)))


def run_fleet(backend, faults):
    return FleetEngine(
        FLEET,
        StaircaseProfile([35.0, 80.0, 55.0], 100.0),
        scheduler=FleetScheduler(CoolestFirstPolicy()),
        controller_factory=lambda i: PIController(),
        backend=backend,
        faults=faults,
        # extreme schedules (hot CRAC + blinded controller + derated
        # fans) may legitimately overheat; the invariants under test
        # are about trace sanity, not thermal safety
        trip_on_critical=False,
    ).run(dt_s=DT_S)


class TestRandomSchedules:
    @given(schedule=schedules)
    @settings(max_examples=20, deadline=None)
    def test_traces_stay_finite(self, schedule):
        result = run_fleet("vector", schedule)
        for name in PHYSICAL_TRACES:
            assert np.isfinite(getattr(result, name)).all(), name
        assert np.isfinite(result.unserved_pct).all()
        assert np.isfinite(result.respilled_pct).all()
        assert np.isfinite(result.fault_unserved_pct).all()

    @given(schedule=schedules)
    @settings(max_examples=20, deadline=None)
    def test_outage_servers_execute_zero_utilization(self, schedule):
        result = run_fleet("vector", schedule)
        plan = schedule.compile(FLEET, STEPS, DT_S)
        if plan is None or not plan.outage.any():
            return
        assert np.all(result.utilization_pct[plan.outage] == 0.0)
        # and their lost share is non-negative bookkeeping
        assert np.all(result.respilled_pct >= 0.0)
        assert np.all(result.fault_unserved_pct >= 0.0)

    @given(schedule=schedules)
    @settings(max_examples=10, deadline=None)
    def test_vector_bit_identical_to_legacy(self, schedule):
        vector = run_fleet("vector", schedule)
        legacy = run_fleet("vector-legacy", schedule)
        for name in PHYSICAL_TRACES + (
            "unserved_pct",
            "pstate_index",
            "fault_active",
            "respilled_pct",
            "fault_unserved_pct",
        ):
            np.testing.assert_array_equal(
                getattr(vector, name),
                getattr(legacy, name),
                err_msg=f"{name!r} diverged under {schedule!r}",
            )


class TestEmptySchedule:
    def test_empty_equals_no_schedule_on_both_backends(self):
        for backend in ("vector", "vector-legacy"):
            plain = run_fleet(backend, None)
            empty = run_fleet(backend, FaultSchedule())
            for name in PHYSICAL_TRACES:
                np.testing.assert_array_equal(
                    getattr(plain, name), getattr(empty, name), err_msg=name
                )

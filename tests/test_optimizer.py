"""Unit tests for the optimum-fan-speed search."""

import numpy as np
import pytest

from repro.core.optimizer import optimal_fan_speed
from repro.core.thermal_map import ThermalMap
from repro.models.leakage import FanPowerModel, LeakageModel


@pytest.fixture
def thermal_map():
    utils = [0.0, 50.0, 100.0]
    rpms = [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
    temps = np.array(
        [
            [42.0, 38.0, 35.0, 33.0, 31.0],
            [62.0, 55.0, 50.0, 46.0, 44.0],
            [85.0, 73.0, 66.0, 62.0, 58.0],
        ]
    )
    return ThermalMap(utils, rpms, temps)


@pytest.fixture
def leakage():
    # Two-socket equivalent of the paper's coefficients.
    return LeakageModel(c_w=20.0, k2_w=0.65, k3_per_c=0.0475)


@pytest.fixture
def fan_model():
    return FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=4200.0)


CANDIDATES = (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)


class TestOptimalFanSpeed:
    def test_full_load_picks_2400(self, thermal_map, leakage, fan_model):
        result = optimal_fan_speed(
            100.0, CANDIDATES, thermal_map, leakage, fan_model
        )
        assert result.fan_rpm == 2400.0
        assert not result.constraint_fallback

    def test_idle_picks_lowest(self, thermal_map, leakage, fan_model):
        result = optimal_fan_speed(0.0, CANDIDATES, thermal_map, leakage, fan_model)
        assert result.fan_rpm == 1800.0

    def test_objective_is_leak_plus_fan(self, thermal_map, leakage, fan_model):
        result = optimal_fan_speed(
            100.0, CANDIDATES, thermal_map, leakage, fan_model
        )
        assert result.predicted_leak_plus_fan_w == pytest.approx(
            result.predicted_leakage_w + result.predicted_fan_power_w
        )

    def test_temperature_cap_respected(self, thermal_map, leakage, fan_model):
        result = optimal_fan_speed(
            100.0,
            CANDIDATES,
            thermal_map,
            leakage,
            fan_model,
            max_temperature_c=65.0,
        )
        assert result.predicted_temperature_c <= 65.0
        assert result.fan_rpm >= 3600.0

    def test_impossible_cap_falls_back_to_coolest(
        self, thermal_map, leakage, fan_model
    ):
        result = optimal_fan_speed(
            100.0,
            CANDIDATES,
            thermal_map,
            leakage,
            fan_model,
            max_temperature_c=30.0,
        )
        assert result.constraint_fallback
        assert result.fan_rpm == 4200.0

    def test_single_candidate(self, thermal_map, leakage, fan_model):
        result = optimal_fan_speed(
            50.0, (3000.0,), thermal_map, leakage, fan_model
        )
        assert result.fan_rpm == 3000.0

    def test_no_candidates_rejected(self, thermal_map, leakage, fan_model):
        with pytest.raises(ValueError):
            optimal_fan_speed(50.0, (), thermal_map, leakage, fan_model)

    def test_stronger_leakage_prefers_faster_fans(self, thermal_map, fan_model):
        """If leakage grows steeper, the optimizer trades more fan power
        for lower temperature."""
        weak = LeakageModel(c_w=0.0, k2_w=0.2, k3_per_c=0.0475)
        strong = LeakageModel(c_w=0.0, k2_w=3.0, k3_per_c=0.0475)
        rpm_weak = optimal_fan_speed(
            100.0, CANDIDATES, thermal_map, weak, fan_model
        ).fan_rpm
        rpm_strong = optimal_fan_speed(
            100.0, CANDIDATES, thermal_map, strong, fan_model
        ).fan_rpm
        assert rpm_strong > rpm_weak

    def test_cheaper_fans_prefer_faster_speeds(self, thermal_map, leakage):
        expensive = FanPowerModel(coeff_w=100.0, exponent=3.0, rpm_ref=4200.0)
        cheap = FanPowerModel(coeff_w=5.0, exponent=3.0, rpm_ref=4200.0)
        rpm_expensive = optimal_fan_speed(
            100.0, CANDIDATES, thermal_map, leakage, expensive
        ).fan_rpm
        rpm_cheap = optimal_fan_speed(
            100.0, CANDIDATES, thermal_map, leakage, cheap
        ).fan_rpm
        assert rpm_cheap > rpm_expensive

"""Unit tests for the CSTH-style polling harness."""

import pytest

from repro.telemetry.harness import TelemetryHarness


class TestRegistration:
    def test_register_returns_channel(self):
        harness = TelemetryHarness()
        channel = harness.register("power", "W", lambda: 42.0)
        assert channel.name == "power"
        assert "power" in harness.channel_names

    def test_duplicate_name_rejected(self):
        harness = TelemetryHarness()
        harness.register("power", "W", lambda: 42.0)
        with pytest.raises(ValueError):
            harness.register("power", "W", lambda: 43.0)

    def test_unknown_channel_lookup(self):
        harness = TelemetryHarness()
        with pytest.raises(KeyError):
            harness.channel("missing")

    def test_invalid_poll_interval(self):
        with pytest.raises(ValueError):
            TelemetryHarness(poll_interval_s=0.0)


class TestVectorRegistration:
    def test_fanout_channel_names(self):
        harness = TelemetryHarness()
        harness.register_vector("dimm.temp", "degC", lambda: [40.0] * 4, count=4)
        assert set(harness.channel_names) == {
            "dimm.temp.0",
            "dimm.temp.1",
            "dimm.temp.2",
            "dimm.temp.3",
        }

    def test_fanout_values(self):
        harness = TelemetryHarness()
        harness.register_vector(
            "dimm.temp", "degC", lambda: [40.0, 41.0, 42.0], count=3
        )
        readings = harness.poll(0.0)
        assert readings["dimm.temp.0"] == 40.0
        assert readings["dimm.temp.2"] == 42.0

    def test_single_underlying_read_per_poll(self):
        calls = []

        def provider():
            calls.append(1)
            return [1.0, 2.0]

        harness = TelemetryHarness()
        harness.register_vector("v", "x", provider, count=2)
        harness.poll(0.0)
        assert len(calls) == 1

    def test_wrong_length_provider_rejected(self):
        harness = TelemetryHarness()
        harness.register_vector("v", "x", lambda: [1.0], count=2)
        with pytest.raises(ValueError):
            harness.poll(0.0)

    def test_zero_count_rejected(self):
        harness = TelemetryHarness()
        with pytest.raises(ValueError):
            harness.register_vector("v", "x", lambda: [], count=0)


class TestPolling:
    def test_first_poll_always_due(self):
        harness = TelemetryHarness(poll_interval_s=10.0)
        assert harness.due(0.0)

    def test_respects_poll_interval(self):
        harness = TelemetryHarness(poll_interval_s=10.0)
        harness.register("p", "W", lambda: 1.0)
        assert harness.maybe_poll(0.0) is not None
        assert harness.maybe_poll(5.0) is None
        assert harness.maybe_poll(10.0) is not None

    def test_poll_appends_samples(self):
        harness = TelemetryHarness(poll_interval_s=10.0)
        harness.register("p", "W", lambda: 1.0)
        harness.poll(0.0)
        harness.poll(10.0)
        assert len(harness.channel("p")) == 2

    def test_poll_reads_live_values(self):
        state = {"value": 1.0}
        harness = TelemetryHarness()
        harness.register("p", "W", lambda: state["value"])
        harness.poll(0.0)
        state["value"] = 2.0
        harness.poll(10.0)
        assert list(harness.channel("p").values()) == [1.0, 2.0]

"""Shared fixtures: expensive pipeline artifacts built once per session."""

from __future__ import annotations

import pytest

from repro import (
    build_lut_from_characterization,
    default_server_spec,
    fit_fan_power_model,
    fit_power_model,
    run_characterization_steady,
)


@pytest.fixture(scope="session")
def spec():
    """The calibrated SPARC-T3-class server spec."""
    return default_server_spec()


@pytest.fixture(scope="session")
def characterization_samples(spec):
    """Aggregated steady-state characterization over the paper grid."""
    return run_characterization_steady(spec=spec, seed=7)


@pytest.fixture(scope="session")
def fitted_model(characterization_samples):
    """The fitted C + k1*U + k2*exp(k3*T) power decomposition."""
    return fit_power_model(characterization_samples)


@pytest.fixture(scope="session")
def fan_model(characterization_samples):
    """The fitted cubic fan power model."""
    return fit_fan_power_model(
        [s.fan_rpm for s in characterization_samples],
        [s.fan_power_w for s in characterization_samples],
    )


@pytest.fixture(scope="session")
def paper_lut(characterization_samples, fitted_model, fan_model):
    """The LUT produced by the paper's offline pipeline."""
    lut, _ = build_lut_from_characterization(
        characterization_samples, fitted_model, fan_model
    )
    return lut

"""Shared fixtures: expensive pipeline artifacts built once per session,
plus the small fleet/server specs the fleet and kernel suites share."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import (
    Fleet,
    Rack,
    build_lut_from_characterization,
    build_uniform_fleet,
    default_dvfs_ladder,
    default_server_spec,
    fit_fan_power_model,
    fit_power_model,
    run_characterization_steady,
)


@pytest.fixture(scope="session")
def spec():
    """The calibrated SPARC-T3-class server spec."""
    return default_server_spec()


@pytest.fixture(scope="session")
def characterization_samples(spec):
    """Aggregated steady-state characterization over the paper grid."""
    return run_characterization_steady(spec=spec, seed=7)


@pytest.fixture(scope="session")
def fitted_model(characterization_samples):
    """The fitted C + k1*U + k2*exp(k3*T) power decomposition."""
    return fit_power_model(characterization_samples)


@pytest.fixture(scope="session")
def fan_model(characterization_samples):
    """The fitted cubic fan power model."""
    return fit_fan_power_model(
        [s.fan_rpm for s in characterization_samples],
        [s.fan_power_w for s in characterization_samples],
    )


@pytest.fixture(scope="session")
def paper_lut(characterization_samples, fitted_model, fan_model):
    """The LUT produced by the paper's offline pipeline."""
    lut, _ = build_lut_from_characterization(
        characterization_samples, fitted_model, fan_model
    )
    return lut


# ----------------------------------------------------------------------
# small fleet/server specs shared by the fleet and kernel suites
# (specs and fleets are frozen dataclasses, safe to share session-wide)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def dvfs_spec(spec):
    """The calibrated server with the four-step p-state ladder."""
    return replace(spec, dvfs=default_dvfs_ladder())


@pytest.fixture(scope="session")
def single_server_fleet():
    """Factory: a one-rack, one-server fleet around a (default) spec."""

    def make(server_spec=None):
        server_spec = (
            server_spec if server_spec is not None else default_server_spec()
        )
        return Fleet(racks=(Rack(name="r0", servers=(server_spec,)),))

    return make


@pytest.fixture(scope="session")
def small_fleet():
    """The 2 racks x 2 servers uniform fleet with default recirculation."""
    return build_uniform_fleet(rack_count=2, servers_per_rack=2)

"""Unit tests for the data-center workload generators."""

import numpy as np
import pytest

from repro.units import hours
from repro.workloads.datacenter import (
    build_batch_window_profile,
    build_diurnal_profile,
    build_flash_crowd_profile,
    combine_profiles,
)
from repro.workloads.profile import ConstantProfile


class TestDiurnal:
    def test_peak_at_configured_hour(self):
        profile = build_diurnal_profile(jitter_pct=0.0, peak_hour=15.0)
        peak = profile.utilization_pct(hours(15.0))
        trough = profile.utilization_pct(hours(3.0))
        assert peak == pytest.approx(80.0, abs=1.0)
        assert trough == pytest.approx(15.0, abs=1.0)

    def test_periodicity_across_days(self):
        profile = build_diurnal_profile(
            duration_s=hours(48.0), jitter_pct=0.0
        )
        assert profile.utilization_pct(hours(10.0)) == pytest.approx(
            profile.utilization_pct(hours(34.0)), abs=0.5
        )

    def test_bounded_with_jitter(self):
        profile = build_diurnal_profile(jitter_pct=10.0, seed=3)
        _, values = profile.sample(dt_s=300.0)
        assert np.all(values >= 0.0)
        assert np.all(values <= 100.0)

    def test_seeded(self):
        a = build_diurnal_profile(seed=5)
        b = build_diurnal_profile(seed=5)
        assert a.utilization_pct(1234.0) == b.utilization_pct(1234.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_diurnal_profile(base_pct=50.0, peak_pct=20.0)
        with pytest.raises(ValueError):
            build_diurnal_profile(peak_hour=25.0)


class TestBatchWindow:
    def test_window_levels(self):
        profile = build_batch_window_profile(
            window_start_hour=1.0, window_hours=5.0
        )
        assert profile.utilization_pct(hours(3.0)) == 95.0
        assert profile.utilization_pct(hours(12.0)) == 5.0

    def test_window_wraps_midnight(self):
        profile = build_batch_window_profile(
            window_start_hour=23.0, window_hours=2.0, duration_s=hours(24.0)
        )
        assert profile.utilization_pct(hours(23.5)) == 95.0
        assert profile.utilization_pct(hours(0.5)) == 95.0
        assert profile.utilization_pct(hours(2.0)) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_batch_window_profile(window_hours=0.0)
        with pytest.raises(ValueError):
            build_batch_window_profile(window_start_hour=24.0)


class TestFlashCrowd:
    def test_surge_budget(self):
        profile = build_flash_crowd_profile(
            duration_s=hours(4.0),
            surge_count=3,
            surge_duration_s=600.0,
            seed=2,
        )
        _, values = profile.sample(dt_s=30.0)
        surge_fraction = np.mean(values > 90.0)
        expected = 3 * 600.0 / hours(4.0)
        assert surge_fraction == pytest.approx(expected, abs=0.05)

    def test_no_surges(self):
        profile = build_flash_crowd_profile(surge_count=0)
        _, values = profile.sample(dt_s=60.0)
        assert np.all(values == 20.0)

    def test_surges_must_fit(self):
        with pytest.raises(ValueError):
            build_flash_crowd_profile(
                duration_s=100.0, surge_count=3, surge_duration_s=60.0
            )


class TestCombine:
    def test_sum_saturates(self):
        combined = combine_profiles(
            [ConstantProfile(70.0, 100.0), ConstantProfile(50.0, 100.0)]
        )
        assert combined.utilization_pct(50.0) == 100.0

    def test_sum_below_cap(self):
        combined = combine_profiles(
            [ConstantProfile(30.0, 100.0), ConstantProfile(20.0, 100.0)]
        )
        assert combined.utilization_pct(50.0) == pytest.approx(50.0)

    def test_duration_is_longest(self):
        combined = combine_profiles(
            [ConstantProfile(30.0, 100.0), ConstantProfile(20.0, 500.0)]
        )
        assert combined.duration_s == pytest.approx(500.0, abs=30.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_profiles([])

"""Property-based tests on the thermal network (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.server.power import PowerModel
from repro.server.specs import default_server_spec
from repro.server.thermal import ThermalNetwork

SPEC = default_server_spec()
POWER = PowerModel(SPEC)

utilizations = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
rpms = st.floats(min_value=1800.0, max_value=4200.0, allow_nan=False)
ambients = st.floats(min_value=15.0, max_value=35.0, allow_nan=False)


def _airflow(rpm):
    return SPEC.fan_count * SPEC.fan.cfm_at_ref * rpm / SPEC.fan.rpm_ref


class TestSteadyStateProperties:
    @given(u=utilizations, rpm=rpms, ambient=ambients)
    @settings(max_examples=60, deadline=None)
    def test_junctions_above_ambient(self, u, rpm, ambient):
        net = ThermalNetwork(SPEC, initial_temperature_c=ambient)
        steady = net.steady_state(u, rpm, _airflow(rpm), ambient, POWER)
        assert all(t > ambient for t in steady.junction_c)
        assert steady.dimm_bank_c > ambient

    @given(u=utilizations, rpm=rpms)
    @settings(max_examples=60, deadline=None)
    def test_junction_above_heatsink(self, u, rpm):
        net = ThermalNetwork(SPEC)
        steady = net.steady_state(u, rpm, _airflow(rpm), 24.0, POWER)
        for t_j, t_h in zip(steady.junction_c, steady.heatsink_c):
            assert t_j > t_h

    @given(u1=utilizations, u2=utilizations, rpm=rpms)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_utilization(self, u1, u2, rpm):
        if u1 > u2:
            u1, u2 = u2, u1
        net = ThermalNetwork(SPEC)
        cold = net.steady_state(u1, rpm, _airflow(rpm), 24.0, POWER)
        hot = net.steady_state(u2, rpm, _airflow(rpm), 24.0, POWER)
        assert hot.junction_c[0] >= cold.junction_c[0] - 1e-9

    @given(u=utilizations, r1=rpms, r2=rpms)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_fan_speed(self, u, r1, r2):
        if r1 > r2:
            r1, r2 = r2, r1
        net = ThermalNetwork(SPEC)
        slow = net.steady_state(u, r1, _airflow(r1), 24.0, POWER)
        fast = net.steady_state(u, r2, _airflow(r2), 24.0, POWER)
        assert fast.junction_c[0] <= slow.junction_c[0] + 1e-9

    @given(u=utilizations, rpm=rpms)
    @settings(max_examples=30, deadline=None)
    def test_steady_state_is_fixed_point_of_step(self, u, rpm):
        """Integrating from the steady state must not move it."""
        net = ThermalNetwork(SPEC)
        steady = net.steady_state(u, rpm, _airflow(rpm), 24.0, POWER)
        net.settle_to(steady)
        net.step(60.0, u, rpm, _airflow(rpm), 24.0, POWER)
        assert abs(net.state.junction_c[0] - steady.junction_c[0]) < 0.05
        assert abs(net.state.dimm_bank_c - steady.dimm_bank_c) < 0.05


class TestTransientProperties:
    @given(u=utilizations, rpm=rpms, minutes=st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_transient_bounded_by_endpoints(self, u, rpm, minutes):
        """Monotone relaxation: temperatures stay between the cold start
        and the equilibrium (no overshoot in a passive RC ladder driven
        by constant input)."""
        net = ThermalNetwork(SPEC, initial_temperature_c=24.0)
        steady = net.steady_state(u, rpm, _airflow(rpm), 24.0, POWER)
        upper = steady.max_junction_c + 0.1
        for _ in range(minutes * 60):
            net.step(1.0, u, rpm, _airflow(rpm), 24.0, POWER)
            assert 23.9 <= net.state.max_junction_c <= upper

    @given(u=utilizations, rpm=rpms)
    @settings(max_examples=25, deadline=None)
    def test_integration_step_size_invariance(self, u, rpm):
        """Coarse steps (sub-stepped internally) agree with fine steps."""
        coarse = ThermalNetwork(SPEC)
        fine = ThermalNetwork(SPEC)
        for _ in range(30):
            coarse.step(10.0, u, rpm, _airflow(rpm), 24.0, POWER)
        for _ in range(600):
            fine.step(0.5, u, rpm, _airflow(rpm), 24.0, POWER)
        assert abs(coarse.state.junction_c[0] - fine.state.junction_c[0]) < 0.3

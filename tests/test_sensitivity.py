"""Tests for the sensitivity sweep utilities."""

import pytest

from repro.experiments.sensitivity import (
    scale_leakage,
    scale_sensor_noise,
    sweep_ambient,
    sweep_sensor_noise,
)
from repro.models.steady_state import steady_state_point
from repro.server.specs import default_server_spec
from repro.workloads.profile import StaircaseProfile


@pytest.fixture(scope="module")
def short_profile():
    """A compact workload so sweeps stay fast in unit tests."""
    return StaircaseProfile([25.0, 90.0, 50.0], step_duration_s=300.0)


class TestScaleLeakage:
    def test_scales_prefactor_only(self):
        spec = default_server_spec()
        scaled = scale_leakage(spec, 2.0)
        assert scaled.sockets[0].leak_k2_w == pytest.approx(
            2.0 * spec.sockets[0].leak_k2_w
        )
        assert scaled.sockets[0].leak_k3_per_c == spec.sockets[0].leak_k3_per_c

    def test_leakier_silicon_runs_hotter(self):
        spec = default_server_spec()
        leaky = scale_leakage(spec, 4.0)
        base = steady_state_point(100.0, 2400.0, spec=spec)
        hot = steady_state_point(100.0, 2400.0, spec=leaky)
        assert hot.avg_junction_c > base.avg_junction_c
        assert hot.cpu_leakage_w > base.cpu_leakage_w

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scale_leakage(default_server_spec(), 0.0)


class TestScaleSensorNoise:
    def test_zero_factor_silences_noise(self):
        scaled = scale_sensor_noise(default_server_spec(), 0.0)
        assert scaled.sensor_noise.temperature_sigma_c == 0.0
        assert scaled.sensor_noise.power_sigma_w == 0.0

    def test_quantization_preserved(self):
        spec = default_server_spec()
        scaled = scale_sensor_noise(spec, 3.0)
        assert scaled.sensor_noise.temperature_quantum_c == (
            spec.sensor_noise.temperature_quantum_c
        )

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            scale_sensor_noise(default_server_spec(), -1.0)


class TestSweepAmbient:
    @pytest.fixture(scope="class")
    def sweep(self, paper_lut, short_profile):
        return sweep_ambient(
            paper_lut,
            ambients_c=(18.0, 24.0, 30.0),
            profile=short_profile,
            seed=1,
        )

    def test_point_per_ambient(self, sweep):
        assert set(sweep) == {18.0, 24.0, 30.0}

    def test_warmer_rooms_run_hotter(self, sweep):
        temps = [sweep[a].lut_max_temperature_c for a in (18.0, 24.0, 30.0)]
        assert temps == sorted(temps)

    def test_savings_positive_everywhere(self, sweep):
        for point in sweep.values():
            assert point.net_savings_pct > 0.0

    def test_thermal_envelope_degrades_gracefully(self, sweep):
        """Six degrees above the characterization ambient costs at most
        a commensurate rise in the envelope (no runaway)."""
        gap = sweep[30.0].lut_max_temperature_c - sweep[24.0].lut_max_temperature_c
        assert 2.0 <= gap <= 9.0


class TestSweepSensorNoise:
    def test_lut_is_noise_robust(self, paper_lut, short_profile):
        """The LUT controller never reads temperature, so tripling the
        sensor noise must not change its savings materially."""
        sweep = sweep_sensor_noise(
            paper_lut,
            factors=(0.0, 3.0),
            profile=short_profile,
            seed=1,
        )
        clean = sweep[0.0].net_savings_pct
        noisy = sweep[3.0].net_savings_pct
        assert noisy == pytest.approx(clean, abs=1.0)

"""Acceptance tests for the streaming detection pipeline.

The PR-level contract: the compound fault drill, streamed live through
the telemetry service, yields a :class:`DetectionReport` with a finite
time-to-detect for every injected fault window and no false positives;
replaying the fault-free golden traces through the same incremental
detector raises zero alerts.
"""

import asyncio
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.controllers.pid import PIController
from repro.fleet import (
    CracExcursionEvent,
    FanDegradationEvent,
    FaultSchedule,
    FleetEngine,
    FleetScheduler,
    SensorFaultEvent,
    ServerOutageEvent,
    build_uniform_fleet,
)
from repro.fleet.scheduler import PLACEMENT_POLICIES
from repro.obs.detect import DetectorConfig, replay_channels
from repro.obs.service import LiveTelemetryService, ServiceConfig
from repro.units import hours
from repro.workloads.datacenter import build_diurnal_profile

GOLDEN_DIR = Path(__file__).parent / "golden"


def drill_schedule() -> FaultSchedule:
    """The compound drill from ``examples/fleet_fault_drill.py``."""
    return FaultSchedule(
        events=(
            SensorFaultEvent(
                server=0, mode="stuck", value=30.0,
                start_s=hours(2.0), end_s=hours(10.0),
            ),
            FanDegradationEvent(server=5, rpm_factor=0.6, start_s=hours(4.0)),
            ServerOutageEvent(server=3, start_s=hours(6.0), end_s=hours(10.0)),
            CracExcursionEvent(
                delta_c=4.0, rack=1, start_s=hours(8.0), end_s=hours(10.0),
            ),
        )
    )


def drill_engine(faults) -> FleetEngine:
    return FleetEngine(
        build_uniform_fleet(rack_count=2, servers_per_rack=4),
        build_diurnal_profile(duration_s=hours(12.0), seed=3),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["coolest-first"]()),
        controller_factory=lambda i: PIController(),
        faults=faults,
    )


def run_service(engine) -> LiveTelemetryService:
    service = LiveTelemetryService(
        engine, ServiceConfig(port=0, dt_s=60.0, time_scale=0.0)
    )

    async def scenario():
        await service.run_to_completion()
        await service.stop()

    asyncio.run(asyncio.wait_for(scenario(), timeout=300.0))
    return service


class TestFaultDrill:
    @pytest.fixture(scope="class")
    def drill(self):
        return run_service(drill_engine(drill_schedule()))

    def test_every_fault_window_detected_with_finite_ttd(self, drill):
        report = drill.report
        assert report is not None
        assert len(report.outcomes) == 4
        for outcome in report.outcomes:
            assert outcome.detected, f"{outcome.kind} fault missed"
            assert math.isfinite(outcome.time_to_detect_s), outcome.kind
            assert outcome.time_to_detect_s >= 0.0
        assert report.recall_by_kind == {
            "sensor": 1.0, "fan": 1.0, "outage": 1.0, "crac": 1.0,
        }

    def test_no_false_positives(self, drill):
        assert len(drill.report.false_positives) == 0

    def test_detection_latency_bounds(self, drill):
        by_kind = {o.kind: o for o in drill.report.outcomes}
        # A lying sensor departs from its peers within a few ticks.
        assert by_kind["sensor"].time_to_detect_s <= 15 * 60.0
        # An outage needs the full availability hold before latching.
        assert by_kind["outage"].time_to_detect_s >= 900.0
        assert by_kind["outage"].time_to_detect_s <= 3600.0
        assert by_kind["outage"].alert_channel == "availability"

    def test_service_exports_detection_gauges(self, drill):
        text = drill.metrics.render_prometheus()
        assert "repro_detection_recall 1" in text
        assert "repro_detection_false_positives 0" in text
        assert "repro_fleet_ticks_total 720" in text

    def test_healthy_run_raises_no_alerts(self):
        service = run_service(drill_engine(None))
        assert service.detector.alerts == []
        assert service.report is None


class TestGoldenTraceReplay:
    def _replay_golden(self, name):
        import sys

        sys.path.insert(0, str(Path(__file__).parent))
        try:
            from regen_golden_traces import read_golden
        finally:
            sys.path.pop(0)
        golden = read_golden(GOLDEN_DIR / name)
        servers = sorted(
            int(c.rsplit("_s", 1)[1])
            for c in golden
            if c.startswith("max_junction_c_s")
        )

        def stack(prefix):
            return np.column_stack(
                [golden[f"{prefix}_s{i}"] for i in servers]
            )

        return replay_channels(
            golden["time_s"],
            stack("max_junction_c"),
            power_w=stack("total_power_w"),
            inlet_c=stack("inlet_c"),
            utilization_pct=stack("utilization_pct"),
            # The golden horizon is 400 s; shrink warm-up so most of
            # the trace runs with the detector armed.
            config=DetectorConfig(warmup_s=100.0),
        )

    def test_fault_free_golden_trace_is_silent(self):
        detector = self._replay_golden("fleet_coordinated.csv")
        assert detector.ready
        assert detector.alerts == []

"""Live-capture contract tests: a read-only tap on the engine trace.

The capture seam must not perturb the simulation (bit-identity with an
uncaptured run) and the store must hold exactly the trace columns with
end-of-tick timestamps.
"""

import numpy as np
import pytest

from repro.core.controllers.pid import PIController
from repro.fleet import FleetEngine, build_uniform_fleet
from repro.obs.capture import CAPTURE_SIGNALS, FleetCapture
from repro.obs.store import TimeseriesStore
from repro.workloads.profile import StaircaseProfile

DT = 2.0
#: FleetResult per-server trace fields asserted bit-identical.
RESULT_FIELDS = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
)


def make_engine(backend="vector", capture=None):
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=2)
    profile = StaircaseProfile([30.0, 85.0, 55.0, 10.0], 150.0)
    return FleetEngine(
        fleet,
        profile,
        controller_factory=lambda i: PIController(),
        backend=backend,
        capture=capture,
    )


def assert_results_identical(a, b):
    for field in RESULT_FIELDS:
        np.testing.assert_array_equal(
            getattr(a, field), getattr(b, field), err_msg=field
        )


class TestBitIdentity:
    def test_captured_run_matches_uncaptured(self):
        baseline = make_engine().run(dt_s=DT)
        captured = make_engine(capture=FleetCapture()).run(dt_s=DT)
        assert_results_identical(baseline, captured)

    def test_store_columns_match_trace(self):
        store = TimeseriesStore()
        capture = FleetCapture(store=store)
        engine = make_engine(capture=capture)
        result = engine.run(dt_s=DT)
        steps = result.times_s.shape[0]
        expected_times = DT * np.arange(1, steps + 1)

        np.testing.assert_array_equal(result.times_s, expected_times)
        for i in range(4):
            for signal, column in (
                ("power_w", result.total_power_w),
                ("junction_c", result.max_junction_c),
                ("util_pct", result.utilization_pct),
                ("inlet_c", result.inlet_c),
                ("rpm", result.mean_rpm),
            ):
                t, v = store.channel(f"s{i}.{signal}").series()
                np.testing.assert_array_equal(t, expected_times)
                np.testing.assert_array_equal(v, column[:, i])
        t, v = store.channel("fleet.power_w").series()
        np.testing.assert_array_equal(v, result.total_power_w.sum(axis=1))
        t, v = store.channel("fleet.unserved_pct").series()
        np.testing.assert_array_equal(v, result.unserved_pct)
        assert capture.flushed_ticks == steps

    def test_odd_chunk_boundary_matches_bulk(self):
        stores = []
        for chunk_ticks in (17, 1024):
            store = TimeseriesStore()
            make_engine(
                capture=FleetCapture(store=store, chunk_ticks=chunk_ticks)
            ).run(dt_s=DT)
            stores.append(store)
        odd, bulk = stores
        assert sorted(odd.channel_names()) == sorted(bulk.channel_names())
        for name in odd.channel_names():
            to, vo = odd.channel(name).series()
            tb, vb = bulk.channel(name).series()
            np.testing.assert_array_equal(to, tb, err_msg=name)
            np.testing.assert_array_equal(vo, vb, err_msg=name)

    def test_legacy_backend_capture_matches_vector(self):
        stores = {}
        for backend in ("vector", "vector-legacy"):
            store = TimeseriesStore()
            make_engine(
                backend=backend, capture=FleetCapture(store=store)
            ).run(dt_s=DT)
            stores[backend] = store
        for name in stores["vector"].channel_names():
            _, vv = stores["vector"].channel(name).series()
            _, vl = stores["vector-legacy"].channel(name).series()
            np.testing.assert_array_equal(vv, vl, err_msg=name)


class TestRunStream:
    def test_stream_yields_every_tick_and_final_result(self):
        baseline = make_engine().run(dt_s=DT)
        engine = make_engine()
        views = list(engine.run_stream(dt_s=DT))
        steps = baseline.times_s.shape[0]
        assert len(views) == steps
        assert [v.tick for v in views] == list(range(steps))
        np.testing.assert_array_equal(
            [v.time_s for v in views], baseline.times_s
        )
        np.testing.assert_array_equal(
            views[-1].max_junction_c, baseline.max_junction_c[-1]
        )
        assert engine.last_result is not None
        assert_results_identical(engine.last_result, baseline)

    def test_stream_with_capture_fills_store(self):
        store = TimeseriesStore()
        engine = make_engine(capture=FleetCapture(store=store))
        views = list(engine.run_stream(dt_s=DT))
        t, v = store.channel("s0.junction_c").series()
        assert len(t) == len(views)
        np.testing.assert_array_equal(
            v, engine.last_result.max_junction_c[:, 0]
        )

    def test_stream_requires_vector_backend(self):
        engine = make_engine(backend="vector-legacy")
        with pytest.raises(ValueError, match="vector"):
            next(engine.run_stream(dt_s=DT))


class TestCaptureValidation:
    def test_bad_chunk_ticks(self):
        with pytest.raises(ValueError):
            FleetCapture(chunk_ticks=0)

    def test_unknown_signal(self):
        with pytest.raises(ValueError, match="unknown capture signals"):
            FleetCapture(signals=("power", "voltage"))

    def test_flush_before_bind(self):
        with pytest.raises(RuntimeError, match="bind"):
            FleetCapture().flush(np.arange(3.0), {})

    def test_all_signals_have_units(self):
        for suffix, unit in CAPTURE_SIGNALS.values():
            assert suffix and unit

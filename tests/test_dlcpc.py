"""Tests for the DLC-PC deployment composition."""

import numpy as np
import pytest

from repro.core.controllers.bangbang import BangBangController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.lut import LUTController
from repro.experiments.dlcpc import DLCPC_TRACE_COLUMNS, DlcPc
from repro.experiments.protocol import ExperimentProtocol
from repro.server.server import ServerSimulator
from repro.workloads.profile import ConstantProfile, StaircaseProfile


def make_session(controller, seed=0):
    sim = ServerSimulator(seed=seed, initial_fan_rpm=3600.0)
    ExperimentProtocol().force_cold_state(sim)
    return DlcPc(sim, controller)


class TestChannelRegistration:
    def test_all_csth_channels_present(self):
        session = make_session(FixedSpeedController(3300.0))
        names = set(session.harness.channel_names)
        assert {"cpu.temp.0", "cpu.temp.3"} <= names
        assert {"dimm.temp.0", "dimm.temp.31"} <= names
        assert {"system.power", "fan.power"} <= names
        assert {"core.voltage.mean", "core.current.mean"} <= names

    def test_channel_count_matches_paper(self):
        """4 CPU temps + 32 DIMM temps + power + fan + V/I aggregates."""
        session = make_session(FixedSpeedController(3300.0))
        assert len(tuple(session.harness.channel_names)) == 4 + 32 + 4

    def test_latest_requires_a_poll(self):
        session = make_session(FixedSpeedController(3300.0))
        with pytest.raises(RuntimeError):
            session.latest_cpu_temperatures_c()


class TestSession:
    def test_trace_schema_and_length(self):
        session = make_session(FixedSpeedController(3300.0))
        result = session.run(ConstantProfile(50.0, 120.0))
        assert result.recorder.columns == DLCPC_TRACE_COLUMNS
        assert len(result.recorder) == 120

    def test_telemetry_polled_every_ten_seconds(self):
        session = make_session(FixedSpeedController(3300.0))
        session.run(ConstantProfile(50.0, 300.0))
        channel = session.harness.channel("system.power")
        times = channel.times()
        assert len(times) == pytest.approx(31, abs=1)
        assert np.all(np.diff(times) >= 10.0 - 1e-9)

    def test_csth_readings_track_truth(self):
        session = make_session(FixedSpeedController(3300.0))
        result = session.run(ConstantProfile(100.0, 900.0))
        csth = result.column("csth_max_cpu_c")
        truth = result.column("true_max_junction_c")
        # Stale-by-up-to-10s noisy readings still track the slow truth.
        assert np.mean(np.abs(csth - truth)) < 2.5

    def test_bang_bang_controls_through_csth(self):
        """The reactive controller works end-to-end through the
        harness: temperatures rise out of the cold start and the fans
        leave the initial speed."""
        session = make_session(BangBangController())
        result = session.run(ConstantProfile(100.0, 1800.0))
        commands = np.unique(result.column("rpm_command"))
        assert len(commands) > 1
        assert result.column("true_max_junction_c").max() < 80.0

    def test_lut_controls_through_monitor(self, paper_lut):
        session = make_session(LUTController(paper_lut))
        profile = StaircaseProfile([10.0, 100.0], step_duration_s=600.0)
        result = session.run(profile)
        commands = result.column("rpm_command")
        assert commands[100] == 1800.0
        assert commands[-1] == paper_lut.query(100.0)

    def test_too_short_profile_rejected(self):
        session = make_session(FixedSpeedController(3300.0))
        with pytest.raises(ValueError):
            session.run(ConstantProfile(50.0, 0.1))


class TestRunnerAgreement:
    def test_energy_matches_fast_runner(self, paper_lut):
        """The deployment-faithful path and the fast runner agree on
        the headline metric within a fraction of a percent."""
        from repro.experiments.metrics import energy_kwh
        from repro.experiments.runner import ExperimentConfig, run_experiment

        profile = StaircaseProfile([25.0, 90.0], step_duration_s=600.0)

        session = make_session(LUTController(paper_lut), seed=3)
        dlc_result = session.run(profile)
        dlc_energy = energy_kwh(
            dlc_result.column("time_s"),
            dlc_result.column("system_power_w"),
        )

        runner_result = run_experiment(
            LUTController(paper_lut), profile, config=ExperimentConfig(seed=3)
        )
        runner_energy = energy_kwh(
            runner_result.column("time_s"),
            runner_result.column("power_total_w")
            - runner_result.column("power_fan_w"),
        )
        assert dlc_energy == pytest.approx(runner_energy, rel=0.01)

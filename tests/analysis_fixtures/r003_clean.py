"""R003 negative fixture: an allocation-free marked hot function."""

import numpy as np


def step_all(state: np.ndarray, out: np.ndarray, ticks: int) -> None:  # reprolint: hot
    """Writes into preallocated buffers; ufuncs with out= are fine."""
    for tick in range(ticks):
        np.multiply(state, 0.5, out=state)
        np.clip(state, 0.0, 1.0, out=state)
        out[tick] = state.sum()

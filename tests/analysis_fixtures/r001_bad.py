"""R001 positive fixture: every statement below mixes units."""


def mixed(temp_c: float, power_w: float, fan_rpm: float) -> float:
    """Cross-unit arithmetic, comparison, assignment, and kwarg."""
    bad_sum = temp_c + power_w  # add degC to W
    if fan_rpm < temp_c:  # compare RPM to degC
        bad_sum += 1.0
    duration_s = fan_rpm  # assign RPM into a seconds name
    consume(supply_c=fan_rpm)  # RPM value into a degC keyword
    return bad_sum + duration_s


def consume(supply_c: float) -> float:
    """Sink for the keyword-mismatch case."""
    return supply_c

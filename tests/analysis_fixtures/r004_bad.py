"""R004 positive fixture: recorded/consumed columns drift from schema."""

DEMO_TRACE_COLUMNS = ("time_s", "power_w", "junction_c")


def produce(recorder) -> None:
    """Records a column the schema does not declare."""
    recorder.record({"time_s": 0.0, "power_w": 1.0, "junctoin_c": 2.0})


def consume(recorder) -> float:
    """Reads a column no schema declares."""
    return recorder.column("power_total")[0]

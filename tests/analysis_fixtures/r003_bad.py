"""R003 positive fixture: a marked hot function that allocates."""

import numpy as np


def step_all(state: np.ndarray, ticks: int) -> list:  # reprolint: hot
    """Per-tick allocating numpy calls, appends, and a comprehension."""
    history = []
    for _ in range(ticks):
        scratch = np.zeros(state.shape[0])  # allocating numpy call
        state = state + scratch
        history.append(float(state.sum()))  # append inside the loop
    doubled = [value * 2.0 for value in history]  # comprehension
    return doubled


def cold_helper(state: np.ndarray) -> np.ndarray:
    """Unmarked function: allocation here is fine."""
    return np.zeros_like(state)

"""R001 negative fixture: unit-correct code the checker must pass."""

from repro.units import hours, minutes


def consistent(inlet_c: float, supply_c: float, runtime_h: float) -> float:
    """Same-unit arithmetic, sanctioned casts, neutral names."""
    delta_c = inlet_c - supply_c  # degC - degC
    duration_s = hours(runtime_h)  # conversion call is a sanctioned cast
    warmup_s = minutes(5.0)
    total_s = duration_s + warmup_s  # s + s
    t_j = inlet_c  # single-letter suffix with short stem: no unit
    scaled_c = delta_c * 2.0  # literal scaling preserves the unit
    if delta_c < scaled_c:
        total_s += 1.0
    return total_s + t_j * 0.0

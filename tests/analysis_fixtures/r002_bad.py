"""R002 positive fixture: every randomness pattern below is banned."""

import random  # stdlib random is banned

import numpy as np


def draws() -> float:
    """Unseeded and out-of-entry-point RNG construction."""
    np.random.seed(0)  # legacy global-state API
    value = np.random.rand()  # legacy global-state API
    rng = np.random.default_rng()  # no explicit seed
    other = np.random.default_rng(42)  # seeded, but not an entry module
    return value + rng.random() + other.random() + random.random()

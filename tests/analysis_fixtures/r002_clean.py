"""R002 negative fixture: randomness flows in as a passed Generator."""

import numpy as np


def draw_noise(rng: np.random.Generator, n: int) -> np.ndarray:
    """Consume an injected Generator; never construct one here."""
    return rng.standard_normal(n)


def spawn_streams(seed_seq: np.random.SeedSequence, n: int) -> list:
    """SeedSequence plumbing is part of the sanctioned API."""
    return seed_seq.spawn(n)

"""R004 negative fixture: producer and consumer agree with the schema."""

DEMO_TRACE_COLUMNS = ("time_s", "power_w", "junction_c")

ALIAS_TRACE_COLUMNS = DEMO_TRACE_COLUMNS


def produce(recorder) -> None:
    """Records exactly the declared columns."""
    recorder.record({"time_s": 0.0, "power_w": 1.0, "junction_c": 2.0})


def consume(recorder) -> float:
    """Reads a declared column."""
    return recorder.column("power_w")[0]

"""Chaos drills: SIGKILL mid-run, resume, prove bit-identity.

The crash-tolerance contract is only real if it survives *unclean*
deaths: these tests kill -9 a shard worker (the supervisor restarts it
from the last consistent cut in-run) and the coordinator process
itself (a fresh process resumes the run from disk), then require the
full trace matrix to equal an uninterrupted golden run bit-for-bit.
"""

import multiprocessing
import os
import signal
from pathlib import Path

import numpy as np
import pytest

import repro.engine.sharded as sharded
from repro.core.controllers.pid import PIController
from repro.engine.checkpoint import CheckpointConfig, latest_checkpoint
from repro.fleet import (
    PLACEMENT_POLICIES,
    FleetEngine,
    FleetScheduler,
    FleetWorkload,
    build_uniform_fleet,
)
from repro.workloads.profile import StaircaseProfile

DT_S = 2.0
DURATION_S = 240.0
PROFILE = StaircaseProfile([25.0, 85.0, 55.0, 95.0], 60.0)

TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
)


def make_engine(**kw):
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=3)
    return FleetEngine(
        fleet,
        FleetWorkload(PROFILE, fleet.server_count),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["coolest-first"]()),
        controller_factory=lambda spec: PIController(),
        **kw,
    )


def assert_identical(golden, other):
    for name in TRACES:
        a = np.asarray(getattr(golden, name))
        b = np.asarray(getattr(other, name))
        assert np.array_equal(a, b), f"trace column {name} differs"


@pytest.fixture(scope="module")
def golden():
    return make_engine().run(dt_s=DT_S, duration_s=DURATION_S)


class TestWorkerSigkill:
    def test_supervisor_restarts_from_checkpoint(self, tmp_path, golden):
        flag = tmp_path / "killed-once"
        cfg = CheckpointConfig(
            directory=tmp_path / "ckpt",
            every_s=80.0,
            max_restarts=2,
            restart_backoff_s=0.0,
        )

        def kill_once(shard_id, tick):
            # One-shot: the flag file survives the SIGKILL, so the
            # restarted worker sails past the same tick.
            if shard_id == 1 and tick == 60 and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)

        sharded.CHAOS_WORKER_HOOK = kill_once
        try:
            engine = make_engine(
                backend="sharded",
                shards=3,
                shard_mode="process",
                trace_dir=str(tmp_path / "trace"),
                checkpoint=cfg,
            )
            result = engine.run(dt_s=DT_S, duration_s=DURATION_S)
        finally:
            sharded.CHAOS_WORKER_HOOK = None
        assert flag.exists(), "chaos hook never fired"
        assert engine.last_run_stats["restarts"] == 1
        assert engine.last_resume_tick == 40
        assert_identical(golden, result)

    def test_crash_without_checkpoint_is_fatal(self, tmp_path):
        flag = tmp_path / "killed-once"

        def kill_once(shard_id, tick):
            if shard_id == 0 and tick == 20 and not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)

        sharded.CHAOS_WORKER_HOOK = kill_once
        try:
            engine = make_engine(
                backend="sharded",
                shards=2,
                shard_mode="process",
                trace_dir=str(tmp_path / "trace"),
                barrier_timeout_s=30.0,
            )
            with pytest.raises(sharded.ShardCrashError, match="shard"):
                engine.run(dt_s=DT_S, duration_s=DURATION_S)
        finally:
            sharded.CHAOS_WORKER_HOOK = None


def _run_until_killed(work: str) -> None:
    """Child-process target: run sharded, die by SIGKILL mid-run."""
    work_path = Path(work)
    flag = work_path / "coord-killed"

    def kill_coordinator(tick):
        # After tick 60 at least one checkpoint (tick 40) is sealed.
        if tick == 60 and not flag.exists():
            flag.touch()
            os.kill(os.getpid(), signal.SIGKILL)

    sharded.CHAOS_COORDINATOR_HOOK = kill_coordinator
    engine = make_engine(
        backend="sharded",
        shards=3,
        shard_mode="process",
        trace_dir=str(work_path / "trace"),
        checkpoint=CheckpointConfig(directory=work_path / "ckpt",
                                    every_s=80.0),
        # Orphaned shard workers must not linger for the default
        # (server-count-scaled) barrier timeout after the kill.
        barrier_timeout_s=10.0,
    )
    engine.run(dt_s=DT_S, duration_s=DURATION_S)


class TestCoordinatorSigkill:
    def test_external_resume_bit_identical(self, tmp_path, golden):
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_run_until_killed, args=(str(tmp_path),))
        child.start()
        child.join(timeout=120)
        assert not child.is_alive(), "child run did not die"
        assert child.exitcode == -signal.SIGKILL
        assert (tmp_path / "coord-killed").exists()

        cut = latest_checkpoint(tmp_path / "ckpt")
        assert cut is not None, "no checkpoint survived the kill"
        resumed = make_engine(
            backend="sharded",
            shards=3,
            shard_mode="process",
            trace_dir=str(tmp_path / "trace"),
        ).run(dt_s=DT_S, duration_s=DURATION_S, resume_from=cut)
        assert_identical(golden, resumed)

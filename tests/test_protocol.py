"""Unit tests for the experimental protocol (paper §IV)."""

import pytest

from repro.experiments.protocol import ExperimentProtocol
from repro.server.server import ServerSimulator
from repro.workloads.profile import ConstantProfile


class TestColdStart:
    def test_forces_idle_equilibrium_at_3600(self):
        protocol = ExperimentProtocol()
        sim = ServerSimulator(seed=0, initial_fan_rpm=1800.0)
        protocol.force_cold_state(sim)
        assert sim.fans.mean_rpm == pytest.approx(3600.0)
        # Idle at 3600 RPM settles in the mid-30s degC.
        assert sim.state.max_junction_c == pytest.approx(35.0, abs=2.0)
        assert sim.state.utilization_pct == 0.0

    def test_cold_state_is_reproducible(self):
        protocol = ExperimentProtocol()
        a = ServerSimulator(seed=0, initial_fan_rpm=4200.0)
        b = ServerSimulator(seed=0, initial_fan_rpm=2400.0)
        protocol.force_cold_state(a)
        protocol.force_cold_state(b)
        assert a.state.max_junction_c == pytest.approx(b.state.max_junction_c)


class TestWrapProfile:
    def test_adds_head_and_tail(self):
        protocol = ExperimentProtocol()
        wrapped = protocol.wrap_profile(ConstantProfile(80.0, 600.0))
        assert wrapped.duration_s == 300.0 + 600.0 + 600.0
        assert wrapped.utilization_pct(100.0) == 0.0  # idle head
        assert wrapped.utilization_pct(400.0) == 80.0  # load
        assert wrapped.utilization_pct(1000.0) == 0.0  # idle tail

    def test_zero_phases_passthrough(self):
        protocol = ExperimentProtocol(idle_head_s=0.0, idle_tail_s=0.0)
        profile = ConstantProfile(80.0, 600.0)
        assert protocol.wrap_profile(profile) is profile

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentProtocol(idle_head_s=-1.0)
        with pytest.raises(ValueError):
            ExperimentProtocol(cold_start_rpm=0.0)

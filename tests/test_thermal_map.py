"""Unit tests for the interpolated thermal map."""

import numpy as np
import pytest

from repro.core.thermal_map import ThermalMap
from repro.models.fitting import CharacterizationSample


def grid_map():
    utils = [0.0, 50.0, 100.0]
    rpms = [1800.0, 3000.0, 4200.0]
    temps = np.array(
        [
            [40.0, 35.0, 32.0],
            [60.0, 50.0, 45.0],
            [85.0, 66.0, 58.0],
        ]
    )
    return ThermalMap(utils, rpms, temps)


class TestConstruction:
    def test_axes_roundtrip(self):
        tmap = grid_map()
        np.testing.assert_allclose(tmap.utilizations_pct, [0.0, 50.0, 100.0])
        np.testing.assert_allclose(tmap.fan_rpms, [1800.0, 3000.0, 4200.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ThermalMap([0.0, 100.0], [1800.0], np.zeros((3, 3)))

    def test_non_increasing_axis_rejected(self):
        with pytest.raises(ValueError):
            ThermalMap([0.0, 0.0], [1800.0], np.zeros((2, 1)))

    def test_non_finite_grid_rejected(self):
        temps = np.array([[np.nan]])
        with pytest.raises(ValueError):
            ThermalMap([50.0], [3000.0], temps)


class TestInterpolation:
    def test_exact_at_grid_points(self):
        tmap = grid_map()
        assert tmap.temperature_c(100.0, 1800.0) == 85.0
        assert tmap.temperature_c(0.0, 4200.0) == 32.0

    def test_bilinear_midpoint(self):
        tmap = grid_map()
        # Midpoint of the four corner cells (50..100, 1800..3000).
        expected = (60.0 + 50.0 + 85.0 + 66.0) / 4.0
        assert tmap.temperature_c(75.0, 2400.0) == pytest.approx(expected)

    def test_clamps_outside_rpm_range(self):
        tmap = grid_map()
        assert tmap.temperature_c(100.0, 1000.0) == 85.0
        assert tmap.temperature_c(100.0, 9000.0) == 58.0

    def test_monotone_along_axes(self):
        tmap = grid_map()
        temps_u = [tmap.temperature_c(u, 3000.0) for u in np.linspace(0, 100, 20)]
        assert all(b >= a for a, b in zip(temps_u[:-1], temps_u[1:]))
        temps_r = [
            tmap.temperature_c(100.0, r) for r in np.linspace(1800, 4200, 20)
        ]
        assert all(b <= a for a, b in zip(temps_r[:-1], temps_r[1:]))

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            grid_map().temperature_c(120.0, 3000.0)


class TestFromSamples:
    def _sample(self, u, rpm, t):
        return CharacterizationSample(
            utilization_pct=u,
            fan_rpm=rpm,
            avg_cpu_temperature_c=t,
            compute_power_w=500.0,
            fan_power_w=20.0,
        )

    def test_full_grid(self):
        samples = [
            self._sample(u, r, u / 2.0 + (4200.0 - r) / 100.0)
            for u in (0.0, 100.0)
            for r in (1800.0, 4200.0)
        ]
        tmap = ThermalMap.from_samples(samples)
        assert tmap.temperature_c(100.0, 1800.0) == pytest.approx(74.0)

    def test_duplicate_cells_averaged(self):
        samples = [
            self._sample(0.0, 1800.0, 40.0),
            self._sample(0.0, 1800.0, 42.0),
            self._sample(0.0, 4200.0, 30.0),
            self._sample(100.0, 1800.0, 80.0),
            self._sample(100.0, 4200.0, 60.0),
        ]
        tmap = ThermalMap.from_samples(samples)
        assert tmap.temperature_c(0.0, 1800.0) == pytest.approx(41.0)

    def test_missing_cell_rejected(self):
        samples = [
            self._sample(0.0, 1800.0, 40.0),
            self._sample(100.0, 4200.0, 60.0),
        ]
        with pytest.raises(ValueError):
            ThermalMap.from_samples(samples)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ThermalMap.from_samples([])

    def test_from_simulated_characterization(self, characterization_samples):
        tmap = ThermalMap.from_samples(characterization_samples)
        # The interpolated map matches the measured band at full load.
        assert tmap.temperature_c(100.0, 1800.0) == pytest.approx(85.0, abs=3.0)
        assert tmap.temperature_c(100.0, 4200.0) == pytest.approx(57.0, abs=3.0)

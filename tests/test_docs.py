"""Docs-tree link check: cross-references in Markdown cannot rot.

Walks every Markdown file in the repo root and ``docs/``, extracts
inline links, and asserts each *relative* target resolves to a real
file (anchors and external URLs are out of scope).  Run standalone in
CI as the docs job: ``python -m pytest tests/test_docs.py -q``.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Inline Markdown links, skipping images; code spans are stripped first.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")

EXPECTED_DOCS = (
    "architecture.md",
    "faults.md",
    "paper_mapping.md",
    "sweeps.md",
)


def _markdown_files():
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(DOCS_DIR.glob("*.md"))
    return [path for path in files if path.is_file()]


def _relative_links(path: Path):
    text = _CODE_SPAN_RE.sub("", path.read_text())
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


class TestDocsTree:
    def test_docs_directory_complete(self):
        for name in EXPECTED_DOCS:
            assert (DOCS_DIR / name).is_file(), f"docs/{name} missing"

    def test_readme_links_into_docs(self):
        targets = set(_relative_links(REPO_ROOT / "README.md"))
        assert any(t.startswith("docs/") for t in targets), (
            "README no longer links into docs/"
        )

    @pytest.mark.parametrize(
        "path", _markdown_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
    )
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _relative_links(path):
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken relative links {broken}"

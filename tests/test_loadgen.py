"""Unit tests for LoadGen PWM synthesis and the utilization monitor."""

import numpy as np
import pytest

from repro.workloads.loadgen import LoadGen, UtilizationMonitor
from repro.workloads.profile import ConstantProfile


class TestLoadGenPwm:
    def test_output_is_binary(self):
        gen = LoadGen(ConstantProfile(40.0, 1000.0), pwm_period_s=30.0)
        values = {gen.instantaneous_pct(t) for t in np.arange(0.0, 300.0, 1.0)}
        assert values <= {0.0, 100.0}

    def test_duty_matches_target(self):
        gen = LoadGen(ConstantProfile(40.0, 10000.0), pwm_period_s=30.0)
        values = [gen.instantaneous_pct(t) for t in np.arange(0.0, 9000.0, 1.0)]
        assert np.mean(values) == pytest.approx(40.0, abs=1.0)

    def test_full_load_always_on(self):
        gen = LoadGen(ConstantProfile(100.0, 1000.0), pwm_period_s=30.0)
        assert all(
            gen.instantaneous_pct(t) == 100.0 for t in np.arange(0.0, 100.0, 0.5)
        )

    def test_idle_always_off(self):
        gen = LoadGen(ConstantProfile(0.0, 1000.0), pwm_period_s=30.0)
        assert all(
            gen.instantaneous_pct(t) == 0.0 for t in np.arange(0.0, 100.0, 0.5)
        )

    def test_on_phase_leads_period(self):
        gen = LoadGen(ConstantProfile(50.0, 1000.0), pwm_period_s=30.0)
        assert gen.instantaneous_pct(1.0) == 100.0
        assert gen.instantaneous_pct(16.0) == 0.0

    def test_direct_mode_passthrough(self):
        gen = LoadGen(ConstantProfile(37.5, 1000.0), mode="direct")
        assert gen.instantaneous_pct(123.0) == 37.5

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            LoadGen(ConstantProfile(50.0, 10.0), mode="bogus")

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            LoadGen(ConstantProfile(50.0, 10.0), pwm_period_s=0.0)


class TestUtilizationMonitor:
    def test_empty_monitor_reads_zero(self):
        assert UtilizationMonitor().utilization_pct() == 0.0

    def test_constant_input(self):
        monitor = UtilizationMonitor(window_s=10.0)
        for t in range(20):
            monitor.observe(float(t), 55.0, 1.0)
        assert monitor.utilization_pct() == pytest.approx(55.0)

    def test_pwm_input_reads_duty(self):
        monitor = UtilizationMonitor(window_s=60.0)
        gen = LoadGen(ConstantProfile(40.0, 10000.0), pwm_period_s=30.0)
        for t in range(300):
            monitor.observe(float(t), gen.instantaneous_pct(float(t)), 1.0)
        assert monitor.utilization_pct() == pytest.approx(40.0, abs=2.0)

    def test_window_eviction(self):
        monitor = UtilizationMonitor(window_s=10.0)
        for t in range(10):
            monitor.observe(float(t), 100.0, 1.0)
        for t in range(10, 30):
            monitor.observe(float(t), 0.0, 1.0)
        assert monitor.utilization_pct() == pytest.approx(0.0)

    def test_responds_to_spike_within_window(self):
        monitor = UtilizationMonitor(window_s=60.0)
        for t in range(60):
            monitor.observe(float(t), 0.0, 1.0)
        for t in range(60, 70):
            monitor.observe(float(t), 100.0, 1.0)
        assert monitor.utilization_pct() > 10.0

    def test_reset(self):
        monitor = UtilizationMonitor()
        monitor.observe(0.0, 80.0, 1.0)
        monitor.reset()
        assert monitor.utilization_pct() == 0.0

    def test_rejects_backwards_time(self):
        monitor = UtilizationMonitor()
        monitor.observe(10.0, 50.0, 1.0)
        with pytest.raises(ValueError):
            monitor.observe(5.0, 50.0, 1.0)

    def test_bounded_output(self):
        monitor = UtilizationMonitor(window_s=5.0)
        for t in range(100):
            monitor.observe(float(t), 100.0, 1.0)
        assert monitor.utilization_pct() <= 100.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            UtilizationMonitor(window_s=0.0)

"""Tests for the scenario-sweep orchestration subsystem.

The contracts pinned here are the ones the benches and CLI rely on:
deterministic grid enumeration, stable content hashing, a parallel
executor that is bit-identical to the serial path, and a result cache
whose warm runs perform zero engine invocations.
"""

import dataclasses

import numpy as np
import pytest

from repro.server.specs import default_server_spec
from repro.sweep import (
    GridSpec,
    ResultCache,
    ScenarioSpec,
    SweepResult,
    content_hash,
    fleet_grid,
    register_scenario,
    run_scenario,
    run_sweep,
)
from repro.workloads.profile import StaircaseProfile

#: Module-level invocation counter for the "counting" scenario kind.
COUNTER = {"calls": 0}


@register_scenario("counting")
def _run_counting(params):
    """Deterministic toy runner that records every engine invocation."""
    COUNTER["calls"] += 1
    x = float(params.get("x", 0.0))
    return {"doubled": 2.0 * x, "tag": f"x={x:g}"}


@register_scenario("fragile")
def _run_fragile(params):
    """Toy runner that fails on request (for partial-progress tests)."""
    if params.get("x") == params.get("fail_on"):
        raise RuntimeError("boom")
    return {"x_out": params["x"]}


@pytest.fixture
def short_profile():
    return StaircaseProfile([20.0, 80.0], step_duration_s=120.0)


@pytest.fixture
def experiment_grid(short_profile):
    """A cheap 2x2 single-server grid (no characterization needed)."""
    return GridSpec(
        kind="experiment",
        base={"controller": "default", "profile": short_profile, "seed": 3},
        axes={"rpm": [2400.0, 3600.0], "ambient_c": [20.0, 28.0]},
    )


class TestContentHash:
    def test_stable_for_equal_values(self):
        spec = default_server_spec()
        assert content_hash(spec) == content_hash(default_server_spec())

    def test_sensitive_to_dataclass_fields(self):
        spec = default_server_spec()
        warmer = dataclasses.replace(spec, critical_temperature_c=99.0)
        assert content_hash(spec) != content_hash(warmer)

    def test_handles_ndarrays_and_plain_objects(self, short_profile):
        assert content_hash(np.arange(3.0)) == content_hash(np.arange(3.0))
        assert content_hash(np.arange(3.0)) != content_hash(np.arange(4.0))
        same = StaircaseProfile([20.0, 80.0], step_duration_s=120.0)
        other = StaircaseProfile([20.0, 81.0], step_duration_s=120.0)
        assert content_hash(short_profile) == content_hash(same)
        assert content_hash(short_profile) != content_hash(other)

    def test_rejects_callables(self):
        with pytest.raises(TypeError):
            content_hash(lambda: None)

    def test_uncacheable_spec_still_runs(self):
        spec = ScenarioSpec(
            kind="counting", params={"x": 1.0, "hook": lambda: None}
        )
        assert not spec.cacheable
        assert run_scenario(spec)["doubled"] == 2.0

    def test_key_covers_kind_and_params(self):
        a = ScenarioSpec(kind="counting", params={"x": 1.0})
        b = ScenarioSpec(kind="counting", params={"x": 2.0})
        c = ScenarioSpec(kind="experiment", params={"x": 1.0})
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() != c.cache_key()
        assert a.cache_key() == ScenarioSpec("counting", {"x": 1.0}).cache_key()


class TestGridSpec:
    def test_product_order_first_axis_slowest(self):
        grid = GridSpec(
            kind="counting", axes={"a": [1, 2], "b": ["x", "y", "z"]}
        )
        assert len(grid) == 6
        combos = [(p.params["a"], p.params["b"]) for p in grid.points()]
        assert combos == [
            (1, "x"), (1, "y"), (1, "z"), (2, "x"), (2, "y"), (2, "z"),
        ]

    def test_points_carry_base_and_labels(self):
        grid = GridSpec(
            kind="counting", base={"x": 5.0}, axes={"a": [1]}
        )
        point = grid.points()[0]
        assert point.params == {"x": 5.0, "a": 1}
        assert point.label == "a=1"

    def test_axis_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            GridSpec(kind="counting", base={"a": 1}, axes={"a": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            GridSpec(kind="counting", axes={"a": []})

    def test_unknown_kind_fails_at_run(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            run_scenario(ScenarioSpec(kind="nope", params={}))


class TestSweepResult:
    def test_table_shape_and_dtypes(self):
        grid = GridSpec(kind="counting", axes={"x": [1.0, 2.0, 3.0]})
        table = run_sweep(grid)
        assert len(table) == 3
        assert table.names == ("x", "doubled", "tag")
        assert table.column("doubled").dtype == np.float64
        assert list(table.column("doubled")) == [2.0, 4.0, 6.0]
        assert table.column("tag").dtype == object
        with pytest.raises(KeyError):
            table.column("missing")

    def test_rows_merge_params_and_metrics(self):
        table = run_sweep(GridSpec(kind="counting", axes={"x": [4.0]}))
        row = table.row(0)
        assert row["x"] == 4.0 and row["doubled"] == 8.0

    def test_csv_export(self, tmp_path):
        table = run_sweep(GridSpec(kind="counting", axes={"x": [1.0, 2.0]}))
        path = table.to_csv(tmp_path / "sweep.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "x,doubled,tag"
        assert len(lines) == 3

    def test_equals_rejects_different_tables(self):
        a = run_sweep(GridSpec(kind="counting", axes={"x": [1.0]}))
        b = run_sweep(GridSpec(kind="counting", axes={"x": [2.0]}))
        assert a.equals(a)
        assert not a.equals(b)
        assert not a.equals("not a table")


class TestExecutorDeterminism:
    def test_parallel_table_bit_identical_to_serial(self, experiment_grid):
        serial = run_sweep(experiment_grid, workers=1)
        parallel = run_sweep(experiment_grid, workers=2)
        assert serial.equals(parallel)
        for name in serial.names:
            a, b = serial.column(name), parallel.column(name)
            if a.dtype.kind == "f":
                assert np.array_equal(a, b)

    def test_progress_reports_every_point(self, experiment_grid):
        lines = []
        run_sweep(experiment_grid, workers=1, progress=lines.append)
        assert len(lines) == len(experiment_grid)
        assert lines[-1].startswith("[4/4]")

    def test_invalid_workers_rejected(self, experiment_grid):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(experiment_grid, workers=0)

    def test_empty_point_list_rejected(self):
        with pytest.raises(ValueError, match="no points"):
            run_sweep([])


class TestResultCache:
    def test_warm_run_invokes_zero_engines(self, tmp_path):
        grid = GridSpec(kind="counting", axes={"x": [1.0, 2.0, 3.0, 4.0]})
        cache = ResultCache(tmp_path / "cache")

        COUNTER["calls"] = 0
        cold = run_sweep(grid, workers=1, cache=cache)
        assert COUNTER["calls"] == 4
        assert cold.executed_count == 4 and cold.cache_hit_count == 0
        assert len(cache) == 4

        warm = run_sweep(grid, workers=1, cache=cache)
        assert COUNTER["calls"] == 4, "warm run invoked the engine"
        assert warm.executed_count == 0 and warm.cache_hit_count == 4
        assert cold.equals(warm)

    def test_cached_experiment_table_bit_identical(
        self, experiment_grid, tmp_path
    ):
        cache = tmp_path / "cache"
        cold = run_sweep(experiment_grid, workers=2, cache=cache)
        warm = run_sweep(experiment_grid, workers=2, cache=cache)
        assert warm.executed_count == 0
        assert cold.equals(warm)

    def test_partial_cache_runs_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(
            GridSpec(kind="counting", axes={"x": [1.0, 2.0]}), cache=cache
        )
        COUNTER["calls"] = 0
        mixed = run_sweep(
            GridSpec(kind="counting", axes={"x": [1.0, 2.0, 9.0]}),
            cache=cache,
        )
        assert COUNTER["calls"] == 1
        assert mixed.executed_count == 1 and mixed.cache_hit_count == 2
        assert list(mixed.column("doubled")) == [2.0, 4.0, 18.0]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = GridSpec(kind="counting", axes={"x": [7.0]}).points()[0]
        run_sweep([spec], cache=cache)
        for path in cache.root.glob("*.json"):
            path.write_text("{ torn")
        COUNTER["calls"] = 0
        run_sweep([spec], cache=cache)
        assert COUNTER["calls"] == 1

    def test_failed_sweep_keeps_completed_rows(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = GridSpec(
            kind="fragile", base={"fail_on": 3}, axes={"x": [1, 2, 3]}
        )
        result = run_sweep(grid, workers=1, cache=cache)
        # The failing point lands as an error row; every other point
        # completes and is durable in the cache.  The failure itself is
        # never cached, so a retry re-executes exactly the failing tail.
        assert list(result.column("error"))[:2] == [None, None]
        assert "boom" in result.column("error")[2]
        assert len(cache) == 2
        retry = run_sweep(grid, workers=1, cache=cache)
        assert retry.executed_count == 1 and retry.cache_hit_count == 2

    def test_uncacheable_points_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = ScenarioSpec(
            kind="counting", params={"x": 1.0, "hook": lambda: None}
        )
        run_sweep([spec], cache=cache)
        run_sweep([spec], cache=cache)
        assert len(cache) == 0


class TestScenarioKinds:
    def test_fleet_kind_row_fields(self):
        grid = GridSpec(
            kind="fleet",
            base={
                "racks": 1,
                "hours": 0.25,
                "dt_s": 60.0,
                "controller": "default",
                "workload": "batch",
            },
            axes={"servers_per_rack": [1, 2]},
        )
        table = run_sweep(grid)
        assert list(table.column("server_count")) == [1, 2]
        assert (table.column("energy_kwh") > 0).all()
        assert (table.column("hot_spot_c") > 20.0).all()
        assert "sla_total_pct_s" in table.names

    def test_fleet_grid_helper_axes(self):
        grid = fleet_grid(
            server_counts=(1, 2),
            policies=("round-robin", "coolest-first"),
            controllers=("default",),
            crac_supplies_c=(22.0, 24.0, 27.0),
            racks=1,
            hours=0.5,
        )
        assert len(grid) == 12
        first = grid.points()[0].params
        assert first["racks"] == 1 and first["workload"] == "diurnal"

    def test_sensitivity_sweep_parallel_matches_serial(
        self, paper_lut, short_profile
    ):
        from repro.experiments.sensitivity import sweep_ambient

        kwargs = dict(
            ambients_c=(20.0, 28.0), profile=short_profile, seed=1
        )
        serial = sweep_ambient(paper_lut, workers=1, **kwargs)
        parallel = sweep_ambient(paper_lut, workers=2, **kwargs)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key] == parallel[key]

    def test_experiment_kind_unknown_controller(self):
        with pytest.raises(ValueError, match="unknown controller"):
            run_scenario(
                ScenarioSpec("experiment", {"controller": "warp-drive"})
            )

    def test_typoed_parameter_rejected(self):
        for kind in ("experiment", "lut_vs_default", "fleet"):
            with pytest.raises(ValueError, match="unknown parameter"):
                run_scenario(ScenarioSpec(kind, {"ambeint_c": 24.0}))

    def test_fleet_kind_honors_leakage_scaling(self):
        grid = GridSpec(
            kind="fleet",
            base={
                "racks": 1,
                "servers_per_rack": 1,
                "hours": 0.25,
                "dt_s": 60.0,
                "controller": "default",
                "workload": "batch",
            },
            axes={"leakage_factor": [1.0, 4.0]},
        )
        energy = run_sweep(grid).column("energy_kwh")
        assert energy[1] > energy[0], "leakage axis did not change physics"

    def test_register_duplicate_kind_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("counting")(lambda params: {})

    def test_from_points_length_mismatch(self):
        spec = ScenarioSpec("counting", {"x": 1.0})
        with pytest.raises(ValueError, match="matching lengths"):
            SweepResult.from_points([spec], [])


class TestFaultGrids:
    """Sweeping over failure scenarios is deterministic and cache-correct."""

    def _fault_axis(self):
        """Three fault plans in the JSON (list-of-mappings) form."""
        outage = ({"kind": "outage", "server": 0, "start_s": 0.0, "end_s": 600.0},)
        compound = (
            {"kind": "outage", "server": 0, "start_s": 0.0, "end_s": 600.0},
            {
                "kind": "crac",
                "delta_c": 3.0,
                "start_s": 120.0,
                "end_s": 480.0,
            },
        )
        return [(), outage, compound]

    def _grid(self):
        return GridSpec(
            kind="fleet",
            base={
                "racks": 1,
                "servers_per_rack": 2,
                "hours": 0.25,
                "dt_s": 60.0,
                "controller": "default",
                "workload": "batch",
                "policy": "round-robin",
            },
            axes={"faults": self._fault_axis()},
        )

    def test_distinct_fault_plans_hash_distinct(self):
        keys = {point.cache_key() for point in self._grid().points()}
        assert len(keys) == 3

    def test_schedule_object_and_json_forms_both_cacheable(self):
        from repro.fleet import FaultSchedule, ServerOutageEvent

        def spec(faults):
            return ScenarioSpec(kind="fleet", params={"racks": 1, "faults": faults})

        def schedule():
            return FaultSchedule(
                events=(ServerOutageEvent(server=0, end_s=600.0),)
            )

        as_object = spec(schedule())
        as_json = spec(schedule().to_dicts())
        assert as_object.cacheable and as_json.cacheable
        # independently-built equal schedules hash to the same key
        assert as_object.cache_key() == spec(schedule()).cache_key()
        assert as_json.cache_key() == spec(schedule().to_dicts()).cache_key()
        # a different plan (different window) changes the key
        other = FaultSchedule(events=(ServerOutageEvent(server=0, end_s=900.0),))
        assert spec(other).cache_key() != as_object.cache_key()

    def test_fault_grid_rows_and_warm_cache(self, tmp_path):
        grid = self._grid()
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(grid, workers=1, cache=cache)
        # degraded-mode columns are present, zero for the empty plan
        # and increasing with the compound plan's extra events
        fault_time = cold.column("fault_time_s")
        assert fault_time[0] == 0.0
        assert fault_time[1] > 0.0
        assert fault_time[2] >= fault_time[1]
        assert cold.column("respilled_pct_s")[1] > 0.0
        # warm run answers entirely from the content-hash cache
        warm = run_sweep(grid, workers=1, cache=cache)
        assert warm.executed_count == 0
        assert warm.cache_hit_count == 3
        assert cold.equals(warm)

"""Unit and closed-loop tests for the model-predictive controller."""

import numpy as np
import pytest

from repro.core.controllers.base import ControllerObservation
from repro.core.controllers.mpc import (
    ModelPredictiveController,
    build_mpc_from_characterization,
)
from repro.core.thermal_map import ThermalMap
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.models.leakage import FanPowerModel, LeakageModel
from repro.workloads.profile import StaircaseProfile


@pytest.fixture
def mpc():
    utils = [0.0, 50.0, 100.0]
    rpms = [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
    temps = np.array(
        [
            [42.0, 38.0, 35.0, 33.0, 31.0],
            [62.0, 55.0, 50.0, 46.0, 44.0],
            [85.0, 73.0, 66.0, 62.0, 58.0],
        ]
    )
    return ModelPredictiveController(
        thermal_map=ThermalMap(utils, rpms, temps),
        leakage_model=LeakageModel(c_w=20.0, k2_w=0.65, k3_per_c=0.0475),
        fan_power_model=FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=4200.0),
        lockout_s=0.0,
    )


def obs(time_s, util, temp, rpm=1800.0):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=temp + 0.5,
        avg_cpu_temperature_c=temp,
        utilization_pct=util,
        current_rpm_command=rpm,
    )


class TestTimeConstant:
    def test_fig1a_scaling(self, mpc):
        slow = mpc.time_constant_s(1800.0)
        fast = mpc.time_constant_s(4200.0)
        assert slow / fast == pytest.approx((4200.0 / 1800.0) ** 0.8)

    def test_reference_value(self, mpc):
        assert mpc.time_constant_s(1800.0) == 210.0

    def test_invalid_rpm(self, mpc):
        with pytest.raises(ValueError):
            mpc.time_constant_s(0.0)


class TestPrediction:
    def test_relaxes_toward_steady_state(self, mpc):
        _, peak = mpc.predict_horizon_energy_j(40.0, 100.0, 1800.0)
        # Heating toward 85 degC: the peak grows past the start.
        assert peak > 50.0

    def test_cooling_keeps_peak_at_start(self, mpc):
        _, peak = mpc.predict_horizon_energy_j(80.0, 0.0, 4200.0)
        assert peak == 80.0

    def test_energy_increases_with_fan_speed_when_cold(self, mpc):
        e_slow, _ = mpc.predict_horizon_energy_j(35.0, 0.0, 1800.0)
        e_fast, _ = mpc.predict_horizon_energy_j(35.0, 0.0, 4200.0)
        assert e_fast > e_slow


class TestPolicy:
    def test_steady_full_load_picks_2400(self, mpc):
        # Already at the 2400-RPM equilibrium: LUT-equivalent choice.
        assert mpc.decide(obs(0.0, 100.0, 73.0, rpm=1800.0)) == 2400.0

    def test_idle_picks_minimum(self, mpc):
        assert mpc.decide(obs(0.0, 0.0, 40.0, rpm=3000.0)) == 1800.0

    def test_cold_start_at_full_load_can_wait(self, mpc):
        """From a cold machine, low fan speeds are admissible for a
        while — the predicted peak within the horizon stays under the
        ceiling only if tau is long; verify the choice respects the
        75 degC cap via prediction, not steady state alone."""
        decision = mpc.decide(obs(0.0, 100.0, 35.0, rpm=1800.0))
        if decision is not None:
            _, peak = mpc.predict_horizon_energy_j(35.0, 100.0, decision)
            assert peak <= 75.0

    def test_hot_machine_escalates(self, mpc):
        decision = mpc.decide(obs(0.0, 100.0, 76.0, rpm=1800.0))
        assert decision is not None and decision >= 2400.0

    def test_lockout(self):
        mpc = ModelPredictiveController(
            thermal_map=ThermalMap(
                [0.0, 100.0], [1800.0, 4200.0], np.array([[40.0, 32.0], [85.0, 58.0]])
            ),
            leakage_model=LeakageModel(c_w=0.0, k2_w=0.65, k3_per_c=0.0475),
            fan_power_model=FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=4200.0),
            candidates_rpm=(1800.0, 4200.0),
            lockout_s=60.0,
        )
        first = mpc.decide(obs(0.0, 100.0, 80.0, rpm=1800.0))
        assert first == 4200.0
        assert mpc.decide(obs(10.0, 0.0, 40.0, rpm=4200.0)) is None
        assert mpc.decide(obs(61.0, 0.0, 40.0, rpm=4200.0)) == 1800.0

    def test_validation(self, mpc):
        with pytest.raises(ValueError):
            ModelPredictiveController(
                thermal_map=mpc.thermal_map,
                leakage_model=mpc.leakage_model,
                fan_power_model=mpc.fan_power_model,
                candidates_rpm=(),
            )
        with pytest.raises(ValueError):
            ModelPredictiveController(
                thermal_map=mpc.thermal_map,
                leakage_model=mpc.leakage_model,
                fan_power_model=mpc.fan_power_model,
                horizon_s=10.0,
                step_s=30.0,
            )


class TestClosedLoop:
    def test_pipeline_build_and_run(
        self, characterization_samples, fitted_model, fan_model, spec
    ):
        mpc = build_mpc_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        profile = StaircaseProfile([20.0, 100.0, 20.0], step_duration_s=600.0)
        result = run_experiment(
            mpc, profile, spec=spec, config=ExperimentConfig(seed=6)
        )
        assert result.metrics.max_temperature_c <= 76.0
        assert result.metrics.avg_rpm < 2800.0

    def test_comparable_to_lut(
        self, characterization_samples, fitted_model, fan_model, spec, paper_lut
    ):
        """On a steady-heavy workload the MPC lands within 1% of the
        LUT controller's energy (both settle on the same optimum)."""
        from repro.core.controllers.lut import LUTController

        profile = StaircaseProfile([75.0], step_duration_s=1800.0)
        config = ExperimentConfig(seed=6)
        mpc = build_mpc_from_characterization(
            characterization_samples, fitted_model, fan_model
        )
        mpc_run = run_experiment(mpc, profile, spec=spec, config=config)
        lut_run = run_experiment(
            LUTController(paper_lut), profile, spec=spec, config=config
        )
        ratio = mpc_run.metrics.energy_kwh / lut_run.metrics.energy_kwh
        assert 0.99 <= ratio <= 1.01

"""Unit tests for fan models: cubic power law, airflow, slew, banks."""

import pytest

from repro.server.fan import FanBank, FanModel, fan_speed_ladder
from repro.server.specs import FanSpec


@pytest.fixture
def fan_spec():
    return FanSpec()


class TestFanSpeedLadder:
    def test_paper_ladder(self, fan_spec):
        assert fan_speed_ladder(fan_spec) == (1800, 2400, 3000, 3600, 4200)

    def test_finer_ladder(self, fan_spec):
        ladder = fan_speed_ladder(fan_spec, step_rpm=300.0)
        assert len(ladder) == 9
        assert ladder[0] == 1800 and ladder[-1] == 4200

    def test_zero_step_rejected(self, fan_spec):
        with pytest.raises(ValueError):
            fan_speed_ladder(fan_spec, step_rpm=0.0)


class TestFanModelPower:
    def test_cubic_law(self, fan_spec):
        fan = FanModel(fan_spec, initial_rpm=4200.0)
        # Halving speed divides power by eight.
        assert fan.power_w(2100.0) == pytest.approx(fan.power_w(4200.0) / 8.0)

    def test_reference_power(self, fan_spec):
        fan = FanModel(fan_spec)
        assert fan.power_w(fan_spec.rpm_ref) == pytest.approx(
            fan_spec.power_at_ref_w
        )

    def test_power_monotone_in_rpm(self, fan_spec):
        fan = FanModel(fan_spec)
        powers = [fan.power_w(r) for r in (1800, 2400, 3000, 3600, 4200)]
        assert powers == sorted(powers)
        assert powers[0] > 0

    def test_airflow_linear(self, fan_spec):
        fan = FanModel(fan_spec)
        assert fan.airflow_cfm(2100.0) == pytest.approx(
            fan.airflow_cfm(4200.0) / 2.0
        )


class TestFanModelSlew:
    def test_command_outside_range_rejected(self, fan_spec):
        fan = FanModel(fan_spec)
        with pytest.raises(ValueError):
            fan.set_command(5000.0)
        with pytest.raises(ValueError):
            fan.set_command(1000.0)

    def test_slew_limits_rate(self, fan_spec):
        fan = FanModel(fan_spec, initial_rpm=1800.0)
        fan.set_command(4200.0)
        fan.step(1.0)
        assert fan.rpm == pytest.approx(1800.0 + fan_spec.slew_rpm_per_s)

    def test_reaches_command_eventually(self, fan_spec):
        fan = FanModel(fan_spec, initial_rpm=1800.0)
        fan.set_command(4200.0)
        for _ in range(10):
            fan.step(1.0)
        assert fan.rpm == pytest.approx(4200.0)

    def test_slew_down_symmetric(self, fan_spec):
        fan = FanModel(fan_spec, initial_rpm=4200.0)
        fan.set_command(1800.0)
        fan.step(1.0)
        assert fan.rpm == pytest.approx(4200.0 - fan_spec.slew_rpm_per_s)

    def test_no_overshoot(self, fan_spec):
        fan = FanModel(fan_spec, initial_rpm=1800.0)
        fan.set_command(2000.0)
        fan.step(10.0)
        assert fan.rpm == pytest.approx(2000.0)


class TestFanBank:
    def test_default_bank_shape(self, fan_spec):
        bank = FanBank(fan_spec)
        assert bank.fan_count == 6
        assert bank.group_count == 3

    def test_total_power_is_sum(self, fan_spec):
        bank = FanBank(fan_spec, initial_rpm=4200.0)
        assert bank.total_power_w() == pytest.approx(6 * fan_spec.power_at_ref_w)

    def test_group_command_only_affects_pair(self, fan_spec):
        bank = FanBank(fan_spec, initial_rpm=1800.0)
        bank.set_group_command(1, 4200.0)
        bank.step(100.0)
        rpms = bank.rpms
        assert rpms[0] == rpms[1] == 1800.0
        assert rpms[2] == rpms[3] == 4200.0
        assert rpms[4] == rpms[5] == 1800.0

    def test_set_all_commands(self, fan_spec):
        bank = FanBank(fan_spec, initial_rpm=1800.0)
        bank.set_all_commands(3000.0)
        bank.step(100.0)
        assert all(r == 3000.0 for r in bank.rpms)

    def test_mean_rpm(self, fan_spec):
        bank = FanBank(fan_spec, initial_rpm=1800.0)
        bank.set_group_command(0, 4200.0)
        bank.step(100.0)
        expected = (2 * 4200.0 + 4 * 1800.0) / 6.0
        assert bank.mean_rpm == pytest.approx(expected)

    def test_invalid_group_index(self, fan_spec):
        bank = FanBank(fan_spec)
        with pytest.raises(IndexError):
            bank.set_group_command(3, 2400.0)

    def test_uneven_grouping_rejected(self, fan_spec):
        with pytest.raises(ValueError):
            FanBank(fan_spec, fan_count=5, fans_per_group=2)

    def test_uniform_power_helper_matches_live_power(self, fan_spec):
        bank = FanBank(fan_spec, initial_rpm=2400.0)
        assert bank.power_at_uniform_rpm_w(2400.0) == pytest.approx(
            bank.total_power_w()
        )

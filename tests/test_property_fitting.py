"""Property-based tests: the fit pipeline over randomized ground truths.

The unit tests fit one synthetic dataset; these generate *families* of
plausible servers (random k1/C/k2/k3 within physical ranges) and check
that the identification pipeline recovers each one — the core
methodological claim of the paper's §IV.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.models.fitting import (
    CharacterizationSample,
    fit_fan_power_model,
    fit_power_model,
)

ground_truths = st.fixed_dictionaries(
    {
        "c": st.floats(100.0, 500.0),
        "k1": st.floats(0.3, 8.0),
        "k2": st.floats(0.05, 2.0),
        "k3": st.floats(0.02, 0.08),
    }
)


def make_samples(truth, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    samples = []
    for u in (10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0):
        # Temperature grows with utilization and spans a fan-speed band,
        # mimicking the real characterization grid.
        for t_base in (45.0, 55.0, 65.0, 75.0, 85.0):
            t = t_base + 0.05 * u
            power = truth["c"] + truth["k1"] * u + truth["k2"] * np.exp(
                truth["k3"] * t
            )
            if noise > 0:
                power += rng.normal(0.0, noise)
            samples.append(
                CharacterizationSample(
                    utilization_pct=u,
                    fan_rpm=3000.0,
                    avg_cpu_temperature_c=float(t),
                    compute_power_w=float(power),
                    fan_power_w=20.0,
                )
            )
    return samples


class TestFitRoundTrip:
    @given(truth=ground_truths)
    @settings(max_examples=30, deadline=None)
    def test_clean_data_recovers_leakage_curve(self, truth):
        fitted = fit_power_model(make_samples(truth))
        # Compare the physically meaningful quantities, not raw
        # coefficients (k2/k3 are correlated).
        for temp in (50.0, 65.0, 80.0):
            expected = truth["k2"] * np.exp(truth["k3"] * temp)
            assert fitted.leakage_variable_w(temp) == pytest.approx(
                expected, rel=0.05, abs=0.3
            )

    @given(truth=ground_truths)
    @settings(max_examples=30, deadline=None)
    def test_clean_data_recovers_k1(self, truth):
        fitted = fit_power_model(make_samples(truth))
        assert fitted.k1_w_per_pct == pytest.approx(truth["k1"], rel=0.03, abs=0.05)

    @given(truth=ground_truths, seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_noisy_fit_rmse_at_noise_floor(self, truth, seed):
        fitted = fit_power_model(make_samples(truth, noise=2.0, seed=seed))
        assert fitted.quality.rmse_w < 4.0

    @given(truth=ground_truths)
    @settings(max_examples=20, deadline=None)
    def test_prediction_interpolates(self, truth):
        """Predictions at unseen (U, T) points match the generator."""
        fitted = fit_power_model(make_samples(truth))
        for u, t in ((33.0, 58.0), (66.0, 72.0), (82.0, 63.0)):
            expected = truth["c"] + truth["k1"] * u + truth["k2"] * np.exp(
                truth["k3"] * t
            )
            assert fitted.predict_compute_power_w(u, t) == pytest.approx(
                expected, rel=0.02
            )


class TestFanFitRoundTrip:
    @given(
        coeff=st.floats(10.0, 150.0),
        exponent=st.floats(2.0, 3.5),
        noise=st.floats(0.0, 0.05),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_recovers_power_law(self, coeff, exponent, noise, seed):
        rng = np.random.default_rng(seed)
        rpms = np.array([1800.0, 2400.0, 3000.0, 3600.0, 4200.0])
        powers = coeff * (rpms / 4200.0) ** exponent
        powers = powers * (1.0 + rng.normal(0.0, noise, size=rpms.shape))
        powers = np.maximum(powers, 0.1)
        model = fit_fan_power_model(rpms, powers)
        if noise == 0.0:
            assert model.exponent == pytest.approx(exponent, abs=0.01)
            assert model.coeff_w == pytest.approx(coeff, rel=0.01)
        else:
            # Five points with a few percent multiplicative noise pin
            # the exponent to within roughly half a unit.
            assert model.exponent == pytest.approx(exponent, abs=0.8)

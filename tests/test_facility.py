"""Facility-layer tests: submodels, queue workload, composition.

Pins the three contracts the facility subsystem makes:

* **physics sanity** — the COP curve is monotone in the supply
  setpoint, the power chain never creates energy, carbon follows the
  intensity band;
* **queue conservation** — every generated job is exactly one of
  pending / running / completed, work in equals work drained;
* **facility-off bit-identity** — wrapping a :class:`FleetEngine` in
  a :class:`FacilityEngine` (and the dynamic-workload seam added for
  the queue) changes nothing about the IT-side traces on any backend.
"""

import numpy as np
import pytest

from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.pid import PIController
from repro.engine.checkpoint import CheckpointConfig
from repro.engine.sharded import ru_maxrss_kib
from repro.facility import (
    CarbonModel,
    CoolingPlant,
    EfficiencyCurve,
    FacilityEngine,
    PowerChain,
    WorkloadQueue,
    build_diurnal_carbon_model,
    build_job_queue,
    bursty_job_arrivals,
    diurnal_job_arrivals,
    poisson_job_arrivals,
)
from repro.facility.cooling import MAX_COP, MIN_COP
from repro.fleet.engine import FleetEngine
from repro.units import hours
from repro.workloads.profile import ConstantProfile, StaircaseProfile

# trace columns compared across backends / against the bare engine
TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
)


def assert_traces_equal(a, b) -> None:
    """Bit-for-bit equality over every fleet trace column."""
    for name in TRACES:
        np.testing.assert_array_equal(
            np.asarray(getattr(a, name)),
            np.asarray(getattr(b, name)),
            err_msg=f"trace column {name} differs",
        )


# ----------------------------------------------------------------------
# cooling plant
# ----------------------------------------------------------------------
class TestCoolingPlant:
    def test_cop_increases_with_supply_setpoint(self):
        plant = CoolingPlant()
        cops = [plant.cop(t) for t in np.arange(12.0, 30.0, 2.0)]
        assert all(b > a for a, b in zip(cops, cops[1:]))

    def test_cop_clamped_to_fit_range(self):
        plant = CoolingPlant()
        assert plant.cop(0.0) == MIN_COP
        assert plant.cop(60.0) == MAX_COP

    def test_hot_return_degrades_cop(self):
        plant = CoolingPlant(supply_c=22.0)
        base = plant.effective_cop(22.0, plant.return_ref_c)
        assert base == plant.cop(22.0)
        assert plant.effective_cop(22.0, plant.return_ref_c + 10.0) < base

    def test_cooling_power_scales_with_heat(self):
        plant = CoolingPlant(supply_c=22.0)
        p1 = plant.cooling_power_w(1000.0, 35.0)
        p2 = plant.cooling_power_w(2000.0, 35.0)
        assert 0.0 < p1 < p2
        # COP > 1 with overhead: cooling costs less than the heat moved
        assert p1 < 1000.0

    def test_cooling_power_increases_with_return_temperature(self):
        plant = CoolingPlant(supply_c=22.0)
        assert plant.cooling_power_w(1000.0, 50.0) > plant.cooling_power_w(
            1000.0, 35.0
        )

    def test_return_temperature_energy_balance(self):
        plant = CoolingPlant(supply_c=20.0)
        t1 = plant.return_temperature_c(1000.0, 340.0)
        t2 = plant.return_temperature_c(2000.0, 340.0)
        assert plant.supply_c < t1 < t2
        # doubling airflow halves the temperature rise
        t_half = plant.return_temperature_c(1000.0, 680.0)
        assert t_half - plant.supply_c == pytest.approx(
            (t1 - plant.supply_c) / 2.0
        )

    def test_rejects_unphysical_parameters(self):
        with pytest.raises(ValueError):
            CoolingPlant(supply_c=-300.0)
        with pytest.raises(ValueError):
            CoolingPlant(return_penalty_per_c=-0.1)
        with pytest.raises(ValueError):
            CoolingPlant(cop_coeffs=(1.0, 2.0))
        with pytest.raises(ValueError):
            CoolingPlant().cooling_power_w(-5.0, 35.0)


# ----------------------------------------------------------------------
# power chain
# ----------------------------------------------------------------------
class TestPowerChain:
    def test_efficiency_curve_interpolates_and_clamps(self):
        curve = EfficiencyCurve([(0.0, 0.5), (0.5, 0.9), (1.0, 0.8)])
        assert curve.efficiency(0.0) == 0.5
        assert curve.efficiency(0.25) == pytest.approx(0.7)
        assert curve.efficiency(2.0) == 0.8  # clamped above
        assert curve.points == ((0.0, 0.5), (0.5, 0.9), (1.0, 0.8))

    def test_efficiency_curve_rejects_bad_points(self):
        with pytest.raises(ValueError):
            EfficiencyCurve([(0.0, 0.9)])  # single point
        with pytest.raises(ValueError):
            EfficiencyCurve([(0.5, 0.9), (0.5, 0.8)])  # non-increasing
        with pytest.raises(ValueError):
            EfficiencyCurve([(0.0, 0.0), (1.0, 0.9)])  # zero efficiency
        with pytest.raises(ValueError):
            EfficiencyCurve([(0.0, 0.9), (1.5, 0.9)])  # load > 1

    def test_chain_never_creates_energy(self):
        chain = PowerChain(rated_power_w=10_000.0)
        for it_w in (0.0, 500.0, 2_000.0, 10_000.0):
            assert chain.conditioned_power_w(it_w) >= it_w
            assert chain.chain_loss_w(it_w) >= 0.0

    def test_low_load_efficiency_collapse(self):
        """Relative losses are worst near idle — the PUE-at-idle story."""
        chain = PowerChain(rated_power_w=10_000.0)
        low = chain.conditioned_power_w(200.0) / 200.0
        high = chain.conditioned_power_w(7_500.0) / 7_500.0
        assert low > high

    def test_cooling_bypasses_the_ups(self):
        chain = PowerChain(rated_power_w=10_000.0)
        base = chain.conditioned_power_w(4_000.0)
        assert chain.utility_power_w(4_000.0, 1_000.0) == pytest.approx(
            base + 1_000.0
        )

    def test_rejects_unphysical_parameters(self):
        with pytest.raises(ValueError):
            PowerChain(rated_power_w=0.0)
        with pytest.raises(ValueError):
            PowerChain(rated_power_w=1_000.0).conditioned_power_w(-1.0)


# ----------------------------------------------------------------------
# carbon model
# ----------------------------------------------------------------------
class TestCarbonModel:
    def test_intensity_spans_the_band(self):
        model = build_diurnal_carbon_model(
            duration_s=hours(24.0), base_g_per_kwh=100.0, peak_g_per_kwh=400.0
        )
        sampled = [
            model.intensity_g_per_kwh(t)
            for t in np.arange(0.0, hours(24.0), 600.0)
        ]
        assert min(sampled) >= 100.0
        assert max(sampled) <= 400.0
        # cleanest at 13:00, dirtiest twelve hours opposite
        assert model.intensity_g_per_kwh(hours(13.0)) == pytest.approx(
            100.0, abs=1.0
        )
        assert model.intensity_g_per_kwh(hours(1.0)) == pytest.approx(
            400.0, abs=1.0
        )

    def test_carbon_mass_follows_energy_and_intensity(self):
        model = CarbonModel(
            ConstantProfile(100.0, hours(1.0)),
            base_g_per_kwh=100.0,
            peak_g_per_kwh=300.0,
        )
        # shape pinned at 100 -> peak intensity; 2 kWh * 300 g = 0.6 kg
        assert model.carbon_kg(2.0, 0.0) == pytest.approx(0.6)

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            CarbonModel(
                ConstantProfile(0.0, 10.0),
                base_g_per_kwh=400.0,
                peak_g_per_kwh=100.0,
            )


# ----------------------------------------------------------------------
# queue workload
# ----------------------------------------------------------------------
class TestWorkloadQueue:
    def run_queue(self, small_fleet, queue, dt_s=30.0):
        engine = FleetEngine(
            small_fleet,
            queue,
            controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
        )
        return engine.run(dt_s=dt_s)

    def test_job_conservation(self, small_fleet):
        queue = build_job_queue(
            "poisson",
            small_fleet.server_count,
            duration_s=hours(2.0),
            seed=3,
            jobs_per_hour=20.0,
        )
        self.run_queue(small_fleet, queue)
        stats = queue.stats(hours(2.0))
        assert stats.arrived == (
            stats.completed + stats.running + stats.pending
        )
        assert queue.arrived_count <= queue.job_count
        # drained work never exceeds the work that arrived
        assert stats.executed_work_pct_s <= stats.total_work_pct_s + 1e-6

    def test_light_load_queue_drains(self, small_fleet):
        # well-spaced jobs with generous deadlines: everything finishes
        # in time, deterministically
        queue = WorkloadQueue(
            arrival_s=[0.0, 600.0, 1_200.0, 1_800.0],
            work_pct_s=[3_000.0, 3_000.0, 3_000.0, 3_000.0],
            server_count=small_fleet.server_count,
            duration_s=hours(1.0),
            deadline_s=np.array([0.0, 600.0, 1_200.0, 1_800.0]) + 300.0,
        )
        self.run_queue(small_fleet, queue)
        stats = queue.stats(hours(1.0))
        assert stats.arrived == 4
        assert stats.drained
        assert stats.sla_violations == 0
        assert stats.mean_wait_s >= 0.0
        assert stats.mean_turnaround_s >= stats.mean_wait_s

    def test_overload_grows_a_backlog(self, small_fleet):
        # 4 servers cannot serve 200 one-server-hour jobs in 2 hours
        queue = build_job_queue(
            "poisson",
            small_fleet.server_count,
            duration_s=hours(2.0),
            seed=1,
            jobs_per_hour=100.0,
            mean_work_pct_s=100.0 * 3600.0,
        )
        self.run_queue(small_fleet, queue)
        stats = queue.stats(hours(2.0))
        assert not stats.drained
        assert stats.pending + stats.running > 0
        assert stats.sla_violations > 0

    def test_reset_makes_runs_repeatable(self, small_fleet):
        queue = build_job_queue(
            "bursty",
            small_fleet.server_count,
            duration_s=hours(1.0),
            seed=9,
        )
        first = self.run_queue(small_fleet, queue)
        first_stats = queue.stats(hours(1.0))
        second = self.run_queue(small_fleet, queue)
        assert_traces_equal(first, second)
        assert queue.stats(hours(1.0)) == first_stats

    def test_deadline_accounting(self):
        # one job, one second of work, deadline already missed at end
        queue = WorkloadQueue(
            [0.0], [100.0], server_count=1, duration_s=10.0,
            deadline_s=np.array([0.5]),
        )
        assert queue.total_demand_pct(0.0) == 100.0
        queue.record_executed(0.0, 100.0, 1.0)
        assert queue.completed_count == 1
        stats = queue.stats(10.0)
        assert stats.sla_violations == 1  # finished at t=1 > deadline 0.5

    def test_fifo_drain_order(self):
        queue = WorkloadQueue(
            [0.0, 0.0], [100.0, 100.0], server_count=2, duration_s=10.0
        )
        assert queue.total_demand_pct(0.0) == 200.0
        # only one server's worth executed: the older job finishes first
        queue.record_executed(0.0, 100.0, 1.0)
        assert queue.completed_count == 1
        assert queue.pending_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadQueue([2.0, 1.0], [10.0, 10.0], 1, 10.0)  # unsorted
        with pytest.raises(ValueError):
            WorkloadQueue([0.0], [0.0], 1, 10.0)  # zero work
        with pytest.raises(ValueError):
            WorkloadQueue([0.0], [10.0], 1, 10.0, deadline_s=np.array([-1.0]))
        with pytest.raises(ValueError):
            WorkloadQueue([0.0], [10.0], 1, 10.0, service_rate_pct=0.0)
        with pytest.raises(ValueError):
            build_job_queue("nope", 4)

    def test_generators_are_seeded_and_bounded(self):
        for gen, kwargs in (
            (poisson_job_arrivals, {"jobs_per_hour": 30.0}),
            (
                diurnal_job_arrivals,
                {"base_jobs_per_hour": 5.0, "peak_jobs_per_hour": 30.0},
            ),
            (bursty_job_arrivals, {}),
        ):
            a = gen(hours(2.0), seed=4, **kwargs)
            b = gen(hours(2.0), seed=4, **kwargs)
            np.testing.assert_array_equal(a, b)
            assert np.all(np.diff(a) >= 0.0)
            assert a.size == 0 or (a.min() >= 0.0 and a.max() < hours(2.0))


# ----------------------------------------------------------------------
# engine guards for dynamic workloads
# ----------------------------------------------------------------------
class TestDynamicWorkloadGuards:
    def make_queue(self, fleet):
        return build_job_queue(
            "poisson", fleet.server_count, duration_s=600.0, seed=0
        )

    def test_sharded_backend_rejected(self, small_fleet):
        with pytest.raises(ValueError, match="sharded"):
            FleetEngine(
                small_fleet,
                self.make_queue(small_fleet),
                controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
                backend="sharded",
                shards=2,
            )

    def test_checkpointing_rejected(self, small_fleet, tmp_path):
        with pytest.raises(ValueError, match="checkpoint"):
            FleetEngine(
                small_fleet,
                self.make_queue(small_fleet),
                controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
                checkpoint=CheckpointConfig(directory=tmp_path),
            )

    def test_vector_matches_legacy_with_queue(self, small_fleet):
        """The new per-tick demand seam is bit-identical across loops."""
        results = {}
        for backend in ("vector", "vector-legacy"):
            queue = self.make_queue(small_fleet)
            results[backend] = FleetEngine(
                small_fleet,
                queue,
                controller_factory=lambda i: PIController(),
                backend=backend,
            ).run(dt_s=5.0)
        assert_traces_equal(results["vector"], results["vector-legacy"])


# ----------------------------------------------------------------------
# facility composition
# ----------------------------------------------------------------------
class TestFacilityEngine:
    PROFILE = StaircaseProfile([30.0, 80.0, 55.0], 100.0)

    def engine(self, fleet, backend="vector", **kwargs):
        return FleetEngine(
            fleet,
            self.PROFILE,
            controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
            backend=backend,
            **kwargs,
        )

    @pytest.mark.parametrize(
        "backend,kwargs",
        [
            ("vector", {}),
            ("vector-legacy", {}),
            ("reference", {}),
            ("sharded", {"shards": 2, "shard_mode": "inline"}),
        ],
    )
    def test_facility_off_is_bit_identical(self, small_fleet, backend, kwargs):
        """With every submodel disabled the IT traces match exactly."""
        bare = self.engine(small_fleet, backend, **kwargs).run(dt_s=5.0)
        wrapped = FacilityEngine(self.engine(small_fleet, backend, **kwargs))
        composed = wrapped.run(dt_s=5.0)
        assert_traces_equal(composed.fleet, bare)
        m = composed.metrics
        assert m.pue == 1.0
        assert m.cooling_energy_kwh == 0.0
        assert m.chain_loss_kwh == 0.0
        assert m.carbon_kg == 0.0
        assert m.facility_energy_kwh == pytest.approx(m.it_energy_kwh)
        np.testing.assert_array_equal(composed.carbon_kg, 0.0)

    def test_full_composition_metrics(self, small_fleet):
        facility = FacilityEngine(
            self.engine(small_fleet),
            cooling=CoolingPlant(supply_c=22.0),
            power=PowerChain(
                rated_power_w=small_fleet.server_count * 600.0
            ),
            carbon=build_diurnal_carbon_model(duration_s=300.0),
        )
        result = facility.run(dt_s=5.0)
        m = result.metrics
        assert 1.0 < m.pue <= 2.5
        assert m.carbon_kg > 0.0
        assert m.cooling_energy_kwh > 0.0
        assert m.chain_loss_kwh > 0.0
        assert m.facility_energy_kwh == pytest.approx(
            m.it_energy_kwh + m.cooling_energy_kwh + m.chain_loss_kwh
        )
        assert m.peak_utility_power_w >= float(result.utility_power_w.max())
        assert (
            m.fleet.energy_kwh == m.it_energy_kwh
        )  # IT side untouched by composition
        assert np.all(result.return_c > 22.0)
        # energy-weighted mean intensity stays inside the band
        assert 120.0 <= m.mean_intensity_g_per_kwh <= 450.0

    def test_queue_stats_surface(self, small_fleet):
        queue = build_job_queue(
            "diurnal",
            small_fleet.server_count,
            duration_s=hours(1.0),
            seed=2,
            jobs_per_hour=10.0,
        )
        facility = FacilityEngine(
            FleetEngine(
                small_fleet,
                queue,
                controller_factory=lambda i: FixedSpeedController(rpm=3000.0),
            ),
            cooling=CoolingPlant(),
        )
        m = facility.run(dt_s=30.0).metrics
        assert m.queue is not None
        assert m.queue.arrived == (
            m.queue.completed + m.queue.running + m.queue.pending
        )

    def test_profile_workload_has_no_queue_stats(self, small_fleet):
        facility = FacilityEngine(self.engine(small_fleet))
        assert facility.workload_queue is None
        assert facility.run(dt_s=5.0).metrics.queue is None

    def test_rejects_bad_arguments(self, small_fleet):
        with pytest.raises(TypeError):
            FacilityEngine("not an engine")
        with pytest.raises(ValueError):
            FacilityEngine(self.engine(small_fleet), crac_airflow_cfm=0.0)

    def test_capture_gains_facility_channels(self, small_fleet):
        from repro.obs.capture import FleetCapture

        capture = FleetCapture(signals=("power",))
        facility = FacilityEngine(
            self.engine(small_fleet, capture=capture),
            cooling=CoolingPlant(),
        )
        result = facility.run(dt_s=5.0)
        channel = capture.store.channel("facility.cooling_power_w")
        assert channel.unit == "W"
        _, values = channel.series()
        np.testing.assert_array_equal(values, result.cooling_power_w)
        assert "facility.return_c" in capture.store


# ----------------------------------------------------------------------
# satellite regression: ru_maxrss normalization
# ----------------------------------------------------------------------
class TestRuMaxrssKib:
    def test_linux_reports_kib_passthrough(self):
        assert ru_maxrss_kib(123_456, platform="linux") == 123_456

    def test_darwin_reports_bytes_normalized(self):
        assert ru_maxrss_kib(123_456 * 1024, platform="darwin") == 123_456

    def test_default_platform_is_current(self):
        import sys

        expected = ru_maxrss_kib(2_048_000, platform=sys.platform)
        assert ru_maxrss_kib(2_048_000) == expected

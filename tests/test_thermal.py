"""Unit tests for the RC thermal network."""

import pytest

from repro.server.power import PowerModel
from repro.server.specs import default_server_spec
from repro.server.thermal import (
    ThermalNetwork,
    ThermalState,
    convective_resistance_k_w,
)


@pytest.fixture
def spec():
    return default_server_spec()


@pytest.fixture
def power_model(spec):
    return PowerModel(spec)


@pytest.fixture
def network(spec):
    return ThermalNetwork(spec, initial_temperature_c=24.0)


def _airflow(spec, rpm):
    fan = spec.fan
    return spec.fan_count * fan.cfm_at_ref * rpm / fan.rpm_ref


class TestConvectiveResistance:
    def test_reference_point(self):
        assert convective_resistance_k_w(0.2, 1800.0, 1800.0, 0.8) == 0.2

    def test_decreases_with_rpm(self):
        r_slow = convective_resistance_k_w(0.2, 1800.0, 1800.0, 0.8)
        r_fast = convective_resistance_k_w(0.2, 4200.0, 1800.0, 0.8)
        assert r_fast < r_slow

    def test_scaling_exponent(self):
        r1 = convective_resistance_k_w(0.2, 2000.0, 1800.0, 0.8)
        r2 = convective_resistance_k_w(0.2, 4000.0, 1800.0, 0.8)
        assert r1 / r2 == pytest.approx(2.0**0.8)

    def test_zero_rpm_rejected(self):
        with pytest.raises(ValueError):
            convective_resistance_k_w(0.2, 0.0, 1800.0, 0.8)


class TestPreheat:
    def test_cpu_inlet_above_ambient(self, network, spec):
        inlet = network.cpu_inlet_temperature_c(24.0, 80.0, _airflow(spec, 4200))
        assert inlet > 24.0

    def test_preheat_grows_when_airflow_drops(self, network, spec):
        hot = network.cpu_inlet_temperature_c(24.0, 80.0, _airflow(spec, 1800))
        cool = network.cpu_inlet_temperature_c(24.0, 80.0, _airflow(spec, 4200))
        assert hot > cool

    def test_preheat_magnitude_is_moderate(self, network, spec):
        # A few degC at worst, not tens.
        inlet = network.cpu_inlet_temperature_c(24.0, 80.0, _airflow(spec, 1800))
        assert 24.0 < inlet < 30.0

    def test_zero_airflow_rejected(self, network):
        with pytest.raises(ValueError):
            network.cpu_inlet_temperature_c(24.0, 80.0, 0.0)


class TestTransient:
    def test_heats_up_under_load(self, network, spec, power_model):
        t0 = network.state.max_junction_c
        network.step(60.0, 100.0, 3000.0, _airflow(spec, 3000), 24.0, power_model)
        assert network.state.max_junction_c > t0

    def test_zero_dt_is_noop(self, network, spec, power_model):
        before = network.state.copy()
        network.step(0.0, 100.0, 3000.0, _airflow(spec, 3000), 24.0, power_model)
        assert network.state.junction_c == before.junction_c

    def test_fast_junction_slow_heatsink(self, network, spec, power_model):
        """A load step moves the junction several degC within 30 s while
        the heatsink barely moves (the Fig. 1(b) fast/slow split)."""
        # Pre-settle at idle.
        steady = network.steady_state(0.0, 3000.0, _airflow(spec, 3000), 24.0, power_model)
        network.settle_to(steady)
        j0 = network.state.junction_c[0]
        h0 = network.state.heatsink_c[0]
        for _ in range(30):
            network.step(1.0, 100.0, 3000.0, _airflow(spec, 3000), 24.0, power_model)
        assert network.state.junction_c[0] - j0 > 4.0
        assert network.state.heatsink_c[0] - h0 < 3.0

    def test_converges_to_steady_state(self, network, spec, power_model):
        steady = network.steady_state(
            75.0, 2400.0, _airflow(spec, 2400), 24.0, power_model
        )
        # The DIMM bank is the slowest node (tau ~ 20 min at 2400 RPM),
        # so integrate two hours to let every node converge.
        for _ in range(7200):
            network.step(1.0, 75.0, 2400.0, _airflow(spec, 2400), 24.0, power_model)
        assert network.state.junction_c[0] == pytest.approx(
            steady.junction_c[0], abs=0.3
        )
        assert network.state.dimm_bank_c == pytest.approx(
            steady.dimm_bank_c, abs=0.3
        )

    def test_cools_down_after_load_removed(self, network, spec, power_model):
        for _ in range(600):
            network.step(1.0, 100.0, 1800.0, _airflow(spec, 1800), 24.0, power_model)
        hot = network.state.max_junction_c
        for _ in range(600):
            network.step(1.0, 0.0, 1800.0, _airflow(spec, 1800), 24.0, power_model)
        assert network.state.max_junction_c < hot


class TestSteadyState:
    def test_monotone_in_utilization(self, network, spec, power_model):
        temps = [
            network.steady_state(u, 3000.0, _airflow(spec, 3000), 24.0, power_model)
            .junction_c[0]
            for u in (0.0, 25.0, 50.0, 75.0, 100.0)
        ]
        assert temps == sorted(temps)

    def test_monotone_in_fan_speed(self, network, spec, power_model):
        temps = [
            network.steady_state(100.0, rpm, _airflow(spec, rpm), 24.0, power_model)
            .junction_c[0]
            for rpm in (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)
        ]
        assert temps == sorted(temps, reverse=True)

    def test_paper_calibration_band(self, network, spec, power_model):
        """Fig. 1(a): 100% load spans roughly 55-85 degC across speeds."""
        hot = network.steady_state(
            100.0, 1800.0, _airflow(spec, 1800), 24.0, power_model
        ).junction_c[0]
        cool = network.steady_state(
            100.0, 4200.0, _airflow(spec, 4200), 24.0, power_model
        ).junction_c[0]
        assert hot == pytest.approx(85.0, abs=3.0)
        assert cool == pytest.approx(57.0, abs=3.0)

    def test_heatsink_below_junction_under_load(self, network, spec, power_model):
        steady = network.steady_state(
            100.0, 2400.0, _airflow(spec, 2400), 24.0, power_model
        )
        for t_j, t_h in zip(steady.junction_c, steady.heatsink_c):
            assert t_h < t_j

    def test_all_temps_above_inlet(self, network, spec, power_model):
        steady = network.steady_state(
            10.0, 4200.0, _airflow(spec, 4200), 24.0, power_model
        )
        assert all(t > 24.0 for t in steady.junction_c)
        assert steady.dimm_bank_c > 24.0


class TestStateHelpers:
    def test_copy_is_independent(self):
        state = ThermalState(junction_c=[50.0], heatsink_c=[45.0], dimm_bank_c=40.0)
        clone = state.copy()
        clone.junction_c[0] = 99.0
        assert state.junction_c[0] == 50.0

    def test_max_and_mean(self):
        state = ThermalState(
            junction_c=[50.0, 60.0], heatsink_c=[45.0, 55.0], dimm_bank_c=40.0
        )
        assert state.max_junction_c == 60.0
        assert state.mean_junction_c == 55.0

    def test_settle_to_rejects_wrong_shape(self, network):
        bad = ThermalState(junction_c=[50.0], heatsink_c=[45.0], dimm_bank_c=40.0)
        with pytest.raises(ValueError):
            network.settle_to(bad)


class TestDerivedSensors:
    def test_two_sensors_per_die(self, network, spec):
        readings = network.die_sensor_temperatures_c(sensors_per_die=2)
        assert len(readings) == 2 * spec.socket_count

    def test_sensor_offsets_straddle_junction(self, network):
        network.state.junction_c[0] = 60.0
        readings = network.die_sensor_temperatures_c(sensors_per_die=2)
        assert readings[0] == pytest.approx(59.5)
        assert readings[1] == pytest.approx(60.5)

    def test_dimm_temperature_count(self, network, spec):
        assert len(network.dimm_temperatures_c()) == spec.memory.dimm_count

    def test_dimm_gradient_spans_six_degrees(self, network):
        temps = network.dimm_temperatures_c()
        assert max(temps) - min(temps) == pytest.approx(6.0)

"""Regression tests for the closed-loop accounting fixes.

Four bugs silently skewed the Table-I-style numbers:

1. ``ServerSimulator._snapshot`` re-read the ambient *after* the time
   advance, so with a time-varying ambient the logged inlet disagreed
   with the inlet that drove the thermal step.
2. ``settle_to_steady_state`` never updated ``_demand_pct``, so the
   returned snapshot carried the previous step's demand.
3. ``run_experiment`` fed the metrics the *demanded* utilization
   column, so ``avg_utilization_pct`` hid the DVFS stretch.
4. Poll scheduling advanced one interval per fire, letting the poll
   clock fall unboundedly behind simulated time when ``dt_s`` exceeds
   the poll interval.
"""

from dataclasses import replace
from typing import List, Optional

import numpy as np
import pytest

from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.controllers.coordinated import CoordinatedController
from repro.core.lut import LookupTable
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.server.ambient import AmbientModel, ConstantAmbient
from repro.server.dvfs import default_dvfs_ladder
from repro.server.server import ServerSimulator
from repro.server.specs import default_server_spec
from repro.workloads.profile import ConstantProfile


class RampAmbient(AmbientModel):
    """Linear inlet ramp: ``T(t) = start + rate * t``."""

    def __init__(self, start_c: float, rate_c_per_s: float):
        self.start_c = start_c
        self.rate_c_per_s = rate_c_per_s

    def temperature_c(self, time_s: float) -> float:
        return self.start_c + self.rate_c_per_s * time_s


class PollRecorder(FanController):
    """Holds speed; records every observation time it is polled at."""

    def __init__(self, poll_interval_s: float):
        self.poll_interval_s = poll_interval_s
        self.poll_times_s: List[float] = []

    def reset(self) -> None:
        self.poll_times_s = []

    def initial_rpm(self) -> Optional[float]:
        return 3000.0

    def decide(self, observation: ControllerObservation) -> Optional[float]:
        self.poll_times_s.append(observation.time_s)
        return None


class TestSnapshotInletMatchesPhysics:
    def test_ramp_ambient_snapshot_reports_step_inlet(self):
        """ISSUE repro: a 60 s step on a 0.1 degC/s ramp from 20 degC
        must report the 20.0 degC inlet the physics integrated against,
        not the 26.0 degC post-advance re-read."""
        sim = ServerSimulator(ambient=RampAmbient(20.0, 0.1))
        state = sim.step(60.0, 50.0)
        assert state.inlet_c == pytest.approx(20.0)

    def test_successive_steps_report_pre_step_inlet(self):
        sim = ServerSimulator(ambient=RampAmbient(20.0, 0.1))
        sim.step(60.0, 50.0)
        state = sim.step(60.0, 50.0)
        # second step integrates against T(60 s) = 26.0
        assert state.inlet_c == pytest.approx(26.0)

    def test_constant_ambient_unchanged(self):
        sim = ServerSimulator(ambient=ConstantAmbient(24.0))
        state = sim.step(60.0, 50.0)
        assert state.inlet_c == 24.0

    def test_initial_snapshot_reports_t0_inlet(self):
        sim = ServerSimulator(ambient=RampAmbient(18.0, 1.0))
        assert sim.state.inlet_c == pytest.approx(18.0)


class TestSettleDemand:
    def test_settle_updates_demand(self):
        """ISSUE repro: settle to 10% after a step at 80% must report
        demand_pct == 10, not the stale 80."""
        sim = ServerSimulator()
        sim.step(1.0, 80.0)
        state = sim.settle_to_steady_state(10.0)
        assert state.demand_pct == 10.0
        assert state.utilization_pct == 10.0

    def test_settle_demand_is_pre_stretch_demand(self):
        """At a deep p-state the snapshot keeps demanded vs executed
        distinct: demand stays nominal, utilization is stretched."""
        spec = replace(default_server_spec(), dvfs=default_dvfs_ladder())
        sim = ServerSimulator(spec=spec)
        sim.set_pstate(3)
        state = sim.settle_to_steady_state(40.0)
        assert state.demand_pct == 40.0
        assert state.utilization_pct == pytest.approx(
            spec.dvfs.executed_utilization_pct(40.0, 3)
        )

    def test_settle_inlet_recorded(self):
        sim = ServerSimulator(ambient=RampAmbient(20.0, 0.1))
        sim.step(60.0, 0.0)
        state = sim.settle_to_steady_state(0.0)
        # settle happens at t = 60 s, so the inlet is T(60) = 26.0
        assert state.inlet_c == pytest.approx(26.0)


class TestExecutedUtilizationMetrics:
    def test_avg_utilization_reports_executed_not_demanded(self):
        """A coordinated controller parked in a deep p-state stretches
        busy time; the metric must follow the executed column."""
        spec = replace(default_server_spec(), dvfs=default_dvfs_ladder())
        table = LookupTable(levels_pct=(100.0,), rpms=(3000.0,))
        controller = CoordinatedController(table, spec.dvfs)
        config = ExperimentConfig(
            dt_s=1.0, monitor_window_s=1.0, loadgen_mode="direct"
        )
        result = run_experiment(
            controller, ConstantProfile(40.0, 300.0), spec=spec, config=config
        )
        executed = result.column("executed_util_pct")
        demanded = result.column("instantaneous_util_pct")
        # the governor parks a deeper state, stretching the busy time
        assert result.column("pstate_index").max() > 0
        assert executed.mean() > demanded.mean() + 5.0
        assert result.metrics.avg_utilization_pct == pytest.approx(
            float(executed.mean())
        )

    def test_trace_has_executed_and_deficit_columns(self):
        result = run_experiment(
            PollRecorder(10.0), ConstantProfile(30.0, 60.0)
        )
        # nominal-only ladder: executed follows demand, deficit is zero
        np.testing.assert_array_equal(
            result.column("executed_util_pct"),
            result.column("instantaneous_util_pct"),
        )
        assert np.all(result.column("work_deficit_pct_s") == 0.0)


class TestPollClockAdvancesPastSimTime:
    def test_runner_polls_once_per_tick_when_dt_exceeds_interval(self):
        controller = PollRecorder(poll_interval_s=1.0)
        run_experiment(
            controller,
            ConstantProfile(20.0, 300.0),
            config=ExperimentConfig(dt_s=30.0),
        )
        # exactly one poll per tick — the clock never lags behind, so
        # no tick fires a backlog of stale polls
        np.testing.assert_allclose(
            controller.poll_times_s, np.arange(0.0, 300.0, 30.0)
        )

    def test_runner_poll_cadence_preserved_when_dt_below_interval(self):
        controller = PollRecorder(poll_interval_s=10.0)
        run_experiment(
            controller,
            ConstantProfile(20.0, 60.0),
            config=ExperimentConfig(dt_s=1.0),
        )
        np.testing.assert_allclose(
            controller.poll_times_s, [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
        )

    def test_fleet_engine_polls_once_per_tick_when_dt_exceeds_interval(self):
        from repro.fleet import Fleet, FleetEngine, Rack

        controller = PollRecorder(poll_interval_s=1.0)
        fleet = Fleet(racks=(Rack(name="r", servers=(default_server_spec(),)),))
        FleetEngine(
            fleet,
            ConstantProfile(20.0, 300.0),
            controller_factory=lambda i: controller,
        ).run(dt_s=30.0)
        np.testing.assert_allclose(
            controller.poll_times_s, np.arange(0.0, 300.0, 30.0)
        )

    def test_fleet_engine_poll_cadence_preserved_when_dt_below_interval(self):
        from repro.fleet import Fleet, FleetEngine, Rack

        controller = PollRecorder(poll_interval_s=10.0)
        fleet = Fleet(racks=(Rack(name="r", servers=(default_server_spec(),)),))
        FleetEngine(
            fleet,
            ConstantProfile(20.0, 60.0),
            controller_factory=lambda i: controller,
        ).run(dt_s=1.0)
        np.testing.assert_allclose(
            controller.poll_times_s, [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
        )

"""Unit and closed-loop tests for the coordinated fan+DVFS controller."""

import dataclasses

import pytest

from repro import (
    CoordinatedController,
    ExperimentConfig,
    FixedSpeedController,
    default_server_spec,
    net_savings_pct,
    run_experiment,
)
from repro.core.controllers.base import ControllerObservation
from repro.core.lut import LookupTable
from repro.server.dvfs import default_dvfs_ladder
from repro.workloads.profile import StaircaseProfile


@pytest.fixture
def lut():
    return LookupTable(
        levels_pct=(0.0, 50.0, 100.0), rpms=(1800.0, 1800.0, 2400.0)
    )


@pytest.fixture
def ladder():
    return default_dvfs_ladder()


def obs(time_s, util, rpm=1800.0):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=60.0,
        avg_cpu_temperature_c=59.0,
        utilization_pct=util,
        current_rpm_command=rpm,
    )


class TestPStatePolicy:
    def test_light_load_goes_deep(self, lut, ladder):
        controller = CoordinatedController(lut, ladder)
        assert controller.decide_pstate(obs(0.0, 20.0)) == 3

    def test_heavy_load_stays_nominal(self, lut, ladder):
        controller = CoordinatedController(lut, ladder)
        assert controller.decide_pstate(obs(0.0, 95.0)) in (None, 0)

    def test_no_repeat_commands(self, lut, ladder):
        controller = CoordinatedController(lut, ladder)
        assert controller.decide_pstate(obs(0.0, 20.0)) == 3
        assert controller.decide_pstate(obs(1.0, 20.0)) is None

    def test_recovers_to_nominal_on_spike(self, lut, ladder):
        controller = CoordinatedController(lut, ladder)
        controller.decide_pstate(obs(0.0, 20.0))
        # Busy fraction reads 33% at the deep state for 20% demand; a
        # spike to 100% busy at 1.0 GHz is ~61% nominal demand -> needs
        # a faster state.
        assert controller.decide_pstate(obs(1.0, 100.0)) in (0, 1)

    def test_demand_reconstruction(self, lut, ladder):
        """Observed busy% at a deep state converts back to demand."""
        controller = CoordinatedController(lut, ladder)
        controller.decide_pstate(obs(0.0, 50.0))  # -> p3
        # At p3, 66% busy == 40% nominal demand: still sustainable at p3.
        assert controller.decide_pstate(obs(1.0, 66.0)) is None

    def test_reset(self, lut, ladder):
        controller = CoordinatedController(lut, ladder)
        controller.decide_pstate(obs(0.0, 20.0))
        controller.reset()
        assert controller.decide_pstate(obs(0.0, 20.0)) == 3

    def test_validation(self, lut, ladder):
        with pytest.raises(ValueError):
            CoordinatedController(lut, ladder, headroom_pct=0.0)
        with pytest.raises(ValueError):
            CoordinatedController(lut, ladder, poll_interval_s=0.0)
        with pytest.raises(ValueError):
            CoordinatedController(lut, ladder, lockout_s=-1.0)


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def dvfs_spec(self):
        return dataclasses.replace(
            default_server_spec(), dvfs=default_dvfs_ladder()
        )

    @pytest.fixture(scope="class")
    def runs(self, dvfs_spec):
        lut = LookupTable(
            levels_pct=(0.0, 50.0, 100.0), rpms=(1800.0, 1800.0, 2400.0)
        )
        profile = StaircaseProfile([20.0, 80.0, 20.0], step_duration_s=600.0)
        # Direct mode: PWM's binary instantaneous demand would hide
        # p-state saturation from the busy-average (see controller docs).
        config = ExperimentConfig(seed=4, loadgen_mode="direct")
        coordinated = run_experiment(
            CoordinatedController(lut, dvfs_spec.dvfs),
            profile,
            spec=dvfs_spec,
            config=config,
        )
        baseline = run_experiment(
            FixedSpeedController(3300.0), profile, spec=dvfs_spec, config=config
        )
        return coordinated, baseline

    def test_saves_much_more_than_fan_only(self, runs):
        coordinated, baseline = runs
        savings = net_savings_pct(baseline.metrics, coordinated.metrics)
        assert savings > 15.0

    def test_uses_deep_pstates_during_light_load(self, runs):
        coordinated, _ = runs
        pstates = coordinated.column("pstate_index")
        assert pstates.max() >= 2

    def test_returns_toward_nominal_during_heavy_load(self, runs):
        coordinated, _ = runs
        pstates = coordinated.column("pstate_index")
        times = coordinated.column("time_s")
        heavy = (times > 700.0) & (times < 1200.0)
        assert pstates[heavy].min() <= 1

    def test_respects_thermal_ceiling(self, runs):
        coordinated, _ = runs
        assert coordinated.metrics.max_temperature_c <= 75.5

    def test_no_work_lost(self, dvfs_spec):
        """The headroom policy must never saturate the sockets."""
        lut = LookupTable(levels_pct=(0.0, 100.0), rpms=(1800.0, 2400.0))
        profile = StaircaseProfile([30.0, 90.0], step_duration_s=300.0)
        result = run_experiment(
            CoordinatedController(lut, dvfs_spec.dvfs),
            profile,
            spec=dvfs_spec,
            config=ExperimentConfig(seed=4, loadgen_mode="direct"),
        )
        # Executed utilization never pins at 100% for long stretches:
        # brief pinning during p-state transitions is acceptable.
        util = result.column("instantaneous_util_pct")
        # instantaneous is the PWM demand; check the executed trace via
        # saturation of the busy fraction instead:
        busy = result.column("monitored_util_pct")
        assert (busy >= 99.5).sum() < 120  # < 2 minutes of saturation

"""Unit tests for trace analysis statistics."""

import numpy as np
import pytest

from repro.telemetry.analysis import (
    count_thermal_cycles,
    count_threshold_crossings,
    max_overshoot,
    rolling_mean,
    settle_time_s,
    summarize,
)


class TestRollingMean:
    def test_constant_series(self):
        times = np.arange(10.0)
        out = rolling_mean(times, np.full(10, 5.0), window_s=3.0)
        np.testing.assert_allclose(out, 5.0)

    def test_window_of_regular_series(self):
        times = np.arange(6.0)
        values = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        out = rolling_mean(times, values, window_s=2.0)
        # At t=5 the window holds samples at t=4,5 -> mean 4.5.
        assert out[-1] == pytest.approx(4.5)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            rolling_mean([0.0], [1.0], window_s=0.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            rolling_mean([0.0, 1.0], [1.0], window_s=1.0)

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            rolling_mean([1.0, 0.0], [1.0, 2.0], window_s=1.0)


class TestSettleTime:
    def test_exponential_approach(self):
        times = np.arange(0.0, 1000.0)
        values = 80.0 - 40.0 * np.exp(-times / 100.0)
        settle = settle_time_s(times, values, tolerance=1.0)
        # 40*exp(-t/100) < 1  =>  t > 100*ln(40) ~ 369 s.
        assert settle == pytest.approx(370.0, abs=5.0)

    def test_already_settled(self):
        times = np.arange(0.0, 300.0)
        values = np.full_like(times, 60.0)
        assert settle_time_s(times, values) == 0.0

    def test_faster_dynamics_settle_sooner(self):
        times = np.arange(0.0, 2000.0)
        slow = 80.0 - 40.0 * np.exp(-times / 300.0)
        fast = 80.0 - 40.0 * np.exp(-times / 60.0)
        assert settle_time_s(times, fast) < settle_time_s(times, slow)

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            settle_time_s([0.0, 1.0], [1.0, 1.0], tolerance=0.0)


class TestOvershoot:
    def test_no_overshoot(self):
        assert max_overshoot([70.0, 74.0, 73.0], threshold=75.0) == 0.0

    def test_overshoot_magnitude(self):
        assert max_overshoot([70.0, 78.5, 73.0], threshold=75.0) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_overshoot([], threshold=75.0)


class TestThresholdCrossings:
    def test_counts_upward_crossings_only(self):
        series = [70.0, 76.0, 74.0, 77.0, 78.0, 70.0]
        assert count_threshold_crossings(series, 75.0) == 2

    def test_no_crossings(self):
        assert count_threshold_crossings([70.0, 71.0], 75.0) == 0

    def test_short_series(self):
        assert count_threshold_crossings([80.0], 75.0) == 0


class TestThermalCycles:
    def test_square_wave_cycles(self):
        series = [50.0, 70.0, 50.0, 70.0, 50.0]
        # Four half-cycles of 20 degC amplitude -> two full cycles.
        assert count_thermal_cycles(series, amplitude_c=10.0) == 2

    def test_small_ripple_ignored(self):
        series = [50.0, 52.0, 50.0, 52.0, 50.0]
        assert count_thermal_cycles(series, amplitude_c=10.0) == 0

    def test_monotone_series_has_no_cycles(self):
        assert count_thermal_cycles(list(range(50, 90)), amplitude_c=5.0) == 0

    def test_bad_amplitude(self):
        with pytest.raises(ValueError):
            count_thermal_cycles([1.0, 2.0, 1.0], amplitude_c=0.0)


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.peak_to_peak == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestEdgeCases:
    """Degenerate inputs: empty, single-sample, and all-NaN series."""

    def test_empty_series_raises_everywhere(self):
        for call in (
            lambda: rolling_mean([], [], 10.0),
            lambda: settle_time_s([], []),
            lambda: max_overshoot([], 75.0),
            lambda: summarize([]),
        ):
            with pytest.raises(ValueError, match="empty"):
                call()

    def test_single_sample(self):
        # One sample is its own window mean, settles instantly, and can
        # neither cross a threshold nor complete a thermal cycle.
        assert rolling_mean([0.0], [5.0], 10.0).tolist() == [5.0]
        assert settle_time_s([0.0], [5.0]) == 0.0
        assert count_threshold_crossings([5.0], 1.0) == 0
        assert count_thermal_cycles([5.0]) == 0
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.peak_to_peak == 0.0

    def test_two_samples_no_cycles(self):
        # A cycle needs a turning point; a monotone pair has none.
        assert count_thermal_cycles([20.0, 80.0]) == 0

    def test_all_nan_channel(self):
        # A dropped-out channel (every read NaN) must not crash the
        # evaluation: NaN propagates through the means, the settle
        # scan never finds an in-band sample (full-span answer), and
        # the overshoot/cycle counts stay at their "nothing happened"
        # values (NaN comparisons are False).
        nans = [float("nan")] * 3
        times = [0.0, 1.0, 2.0]
        assert np.isnan(rolling_mean(times, nans, 2.0)).all()
        assert settle_time_s(times, nans) == 2.0
        assert max_overshoot(nans, 75.0) == 0.0
        assert count_threshold_crossings(nans, 75.0) == 0
        assert count_thermal_cycles([float("nan")] * 5) == 0
        summary = summarize(nans)
        assert summary.count == 3
        assert np.isnan(summary.mean)

    def test_mismatched_and_non_monotonic_series_raise(self):
        with pytest.raises(ValueError, match="same shape"):
            rolling_mean([0.0, 1.0], [1.0], 10.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            settle_time_s([1.0, 0.0], [1.0, 2.0])

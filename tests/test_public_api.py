"""Public API surface consistency checks.

A downstream user's first contact is ``import repro``; these tests pin
that the advertised surface actually resolves, that ``__all__`` lists
are accurate, and that the version metadata is coherent.
"""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.core.controllers",
    "repro.experiments",
    "repro.facility",
    "repro.fleet",
    "repro.models",
    "repro.obs",
    "repro.reporting",
    "repro.server",
    "repro.sweep",
    "repro.telemetry",
    "repro.workloads",
)


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_has_no_duplicates(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__)), package

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_key_entry_points_importable(self):
        from repro import (  # noqa: F401
            BangBangController,
            CoordinatedController,
            LUTController,
            ModelPredictiveController,
            OracleController,
            PIController,
            ServerSimulator,
            build_paper_lut,
            build_table1,
            run_experiment,
        )

    def test_controllers_share_base(self):
        from repro import (
            BangBangController,
            CoordinatedController,
            FanController,
            FixedSpeedController,
            LUTController,
            LookupTable,
            ModelPredictiveController,
            OracleController,
            PIController,
        )

        lut = LookupTable(levels_pct=(0.0,), rpms=(1800.0,))
        from repro.core.thermal_map import ThermalMap
        from repro.models.leakage import FanPowerModel, LeakageModel
        from repro.server.dvfs import DvfsSpec
        import numpy as np

        instances = [
            FixedSpeedController(3300.0),
            BangBangController(),
            LUTController(lut),
            PIController(),
            OracleController(),
            CoordinatedController(lut, DvfsSpec()),
            ModelPredictiveController(
                thermal_map=ThermalMap([0.0, 100.0], [1800.0, 4200.0],
                                       np.array([[40.0, 32.0], [85.0, 58.0]])),
                leakage_model=LeakageModel(0.0, 0.65, 0.0475),
                fan_power_model=FanPowerModel(55.0, 3.0, 4200.0),
            ),
        ]
        for controller in instances:
            assert isinstance(controller, FanController)
            assert controller.poll_interval_s > 0
            assert isinstance(controller.name, str) and controller.name

    def test_cli_module_has_main(self):
        from repro.cli import main

        assert callable(main)

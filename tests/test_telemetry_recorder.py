"""Unit tests for the trace recorder and CSV round-trip."""

import numpy as np
import pytest

from repro.telemetry.recorder import TraceRecorder


class TestSchema:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            TraceRecorder([])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            TraceRecorder(["a", "a"])

    def test_missing_column_rejected(self):
        recorder = TraceRecorder(["a", "b"])
        with pytest.raises(ValueError):
            recorder.record({"a": 1.0})

    def test_extra_keys_ignored(self):
        recorder = TraceRecorder(["a"])
        recorder.record({"a": 1.0, "b": 2.0})
        assert recorder.column("a")[0] == 1.0


class TestAccess:
    def test_length(self):
        recorder = TraceRecorder(["a"])
        for i in range(5):
            recorder.record({"a": float(i)})
        assert len(recorder) == 5

    def test_column_array(self):
        recorder = TraceRecorder(["a", "b"])
        recorder.record({"a": 1.0, "b": 2.0})
        recorder.record({"a": 3.0, "b": 4.0})
        np.testing.assert_allclose(recorder.column("b"), [2.0, 4.0])

    def test_unknown_column(self):
        recorder = TraceRecorder(["a"])
        with pytest.raises(KeyError):
            recorder.column("zzz")

    def test_as_arrays_keys(self):
        recorder = TraceRecorder(["a", "b"])
        recorder.record({"a": 1.0, "b": 2.0})
        arrays = recorder.as_arrays()
        assert set(arrays) == {"a", "b"}


class TestRecordChunk:
    def test_chunk_matches_row_by_row(self):
        by_row = TraceRecorder(["a", "b"])
        data = {"a": np.arange(5.0), "b": np.arange(5.0) * 2.0}
        for i in range(5):
            by_row.record({"a": data["a"][i], "b": data["b"][i]})
        by_chunk = TraceRecorder(["a", "b"])
        by_chunk.record_chunk(data)
        np.testing.assert_array_equal(by_chunk.column("a"), by_row.column("a"))
        np.testing.assert_array_equal(by_chunk.column("b"), by_row.column("b"))

    def test_chunks_append(self):
        recorder = TraceRecorder(["x"])
        recorder.record_chunk({"x": [1.0, 2.0]})
        recorder.record({"x": 3.0})
        recorder.record_chunk({"x": [4.0]})
        np.testing.assert_array_equal(
            recorder.column("x"), [1.0, 2.0, 3.0, 4.0]
        )

    def test_growth_beyond_initial_capacity(self):
        recorder = TraceRecorder(["x"], capacity=4)
        recorder.record_chunk({"x": np.arange(1000.0)})
        recorder.record_chunk({"x": np.arange(1000.0, 1500.0)})
        assert len(recorder) == 1500
        np.testing.assert_array_equal(
            recorder.column("x"), np.arange(1500.0)
        )

    def test_missing_column_rejected(self):
        recorder = TraceRecorder(["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            recorder.record_chunk({"a": [1.0]})

    def test_mismatched_lengths_rejected(self):
        recorder = TraceRecorder(["a", "b"])
        with pytest.raises(ValueError, match="rows"):
            recorder.record_chunk({"a": [1.0, 2.0], "b": [1.0]})

    def test_scalar_broadcast_against_array_column(self):
        recorder = TraceRecorder(["a", "b"])
        recorder.record_chunk({"a": [1.0, 2.0, 3.0], "b": 7.0})
        np.testing.assert_array_equal(recorder.column("b"), [7.0, 7.0, 7.0])

    def test_all_scalar_chunk_rejected(self):
        recorder = TraceRecorder(["a"])
        with pytest.raises(ValueError, match="array"):
            recorder.record_chunk({"a": 1.0})

    def test_empty_chunk_is_noop(self):
        recorder = TraceRecorder(["a"])
        recorder.record_chunk({"a": np.empty(0)})
        assert len(recorder) == 0


class TestColumnCaching:
    def test_column_is_cached_between_reads(self):
        recorder = TraceRecorder(["a"])
        recorder.record({"a": 1.0})
        first = recorder.column("a")
        assert recorder.column("a") is first

    def test_cache_invalidated_on_record(self):
        recorder = TraceRecorder(["a"])
        recorder.record({"a": 1.0})
        stale = recorder.column("a")
        recorder.record({"a": 2.0})
        fresh = recorder.column("a")
        np.testing.assert_array_equal(stale, [1.0])
        np.testing.assert_array_equal(fresh, [1.0, 2.0])

    def test_cache_invalidated_on_record_chunk(self):
        recorder = TraceRecorder(["a"])
        recorder.record_chunk({"a": [1.0]})
        recorder.column("a")
        recorder.record_chunk({"a": [2.0, 3.0]})
        np.testing.assert_array_equal(recorder.column("a"), [1.0, 2.0, 3.0])

    def test_returned_column_is_read_only(self):
        recorder = TraceRecorder(["a"])
        recorder.record({"a": 1.0})
        column = recorder.column("a")
        with pytest.raises(ValueError):
            column[0] = 99.0


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        recorder = TraceRecorder(["time_s", "power_w"])
        for i in range(10):
            recorder.record({"time_s": float(i), "power_w": 500.0 + i})
        path = recorder.to_csv(tmp_path / "trace.csv")
        loaded = TraceRecorder.from_csv(path)
        assert loaded.columns == recorder.columns
        np.testing.assert_allclose(
            loaded.column("power_w"), recorder.column("power_w")
        )

    def test_empty_trace_roundtrip(self, tmp_path):
        recorder = TraceRecorder(["x"])
        path = recorder.to_csv(tmp_path / "empty.csv")
        loaded = TraceRecorder.from_csv(path)
        assert len(loaded) == 0
        assert loaded.columns == ("x",)

"""Unit tests for the trace recorder and CSV round-trip."""

import numpy as np
import pytest

from repro.telemetry.recorder import TraceRecorder


class TestSchema:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            TraceRecorder([])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(ValueError):
            TraceRecorder(["a", "a"])

    def test_missing_column_rejected(self):
        recorder = TraceRecorder(["a", "b"])
        with pytest.raises(ValueError):
            recorder.record({"a": 1.0})

    def test_extra_keys_ignored(self):
        recorder = TraceRecorder(["a"])
        recorder.record({"a": 1.0, "b": 2.0})
        assert recorder.column("a")[0] == 1.0


class TestAccess:
    def test_length(self):
        recorder = TraceRecorder(["a"])
        for i in range(5):
            recorder.record({"a": float(i)})
        assert len(recorder) == 5

    def test_column_array(self):
        recorder = TraceRecorder(["a", "b"])
        recorder.record({"a": 1.0, "b": 2.0})
        recorder.record({"a": 3.0, "b": 4.0})
        np.testing.assert_allclose(recorder.column("b"), [2.0, 4.0])

    def test_unknown_column(self):
        recorder = TraceRecorder(["a"])
        with pytest.raises(KeyError):
            recorder.column("zzz")

    def test_as_arrays_keys(self):
        recorder = TraceRecorder(["a", "b"])
        recorder.record({"a": 1.0, "b": 2.0})
        arrays = recorder.as_arrays()
        assert set(arrays) == {"a", "b"}


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        recorder = TraceRecorder(["time_s", "power_w"])
        for i in range(10):
            recorder.record({"time_s": float(i), "power_w": 500.0 + i})
        path = recorder.to_csv(tmp_path / "trace.csv")
        loaded = TraceRecorder.from_csv(path)
        assert loaded.columns == recorder.columns
        np.testing.assert_allclose(
            loaded.column("power_w"), recorder.column("power_w")
        )

    def test_empty_trace_roundtrip(self, tmp_path):
        recorder = TraceRecorder(["x"])
        path = recorder.to_csv(tmp_path / "empty.csv")
        loaded = TraceRecorder.from_csv(path)
        assert len(loaded) == 0
        assert loaded.columns == ("x",)

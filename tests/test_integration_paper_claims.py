"""Integration tests pinning the paper's headline claims.

Each test corresponds to a specific statement in the paper; together
they are the acceptance suite for the reproduction (see EXPERIMENTS.md
for the full paper-vs-measured record).
"""

import numpy as np
import pytest

from repro import (
    fig2a_series,
    run_constant_load_experiment,
    steady_state_point,
)
from repro.telemetry.analysis import settle_time_s


def _load_phase(result):
    """Times/temps restricted to the 30-minute load phase."""
    times = result.column("time_s")
    temps = result.column("cpu0_junction_c")
    mask = (times >= 300.0) & (times < 2100.0)
    return times[mask], temps[mask]


class TestFig1aClaims:
    """'For 1800 RPM the steady state is reached after 15 minutes of
    execution, whereas for the 4200 RPM case, steady state is achieved
    after only 5 minutes.'"""

    @pytest.fixture(scope="class")
    def transients(self):
        return {
            rpm: run_constant_load_experiment(100.0, rpm, seed=1)
            for rpm in (1800.0, 4200.0)
        }

    def test_slow_settle_at_1800(self, transients):
        times, temps = _load_phase(transients[1800.0])
        settle = settle_time_s(times, temps, tolerance=1.5)
        assert 10.0 * 60.0 <= settle <= 18.0 * 60.0

    def test_fast_settle_at_4200(self, transients):
        times, temps = _load_phase(transients[4200.0])
        settle = settle_time_s(times, temps, tolerance=1.5)
        assert settle <= 7.0 * 60.0

    def test_steady_temperature_ordering(self, transients):
        _, hot = _load_phase(transients[1800.0])
        _, cool = _load_phase(transients[4200.0])
        assert hot[-1] > cool[-1] + 20.0

    def test_temperature_band(self, transients):
        """Fig. 1(a)'s y-axis spans ~40-90 degC."""
        for rpm, result in transients.items():
            temps = result.column("cpu0_junction_c")
            assert np.all(temps > 30.0), rpm
            assert np.all(temps < 90.0), rpm


class TestFig1bClaims:
    """'...a fast trend that raises the CPU temperature by 5 to 8 degC
    in less than 30 seconds due to workload changes, and the slow
    temperature increase taking up to 15 minutes.'"""

    def test_fast_transient_on_load_step(self):
        result = run_constant_load_experiment(100.0, 1800.0, seed=1)
        times = result.column("time_s")
        temps = result.column("cpu0_junction_c")
        # The load starts at t=300 (after the idle head).
        t0 = np.searchsorted(times, 300.0)
        t30 = np.searchsorted(times, 330.0)
        fast_rise = temps[t30] - temps[t0]
        assert 4.0 <= fast_rise <= 10.0

    def test_pwm_thermal_ripple_visible(self):
        """Thermal oscillations occur because LoadGen uses PWM."""
        result = run_constant_load_experiment(50.0, 1800.0, seed=1)
        times = result.column("time_s")
        temps = result.column("cpu0_junction_c")
        mask = (times >= 1500.0) & (times < 2100.0)
        ripple = np.max(temps[mask]) - np.min(temps[mask])
        assert 1.5 <= ripple <= 10.0

    def test_steady_temperature_monotone_in_utilization(self):
        finals = {}
        for u in (25.0, 50.0, 75.0, 100.0):
            result = run_constant_load_experiment(u, 1800.0, seed=1)
            _, temps = _load_phase(result)
            finals[u] = np.mean(temps[-300:])
        values = [finals[u] for u in (25.0, 50.0, 75.0, 100.0)]
        assert values == sorted(values)


class TestFig2Claims:
    """'The sum of leakage and fan power is a convex-like curve that
    reaches a minimum around 70 degC, which corresponds to a fan speed
    of 2400 RPM.'"""

    def test_minimum_near_70c_2400rpm(self, spec):
        data = fig2a_series(spec=spec)
        best = int(np.argmin(data["leak_plus_fan_w"]))
        assert data["fan_rpm"][best] == pytest.approx(2400.0, abs=300.0)
        assert data["temperature_c"][best] == pytest.approx(71.0, abs=4.0)

    def test_savings_can_reach_30w(self, spec):
        """'Power savings achieved only by setting the appropriate fan
        speed can reach 30 W for our server.'"""
        data = fig2a_series(spec=spec)
        spread = np.max(data["leak_plus_fan_w"]) - np.min(data["leak_plus_fan_w"])
        assert spread >= 30.0

    def test_curve_is_convex_like(self, spec):
        """Decreasing then increasing when walked from hot to cold."""
        data = fig2a_series(spec=spec)
        sums = data["leak_plus_fan_w"]
        best = int(np.argmin(sums))
        assert np.all(np.diff(sums[: best + 1]) <= 1e-9) or best == 0
        assert np.all(np.diff(sums[best:]) >= -1e-9)

    def test_leakage_exponential_shape(self, spec):
        """Leakage vs temperature curves upward (positive second
        difference) over the measured band."""
        data = fig2a_series(spec=spec)
        temps, leaks = data["temperature_c"], data["leakage_w"]
        # Interpolate on a regular temperature grid, then check growth.
        grid = np.linspace(temps[0], temps[-1], 12)
        on_grid = np.interp(grid, temps, leaks)
        slopes = np.diff(on_grid)
        assert np.all(slopes > 0)
        assert slopes[-1] > 1.5 * slopes[0]


class TestSteadyStateEconomy:
    def test_optimum_beats_default_by_tens_of_watts(self):
        """At full load, running at the optimum (2400 RPM) rather than
        overcooled defaults saves whole-server power."""
        optimal = steady_state_point(100.0, 2400.0)
        overcooled = steady_state_point(100.0, 4200.0)
        assert overcooled.total_power_w - optimal.total_power_w >= 25.0

    def test_undercooling_also_loses(self):
        """Dropping below the optimum loses power to leakage — the
        central leakage-awareness claim: slowest is not best."""
        optimal = steady_state_point(100.0, 2400.0)
        undercooled = steady_state_point(100.0, 1800.0)
        assert undercooled.leak_plus_fan_w > optimal.leak_plus_fan_w

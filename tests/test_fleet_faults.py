"""Fleet fault injection: schedules, compilation, engine semantics.

The acceptance contract pinned here: a compound fault drill runs
bit-identically on ``vector`` and ``vector-legacy``, an all-empty
schedule reproduces the fault-free traces exactly, outage servers
execute zero work while their share respills, fan derates cap the
actuated speed, CRAC excursions shift the affected inlets, and the
degraded-mode metrics attribute the damage.
"""

import math

import numpy as np
import pytest

from repro.core.controllers.bangbang import BangBangController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.pid import PIController
from repro.fleet import (
    CoolestFirstPolicy,
    CracExcursionEvent,
    FanDegradationEvent,
    FaultSchedule,
    Fleet,
    FleetEngine,
    FleetScheduler,
    LeastUtilizedPolicy,
    Rack,
    SensorFaultEvent,
    ServerOutageEvent,
    build_uniform_fleet,
)
from repro.server.specs import default_server_spec
from repro.workloads.profile import ConstantProfile, StaircaseProfile

FLEET_TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
    "fault_active",
    "respilled_pct",
    "fault_unserved_pct",
)


def drill_schedule():
    """The acceptance drill: stuck-low sensor + outage + CRAC excursion."""
    return FaultSchedule(
        events=(
            SensorFaultEvent(
                server=0, mode="stuck", value=30.0, start_s=60.0, end_s=260.0
            ),
            ServerOutageEvent(server=3, start_s=100.0, end_s=300.0),
            CracExcursionEvent(delta_c=3.0, rack=1, start_s=40.0, end_s=200.0),
        )
    )


def run_fleet(fleet, profile, backend, faults, dt_s=2.0, policy=None, **kwargs):
    scheduler = FleetScheduler(
        policy if policy is not None else CoolestFirstPolicy()
    )
    return FleetEngine(
        fleet,
        profile,
        scheduler=scheduler,
        controller_factory=lambda i: PIController(),
        backend=backend,
        faults=faults,
        **kwargs,
    ).run(dt_s=dt_s)


class TestScheduleValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SensorFaultEvent(server=0, mode="melt")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="end_s"):
            ServerOutageEvent(server=0, start_s=50.0, end_s=50.0)
        with pytest.raises(ValueError, match="start_s"):
            ServerOutageEvent(server=0, start_s=-1.0)

    def test_bad_rpm_factor_rejected(self):
        for factor in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="rpm_factor"):
                FanDegradationEvent(server=0, rpm_factor=factor)

    def test_non_finite_excursion_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            CracExcursionEvent(delta_c=math.nan)

    def test_non_event_rejected(self):
        with pytest.raises(TypeError, match="FaultEvent"):
            FaultSchedule(events=({"kind": "outage"},))

    def test_out_of_range_targets_rejected_by_engine(self, small_fleet):
        profile = ConstantProfile(40.0, 60.0)
        with pytest.raises(ValueError, match="server 9"):
            FleetEngine(
                small_fleet,
                profile,
                faults=FaultSchedule(events=(ServerOutageEvent(server=9),)),
            )
        with pytest.raises(ValueError, match="rack 5"):
            FleetEngine(
                small_fleet,
                profile,
                faults=FaultSchedule(
                    events=(CracExcursionEvent(delta_c=2.0, rack=5),)
                ),
            )

    def test_engine_rejects_non_schedule(self, small_fleet):
        with pytest.raises(TypeError, match="FaultSchedule"):
            FleetEngine(
                small_fleet,
                ConstantProfile(40.0, 60.0),
                faults=[ServerOutageEvent(server=0)],
            )


class TestScheduleJsonAndResolve:
    def test_json_round_trip(self, tmp_path):
        schedule = drill_schedule()
        path = schedule.to_json(tmp_path / "drill.json")
        loaded = FaultSchedule.from_json(path)
        assert loaded == schedule

    def test_infinite_end_survives_round_trip(self, tmp_path):
        schedule = FaultSchedule(
            events=(FanDegradationEvent(server=1, rpm_factor=0.7, start_s=9.0),)
        )
        loaded = FaultSchedule.from_json(schedule.to_json(tmp_path / "f.json"))
        assert loaded.events[0].end_s == math.inf

    def test_from_dicts_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSchedule.from_dicts([{"kind": "meteor"}])

    def test_from_dicts_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="outage"):
            FaultSchedule.from_dicts([{"kind": "outage", "sever": 1}])

    def test_resolve_forms(self):
        schedule = drill_schedule()
        assert FaultSchedule.resolve(None) is None
        assert FaultSchedule.resolve(FaultSchedule()) is None
        assert FaultSchedule.resolve(schedule) is schedule
        assert FaultSchedule.resolve(list(schedule.events)) == schedule
        assert FaultSchedule.resolve(schedule.to_dicts()) == schedule
        with pytest.raises(TypeError, match="FaultSchedule"):
            FaultSchedule.resolve("outage")


class TestCompile:
    def test_empty_schedule_compiles_to_none(self, small_fleet):
        assert FaultSchedule().compile(small_fleet, 10, 1.0) is None

    def test_masks_follow_windows(self, small_fleet):
        plan = drill_schedule().compile(small_fleet, 150, 2.0)
        times = np.arange(150) * 2.0
        np.testing.assert_array_equal(
            plan.outage[:, 3], (times >= 100.0) & (times < 300.0)
        )
        assert not plan.outage[:, :3].any()
        # rack 1 holds servers 2 and 3; both see the excursion window
        window = (times >= 40.0) & (times < 200.0)
        np.testing.assert_array_equal(
            plan.supply_delta[:, 2], np.where(window, 3.0, 0.0)
        )
        assert np.all(plan.supply_delta[:, :2] == 0.0)
        # the sensor fault marks server 0 degraded over its window
        np.testing.assert_array_equal(
            plan.fault_active[:, 0], (times >= 60.0) & (times < 260.0)
        )

    def test_fan_cap_clamped_to_bank_range(self, small_fleet):
        spec = small_fleet.servers[0]
        tiny = FaultSchedule(
            events=(FanDegradationEvent(server=0, rpm_factor=0.01),)
        ).compile(small_fleet, 5, 1.0)
        assert np.all(tiny.rpm_cap[:, 0] == spec.fan.rpm_min)


class TestEngineFaultSemantics:
    @pytest.fixture(scope="class")
    def drill_runs(self, small_fleet):
        profile = StaircaseProfile([30.0, 85.0, 50.0], 120.0)
        runs = {
            backend: run_fleet(
                small_fleet, profile, backend, drill_schedule()
            )
            for backend in ("vector", "vector-legacy", "reference")
        }
        runs["healthy"] = run_fleet(small_fleet, profile, "vector", None)
        return runs

    def test_drill_bit_identical_vector_vs_legacy(self, drill_runs):
        for name in FLEET_TRACES:
            np.testing.assert_array_equal(
                getattr(drill_runs["vector"], name),
                getattr(drill_runs["vector-legacy"], name),
                err_msg=f"fleet trace {name!r} diverged under the drill",
            )

    def test_reference_backend_agrees(self, drill_runs):
        vec, ref = drill_runs["vector"], drill_runs["reference"]
        np.testing.assert_allclose(
            vec.max_junction_c, ref.max_junction_c, rtol=0, atol=1e-7
        )
        np.testing.assert_allclose(vec.inlet_c, ref.inlet_c, rtol=0, atol=1e-9)
        np.testing.assert_array_equal(vec.utilization_pct, ref.utilization_pct)
        np.testing.assert_array_equal(vec.fault_active, ref.fault_active)

    def test_empty_schedule_is_bit_identical_to_no_faults(self, small_fleet):
        profile = StaircaseProfile([30.0, 85.0, 50.0], 120.0)
        for backend in ("vector", "vector-legacy"):
            plain = run_fleet(small_fleet, profile, backend, None)
            empty = run_fleet(small_fleet, profile, backend, FaultSchedule())
            for name in FLEET_TRACES:
                np.testing.assert_array_equal(
                    getattr(plain, name),
                    getattr(empty, name),
                    err_msg=f"{backend}: {name!r} changed under an empty "
                    "schedule",
                )

    def test_outage_servers_execute_nothing(self, drill_runs, small_fleet):
        result = drill_runs["vector"]
        plan = drill_schedule().compile(small_fleet, 180, 2.0)
        assert plan.outage.any()
        assert np.all(result.utilization_pct[plan.outage] == 0.0)

    def test_fault_free_run_has_zero_degraded_columns(self, drill_runs):
        healthy = drill_runs["healthy"]
        assert not healthy.fault_active.any()
        assert np.all(healthy.respilled_pct == 0.0)
        assert np.all(healthy.fault_unserved_pct == 0.0)
        m = healthy.metrics
        assert m.fault_time_s == 0.0
        assert m.fault_ticks == 0
        assert m.respilled_pct_s == 0.0
        assert m.fault_sla_pct_s == 0.0

    def test_crac_excursion_shifts_inlets_exactly(self):
        """Without recirculation the inlet shift equals the excursion
        delta on the affected rack, and only there."""
        spec = default_server_spec()
        fleet = Fleet(
            racks=(
                Rack(name="r0", servers=(spec,)),
                Rack(name="r1", servers=(spec,)),
            )
        )
        profile = ConstantProfile(40.0, 240.0)
        schedule = FaultSchedule(
            events=(
                CracExcursionEvent(
                    delta_c=4.0, rack=1, start_s=80.0, end_s=160.0
                ),
            )
        )
        base = run_fleet(fleet, profile, "vector", None)
        excursion = run_fleet(fleet, profile, "vector", schedule)
        times = np.arange(120) * 2.0
        window = (times >= 80.0) & (times < 160.0)
        delta = excursion.inlet_c - base.inlet_c
        np.testing.assert_array_equal(
            delta[:, 1], np.where(window, 4.0, 0.0)
        )
        np.testing.assert_array_equal(delta[:, 0], np.zeros(120))

    def test_fan_degradation_caps_actuated_speed(self, small_fleet):
        spec = small_fleet.servers[1]
        cap = 0.5 * spec.fan.rpm_max
        schedule = FaultSchedule(
            events=(
                FanDegradationEvent(server=1, rpm_factor=0.5, start_s=100.0),
            )
        )
        # every controller pushes 4000 RPM; the derated bank cannot
        # follow
        result = FleetEngine(
            small_fleet,
            ConstantProfile(90.0, 400.0),
            scheduler=FleetScheduler(CoolestFirstPolicy()),
            controller_factory=lambda i: FixedSpeedController(rpm=4000.0),
            faults=schedule,
        ).run(dt_s=2.0)
        times = np.arange(200) * 2.0
        # after the onset plus a slew allowance, the bank cannot exceed
        # the derated cap however hard the controller pushes
        settled = times >= 100.0 + spec.fan.rpm_max / spec.fan.slew_rpm_per_s
        assert np.all(result.mean_rpm[settled, 1] <= cap + 1e-9)
        # the healthy servers follow the 4000 RPM command
        assert np.all(result.mean_rpm[settled, 0] == 4000.0)
        # before the onset both banks track the command
        assert result.mean_rpm[40, 1] == 4000.0

    def test_stuck_low_sensor_blinds_fleet_controller(self, small_fleet):
        """A stuck-low channel under bang-bang control parks the fans
        at minimum and lets the junction run hotter than the healthy
        run — the blind-controller scenario at fleet scale."""
        profile = ConstantProfile(95.0, 600.0)
        schedule = FaultSchedule(
            events=(
                SensorFaultEvent(server=0, mode="stuck", value=30.0),
            )
        )

        def run(faults):
            return FleetEngine(
                small_fleet,
                profile,
                scheduler=FleetScheduler(LeastUtilizedPolicy()),
                controller_factory=lambda i: BangBangController(),
                faults=faults,
                trip_on_critical=False,
            ).run(dt_s=2.0)

        healthy = run(None)
        blind = run(schedule)
        assert (
            blind.max_junction_c[-1, 0]
            > healthy.max_junction_c[-1, 0] + 1.0
        )
        assert blind.mean_rpm[-1, 0] < healthy.mean_rpm[-1, 0]

    def test_dropout_holds_commands_until_repair(self, small_fleet):
        """A dropped-out channel freezes the server's fan command for
        the window; control resumes after repair.  A deterministic
        cycling controller makes the freeze unambiguous."""
        from repro.core.controllers.base import FanController

        class Cycler(FanController):
            name = "cycler"
            poll_interval_s = 10.0

            def __init__(self):
                self._calls = 0

            def decide(self, observation):
                self._calls += 1
                return (2000.0, 2600.0, 3200.0)[self._calls % 3]

            def reset(self):
                self._calls = 0

        profile = ConstantProfile(40.0, 600.0)
        schedule = FaultSchedule(
            events=(
                SensorFaultEvent(
                    server=0, mode="dropout", start_s=100.0, end_s=460.0
                ),
            )
        )

        def run(faults):
            return FleetEngine(
                small_fleet,
                profile,
                scheduler=FleetScheduler(LeastUtilizedPolicy()),
                controller_factory=lambda i: Cycler(),
                faults=faults,
            ).run(dt_s=2.0)

        result = run(schedule)
        healthy = run(None)
        times = result.times_s - 2.0  # decision times
        # allow one slew horizon after the last pre-dropout command
        window = (times >= 140.0) & (times < 460.0)
        frozen = result.mean_rpm[window, 0]
        assert np.all(frozen == frozen[0])
        assert np.ptp(healthy.mean_rpm[window, 0]) > 0.0
        # after repair the cycling resumes
        after = result.mean_rpm[times >= 500.0, 0]
        assert np.ptp(after) > 0.0
        # the other servers cycled throughout
        assert np.ptp(result.mean_rpm[window, 1]) > 0.0


class TestOutageAccounting:
    def test_respill_and_fault_sla_attribution(self):
        """2 servers, 120%·servers demand, one server out: the survivor
        absorbs its cap and the remainder is fault-attributable."""
        spec = default_server_spec()
        fleet = Fleet(racks=(Rack(name="r", servers=(spec, spec)),))
        schedule = FaultSchedule(events=(ServerOutageEvent(server=1),))
        result = run_fleet(
            fleet,
            ConstantProfile(60.0, 200.0),  # 120 total
            "vector",
            schedule,
            policy=LeastUtilizedPolicy(),
        )
        # survivor pinned at its 100% cap, the outage server idle
        assert np.all(result.utilization_pct[:, 0] == 100.0)
        assert np.all(result.utilization_pct[:, 1] == 0.0)
        # The counterfactual uses the degraded trajectory's state: at
        # tick 0 both servers look idle (order [0, 1] → server 1 would
        # have carried the 20% remainder); from tick 1 the down server
        # is the least-utilized one, so all 100 would have landed on it.
        assert result.respilled_pct[0] == 20.0
        assert np.all(result.respilled_pct[1:] == 100.0)
        # everything unserved is attributable to the outage
        assert np.all(result.unserved_pct == 20.0)
        assert np.all(result.fault_unserved_pct == 20.0)
        m = result.metrics
        assert m.respilled_pct_s == pytest.approx((20.0 + 99 * 100.0) * 2.0)
        assert m.fault_sla_pct_s == pytest.approx(20.0 * 200.0)
        assert m.sla_unserved_pct_s == pytest.approx(20.0 * 200.0)
        assert m.fault_ticks == 100
        assert m.fault_time_s == pytest.approx(200.0)
        assert m.fault_server_time_s == pytest.approx(200.0)

    def test_no_fault_sla_when_capacity_absorbs_the_respill(self):
        """With headroom on the survivors an outage respills cleanly:
        work moves, nothing is lost."""
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=4)
        schedule = FaultSchedule(
            events=(ServerOutageEvent(server=2, start_s=60.0, end_s=200.0),)
        )
        result = run_fleet(
            fleet,
            ConstantProfile(50.0, 300.0),  # 200 total vs 300 surviving cap
            "vector",
            schedule,
            policy=LeastUtilizedPolicy(),
        )
        m = result.metrics
        assert m.respilled_pct_s > 0.0
        assert m.fault_sla_pct_s == 0.0
        assert np.all(result.unserved_pct == 0.0)


class TestRoundRobinStateUnderFaults:
    def test_policy_advances_once_per_tick_despite_counterfactual(self):
        """The respill counterfactual must not consume an extra policy
        ranking: a round-robin fleet with a *whole-run* outage places
        exactly like the same fleet where the policy state advanced
        once per tick."""
        from repro.fleet import RoundRobinPolicy

        spec = default_server_spec()
        fleet = Fleet(racks=(Rack(name="r", servers=(spec,) * 3),))
        profile = ConstantProfile(30.0, 60.0)  # 90 total: one server busy
        schedule = FaultSchedule(events=(ServerOutageEvent(server=0),))
        vec = run_fleet(
            fleet, profile, "vector", schedule, policy=RoundRobinPolicy()
        )
        leg = run_fleet(
            fleet, profile, "vector-legacy", schedule, policy=RoundRobinPolicy()
        )
        np.testing.assert_array_equal(vec.utilization_pct, leg.utilization_pct)
        # rotation still alternates across the two surviving servers
        busy = vec.utilization_pct[:, 1:] > 0.0
        assert busy[:, 0].any() and busy[:, 1].any()
        assert np.all(vec.utilization_pct[:, 0] == 0.0)

"""Unit tests for the ground-truth power model."""

import math

import pytest

from repro.server.power import PowerBreakdown, PowerModel
from repro.server.specs import default_server_spec


@pytest.fixture(scope="module")
def model():
    return PowerModel(default_server_spec())


class TestSocketActive:
    def test_idle_floor(self, model):
        socket = model.spec.sockets[0]
        assert model.socket_active_w(socket, 0.0) == socket.p_idle_w

    def test_linear_in_utilization(self, model):
        socket = model.spec.sockets[0]
        p25 = model.socket_active_w(socket, 25.0)
        p75 = model.socket_active_w(socket, 75.0)
        p50 = model.socket_active_w(socket, 50.0)
        assert p50 == pytest.approx((p25 + p75) / 2.0)

    def test_rejects_out_of_range_utilization(self, model):
        socket = model.spec.sockets[0]
        with pytest.raises(ValueError):
            model.socket_active_w(socket, 101.0)


class TestSocketLeakage:
    def test_exponential_form(self, model):
        socket = model.spec.sockets[0]
        base = model.socket_leakage_w(socket, 50.0) - socket.leak_const_w
        hotter = model.socket_leakage_w(socket, 60.0) - socket.leak_const_w
        assert hotter / base == pytest.approx(
            math.exp(socket.leak_k3_per_c * 10.0)
        )

    def test_monotone_in_temperature(self, model):
        socket = model.spec.sockets[0]
        temps = [40.0, 55.0, 70.0, 85.0]
        leaks = [model.socket_leakage_w(socket, t) for t in temps]
        assert leaks == sorted(leaks)

    def test_magnitude_at_85c(self, model):
        # Per socket at 85 degC: 10 + 0.3231 * exp(0.04749 * 85) ~ 28 W.
        socket = model.spec.sockets[0]
        assert model.socket_leakage_w(socket, 85.0) == pytest.approx(28.3, abs=0.5)


class TestBreakdown:
    def test_total_is_sum_of_parts(self, model):
        b = model.breakdown(50.0, [60.0, 62.0], fan_power_w=20.0)
        assert b.total_w == pytest.approx(
            b.board_w + b.memory_w + b.cpu_active_w + b.cpu_leakage_w + b.fan_w
        )

    def test_compute_excludes_fans(self, model):
        b = model.breakdown(50.0, [60.0, 62.0], fan_power_w=20.0)
        assert b.compute_w == pytest.approx(b.total_w - 20.0)

    def test_wrong_socket_count_rejected(self, model):
        with pytest.raises(ValueError):
            model.breakdown(50.0, [60.0], fan_power_w=20.0)

    def test_peak_power_calibration(self, model):
        """At 100% load / default-fan temps the server peaks near 715 W."""
        b = model.breakdown(100.0, [64.0, 64.0], fan_power_w=26.6)
        assert b.total_w == pytest.approx(716.0, abs=5.0)

    def test_idle_power_calibration(self, model):
        """Idle with fans at 3600 RPM sits near 315 W."""
        b = model.breakdown(0.0, [35.0, 35.0], fan_power_w=34.6)
        assert b.total_w == pytest.approx(315.0, abs=5.0)


class TestDerivedChannels:
    def test_voltage_droops_with_load(self, model):
        assert model.core_voltage_v(100.0) < model.core_voltage_v(0.0)

    def test_per_core_currents_count(self, model):
        currents = model.per_core_current_a(50.0, [60.0, 60.0])
        assert len(currents) == sum(s.core_count for s in model.spec.sockets)

    def test_per_core_current_reconstructs_power(self, model):
        u, temps = 80.0, [65.0, 65.0]
        currents = model.per_core_current_a(u, temps)
        voltage = model.core_voltage_v(u)
        reconstructed = sum(currents) * voltage
        expected = sum(
            model.socket_heat_w(s, u, t)
            for s, t in zip(model.spec.sockets, temps)
        )
        assert reconstructed == pytest.approx(expected)


class TestStaticIdle:
    def test_static_idle_composition(self, model):
        spec = model.spec
        expected = (
            spec.board_power_w
            + spec.memory.p_idle_w
            + sum(s.p_idle_w for s in spec.sockets)
        )
        assert model.static_idle_w() == pytest.approx(expected)

    def test_static_idle_excludes_fan_and_leakage(self, model):
        b = model.breakdown(0.0, [35.0, 35.0], fan_power_w=10.0)
        assert model.static_idle_w() < b.total_w


class TestPowerBreakdownDataclass:
    def test_fields_roundtrip(self):
        b = PowerBreakdown(
            board_w=1.0, memory_w=2.0, cpu_active_w=3.0, cpu_leakage_w=4.0, fan_w=5.0
        )
        assert b.total_w == 15.0
        assert b.compute_w == 10.0

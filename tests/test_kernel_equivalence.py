"""Bit-identity contract of the chunked execution kernels.

The kernelized paths (``run_experiment(engine="kernel")`` and
``FleetEngine(backend="vector")``) must reproduce the preserved
pre-kernel implementations (``engine="reference"``,
``backend="vector-legacy"``) column for column, bit for bit — chunked
integration, preallocated traces, batched noise and array-based
scheduling are pure execution-plan changes, not model changes.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.controllers.bangbang import BangBangController
from repro.core.controllers.base import FanController
from repro.core.controllers.coordinated import CoordinatedController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.lut import LUTController
from repro.core.controllers.pid import PIController
from repro.experiments.runner import (
    ExperimentConfig,
    TRACE_COLUMNS,
    run_experiment,
)
from repro.fleet import (
    Fleet,
    FleetEngine,
    FleetScheduler,
    FleetLoadArrays,
    PlacementPolicy,
    Rack,
    build_recirculation_matrix,
    build_uniform_fleet,
)
from repro.fleet.scheduler import (
    PLACEMENT_POLICIES,
    ServerLoadView,
)
from repro.server.ambient import SinusoidalAmbient
from repro.server.dvfs import default_dvfs_ladder
from repro.server.faults import (
    DriftFault,
    DropoutFault,
    OffsetFault,
    SpikeFault,
    StuckFault,
)
from repro.server.specs import default_server_spec
from repro.workloads.loadgen import monitor_warmup_times
from repro.workloads.profile import (
    RampProfile,
    RandomStepProfile,
    SquareWaveProfile,
    StaircaseProfile,
)

FLEET_TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
)


def assert_experiments_identical(controller_fn, profile, config, **kwargs):
    kernel = run_experiment(
        controller_fn(), profile, config=config, engine="kernel", **kwargs
    )
    reference = run_experiment(
        controller_fn(), profile, config=config, engine="reference", **kwargs
    )
    for column in TRACE_COLUMNS:
        np.testing.assert_array_equal(
            kernel.column(column),
            reference.column(column),
            err_msg=f"column {column!r} diverged from the reference loop",
        )


def assert_fleet_identical(make_engine, dt_s):
    kernel = make_engine("vector").run(dt_s=dt_s)
    legacy = make_engine("vector-legacy").run(dt_s=dt_s)
    for name in FLEET_TRACES:
        np.testing.assert_array_equal(
            getattr(kernel, name),
            getattr(legacy, name),
            err_msg=f"fleet trace {name!r} diverged from the legacy loop",
        )


class _PollEvery(FanController):
    """Minimal stateful controller with a configurable poll cadence."""

    def __init__(self, poll_interval_s: float, speeds):
        self.poll_interval_s = poll_interval_s
        self._speeds = tuple(speeds)
        self._calls = 0

    def decide(self, observation):
        self._calls += 1
        return self._speeds[self._calls % len(self._speeds)]

    def reset(self):
        self._calls = 0


class TestSingleServerAnchors:
    """Pinned scenarios: the kernel equals the seed loop bit for bit."""

    def test_lut_pwm_run(self, paper_lut):
        assert_experiments_identical(
            lambda: LUTController(paper_lut),
            StaircaseProfile([10.0, 100.0, 40.0], 300.0),
            ExperimentConfig(dt_s=1.0, seed=7),
        )

    def test_coordinated_dvfs_run(self, paper_lut, dvfs_spec):
        spec = dvfs_spec
        assert_experiments_identical(
            lambda: CoordinatedController(paper_lut, spec.dvfs),
            StaircaseProfile([20.0, 70.0, 40.0, 95.0, 10.0], 180.0),
            ExperimentConfig(
                dt_s=1.0, monitor_window_s=1.0, loadgen_mode="direct"
            ),
            spec=spec,
        )

    def test_time_varying_ambient_run(self, paper_lut):
        assert_experiments_identical(
            lambda: LUTController(paper_lut),
            RandomStepProfile(60.0, 600.0, seed=11),
            ExperimentConfig(dt_s=2.0, seed=5),
            ambient=SinusoidalAmbient(24.0, 3.0, 300.0),
        )

    def test_rng_draw_order_unchanged_from_seed(self):
        """The noisy trace consumes the RNG stream exactly as the seed
        implementation did: 2·S draws at every poll, then 2·S draws
        after every tick, nothing else.

        Rebuilt by hand from a twin generator and the ground-truth
        junction trace, so this pins the *absolute* draw order, not
        merely kernel/reference agreement.
        """
        spec = default_server_spec()
        config = ExperimentConfig(dt_s=1.0, seed=123)
        profile = StaircaseProfile([40.0, 85.0], 60.0)
        result = run_experiment(
            FixedSpeedController(rpm=3000.0), profile, config=config
        )

        noise = spec.sensor_noise
        sigma = noise.temperature_sigma_c
        quantum = noise.temperature_quantum_c
        rng = np.random.default_rng(config.seed)
        poll_interval = FixedSpeedController(rpm=3000.0).poll_interval_s

        cpu0 = result.column("cpu0_junction_c")
        cpu1 = result.column("cpu1_junction_c")
        expected = []
        next_poll = 0.0
        time_s = 0.0
        for tick in range(len(cpu0)):
            if time_s >= next_poll - 1e-9:
                rng.normal(0.0, sigma, size=4)  # the poll's sensor read
                while time_s >= next_poll - 1e-9:
                    next_poll += poll_interval
            draws = rng.normal(0.0, sigma, size=4)
            healthy = [
                cpu0[tick] - 0.5,
                cpu0[tick] + 0.5,
                cpu1[tick] - 0.5,
                cpu1[tick] + 0.5,
            ]
            measured = [
                round((h + d) / quantum) * quantum
                for h, d in zip(healthy, draws)
            ]
            expected.append(max(measured))
            time_s += config.dt_s

        np.testing.assert_array_equal(
            result.column("measured_max_cpu_c"), np.array(expected)
        )

    def test_critical_trip_matches_reference(self):
        spec = replace(
            default_server_spec(),
            critical_temperature_c=76.0,
            target_max_temperature_c=70.0,
        )
        profile = StaircaseProfile([100.0], 3600.0)
        errors = {}
        for engine in ("kernel", "reference"):
            with pytest.raises(Exception) as excinfo:
                run_experiment(
                    FixedSpeedController(rpm=1800.0),
                    profile,
                    spec=spec,
                    config=ExperimentConfig(dt_s=5.0),
                    engine=engine,
                )
            errors[engine] = str(excinfo.value)
        assert errors["kernel"] == errors["reference"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            run_experiment(
                FixedSpeedController(rpm=3000.0),
                StaircaseProfile([50.0], 60.0),
                engine="gpu",
            )


class TestChunkedEqualsTickByTickProperty:
    """Randomized sweep over poll intervals, dt values (including
    dt > poll interval), profiles, and seeds."""

    @pytest.mark.parametrize("case", range(8))
    def test_random_configurations(self, case):
        rng = np.random.default_rng(1000 + case)
        dt_s = float(rng.choice([0.3, 0.7, 1.0, 2.5, 5.0, 30.0]))
        poll_s = float(rng.choice([1.0, 3.0, 10.0, 25.0]))
        seed = int(rng.integers(0, 2**16))
        window_s = float(rng.choice([15.0, 60.0, 90.0]))
        mode = str(rng.choice(["pwm", "direct"]))
        duration = float(rng.choice([240.0, 480.0]))
        kind = int(rng.integers(0, 3))
        if kind == 0:
            profile = RandomStepProfile(45.0, duration, seed=seed)
        elif kind == 1:
            profile = SquareWaveProfile(
                85.0, 15.0, 100.0, duty=0.4, duration_s=duration
            )
        else:
            profile = RampProfile(
                [(0.0, 5.0), (duration / 2, 95.0), (duration, 20.0)]
            )
        # include non-exact speeds: sum(6 copies)/6 differs from the
        # per-fan value by 1 ulp there, and the thermal network must
        # see the bank mean exactly as ServerSimulator.step feeds it
        speeds = rng.uniform(1800.0, 4200.0, size=3)
        assert_experiments_identical(
            lambda: _PollEvery(poll_s, speeds),
            profile,
            ExperimentConfig(
                dt_s=dt_s,
                monitor_window_s=window_s,
                loadgen_mode=mode,
                seed=seed,
            ),
        )

    def test_non_exact_fan_rpm_regression(self):
        """sum(6 · rpm)/6 != rpm for this value; the kernel must feed
        the bank *mean* into the convective resistances like the
        simulator does (1-ulp divergence otherwise)."""
        rpm = 2033.0552710570582
        assert sum([rpm] * 6) / 6 != rpm
        assert_experiments_identical(
            lambda: FixedSpeedController(rpm),
            StaircaseProfile([60.0, 90.0], 150.0),
            ExperimentConfig(dt_s=1.0, seed=2),
        )


class TestFleetKernelAnchors:
    """The kernelized fleet loop equals the legacy loop bit for bit."""

    @pytest.mark.parametrize("policy_name", sorted(PLACEMENT_POLICIES))
    def test_every_builtin_policy(self, policy_name):
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=3)
        profile = StaircaseProfile([20.0, 80.0, 50.0], 120.0)
        assert_fleet_identical(
            lambda backend: FleetEngine(
                fleet,
                profile,
                scheduler=FleetScheduler(PLACEMENT_POLICIES[policy_name]()),
                controller_factory=lambda i: PIController(),
                backend=backend,
            ),
            dt_s=2.0,
        )

    def test_coordinated_dvfs_with_recirculation(self, paper_lut, dvfs_spec):
        spec = dvfs_spec
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=4, spec=spec)
        assert_fleet_identical(
            lambda backend: FleetEngine(
                fleet,
                StaircaseProfile([15.0, 60.0, 35.0], 120.0),
                scheduler=FleetScheduler(PLACEMENT_POLICIES["dvfs-aware"]()),
                controller_factory=lambda i: CoordinatedController(
                    paper_lut, spec.dvfs
                ),
                backend=backend,
            ),
            dt_s=2.0,
        )

    def test_time_varying_crac_supply(self):
        spec = default_server_spec()
        racks = tuple(
            Rack(
                name=f"r{i}",
                servers=(spec, spec),
                crac=SinusoidalAmbient(23.0, 2.0, 300.0),
            )
            for i in range(2)
        )
        fleet = Fleet(
            racks=racks,
            recirculation=build_recirculation_matrix(
                [2, 2], intra_rack_coupling=0.08, cross_rack_coupling=0.01
            ),
        )
        assert_fleet_identical(
            lambda backend: FleetEngine(
                fleet,
                StaircaseProfile([30.0, 80.0], 300.0),
                controller_factory=lambda i: PIController(),
                backend=backend,
            ),
            dt_s=2.0,
        )

    def test_capped_capacity_partial_fills(self):
        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=3)
        assert_fleet_identical(
            lambda backend: FleetEngine(
                fleet,
                StaircaseProfile([90.0, 40.0], 120.0),
                scheduler=FleetScheduler(
                    PLACEMENT_POLICIES["coolest-first"](), server_cap_pct=60.0
                ),
                backend=backend,
            ),
            dt_s=2.0,
        )

    def test_custom_view_policy_falls_back_and_matches(self):
        """A policy without order_indices rides the view-building
        fallback inside the kernel loop and still matches legacy."""

        class HottestFirst(PlacementPolicy):
            name = "hottest-first"

            def order(self, views):
                temps = np.array([v.max_junction_c for v in views])
                return [views[i].index for i in np.argsort(-temps, kind="stable")]

        fleet = build_uniform_fleet(rack_count=1, servers_per_rack=4)
        assert_fleet_identical(
            lambda backend: FleetEngine(
                fleet,
                StaircaseProfile([30.0, 70.0], 120.0),
                scheduler=FleetScheduler(HottestFirst()),
                controller_factory=lambda i: PIController(),
                backend=backend,
            ),
            dt_s=2.0,
        )


class TestSchedulerFastPath:
    """Array-based scheduling reproduces the view path exactly."""

    def _random_arrays(self, rng, n):
        return FleetLoadArrays(
            utilization_pct=rng.uniform(0, 100, n),
            max_junction_c=rng.uniform(30, 90, n),
            inlet_c=rng.uniform(18, 32, n),
            leakage_w=rng.uniform(5, 40, n),
            pstate_index=rng.integers(0, 4, n),
            rack_index=np.repeat(np.arange((n + 1) // 2), 2)[:n],
            leakage_slope_w_per_c=rng.uniform(0.1, 3.0, n),
        )

    def _views_from(self, arrays):
        n = len(arrays.utilization_pct)
        return [
            ServerLoadView(
                index=i,
                rack_index=int(arrays.rack_index[i]),
                utilization_pct=float(arrays.utilization_pct[i]),
                max_junction_c=float(arrays.max_junction_c[i]),
                inlet_c=float(arrays.inlet_c[i]),
                leakage_w=float(arrays.leakage_w[i]),
                leakage_slope_w_per_c=float(arrays.leakage_slope_w_per_c[i]),
                pstate_index=int(arrays.pstate_index[i]),
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("policy_name", sorted(PLACEMENT_POLICIES))
    def test_order_indices_matches_order(self, policy_name):
        rng = np.random.default_rng(42)
        for n in (1, 3, 17):
            array_policy = PLACEMENT_POLICIES[policy_name]()
            view_policy = PLACEMENT_POLICIES[policy_name]()
            for _ in range(5):
                arrays = self._random_arrays(rng, n)
                views = self._views_from(arrays)
                np.testing.assert_array_equal(
                    np.asarray(array_policy.order_indices(arrays)),
                    np.asarray(view_policy.order(views)),
                )

    def test_assign_indexed_matches_assign(self):
        rng = np.random.default_rng(7)
        for _ in range(200):
            n = int(rng.integers(1, 40))
            cap = float(rng.choice([100.0, 60.0, 73.3, 99.9]))
            total = float(rng.uniform(0.0, 1.3 * n * cap))
            order = rng.permutation(n)
            scheduler = FleetScheduler(
                PLACEMENT_POLICIES["round-robin"](), server_cap_pct=cap
            )
            views = self._views_from(self._random_arrays(rng, n))
            by_views = scheduler.assign(
                views, total
            )  # validates + python fill; order is policy-driven
            # repeat the python fill along the random order directly
            allocations = np.zeros(n)
            remaining = float(total)
            for index in order:
                if remaining <= 0.0:
                    break
                share = min(cap, remaining)
                allocations[index] = share
                remaining -= share
            fast = scheduler.assign_indexed(order, n, total)
            np.testing.assert_array_equal(fast.allocations_pct, allocations)
            assert fast.unserved_pct == max(0.0, remaining)
            # sanity: both paths conserve demand
            assert by_views.allocations_pct.sum() + by_views.unserved_pct == (
                pytest.approx(total)
            )

    def test_lazy_slope_requires_provider(self):
        with pytest.raises(ValueError, match="leakage_slope"):
            FleetLoadArrays(
                utilization_pct=np.zeros(2),
                max_junction_c=np.zeros(2),
                inlet_c=np.zeros(2),
                leakage_w=np.zeros(2),
                pstate_index=np.zeros(2, dtype=int),
                rack_index=np.zeros(2, dtype=int),
            )


class TestBatchedPrimitives:
    """The batched helper APIs equal their scalar counterparts —
    the contracts the kernel's chunk planning is built on."""

    def test_sensor_read_array_equals_sequential_reads(self):
        from repro.server.sensors import Sensor, SensorSpec

        spec = SensorSpec(sigma=0.4, quantum=0.25)
        values = np.random.default_rng(3).uniform(20, 90, 64)
        scalar_sensor = Sensor(spec, np.random.default_rng(99))
        batch_sensor = Sensor(spec, np.random.default_rng(99))
        sequential = np.array([scalar_sensor.read(v) for v in values])
        batched = batch_sensor.read_array(values)
        np.testing.assert_array_equal(batched, sequential)

    def test_sensor_read_array_noise_free_channel(self):
        from repro.server.sensors import Sensor, SensorSpec

        sensor = Sensor(SensorSpec(sigma=0.0, quantum=0.5), np.random.default_rng(0))
        values = np.array([20.1, 55.55, 89.9])
        np.testing.assert_array_equal(
            sensor.read_array(values),
            np.array([sensor.read(v) for v in values]),
        )

    def test_dvfs_stretch_chunk_equals_scalar_methods(self):
        ladder = default_dvfs_ladder()
        demand = np.random.default_rng(11).uniform(0, 100, 500)
        for index in range(len(ladder)):
            executed, deficit = ladder.stretch_chunk(demand, index)
            np.testing.assert_array_equal(
                executed,
                [ladder.executed_utilization_pct(d, index) for d in demand],
            )
            np.testing.assert_array_equal(
                deficit,
                [ladder.work_deficit_pct(d, index) for d in demand],
            )


class TestWarmupGrid:
    """The monitor warm-up grid is index-generated (no += drift)."""

    def test_exact_sample_count_for_divisible_dt(self):
        times = monitor_warmup_times(60.0, 1.0)
        assert len(times) == 60
        assert times[0] == -60.0
        assert times[-1] == -1.0

    def test_exact_sample_count_for_awkward_dt(self):
        # 60 / 0.7 = 85.71...; samples at -60 + i*0.7 for i = 0..85
        times = monitor_warmup_times(60.0, 0.7)
        assert len(times) == 86
        assert np.all(times < 0.0)
        assert np.all(np.diff(times) > 0.0)

    def test_no_sample_at_or_past_zero(self):
        for dt in (0.1, 0.3, 1.0, 7.0, 60.0, 120.0):
            times = monitor_warmup_times(60.0, dt)
            assert np.all(times < 0.0)
            assert len(times) == len({round(float(t), 9) for t in times})

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            monitor_warmup_times(0.0, 1.0)
        with pytest.raises(ValueError):
            monitor_warmup_times(60.0, 0.0)


class TestSensorFaultChunkBoundaries:
    """Injected sensor faults are tick-exact in the kernelized path.

    The chunked loop integrates whole poll intervals at once, so a
    naive implementation would only notice a fault window at the next
    poll boundary.  These tests pin the contract: windows open and
    close at the exact tick, and every fault mode leaves the kernel
    bit-identical to the tick-by-tick reference loop.
    """

    def test_mid_chunk_onset_is_tick_exact(self):
        """Poll interval 10 s, fault window [7, 9) — entirely inside
        one chunk.  The measured channel must change at read times 7 s
        and 8 s only, not from the 10 s poll onward."""
        config = ExperimentConfig(dt_s=1.0, seed=3)
        profile = StaircaseProfile([40.0], 60.0)
        faulted = run_experiment(
            FixedSpeedController(rpm=3000.0),
            profile,
            config=config,
            faults=[(0, StuckFault(200.0, start_s=7.0, end_s=9.0))],
        )
        baseline = run_experiment(
            FixedSpeedController(rpm=3000.0), profile, config=config
        )
        differing = np.nonzero(
            faulted.column("measured_max_cpu_c")
            != baseline.column("measured_max_cpu_c")
        )[0]
        np.testing.assert_array_equal(
            faulted.column("time_s")[differing], [7.0, 8.0]
        )
        # a lying sensor between polls cannot touch the physics
        np.testing.assert_array_equal(
            faulted.column("max_junction_c"),
            baseline.column("max_junction_c"),
        )

    @pytest.mark.parametrize(
        "make_faults",
        [
            lambda: [(0, StuckFault(30.0, start_s=11.0, end_s=130.0))],
            lambda: [(2, DriftFault(0.04, start_s=23.0))],
            lambda: [(1, OffsetFault(-6.0, start_s=0.0, end_s=77.0))],
            lambda: [(3, SpikeFault(15.0, probability=0.4, seed=6, start_s=5.0))],
            lambda: [
                (index, DropoutFault(start_s=31.0, end_s=90.0))
                for index in range(4)
            ],
        ],
        ids=["stuck", "drift", "offset", "spike", "dropout"],
    )
    def test_every_mode_bit_identical_to_reference(self, make_faults):
        """Fresh fault instances per engine (spikes keep RNG state):
        the chunked loop must reproduce the reference loop column for
        column under every fault mode."""
        profile = StaircaseProfile([35.0, 85.0, 20.0], 80.0)
        config = ExperimentConfig(dt_s=1.0, seed=17)
        kernel = run_experiment(
            BangBangController(),
            profile,
            config=config,
            engine="kernel",
            faults=make_faults(),
        )
        reference = run_experiment(
            BangBangController(),
            profile,
            config=config,
            engine="reference",
            faults=make_faults(),
        )
        for column in TRACE_COLUMNS:
            np.testing.assert_array_equal(
                kernel.column(column),
                reference.column(column),
                err_msg=f"column {column!r} diverged under sensor faults",
            )

    def test_dropout_holds_last_command_on_both_engines(self):
        """With every die sensor dropped out the BMC holds the last
        fan command; when the channel returns, control resumes —
        identically on both engines."""
        profile = StaircaseProfile([10.0, 95.0], 120.0)
        config = ExperimentConfig(dt_s=1.0, seed=4)

        def faults():
            return [
                (index, DropoutFault(start_s=40.0, end_s=160.0))
                for index in range(4)
            ]

        results = {
            engine: run_experiment(
                BangBangController(),
                profile,
                config=config,
                engine=engine,
                faults=faults(),
            )
            for engine in ("kernel", "reference")
        }
        for engine, result in results.items():
            times = result.column("time_s")
            commands = result.column("rpm_command")
            window = (times >= 41.0) & (times < 160.0)
            held = commands[window]
            assert np.all(held == held[0]), engine
        np.testing.assert_array_equal(
            results["kernel"].column("rpm_command"),
            results["reference"].column("rpm_command"),
        )

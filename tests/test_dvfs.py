"""Unit tests for the DVFS model and its simulator integration."""

import dataclasses

import pytest

from repro.server.dvfs import DvfsSpec, PState, default_dvfs_ladder
from repro.server.power import PowerModel
from repro.server.server import ServerSimulator
from repro.server.specs import default_server_spec


@pytest.fixture
def ladder():
    return default_dvfs_ladder()


@pytest.fixture
def dvfs_spec(ladder):
    return dataclasses.replace(default_server_spec(), dvfs=ladder)


class TestPState:
    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            PState(frequency_ghz=0.0, voltage_v=1.0)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ValueError):
            PState(frequency_ghz=1.0, voltage_v=0.0)


class TestDvfsSpec:
    def test_default_is_nominal_only(self):
        assert len(DvfsSpec()) == 1

    def test_ladder_ordering_enforced(self):
        with pytest.raises(ValueError):
            DvfsSpec(
                pstates=(
                    PState(1.0, 0.8),
                    PState(1.65, 1.0),
                )
            )

    def test_voltage_must_not_increase_down_ladder(self):
        with pytest.raises(ValueError):
            DvfsSpec(
                pstates=(
                    PState(1.65, 0.9),
                    PState(1.40, 1.0),
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DvfsSpec(pstates=())

    def test_index_out_of_range(self, ladder):
        with pytest.raises(IndexError):
            ladder.state(99)


class TestScalingLaws:
    def test_nominal_scales_are_unity(self, ladder):
        assert ladder.dynamic_power_scale(0) == 1.0
        assert ladder.static_power_scale(0) == 1.0

    def test_dynamic_scale_is_f_v_squared(self, ladder):
        p = ladder.state(3)
        expected = (p.frequency_ghz / 1.65) * (p.voltage_v / 1.0) ** 2
        assert ladder.dynamic_power_scale(3) == pytest.approx(expected)

    def test_scales_decrease_down_ladder(self, ladder):
        dyn = [ladder.dynamic_power_scale(i) for i in range(len(ladder))]
        assert dyn == sorted(dyn, reverse=True)

    def test_executed_utilization_stretches(self, ladder):
        # 1.0 GHz vs 1.65 GHz nominal: 40% demand -> 66% busy.
        assert ladder.executed_utilization_pct(40.0, 3) == pytest.approx(66.0)

    def test_executed_utilization_saturates(self, ladder):
        assert ladder.executed_utilization_pct(90.0, 3) == 100.0

    def test_work_deficit_zero_when_sustaining(self, ladder):
        assert ladder.work_deficit_pct(40.0, 3) == 0.0

    def test_work_deficit_when_saturated(self, ladder):
        # Demand 90% at 1.0/1.65 capacity: can execute 100 busy-% which
        # is 60.6 nominal-%; deficit = 90 - 60.6 = 29.4 nominal-%.
        deficit = ladder.work_deficit_pct(90.0, 3)
        assert deficit == pytest.approx(90.0 - 100.0 * (1.0 / 1.65), abs=0.1)

    def test_slowest_sustaining_state(self, ladder):
        assert ladder.slowest_state_sustaining(20.0) == 3
        assert ladder.slowest_state_sustaining(95.0) == 0

    def test_slowest_sustaining_honours_headroom(self, ladder):
        # 54% demand at 1.0 GHz is 89% busy -> allowed with 90% headroom.
        assert ladder.slowest_state_sustaining(54.0, headroom_pct=90.0) == 3
        assert ladder.slowest_state_sustaining(54.0, headroom_pct=80.0) == 2


class TestPowerModelIntegration:
    def test_deeper_pstate_cuts_active_power(self, dvfs_spec):
        model = PowerModel(dvfs_spec)
        socket = dvfs_spec.sockets[0]
        nominal = model.socket_active_w(socket, 60.0)
        model.set_pstate(3)
        # Same busy fraction at the deep state costs much less.
        assert model.socket_active_w(socket, 60.0) < 0.5 * nominal

    def test_voltage_channel_follows_pstate(self, dvfs_spec):
        model = PowerModel(dvfs_spec)
        v_nominal = model.core_voltage_v(50.0)
        model.set_pstate(3)
        assert model.core_voltage_v(50.0) == pytest.approx(
            v_nominal - 1.0 + 0.8, abs=0.01
        )

    def test_invalid_pstate_rejected(self, dvfs_spec):
        model = PowerModel(dvfs_spec)
        with pytest.raises(IndexError):
            model.set_pstate(9)


class TestSimulatorIntegration:
    def test_default_spec_pstate_is_noop(self):
        sim = ServerSimulator(seed=0)
        sim.set_pstate(0)
        assert sim.state.pstate_index == 0
        with pytest.raises(IndexError):
            sim.set_pstate(1)

    def test_deep_pstate_lowers_power_at_same_demand(self, dvfs_spec):
        nominal = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        deep = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        deep.set_pstate(2)
        nominal.settle_to_steady_state(50.0)
        deep.settle_to_steady_state(50.0)
        assert (
            deep.state.power.cpu_active_w < nominal.state.power.cpu_active_w
        )

    def test_deep_pstate_runs_cooler(self, dvfs_spec):
        nominal = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        deep = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        deep.set_pstate(2)
        nominal.settle_to_steady_state(50.0)
        deep.settle_to_steady_state(50.0)
        assert deep.state.max_junction_c < nominal.state.max_junction_c

    def test_executed_utilization_recorded(self, dvfs_spec):
        sim = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        sim.set_pstate(3)
        state = sim.step(1.0, 40.0)
        assert state.demand_pct == 40.0
        assert state.utilization_pct == pytest.approx(66.0)
        assert state.pstate_index == 3

    def test_work_deficit_accumulates_when_saturated(self, dvfs_spec):
        sim = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        sim.set_pstate(3)
        for _ in range(10):
            sim.step(1.0, 100.0)
        assert sim.work_deficit_pct_s > 0.0

    def test_no_deficit_at_nominal(self, dvfs_spec):
        sim = ServerSimulator(spec=dvfs_spec, seed=0, initial_fan_rpm=3000.0)
        for _ in range(10):
            sim.step(1.0, 100.0)
        assert sim.work_deficit_pct_s == 0.0

"""Unit tests for the MSET-style similarity model and SPRT detector."""

import math

import numpy as np
import pytest

from repro.telemetry.anomaly import (
    SimilarityModel,
    SprtDetector,
    TelemetryWatchdog,
)


def healthy_telemetry(n=600, seed=0):
    """Correlated 4-channel telemetry: two CPU temps, power, fan RPM."""
    rng = np.random.default_rng(seed)
    util = rng.uniform(0.0, 100.0, size=n)
    t0 = 40.0 + 0.4 * util + rng.normal(0, 0.4, n)
    t1 = 41.0 + 0.39 * util + rng.normal(0, 0.4, n)
    power = 300.0 + 4.0 * util + rng.normal(0, 2.0, n)
    return np.column_stack([t0, t1, power, util])


class TestSimilarityModel:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            SimilarityModel().estimate([1.0, 2.0])

    def test_reconstructs_training_points(self):
        data = healthy_telemetry()
        model = SimilarityModel(memory_size=60, bandwidth=1.0).fit(data)
        residuals = np.array([model.residuals(row) for row in data[:100]])
        # Healthy residuals are small relative to signal swing.
        assert np.percentile(np.abs(residuals[:, 0]), 95) < 2.5

    def test_detects_inconsistent_observation(self):
        data = healthy_telemetry()
        model = SimilarityModel(memory_size=60).fit(data)
        healthy_row = data[10].copy()
        corrupted = healthy_row.copy()
        corrupted[0] += 15.0  # one channel breaks correlation
        healthy_res = abs(model.residuals(healthy_row)[0])
        faulty_res = abs(model.residuals(corrupted)[0])
        assert faulty_res > 4.0 * max(healthy_res, 0.3)

    def test_memory_respects_limit(self):
        data = healthy_telemetry(n=500)
        model = SimilarityModel(memory_size=30).fit(data)
        assert model._memory.shape[0] <= 34  # limit + envelope vectors

    def test_far_outside_envelope_does_not_crash(self):
        data = healthy_telemetry()
        model = SimilarityModel().fit(data)
        estimate = model.estimate([1e4, 1e4, 1e6, 100.0])
        assert np.all(np.isfinite(estimate))

    def test_wrong_width_rejected(self):
        model = SimilarityModel().fit(healthy_telemetry())
        with pytest.raises(ValueError):
            model.estimate([1.0, 2.0])

    def test_non_finite_training_rejected(self):
        data = healthy_telemetry()
        data[0, 0] = np.nan
        with pytest.raises(ValueError):
            SimilarityModel().fit(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityModel(memory_size=1)
        with pytest.raises(ValueError):
            SimilarityModel(bandwidth=0.0)


class TestSprtDetector:
    def test_no_alarm_on_healthy_stream(self):
        rng = np.random.default_rng(1)
        sprt = SprtDetector(sigma=1.0, shift=4.0)
        for _ in range(5000):
            sprt.update(float(rng.normal(0.0, 1.0)))
        assert not sprt.alarmed

    def test_alarms_on_positive_shift(self):
        rng = np.random.default_rng(2)
        sprt = SprtDetector(sigma=1.0, shift=4.0)
        steps = 0
        for _ in range(1000):
            steps += 1
            if sprt.update(float(rng.normal(4.0, 1.0))).alarmed:
                break
        assert sprt.alarmed
        assert steps < 20  # sequential detection is fast

    def test_alarms_on_negative_shift(self):
        rng = np.random.default_rng(3)
        sprt = SprtDetector(sigma=1.0, shift=4.0)
        for _ in range(50):
            sprt.update(float(rng.normal(-4.0, 1.0)))
        assert sprt.alarmed

    def test_nan_alarms_immediately(self):
        sprt = SprtDetector(sigma=1.0, shift=4.0)
        assert sprt.update(math.nan).alarmed

    def test_reset(self):
        sprt = SprtDetector(sigma=1.0, shift=4.0)
        for _ in range(50):
            sprt.update(10.0)
        sprt.reset()
        assert not sprt.alarmed

    def test_validation(self):
        with pytest.raises(ValueError):
            SprtDetector(sigma=0.0, shift=1.0)
        with pytest.raises(ValueError):
            SprtDetector(sigma=1.0, shift=1.0, false_alarm=0.0)


class TestTelemetryWatchdog:
    @pytest.fixture
    def watchdog(self):
        names = ("cpu0.t0", "cpu0.t1", "power", "util")
        return TelemetryWatchdog(names, memory_size=60).fit(healthy_telemetry())

    def test_healthy_stream_stays_quiet(self, watchdog):
        fresh = healthy_telemetry(n=300, seed=9)
        for row in fresh:
            watchdog.observe(row)
        assert watchdog.alarmed_channels == []

    def test_names_drifting_channel_first(self, watchdog):
        """The drifting channel must raise the *first* alarm.

        Once a fault grows large it drags the similarity estimate away
        from the healthy manifold and residuals spill into correlated
        channels (a known property of MSET-family estimators), so the
        diagnosis is read from the earliest alarm, not the final set.
        """
        fresh = healthy_telemetry(n=300, seed=10)
        drift = np.zeros(4)
        first_alarm = None
        for i, row in enumerate(fresh):
            drift[0] = 0.05 * i  # cpu0.t0 drifts up to +15 degC
            alarmed = watchdog.observe(row + drift)
            if alarmed and first_alarm is None:
                first_alarm = list(alarmed)
        assert first_alarm == ["cpu0.t0"]

    def test_detects_dropout(self, watchdog):
        row = healthy_telemetry(n=1, seed=11)[0]
        row[2] = np.nan
        alarmed = watchdog.observe(row)
        assert "power" in alarmed

    def test_observe_requires_fit(self):
        watchdog = TelemetryWatchdog(("a", "b"))
        with pytest.raises(RuntimeError):
            watchdog.observe([1.0, 2.0])

    def test_width_mismatch_rejected(self):
        watchdog = TelemetryWatchdog(("a", "b"))
        with pytest.raises(ValueError):
            watchdog.fit(healthy_telemetry())

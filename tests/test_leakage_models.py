"""Unit tests for the analytical model forms."""

import math

import numpy as np
import pytest

from repro.models.leakage import (
    ActivePowerModel,
    FanPowerModel,
    LeakageModel,
    PAPER_K2_W,
    PAPER_K3_PER_C,
)


class TestLeakageModel:
    def test_paper_constants(self):
        model = LeakageModel.paper_fit()
        assert model.k2_w == PAPER_K2_W
        assert model.k3_per_c == PAPER_K3_PER_C

    def test_exponential_doubling(self):
        model = LeakageModel(c_w=0.0, k2_w=1.0, k3_per_c=math.log(2.0) / 10.0)
        assert model.power_w(10.0) == pytest.approx(2.0 * model.power_w(0.0))

    def test_constant_included_in_power(self):
        model = LeakageModel(c_w=5.0, k2_w=1.0, k3_per_c=0.05)
        assert model.power_w(40.0) - model.variable_power_w(40.0) == pytest.approx(
            5.0
        )

    def test_vectorized_evaluation(self):
        model = LeakageModel.paper_fit()
        temps = np.array([50.0, 60.0, 70.0])
        values = model.power_w(temps)
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0)

    def test_slope_matches_numeric_derivative(self):
        model = LeakageModel.paper_fit()
        h = 1e-5
        numeric = (model.power_w(70.0 + h) - model.power_w(70.0 - h)) / (2 * h)
        assert model.slope_w_per_c(70.0) == pytest.approx(numeric, rel=1e-6)

    def test_negative_k2_rejected(self):
        with pytest.raises(ValueError):
            LeakageModel(c_w=0.0, k2_w=-1.0, k3_per_c=0.05)


class TestActivePowerModel:
    def test_linear(self):
        model = ActivePowerModel(k1_w_per_pct=0.5)
        assert model.power_w(50.0) == 25.0

    def test_zero_at_idle(self):
        assert ActivePowerModel(0.4452).power_w(0.0) == 0.0

    def test_paper_fit(self):
        assert ActivePowerModel.paper_fit().k1_w_per_pct == pytest.approx(0.4452)

    def test_vectorized(self):
        model = ActivePowerModel(1.0)
        np.testing.assert_allclose(
            model.power_w(np.array([10.0, 20.0])), [10.0, 20.0]
        )


class TestFanPowerModel:
    def test_cubic_scaling(self):
        model = FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=4200.0)
        assert model.power_w(2100.0) == pytest.approx(55.0 / 8.0)

    def test_reference_value(self):
        model = FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=4200.0)
        assert model.power_w(4200.0) == pytest.approx(55.0)

    def test_vectorized_monotone(self):
        model = FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=4200.0)
        values = model.power_w(np.array([1800.0, 3000.0, 4200.0]))
        assert np.all(np.diff(values) > 0)

    def test_invalid_exponent_rejected(self):
        with pytest.raises(ValueError):
            FanPowerModel(coeff_w=55.0, exponent=0.5, rpm_ref=4200.0)

    def test_invalid_ref_rejected(self):
        with pytest.raises(ValueError):
            FanPowerModel(coeff_w=55.0, exponent=3.0, rpm_ref=0.0)

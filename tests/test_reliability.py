"""Unit tests for the reliability accounting models."""

import numpy as np
import pytest

from repro.core.controllers.default import FixedSpeedController
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.models.reliability import (
    ReliabilityReport,
    arrhenius_acceleration,
    coffin_manson_damage,
    fan_bearing_wear,
    integrated_thermal_aging,
    reliability_report,
)
from repro.workloads.profile import ConstantProfile


class TestArrhenius:
    def test_unity_at_reference(self):
        assert arrhenius_acceleration(55.0, reference_c=55.0) == pytest.approx(1.0)

    def test_roughly_doubles_per_ten_degrees(self):
        ratio = arrhenius_acceleration(65.0) / arrhenius_acceleration(55.0)
        assert 1.8 < ratio < 2.4

    def test_monotone(self):
        values = [arrhenius_acceleration(t) for t in (40.0, 55.0, 70.0, 85.0)]
        assert values == sorted(values)

    def test_below_reference_slows_aging(self):
        assert arrhenius_acceleration(40.0) < 1.0

    def test_negative_activation_energy_rejected(self):
        with pytest.raises(ValueError):
            arrhenius_acceleration(55.0, activation_energy_ev=-0.1)


class TestIntegratedAging:
    def test_reference_trace_ages_at_wall_pace(self):
        times = np.arange(0.0, 3601.0, 10.0)
        temps = np.full_like(times, 55.0)
        assert integrated_thermal_aging(times, temps) == pytest.approx(1.0, rel=0.01)

    def test_hot_trace_ages_faster(self):
        times = np.arange(0.0, 3601.0, 10.0)
        hot = integrated_thermal_aging(times, np.full_like(times, 75.0))
        assert hot > 2.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            integrated_thermal_aging([0.0, 1.0], [55.0])


class TestCoffinManson:
    def test_flat_trace_has_no_damage(self):
        assert coffin_manson_damage(np.full(100, 60.0)) == 0.0

    def test_cycling_trace_accumulates(self):
        swing = np.tile([50.0, 70.0], 50)
        assert coffin_manson_damage(swing) > 0.0

    def test_larger_swings_do_superlinear_damage(self):
        small = np.tile([55.0, 65.0], 50)  # 10 degC swings
        large = np.tile([45.0, 75.0], 50)  # 30 degC swings
        assert coffin_manson_damage(large) > 3.0 * coffin_manson_damage(small)

    def test_short_trace(self):
        assert coffin_manson_damage([60.0, 61.0]) == 0.0

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            coffin_manson_damage(np.tile([50.0, 70.0], 10), reference_swing_c=0.0)


class TestFanWear:
    def test_reference_speed_wears_at_wall_pace(self):
        times = np.arange(0.0, 3601.0, 10.0)
        rpms = np.full_like(times, 3300.0)
        assert fan_bearing_wear(times, rpms, speed_changes=0) == pytest.approx(
            1.0, rel=0.01
        )

    def test_slow_fans_wear_less(self):
        times = np.arange(0.0, 3601.0, 10.0)
        slow = fan_bearing_wear(times, np.full_like(times, 1800.0), 0)
        assert slow < 0.25

    def test_speed_changes_add_penalty(self):
        times = np.arange(0.0, 3601.0, 10.0)
        rpms = np.full_like(times, 3300.0)
        base = fan_bearing_wear(times, rpms, speed_changes=0)
        with_changes = fan_bearing_wear(times, rpms, speed_changes=10)
        assert with_changes == pytest.approx(base + 10.0 * 0.05)

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            fan_bearing_wear([0.0, 1.0], [1.0, 1.0], 0, reference_rpm=0.0)


class TestReport:
    def test_report_from_experiment(self):
        result = run_experiment(
            FixedSpeedController(3300.0),
            ConstantProfile(75.0, 1200.0),
            config=ExperimentConfig(seed=1),
        )
        report = reliability_report(result)
        assert isinstance(report, ReliabilityReport)
        assert report.thermal_aging_ref_hours > 0.0
        assert report.fan_wear_ref_hours > 0.0
        assert report.duration_hours == pytest.approx(1199.0 / 3600.0)
        assert report.aging_rate > 0.0

"""Checkpoint/restore: atomic on-disk format + bit-identical resume.

Unit tests pin the checkpoint container itself (atomic commit,
checksummed manifest, pruning, fingerprint refusal), then differential
suites prove the headline contract for every engine path: a run
interrupted at a checkpoint and resumed produces *every* trace column,
metric and capture row bit-for-bit equal to an uninterrupted run.  A
Hypothesis property drives the checkpoint cadence itself, so the cut
may land on any reachable tick boundary.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controllers.pid import PIController
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointWriter,
    RunInterrupted,
    latest_checkpoint,
    list_checkpoints,
    prune_checkpoints,
    read_manifest,
    require_fingerprint,
    resolve_checkpoint,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.fleet import (
    PLACEMENT_POLICIES,
    FaultSchedule,
    FleetEngine,
    FleetScheduler,
    FleetWorkload,
    build_uniform_fleet,
)
from repro.obs.capture import FleetCapture
from repro.obs.store import TimeseriesStore
from repro.server.faults import DropoutFault, StuckFault
from repro.workloads.profile import StaircaseProfile

DT_S = 2.0
DURATION_S = 240.0
STEPS = int(DURATION_S / DT_S)
PROFILE = StaircaseProfile([25.0, 85.0, 55.0, 95.0], 60.0)

TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
)

FAULTS_JSON = [
    {"kind": "sensor", "server": 1, "mode": "stuck", "value": 45.0,
     "start_s": 60.0, "end_s": 150.0},
    {"kind": "outage", "server": 3, "start_s": 100.0, "end_s": 180.0},
]


def make_engine(backend="vector", faults=None, **kw):
    fleet = build_uniform_fleet(rack_count=2, servers_per_rack=3)
    return FleetEngine(
        fleet,
        FleetWorkload(PROFILE, fleet.server_count),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["coolest-first"]()),
        controller_factory=lambda spec: PIController(),
        backend=backend,
        faults=faults,
        **kw,
    )


def make_faults():
    return FaultSchedule.from_dicts(FAULTS_JSON)


def assert_identical(golden, other):
    for name in TRACES:
        a = np.asarray(getattr(golden, name))
        b = np.asarray(getattr(other, name))
        assert np.array_equal(a, b), f"trace column {name} differs"
    assert golden.metrics.energy_kwh == other.metrics.energy_kwh
    assert golden.metrics.sla_total_pct_s == other.metrics.sla_total_pct_s


# ----------------------------------------------------------------------
# container format
# ----------------------------------------------------------------------
class TestCheckpointContainer:
    def test_commit_is_atomic(self, tmp_path):
        writer = CheckpointWriter(tmp_path, 7)
        writer.arrays("state", {"x": np.arange(4.0)})
        writer.pickle("control", {"k": 1})
        assert not list_checkpoints(tmp_path)  # staging is invisible
        path = writer.commit("unit-test", {"kind": "unit-test"})
        assert list_checkpoints(tmp_path) == [path]
        assert not any(p.name.startswith("tmp-") for p in tmp_path.iterdir())

    def test_abort_leaves_nothing(self, tmp_path):
        writer = CheckpointWriter(tmp_path, 3)
        writer.arrays("state", {"x": np.zeros(2)})
        writer.abort()
        assert not list_checkpoints(tmp_path)
        assert not any(tmp_path.iterdir())

    def test_corruption_detected(self, tmp_path):
        writer = CheckpointWriter(tmp_path, 5)
        writer.arrays("state", {"x": np.arange(8.0)})
        path = writer.commit("unit-test", {"kind": "unit-test"})
        payload = bytearray((path / "state.npz").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (path / "state.npz").write_bytes(bytes(payload))
        with pytest.raises(CheckpointError, match="corrupt"):
            read_manifest(path, verify=True)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        writer = CheckpointWriter(tmp_path, 5)
        writer.arrays("state", {"x": np.zeros(2)})
        path = writer.commit("unit-test", {"kind": "unit-test", "seed": 0})
        manifest = read_manifest(path, verify=False)
        with pytest.raises(CheckpointError, match="seed"):
            require_fingerprint(manifest, {"kind": "unit-test", "seed": 1})

    def test_prune_keeps_newest(self, tmp_path):
        for tick in (10, 20, 30, 40):
            writer = CheckpointWriter(tmp_path, tick)
            writer.arrays("state", {"x": np.zeros(1)})
            writer.commit("unit-test", {"kind": "unit-test"})
        prune_checkpoints(tmp_path, keep=2)
        kept = [p.name for p in list_checkpoints(tmp_path)]
        assert kept == ["ckpt-000000000030", "ckpt-000000000040"]
        assert latest_checkpoint(tmp_path).name == "ckpt-000000000040"

    def test_resolve_accepts_dir_or_root(self, tmp_path):
        writer = CheckpointWriter(tmp_path, 9)
        writer.arrays("state", {"x": np.zeros(1)})
        path = writer.commit("unit-test", {"kind": "unit-test"})
        assert resolve_checkpoint(path) == path
        assert resolve_checkpoint(tmp_path) == path
        with pytest.raises(CheckpointError):
            resolve_checkpoint(tmp_path / "missing")

    def test_run_interrupted_carries_path(self):
        exc = RunInterrupted("stopped", "/some/ckpt")
        assert exc.checkpoint_path == "/some/ckpt"


# ----------------------------------------------------------------------
# differential resume, per backend
# ----------------------------------------------------------------------
class TestFleetResume:
    @pytest.mark.parametrize("backend", ["vector", "vector-legacy"])
    @pytest.mark.parametrize("with_faults", [False, True])
    def test_resume_bit_identical(self, tmp_path, backend, with_faults):
        faults = make_faults() if with_faults else None
        golden = make_engine(backend, faults).run(
            dt_s=DT_S, duration_s=DURATION_S
        )
        cfg = CheckpointConfig(directory=tmp_path / "ckpt", every_s=80.0,
                               keep=10)
        checkpointed = make_engine(backend, faults, checkpoint=cfg).run(
            dt_s=DT_S, duration_s=DURATION_S
        )
        assert_identical(golden, checkpointed)
        cuts = list_checkpoints(cfg.root)
        assert cuts, "no checkpoints were written"
        for cut in cuts:
            resumed_engine = make_engine(backend, make_faults()
                                         if with_faults else None)
            resumed = resumed_engine.run(
                dt_s=DT_S, duration_s=DURATION_S, resume_from=cut
            )
            assert_identical(golden, resumed)
            assert resumed_engine.last_resume_tick > 0

    def test_capture_rows_survive_resume(self, tmp_path):
        def captured(resume_from=None, checkpoint=None):
            store = TimeseriesStore()
            engine = make_engine(
                "vector",
                capture=FleetCapture(store=store, chunk_ticks=4),
                checkpoint=checkpoint,
            )
            engine.run(dt_s=DT_S, duration_s=DURATION_S,
                       resume_from=resume_from)
            name = store.channel_names()[0]
            return {n: store.channel(n).series() for n in
                    store.channel_names()}, name

        golden, name = captured()
        cfg = CheckpointConfig(directory=tmp_path / "ckpt", every_s=80.0,
                               keep=10)
        captured(checkpoint=cfg)
        cut = latest_checkpoint(cfg.root)
        resumed, _ = captured(resume_from=cut)
        assert golden.keys() == resumed.keys()
        for channel, (times, values) in golden.items():
            rt, rv = resumed[channel]
            assert np.array_equal(times, rt), f"{channel} capture times"
            assert np.array_equal(values, rv), f"{channel} capture values"

    def test_stop_writes_resumable_checkpoint(self, tmp_path):
        golden = make_engine().run(dt_s=DT_S, duration_s=DURATION_S)
        cfg = CheckpointConfig(directory=tmp_path / "ckpt", every_s=1e9)
        engine = make_engine(checkpoint=cfg)
        stream = engine.run_stream(dt_s=DT_S)
        with pytest.raises(RunInterrupted) as err:
            for view in stream:
                if view.tick == 40:
                    engine.request_stop()
        assert err.value.checkpoint_path is not None
        resumed = make_engine().run(
            dt_s=DT_S, duration_s=DURATION_S,
            resume_from=err.value.checkpoint_path,
        )
        assert_identical(golden, resumed)

    def test_wrong_fingerprint_refused(self, tmp_path):
        cfg = CheckpointConfig(directory=tmp_path / "ckpt", every_s=80.0)
        make_engine(checkpoint=cfg).run(dt_s=DT_S, duration_s=DURATION_S)
        other = make_engine("vector", seed=99)
        with pytest.raises(CheckpointError, match="does not match"):
            other.run(dt_s=DT_S, duration_s=DURATION_S,
                      resume_from=latest_checkpoint(cfg.root))


class TestShardedResume:
    def test_inline_resume_bit_identical(self, tmp_path):
        golden = make_engine().run(dt_s=DT_S, duration_s=DURATION_S)
        cfg = CheckpointConfig(directory=tmp_path / "ckpt", every_s=80.0,
                               keep=10)
        eng = make_engine(
            "sharded", shards=3, shard_mode="inline",
            trace_dir=str(tmp_path / "trace"), checkpoint=cfg,
        )
        assert_identical(golden, eng.run(dt_s=DT_S, duration_s=DURATION_S))
        cuts = list_checkpoints(cfg.root)
        assert cuts
        for cut in cuts:
            resumed = make_engine(
                "sharded", shards=3, shard_mode="inline",
                trace_dir=str(tmp_path / "trace"),
            ).run(dt_s=DT_S, duration_s=DURATION_S, resume_from=cut)
            assert_identical(golden, resumed)

    def test_checkpoint_needs_persistent_trace_dir(self, tmp_path):
        cfg = CheckpointConfig(directory=tmp_path / "ckpt")
        eng = make_engine("sharded", shards=2, shard_mode="inline",
                          checkpoint=cfg)
        with pytest.raises(ValueError, match="persistent trace_dir"):
            eng.run(dt_s=DT_S, duration_s=DURATION_S)


# ----------------------------------------------------------------------
# experiment runner
# ----------------------------------------------------------------------
class TestExperimentResume:
    PROFILE = StaircaseProfile([20.0, 80.0, 50.0, 95.0], 120.0)
    CONFIG = ExperimentConfig(dt_s=1.0, seed=7)

    def run(self, **kw):
        return run_experiment(
            PIController(),
            self.PROFILE,
            config=self.CONFIG,
            faults=[
                (0, StuckFault(45.0, start_s=100.0, end_s=250.0)),
                (2, DropoutFault(start_s=150.0, end_s=200.0)),
            ],
            **kw,
        )

    def test_resume_bit_identical(self, tmp_path):
        golden = self.run()
        cfg = CheckpointConfig(directory=tmp_path / "ckpt", every_s=120.0,
                               keep=10)
        checkpointed = self.run(checkpoint=cfg)
        for name, col in golden.as_arrays().items():
            assert np.array_equal(col, checkpointed.column(name)), name
        cuts = list_checkpoints(cfg.root)
        assert cuts, "no experiment checkpoints written"
        for cut in cuts:
            resumed = self.run(resume_from=cut)
            for name, col in golden.as_arrays().items():
                assert np.array_equal(col, resumed.column(name)), (
                    f"resume@{cut.name}: {name}"
                )
            assert resumed.metrics == golden.metrics

    def test_reference_engine_refuses_checkpoint(self, tmp_path):
        cfg = CheckpointConfig(directory=tmp_path / "ckpt")
        with pytest.raises(ValueError, match="engine='kernel'"):
            self.run(engine="reference", checkpoint=cfg)


# ----------------------------------------------------------------------
# property: any reachable cut tick preserves every column
# ----------------------------------------------------------------------
_GOLDEN_CACHE = {}


def _golden():
    if "result" not in _GOLDEN_CACHE:
        _GOLDEN_CACHE["result"] = make_engine(
            faults=make_faults()
        ).run(dt_s=DT_S, duration_s=DURATION_S)
    return _GOLDEN_CACHE["result"]


@settings(max_examples=8, deadline=None)
@given(every_ticks=st.integers(min_value=1, max_value=STEPS - 1))
def test_any_cut_cadence_resumes_bit_identical(tmp_path_factory, every_ticks):
    """Checkpoint cadence is a free knob: no cut tick changes a bit."""
    tmp_path = tmp_path_factory.mktemp("ckpt-prop")
    golden = _golden()
    cfg = CheckpointConfig(
        directory=tmp_path / "ckpt", every_s=every_ticks * DT_S, keep=1
    )
    engine = make_engine(faults=make_faults(), checkpoint=cfg)
    assert_identical(golden, engine.run(dt_s=DT_S, duration_s=DURATION_S))
    cut = latest_checkpoint(cfg.root)
    assert cut is not None
    resumed = make_engine(faults=make_faults()).run(
        dt_s=DT_S, duration_s=DURATION_S, resume_from=cut
    )
    assert_identical(golden, resumed)

"""Unit tests for Table I assembly and figure series extraction."""

import numpy as np
import pytest

from repro.experiments.report import (
    build_paper_lut,
    build_table1,
    fig2a_series,
    fig2b_series,
    paper_controllers,
    render_table1,
)
from repro.experiments.runner import ExperimentConfig
from repro.workloads.profile import ConstantProfile


class TestPaperControllers:
    def test_three_schemes_in_order(self, paper_lut):
        controllers = paper_controllers(lut=paper_lut)
        assert [c.name for c in controllers] == ["Default", "Bang-bang", "LUT"]

    def test_default_uses_spec_speed(self, paper_lut, spec):
        controllers = paper_controllers(lut=paper_lut, spec=spec)
        assert controllers[0].rpm == spec.default_fan_rpm


class TestBuildPaperLut:
    def test_end_to_end_lut(self, spec):
        lut = build_paper_lut(spec=spec, seed=11)
        assert lut.query(0.0) == 1800.0
        assert lut.query(100.0) == 2400.0


class TestBuildTable1:
    @pytest.fixture(scope="class")
    def small_table(self, paper_lut, spec):
        """A miniature Table I: one short synthetic test, 3 schemes."""
        tests = {"mini": ConstantProfile(75.0, 900.0)}

        def factory():
            return paper_controllers(lut=paper_lut, spec=spec)

        return build_table1(
            spec=spec,
            tests=tests,
            controllers_factory=factory,
            config=ExperimentConfig(seed=2),
        )

    def test_structure(self, small_table):
        assert set(small_table) == {"mini"}
        assert set(small_table["mini"]) == {"Default", "Bang-bang", "LUT"}

    def test_baseline_has_no_savings_entry(self, small_table):
        assert small_table["mini"]["Default"].net_savings_pct is None
        assert small_table["mini"]["LUT"].net_savings_pct is not None

    def test_lut_saves_energy(self, small_table):
        assert small_table["mini"]["LUT"].net_savings_pct > 0.0

    def test_render_contains_all_rows(self, small_table):
        text = render_table1(small_table)
        for scheme in ("Default", "Bang-bang", "LUT"):
            assert scheme in text
        assert "Energy(kWh)" in text

    def test_render_savings_formatting(self, small_table):
        text = render_table1(small_table)
        assert "--" in text  # the baseline row
        assert "%" in text


class TestFigure2Series:
    def test_fig2a_shapes(self, spec):
        data = fig2a_series(spec=spec, fan_rpms=(1800.0, 2400.0, 3000.0))
        assert len(data["temperature_c"]) == 3
        assert set(data) == {
            "temperature_c",
            "fan_rpm",
            "leakage_w",
            "fan_power_w",
            "leak_plus_fan_w",
        }

    def test_fig2a_sorted_by_temperature(self, spec):
        data = fig2a_series(spec=spec)
        assert np.all(np.diff(data["temperature_c"]) > 0)

    def test_fig2a_convexity(self, spec):
        """The leak+fan curve dips to an interior minimum."""
        data = fig2a_series(spec=spec)
        sums = data["leak_plus_fan_w"]
        interior_min = np.argmin(sums)
        assert 0 < interior_min < len(sums) - 1

    def test_fig2b_per_utilization(self, spec):
        series = fig2b_series(
            utilizations_pct=(50.0, 100.0),
            spec=spec,
            fan_rpms=(1800.0, 3000.0, 4200.0),
        )
        assert set(series) == {50.0, 100.0}
        # Higher utilization runs hotter at the same fan speed.
        assert series[100.0]["temperature_c"][0] > series[50.0]["temperature_c"][0]

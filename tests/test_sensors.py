"""Unit tests for sensor noise and quantization."""

import numpy as np
import pytest

from repro.server.sensors import Sensor, SensorSpec


class TestSensorSpec:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SensorSpec(sigma=-1.0)

    def test_negative_quantum_rejected(self):
        with pytest.raises(ValueError):
            SensorSpec(quantum=-1.0)


class TestSensor:
    def test_noiseless_sensor_is_identity(self):
        sensor = Sensor(SensorSpec(), np.random.default_rng(0))
        assert sensor.read(42.125) == 42.125

    def test_quantization_rounds_to_grid(self):
        sensor = Sensor(SensorSpec(sigma=0.0, quantum=0.25), np.random.default_rng(0))
        assert sensor.read(42.1) == pytest.approx(42.0)
        assert sensor.read(42.2) == pytest.approx(42.25)

    def test_noise_statistics(self):
        sensor = Sensor(SensorSpec(sigma=2.0), np.random.default_rng(1))
        readings = np.array([sensor.read(100.0) for _ in range(5000)])
        assert np.mean(readings) == pytest.approx(100.0, abs=0.15)
        assert np.std(readings) == pytest.approx(2.0, abs=0.15)

    def test_deterministic_for_seed(self):
        a = Sensor(SensorSpec(sigma=1.0), np.random.default_rng(7))
        b = Sensor(SensorSpec(sigma=1.0), np.random.default_rng(7))
        assert [a.read(5.0) for _ in range(10)] == [b.read(5.0) for _ in range(10)]

    def test_read_many_length(self):
        sensor = Sensor(SensorSpec(sigma=0.5), np.random.default_rng(3))
        values = sensor.read_many([1.0, 2.0, 3.0])
        assert len(values) == 3

    def test_quantized_noise_lands_on_grid(self):
        sensor = Sensor(SensorSpec(sigma=1.0, quantum=0.5), np.random.default_rng(9))
        for _ in range(100):
            value = sensor.read(50.0)
            assert value % 0.5 == pytest.approx(0.0, abs=1e-9)

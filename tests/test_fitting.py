"""Unit tests for the model-fitting pipeline (paper SIV)."""

import numpy as np
import pytest

from repro.models.fitting import (
    CharacterizationSample,
    fit_fan_power_model,
    fit_power_model,
)


def synthetic_samples(c=300.0, k1=4.0, k2=0.65, k3=0.047, noise=0.0, seed=0):
    """Samples drawn exactly from the model form (plus optional noise)."""
    rng = np.random.default_rng(seed)
    samples = []
    for u in (10.0, 25.0, 50.0, 75.0, 100.0):
        for t in (45.0, 55.0, 65.0, 75.0, 85.0):
            power = c + k1 * u + k2 * np.exp(k3 * t)
            if noise > 0:
                power += rng.normal(0.0, noise)
            samples.append(
                CharacterizationSample(
                    utilization_pct=u,
                    fan_rpm=3000.0,
                    avg_cpu_temperature_c=t,
                    compute_power_w=float(power),
                    fan_power_w=20.0,
                )
            )
    return samples


class TestFitPowerModel:
    def test_exact_recovery_from_clean_data(self):
        fitted = fit_power_model(synthetic_samples())
        assert fitted.c_w == pytest.approx(300.0, abs=0.5)
        assert fitted.k1_w_per_pct == pytest.approx(4.0, abs=0.01)
        assert fitted.k2_w == pytest.approx(0.65, rel=0.05)
        assert fitted.k3_per_c == pytest.approx(0.047, rel=0.02)
        assert fitted.quality.rmse_w < 0.1

    def test_noisy_fit_quality(self):
        fitted = fit_power_model(synthetic_samples(noise=2.0, seed=1))
        assert fitted.quality.rmse_w == pytest.approx(2.0, abs=1.0)
        assert fitted.quality.accuracy_pct > 95.0

    def test_prediction_matches_generator(self):
        fitted = fit_power_model(synthetic_samples())
        predicted = fitted.predict_compute_power_w(60.0, 70.0)
        expected = 300.0 + 4.0 * 60.0 + 0.65 * np.exp(0.047 * 70.0)
        assert predicted == pytest.approx(expected, abs=0.5)

    def test_leakage_component_extraction(self):
        fitted = fit_power_model(synthetic_samples())
        assert fitted.leakage_variable_w(70.0) == pytest.approx(
            0.65 * np.exp(0.047 * 70.0), rel=0.05
        )

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_power_model(synthetic_samples()[:3])

    def test_degenerate_utilization_rejected(self):
        samples = [s for s in synthetic_samples() if s.utilization_pct == 50.0]
        with pytest.raises(ValueError):
            fit_power_model(samples)

    def test_degenerate_temperature_rejected(self):
        samples = [
            s for s in synthetic_samples() if s.avg_cpu_temperature_c == 65.0
        ]
        with pytest.raises(ValueError):
            fit_power_model(samples)

    def test_no_temperature_dependence_degrades_gracefully(self):
        """Data without a leakage trend fits with k2 = 0."""
        rng = np.random.default_rng(2)
        samples = []
        for u in (10.0, 40.0, 70.0, 100.0):
            for t in (45.0, 60.0, 75.0):
                samples.append(
                    CharacterizationSample(
                        utilization_pct=u,
                        fan_rpm=3000.0,
                        avg_cpu_temperature_c=t + rng.normal(0, 0.01),
                        compute_power_w=200.0 + 2.0 * u,
                        fan_power_w=20.0,
                    )
                )
        fitted = fit_power_model(samples)
        assert fitted.k2_w == pytest.approx(0.0, abs=0.2)
        assert fitted.k1_w_per_pct == pytest.approx(2.0, abs=0.05)


class TestFitOnSimulatedCharacterization:
    def test_recovers_simulator_ground_truth(self, characterization_samples, spec):
        """The fit over the simulated sweep recovers the spec's leakage
        behaviour.  k2 and k3 are strongly correlated in the exponential
        form, so the meaningful check is the predicted temperature-
        dependent leakage *power* across the operating band, plus a
        loose check on the exponent itself."""
        fitted = fit_power_model(characterization_samples)
        true_k2_total = sum(s.leak_k2_w for s in spec.sockets)
        true_k3 = spec.sockets[0].leak_k3_per_c
        for temp in (55.0, 65.0, 75.0, 85.0):
            truth = true_k2_total * np.exp(true_k3 * temp)
            assert fitted.leakage_variable_w(temp) == pytest.approx(
                truth, rel=0.10
            ), temp
        assert fitted.k3_per_c == pytest.approx(true_k3, rel=0.10)

    def test_fit_error_matches_paper_scale(self, spec):
        """Fitting raw (per-poll) telemetry reproduces the paper's
        ~2.2 W RMS error: it is the sensor noise floor."""
        from repro.experiments.characterization import run_characterization_steady

        raw = run_characterization_steady(spec=spec, seed=3, aggregate=False)
        fitted = fit_power_model(raw)
        assert 1.0 < fitted.quality.rmse_w < 3.5
        assert fitted.quality.accuracy_pct > 98.0

    def test_k1_absorbs_memory_slope(self, characterization_samples, spec):
        """The fitted k1 equals CPU active slope + DIMM slope (both are
        linear in U and indistinguishable to the fit)."""
        fitted = fit_power_model(characterization_samples)
        expected = (
            sum(s.k_active_w_per_pct for s in spec.sockets)
            + spec.memory.k_active_w_per_pct
        )
        assert fitted.k1_w_per_pct == pytest.approx(expected, rel=0.02)


class TestFitFanPowerModel:
    def test_recovers_cubic(self):
        rpms = [1800.0, 2400.0, 3000.0, 3600.0, 4200.0]
        powers = [55.0 * (r / 4200.0) ** 3 for r in rpms]
        model = fit_fan_power_model(rpms, powers)
        assert model.exponent == pytest.approx(3.0, abs=0.01)
        assert model.coeff_w == pytest.approx(55.0, rel=0.01)

    def test_fit_on_characterization(self, characterization_samples, spec):
        model = fit_fan_power_model(
            [s.fan_rpm for s in characterization_samples],
            [s.fan_power_w for s in characterization_samples],
        )
        bank_ref = spec.fan_count * spec.fan.power_at_ref_w
        assert model.exponent == pytest.approx(3.0, abs=0.15)
        assert model.coeff_w == pytest.approx(bank_ref, rel=0.05)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_fan_power_model([1800.0], [5.0])

    def test_non_positive_rpm_rejected(self):
        with pytest.raises(ValueError):
            fit_fan_power_model([0.0, 1800.0], [1.0, 5.0])

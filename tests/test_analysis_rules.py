"""Per-rule fixture tests: each checker fires on its positive fixture
and stays silent on its clean twin."""

from pathlib import Path

import pytest

from repro.analysis import LintEngine
from repro.analysis.rules.units import unit_of_name

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def lint_fixture(name):
    engine = LintEngine(FIXTURES)
    return engine.run([FIXTURES / name])


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# unit inference
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,unit",
    [
        ("time_s", "s"),
        ("inlet_c", "degC"),
        ("power_total_w", "W"),
        ("fan_rpm", "RPM"),
        ("airflow_cfm", "CFM"),
        ("energy_kwh", "kWh"),
        ("target_util_pct", "%"),
        ("sla_total_pct_s", "%*s"),
        ("leakage_slope_w_per_c", "W/degC"),
        ("max_j", "J"),
        # physics subscripts: single-letter suffix needs a 2+ char stem
        ("t_j", None),
        ("c_h", None),
        ("q_ma", None),
        # no trailing suffix at all
        ("rpm_min", None),
        ("policy", None),
    ],
)
def test_unit_of_name(name, unit):
    assert unit_of_name(name) == unit


# ----------------------------------------------------------------------
# R001 unit consistency
# ----------------------------------------------------------------------
def test_r001_flags_cross_unit_mixes():
    findings = [f for f in lint_fixture("r001_bad.py") if f.rule == "R001"]
    assert len(findings) == 4
    kinds = "\n".join(f.message for f in findings)
    assert "arithmetic" in kinds
    assert "comparison" in kinds
    assert "assignment" in kinds
    assert "keyword" in kinds


def test_r001_clean_fixture_passes():
    assert [f for f in lint_fixture("r001_clean.py") if f.rule == "R001"] == []


# ----------------------------------------------------------------------
# R002 RNG discipline
# ----------------------------------------------------------------------
def test_r002_flags_every_banned_pattern():
    findings = [f for f in lint_fixture("r002_bad.py") if f.rule == "R002"]
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 5
    assert "stdlib 'random'" in messages
    assert "np.random.seed" in messages
    assert "np.random.rand" in messages
    assert "without an explicit seed" in messages
    assert "entry-point" in messages


def test_r002_clean_fixture_passes():
    assert [f for f in lint_fixture("r002_clean.py") if f.rule == "R002"] == []


# ----------------------------------------------------------------------
# R003 hot-path allocation
# ----------------------------------------------------------------------
def test_r003_flags_allocation_in_marked_function():
    findings = [f for f in lint_fixture("r003_bad.py") if f.rule == "R003"]
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 3
    assert "np.zeros" in messages
    assert ".append" in messages
    assert "comprehension" in messages
    # every finding names the hot function it fired in
    assert all("step_all" in f.message for f in findings)


def test_r003_ignores_unmarked_functions():
    findings = [f for f in lint_fixture("r003_bad.py") if f.rule == "R003"]
    assert not any("cold_helper" in f.message for f in findings)


def test_r003_clean_fixture_passes():
    assert [f for f in lint_fixture("r003_clean.py") if f.rule == "R003"] == []


# ----------------------------------------------------------------------
# R004 trace-schema consistency
# ----------------------------------------------------------------------
def test_r004_flags_schema_drift():
    findings = [f for f in lint_fixture("r004_bad.py") if f.rule == "R004"]
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 2
    assert "junctoin_c" in messages  # recorded typo
    assert "power_total" in messages  # consumed typo


def test_r004_clean_fixture_passes():
    assert [f for f in lint_fixture("r004_clean.py") if f.rule == "R004"] == []


def test_r004_silent_without_declared_schema(tmp_path):
    # no *TRACE_COLUMNS constant in the file set: nothing to check against
    path = tmp_path / "mod.py"
    path.write_text('value = recorder.column("whatever")\n')
    engine = LintEngine(tmp_path)
    assert [f for f in engine.run([path]) if f.rule == "R004"] == []


def test_r004_cross_file_schema_collection(tmp_path):
    # schema declared in one file governs consumers in another
    (tmp_path / "schema.py").write_text('X_TRACE_COLUMNS = ("time_s",)\n')
    (tmp_path / "consumer.py").write_text('v = rec.column("oops")\n')
    engine = LintEngine(tmp_path)
    findings = engine.run([tmp_path])
    assert [f.rule for f in findings] == ["R004"]
    assert findings[0].path == "consumer.py"


# ----------------------------------------------------------------------
# whole-fixture-directory sanity: each bad fixture trips only its rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,rule",
    [
        ("r001_bad.py", "R001"),
        ("r002_bad.py", "R002"),
        ("r003_bad.py", "R003"),
        ("r004_bad.py", "R004"),
    ],
)
def test_bad_fixtures_trip_exactly_their_rule(name, rule):
    assert rules_of(lint_fixture(name)) == [rule]


@pytest.mark.parametrize(
    "name",
    ["r001_clean.py", "r002_clean.py", "r003_clean.py", "r004_clean.py"],
)
def test_clean_fixtures_pass_all_rules(name):
    assert lint_fixture(name) == []

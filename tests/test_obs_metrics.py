"""Unit tests for the observability metrics registry."""

import math
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    default_registry,
    merge_snapshots,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_bad_names_rejected(self):
        for bad in ("", "9lead", "with space", "dash-ed"):
            with pytest.raises(ValueError):
                Counter(bad)

    def test_thread_safety(self):
        c = Counter("contended_total")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(5.0)
        g.inc(-2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("latency_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        text = "\n".join(h.render())
        assert 'le="0.1"} 1' in text
        assert 'le="1"} 2' in text
        assert 'le="+Inf"} 3' in text

    def test_buckets_sorted_and_nonempty(self):
        h = Histogram("h", buckets=(1.0, 0.1))
        assert h.bounds == (0.1, 1.0)
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())


class TestPhaseTimer:
    def test_context_manager_accumulates(self):
        t = PhaseTimer("phase")
        with t:
            pass
        t.add(0.25)
        assert t.calls == 2
        assert t.total_s >= 0.25
        assert t.mean_s == t.total_s / 2

    def test_render_names(self):
        t = PhaseTimer("thermal_step")
        t.add(1.0)
        text = "\n".join(t.render())
        assert "thermal_step_seconds_total 1" in text
        assert "thermal_step_calls_total 1" in text


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "things").inc(2)
        reg.gauge("b").set(math.nan)
        reg.gauge("c").set(math.inf)
        text = reg.render_prometheus()
        assert "# TYPE a_total counter" in text
        assert "a_total 2" in text
        assert "b NaN" in text
        assert "c +Inf" in text
        assert text.endswith("\n")

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.timer("t")
        assert "t" in reg
        assert reg.names() == ["t"]

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()


class TestMergeSnapshots:
    def test_counters_sum_and_gauges_take_last(self):
        a = MetricsRegistry()
        a.counter("points_total").inc(3)
        a.gauge("temp").set(10.0)
        a.timer("phase").add(1.0)
        b = MetricsRegistry()
        b.counter("points_total").inc(4)
        b.gauge("temp").set(20.0)
        b.timer("phase").add(0.5)

        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["points_total"]["value"] == 7
        assert merged["temp"]["value"] == 20.0
        assert merged["phase"]["total_s"] == pytest.approx(1.5)
        assert merged["phase"]["calls"] == 2

    def test_type_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x")
        b = MetricsRegistry()
        b.gauge("x")
        with pytest.raises(ValueError, match="changed type"):
            merge_snapshots([a.snapshot(), b.snapshot()])

"""Engine mechanics of reprolint: suppression, baselines, fingerprints, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, LintEngine, render_json, render_text
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

UNSEEDED = (
    "import numpy as np\n"
    "\n"
    "rng = np.random.default_rng(){comment}\n"
)


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def _lint(tmp_path, *names):
    engine = LintEngine(tmp_path)
    return engine.run([tmp_path / name for name in names])


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
def test_violation_detected_without_suppression(tmp_path):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=""))
    findings = _lint(tmp_path, "mod.py")
    assert [f.rule for f in findings] == ["R002"]
    assert findings[0].line == 3


@pytest.mark.parametrize(
    "comment",
    [
        "  # reprolint: disable=R002",
        "  # reprolint: disable=R001,R002",
        "  # reprolint: disable=all",
    ],
)
def test_line_suppression(tmp_path, comment):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=comment))
    assert _lint(tmp_path, "mod.py") == []


def test_line_suppression_other_rule_does_not_apply(tmp_path):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment="  # reprolint: disable=R001"))
    findings = _lint(tmp_path, "mod.py")
    assert [f.rule for f in findings] == ["R002"]


def test_file_suppression(tmp_path):
    text = "# reprolint: disable-file=R002\n" + UNSEEDED.format(comment="")
    _write(tmp_path, "mod.py", text)
    assert _lint(tmp_path, "mod.py") == []


# ----------------------------------------------------------------------
# fingerprints and baseline
# ----------------------------------------------------------------------
def test_fingerprint_survives_line_insertion(tmp_path):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=""))
    before = _lint(tmp_path, "mod.py")
    # an unrelated edit above the finding must not change its identity
    _write(tmp_path, "mod.py", "# a new header comment\n" + UNSEEDED.format(comment=""))
    after = _lint(tmp_path, "mod.py")
    assert [f.fingerprint for f in before] == [f.fingerprint for f in after]
    assert before[0].line != after[0].line


def test_fingerprint_distinguishes_repeated_lines(tmp_path):
    text = (
        "import numpy as np\n"
        "a = np.random.default_rng()\n"
        "a = np.random.default_rng()\n"
    )
    _write(tmp_path, "mod.py", text)
    findings = _lint(tmp_path, "mod.py")
    assert len(findings) == 2
    assert findings[0].fingerprint != findings[1].fingerprint


def test_baseline_round_trip(tmp_path):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=""))
    findings = _lint(tmp_path, "mod.py")
    baseline_path = tmp_path / "baseline.json"
    Baseline().save(baseline_path, findings)

    baseline = Baseline.load(baseline_path)
    assert len(baseline) == len(findings)
    new, old = LintEngine.split_baselined(findings, baseline)
    assert new == []
    assert old == findings


def test_missing_baseline_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    assert len(baseline) == 0
    assert "anything" not in baseline


def test_malformed_baseline_rejected(tmp_path):
    path = _write(tmp_path, "bad.json", '{"not": "a baseline"}')
    with pytest.raises(ValueError):
        Baseline.load(path)


# ----------------------------------------------------------------------
# gathering
# ----------------------------------------------------------------------
def test_gather_deduplicates_and_sorts(tmp_path):
    _write(tmp_path, "b.py", "x = 1\n")
    _write(tmp_path, "a.py", "y = 2\n")
    engine = LintEngine(tmp_path)
    files = engine.gather([tmp_path, tmp_path / "a.py"])
    assert [f.relpath for f in files] == ["a.py", "b.py"]


def test_gather_rejects_non_python(tmp_path):
    _write(tmp_path, "data.csv", "1,2\n")
    with pytest.raises(FileNotFoundError):
        LintEngine(tmp_path).gather([tmp_path / "data.csv"])


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def test_reporters_render_findings(tmp_path):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=""))
    findings = _lint(tmp_path, "mod.py")
    text = render_text(findings, [])
    assert "mod.py:3" in text and "R002" in text
    document = json.loads(render_json(findings, []))
    assert document["summary"]["new"] == 1
    assert document["findings"][0]["rule"] == "R002"


def test_text_reporter_clean_summary():
    assert "clean" in render_text([], [])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_one_on_findings(capsys):
    code = main(["lint", "--root", str(FIXTURES), "r002_bad.py"])
    assert code == 1
    assert "R002" in capsys.readouterr().out


def test_cli_exit_zero_on_clean(capsys):
    code = main(["lint", "--root", str(FIXTURES), "r002_clean.py"])
    assert code == 0


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=""))
    assert main(["lint", "--root", str(tmp_path), "mod.py"]) == 1
    assert (
        main(["lint", "--root", str(tmp_path), "--write-baseline", "mod.py"])
        == 0
    )
    assert (tmp_path / "reprolint-baseline.json").exists()
    # the grandfathered finding no longer fails the gate...
    assert main(["lint", "--root", str(tmp_path), "mod.py"]) == 0
    # ...but a fresh violation still does
    _write(
        tmp_path,
        "mod.py",
        UNSEEDED.format(comment="") + "other = np.random.default_rng()\n",
    )
    assert main(["lint", "--root", str(tmp_path), "mod.py"]) == 1


def test_cli_json_format_and_report(tmp_path, capsys):
    _write(tmp_path, "mod.py", UNSEEDED.format(comment=""))
    report = tmp_path / "report.json"
    code = main(
        [
            "lint",
            "--root",
            str(tmp_path),
            "--format",
            "json",
            "--report",
            str(report),
            "mod.py",
        ]
    )
    assert code == 1
    stdout_doc = json.loads(capsys.readouterr().out)
    report_doc = json.loads(report.read_text())
    assert stdout_doc == report_doc
    assert report_doc["summary"]["new"] == 1


def test_repo_source_tree_lints_clean(capsys):
    """Self-check: `repro lint src/repro` exits 0 on the committed tree."""
    code = main(["lint", "--root", str(REPO_ROOT), "src/repro"])
    out = capsys.readouterr().out
    assert code == 0, f"reprolint findings in src/repro:\n{out}"

"""Unit tests for utilization profiles."""

import pytest

from repro.workloads.profile import (
    CompositeProfile,
    ConstantProfile,
    RampProfile,
    RandomStepProfile,
    SquareWaveProfile,
    StaircaseProfile,
    TraceProfile,
)


class TestConstantProfile:
    def test_value_everywhere(self):
        profile = ConstantProfile(42.0, 100.0)
        assert profile.utilization_pct(0.0) == 42.0
        assert profile.utilization_pct(99.0) == 42.0
        assert profile.duration_s == 100.0

    def test_rejects_invalid_level(self):
        with pytest.raises(ValueError):
            ConstantProfile(120.0, 100.0)


class TestRampProfile:
    def test_linear_interpolation(self):
        profile = RampProfile([(0.0, 0.0), (100.0, 100.0)])
        assert profile.utilization_pct(50.0) == pytest.approx(50.0)

    def test_triangle(self):
        profile = RampProfile([(0.0, 0.0), (50.0, 100.0), (100.0, 0.0)])
        assert profile.utilization_pct(25.0) == pytest.approx(50.0)
        assert profile.utilization_pct(75.0) == pytest.approx(50.0)

    def test_holds_past_end(self):
        profile = RampProfile([(0.0, 0.0), (10.0, 80.0)])
        assert profile.utilization_pct(100.0) == 80.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            RampProfile([(0.0, 0.0)])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            RampProfile([(0.0, 0.0), (0.0, 50.0)])


class TestStaircaseProfile:
    def test_step_lookup(self):
        profile = StaircaseProfile([10.0, 20.0, 30.0], step_duration_s=60.0)
        assert profile.utilization_pct(0.0) == 10.0
        assert profile.utilization_pct(61.0) == 20.0
        assert profile.utilization_pct(179.0) == 30.0

    def test_holds_last_level(self):
        profile = StaircaseProfile([10.0, 20.0], step_duration_s=60.0)
        assert profile.utilization_pct(1e5) == 20.0

    def test_duration(self):
        profile = StaircaseProfile([1.0, 2.0, 3.0], step_duration_s=10.0)
        assert profile.duration_s == 30.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StaircaseProfile([], 10.0)


class TestSquareWaveProfile:
    def test_alternation(self):
        profile = SquareWaveProfile(90.0, 10.0, period_s=100.0, duty=0.5)
        assert profile.utilization_pct(10.0) == 90.0
        assert profile.utilization_pct(60.0) == 10.0

    def test_duty_fraction(self):
        profile = SquareWaveProfile(
            100.0, 0.0, period_s=100.0, duty=0.25, duration_s=100.0
        )
        assert profile.utilization_pct(24.0) == 100.0
        assert profile.utilization_pct(26.0) == 0.0

    def test_mean_matches_duty(self):
        profile = SquareWaveProfile(
            100.0, 0.0, period_s=100.0, duty=0.3, duration_s=1000.0
        )
        assert profile.mean_utilization_pct(dt_s=0.5) == pytest.approx(30.0, abs=1.0)

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            SquareWaveProfile(90.0, 10.0, period_s=100.0, duty=1.5)


class TestRandomStepProfile:
    def test_deterministic_for_seed(self):
        a = RandomStepProfile(300.0, 4800.0, seed=5)
        b = RandomStepProfile(300.0, 4800.0, seed=5)
        assert a.levels == b.levels

    def test_different_seeds_differ(self):
        a = RandomStepProfile(300.0, 4800.0, seed=5)
        b = RandomStepProfile(300.0, 4800.0, seed=6)
        assert a.levels != b.levels

    def test_levels_from_allowed_set(self):
        profile = RandomStepProfile(300.0, 4800.0, levels_pct=(10.0, 90.0), seed=1)
        assert set(profile.levels) <= {10.0, 90.0}

    def test_step_count(self):
        profile = RandomStepProfile(300.0, 4800.0, seed=1)
        assert len(profile.levels) == 16


class TestTraceProfile:
    def test_zero_order_hold(self):
        profile = TraceProfile([0.0, 10.0, 20.0], [5.0, 50.0, 95.0])
        assert profile.utilization_pct(0.0) == 5.0
        assert profile.utilization_pct(9.9) == 5.0
        assert profile.utilization_pct(10.0) == 50.0
        assert profile.utilization_pct(25.0) == 95.0

    def test_before_start_clamps(self):
        profile = TraceProfile([10.0, 20.0], [5.0, 50.0])
        assert profile.utilization_pct(0.0) == 5.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TraceProfile([0.0, 1.0], [5.0])

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            TraceProfile([0.0, 0.0], [5.0, 6.0])

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TraceProfile([0.0, 1.0], [5.0, 150.0])


class TestCompositeProfile:
    def test_segment_boundaries(self):
        profile = CompositeProfile(
            [ConstantProfile(10.0, 100.0), ConstantProfile(90.0, 100.0)]
        )
        assert profile.utilization_pct(50.0) == 10.0
        assert profile.utilization_pct(150.0) == 90.0
        assert profile.duration_s == 200.0

    def test_holds_last_segment_past_end(self):
        profile = CompositeProfile(
            [ConstantProfile(10.0, 100.0), ConstantProfile(90.0, 100.0)]
        )
        assert profile.utilization_pct(1e4) == 90.0

    def test_nested_composites(self):
        inner = CompositeProfile(
            [ConstantProfile(25.0, 10.0), ConstantProfile(75.0, 10.0)]
        )
        outer = CompositeProfile([ConstantProfile(0.0, 10.0), inner])
        assert outer.utilization_pct(5.0) == 0.0
        assert outer.utilization_pct(15.0) == 25.0
        assert outer.utilization_pct(25.0) == 75.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeProfile([])

    def test_sampling(self):
        profile = ConstantProfile(40.0, 10.0)
        times, values = profile.sample(dt_s=1.0)
        assert len(times) == len(values) == 11
        assert values[5] == 40.0

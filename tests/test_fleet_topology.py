"""Unit tests for rack/fleet topology and heat recirculation."""

import numpy as np
import pytest

from repro.fleet.topology import (
    Fleet,
    Rack,
    RecirculationAmbient,
    build_recirculation_matrix,
    build_uniform_fleet,
    exhaust_temperature_rise_c,
)
from repro.server.ambient import ConstantAmbient, SinusoidalAmbient
from repro.server.specs import default_server_spec


def make_rack(name="r0", servers=2, supply_c=24.0, crac=None):
    spec = default_server_spec()
    return Rack(
        name=name,
        servers=tuple(spec for _ in range(servers)),
        crac_supply_c=supply_c,
        crac=crac,
    )


class TestRack:
    def test_counts_and_supply(self):
        rack = make_rack(servers=3, supply_c=22.0)
        assert rack.server_count == 3
        assert rack.supply_model().temperature_c(0.0) == 22.0

    def test_explicit_crac_model_wins(self):
        crac = SinusoidalAmbient(mean_c=20.0, amplitude_c=1.0, period_s=600.0)
        rack = make_rack(supply_c=24.0, crac=crac)
        assert rack.supply_model() is crac

    def test_empty_rack_rejected(self):
        with pytest.raises(ValueError):
            Rack(name="bad", servers=())

    def test_unphysical_supply_rejected(self):
        with pytest.raises(ValueError):
            make_rack(supply_c=-400.0)


class TestFleet:
    def test_flat_indexing_is_rack_major(self):
        fleet = Fleet(racks=(make_rack("a", 2), make_rack("b", 3)))
        assert fleet.server_count == 5
        assert fleet.rack_count == 2
        assert fleet.rack_index_of_server == (0, 0, 1, 1, 1)
        assert [s == slice(0, 2) for s in fleet.rack_slices()][0]
        assert fleet.rack_slices() == [slice(0, 2), slice(2, 5)]

    def test_supply_temperatures_per_server(self):
        fleet = Fleet(
            racks=(
                make_rack("cold", 2, supply_c=20.0),
                make_rack("warm", 1, supply_c=26.0),
            )
        )
        assert fleet.supply_temperatures_c(0.0) == pytest.approx(
            [20.0, 20.0, 26.0]
        )

    def test_matrix_shape_validated(self):
        with pytest.raises(ValueError, match="2x2"):
            Fleet(racks=(make_rack(servers=2),), recirculation=np.zeros((3, 3)))

    def test_negative_coupling_rejected(self):
        matrix = np.array([[0.0, -0.1], [0.1, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            Fleet(racks=(make_rack(servers=2),), recirculation=matrix)

    def test_nonzero_diagonal_rejected(self):
        matrix = np.array([[0.1, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            Fleet(racks=(make_rack(servers=2),), recirculation=matrix)

    def test_row_sum_at_least_one_rejected(self):
        matrix = np.array([[0.0, 1.0], [0.1, 0.0]])
        with pytest.raises(ValueError, match="row sums"):
            Fleet(racks=(make_rack(servers=2),), recirculation=matrix)

    def test_inlets_add_recirculated_exhaust(self):
        matrix = np.array([[0.0, 0.5], [0.25, 0.0]])
        fleet = Fleet(racks=(make_rack(servers=2),), recirculation=matrix)
        inlets = fleet.inlet_temperatures_c(0.0, [4.0, 8.0])
        # server 0 receives half of server 1's 8 degC rise, and so on.
        assert inlets == pytest.approx([24.0 + 4.0, 24.0 + 1.0])

    def test_equality_comparison_does_not_raise_on_matrix(self):
        # dataclass __eq__ must not compare the ndarray elementwise
        a = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        b = build_uniform_fleet(rack_count=1, servers_per_rack=2)
        assert a == b
        assert a != Fleet(racks=(make_rack(servers=3),))

    def test_uncoupled_fleet_inlets_equal_supply(self):
        fleet = Fleet(racks=(make_rack(servers=2),))
        inlets = fleet.inlet_temperatures_c(0.0, [5.0, 5.0])
        assert inlets == pytest.approx([24.0, 24.0])


class TestRecirculationAmbient:
    def test_zero_offset_equals_wrapped_model(self):
        base = ConstantAmbient(24.0)
        wrapped = RecirculationAmbient(base)
        for t in (0.0, 100.0, 1e6):
            assert wrapped.temperature_c(t) == base.temperature_c(t)

    def test_offset_adds_to_time_varying_supply(self):
        base = SinusoidalAmbient(mean_c=22.0, amplitude_c=2.0, period_s=600.0)
        wrapped = RecirculationAmbient(base)
        wrapped.set_offset(1.5)
        assert wrapped.temperature_c(150.0) == pytest.approx(
            base.temperature_c(150.0) + 1.5
        )
        assert wrapped.offset_c == 1.5

    def test_negative_offset_rejected(self):
        wrapped = RecirculationAmbient(ConstantAmbient(24.0))
        with pytest.raises(ValueError):
            wrapped.set_offset(-0.1)

    def test_non_finite_offset_rejected(self):
        wrapped = RecirculationAmbient(ConstantAmbient(24.0))
        with pytest.raises(ValueError):
            wrapped.set_offset(float("nan"))


class TestExhaustRise:
    def test_matches_heat_capacity_rate(self):
        from repro.units import airflow_heat_capacity_w_per_k

        rise = exhaust_temperature_rise_c(660.0, 120.0)
        assert rise == pytest.approx(660.0 / airflow_heat_capacity_w_per_k(120.0))

    def test_array_evaluation(self):
        rise = exhaust_temperature_rise_c(
            np.array([300.0, 600.0]), np.array([100.0, 100.0])
        )
        assert rise[1] == pytest.approx(2.0 * rise[0])

    def test_zero_airflow_rejected(self):
        with pytest.raises(ValueError):
            exhaust_temperature_rise_c(300.0, 0.0)


class TestBuilders:
    def test_uniform_fleet_shape(self):
        fleet = build_uniform_fleet(rack_count=2, servers_per_rack=4)
        assert fleet.server_count == 8
        assert fleet.rack_count == 2
        assert fleet.recirculation.shape == (8, 8)

    def test_matrix_neighbor_decay(self):
        matrix = build_recirculation_matrix(
            [4], intra_rack_coupling=0.06, cross_rack_coupling=0.0
        )
        assert matrix[0, 1] == pytest.approx(0.06)
        assert matrix[0, 2] == pytest.approx(0.03)  # distance 2 halves it
        assert matrix[0, 3] == 0.0  # beyond default reach
        assert np.all(np.diag(matrix) == 0.0)

    def test_cross_rack_uniform(self):
        matrix = build_recirculation_matrix(
            [2, 2], intra_rack_coupling=0.0, cross_rack_coupling=0.01
        )
        assert matrix[0, 2] == pytest.approx(0.01)
        assert matrix[0, 1] == 0.0

    def test_too_strong_coupling_rejected(self):
        with pytest.raises(ValueError, match="too strong"):
            build_recirculation_matrix([8], intra_rack_coupling=0.6)

    def test_matrix_symmetry_of_uniform_layout(self):
        matrix = build_recirculation_matrix([3, 3])
        assert np.allclose(matrix, matrix.T)

"""Property tests: sharding/streaming knobs never change the numbers.

Hypothesis drives the degrees of freedom the sharded backend adds on
top of the vector kernel — shard partition, stream chunk size, tick
length vs controller poll interval — and asserts that none of them
moves a single bit of any trace column.  A second property round-trips
a streamed trace directory through :class:`FleetTraceReader` and
requires exact (not ``allclose``) equality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controllers.pid import PIController
from repro.fleet import (
    PLACEMENT_POLICIES,
    FleetEngine,
    FleetScheduler,
    FleetWorkload,
    build_uniform_fleet,
)
from repro.telemetry.segments import FleetTraceReader, partition_servers
from repro.workloads.profile import StaircaseProfile

SERVER_COUNT = 5
STEPS = 48

TRACES = (
    "times_s",
    "total_power_w",
    "fan_power_w",
    "max_junction_c",
    "utilization_pct",
    "inlet_c",
    "mean_rpm",
    "unserved_pct",
    "pstate_index",
    "work_deficit_pct",
)


def compositions(total):
    """All ordered compositions of ``total`` (shard size tuples)."""
    if total == 0:
        return [()]
    out = []
    for first in range(1, total + 1):
        out.extend((first,) + rest for rest in compositions(total - first))
    return out


PARTITIONS = st.sampled_from(compositions(SERVER_COUNT))
CHUNKS = st.integers(min_value=1, max_value=30)
DT_POLL = st.sampled_from(
    [(1.0, 10.0), (2.0, 10.0), (2.0, 5.0), (3.0, 7.0), (5.0, 10.0)]
)

_BASE_CACHE = {}


def run(backend, dt_s, poll_s, **kw):
    """One short fleet run; the workload steps across the horizon."""
    fleet = build_uniform_fleet(rack_count=1, servers_per_rack=SERVER_COUNT)
    engine = FleetEngine(
        fleet,
        FleetWorkload(
            StaircaseProfile([30.0, 90.0, 60.0], STEPS * dt_s / 3.0),
            fleet.server_count,
        ),
        scheduler=FleetScheduler(PLACEMENT_POLICIES["coolest-first"]()),
        controller_factory=lambda i: PIController(poll_interval_s=poll_s),
        backend=backend,
        **kw,
    )
    return engine.run(dt_s=dt_s, duration_s=STEPS * dt_s), engine


def base_result(dt_s, poll_s):
    """Vector-backend reference, cached per (dt, poll) combination."""
    key = (dt_s, poll_s)
    if key not in _BASE_CACHE:
        _BASE_CACHE[key], _ = run("vector", dt_s, poll_s)
    return _BASE_CACHE[key]


def assert_bit_identical(expected, actual):
    for name in TRACES:
        np.testing.assert_array_equal(
            np.asarray(getattr(expected, name)),
            np.asarray(getattr(actual, name)),
            err_msg=name,
        )


@given(partition=PARTITIONS, chunk_ticks=CHUNKS, dt_poll=DT_POLL)
@settings(max_examples=25, deadline=None)
def test_sharding_never_changes_any_trace_column(
    partition, chunk_ticks, dt_poll
):
    dt_s, poll_s = dt_poll
    sharded, _ = run(
        "sharded",
        dt_s,
        poll_s,
        shards=partition,
        shard_mode="inline",
        stream_chunk_ticks=chunk_ticks,
    )
    assert_bit_identical(base_result(dt_s, poll_s), sharded)


@given(partition=PARTITIONS, chunk_ticks=CHUNKS)
@settings(max_examples=15, deadline=None)
def test_streamed_trace_round_trips_bit_exactly(
    tmp_path_factory, partition, chunk_ticks
):
    trace_dir = tmp_path_factory.mktemp("segments")
    sharded, engine = run(
        "sharded",
        2.0,
        10.0,
        shards=partition,
        shard_mode="inline",
        stream_chunk_ticks=chunk_ticks,
        trace_dir=str(trace_dir),
    )
    reloaded = FleetTraceReader(trace_dir).to_result(engine.fleet)
    assert_bit_identical(sharded, reloaded)
    assert_bit_identical(base_result(2.0, 10.0), reloaded)
    assert reloaded.metrics == sharded.metrics


def test_partition_servers_matches_composition_semantics():
    assert partition_servers(5, 2) == ((0, 3), (3, 5))
    assert partition_servers(5, (1, 3, 1)) == ((0, 1), (1, 4), (4, 5))
    assert partition_servers(4, 4) == ((0, 1), (1, 2), (2, 3), (3, 4))

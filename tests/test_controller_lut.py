"""Unit tests for the LUT controller: polling, lockout, proactivity."""

import pytest

from repro.core.controllers.base import ControllerObservation
from repro.core.controllers.lut import LUTController
from repro.core.lut import LookupTable


@pytest.fixture
def lut():
    return LookupTable(
        levels_pct=(0.0, 50.0, 100.0), rpms=(1800.0, 1800.0, 2400.0)
    )


def obs(time_s, util, rpm, t_max=60.0):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=t_max,
        avg_cpu_temperature_c=t_max - 1.0,
        utilization_pct=util,
        current_rpm_command=rpm,
    )


class TestDecisions:
    def test_polls_every_second(self, lut):
        assert LUTController(lut).poll_interval_s == 1.0

    def test_initial_rpm_is_idle_entry(self, lut):
        assert LUTController(lut).initial_rpm() == 1800.0

    def test_commands_lut_speed_on_change(self, lut):
        controller = LUTController(lut)
        assert controller.decide(obs(0.0, 90.0, 1800.0)) == 2400.0

    def test_holds_when_lut_agrees(self, lut):
        controller = LUTController(lut)
        assert controller.decide(obs(0.0, 30.0, 1800.0)) is None

    def test_ignores_temperature(self, lut):
        """The LUT controller is driven by utilization only (paper §V:
        decisions are based on load changes, not temperature)."""
        controller = LUTController(lut)
        assert controller.decide(obs(0.0, 30.0, 1800.0, t_max=85.0)) is None


class TestLockout:
    def test_blocks_changes_within_lockout(self, lut):
        controller = LUTController(lut, lockout_s=60.0)
        assert controller.decide(obs(0.0, 90.0, 1800.0)) == 2400.0
        # 30 s later the load drops; the change must be suppressed.
        assert controller.decide(obs(30.0, 10.0, 2400.0)) is None

    def test_allows_change_after_lockout(self, lut):
        controller = LUTController(lut, lockout_s=60.0)
        assert controller.decide(obs(0.0, 90.0, 1800.0)) == 2400.0
        assert controller.decide(obs(60.0, 10.0, 2400.0)) == 1800.0

    def test_first_change_is_immediate(self, lut):
        """The controller reacts to the first spike without delay."""
        controller = LUTController(lut, lockout_s=60.0)
        assert controller.decide(obs(0.5, 90.0, 1800.0)) == 2400.0

    def test_holding_does_not_refresh_lockout(self, lut):
        controller = LUTController(lut, lockout_s=60.0)
        controller.decide(obs(0.0, 90.0, 1800.0))
        # Same LUT output at t=30: no change, lockout unaffected.
        assert controller.decide(obs(30.0, 95.0, 2400.0)) is None
        assert controller.decide(obs(61.0, 10.0, 2400.0)) == 1800.0

    def test_zero_lockout_always_free(self, lut):
        controller = LUTController(lut, lockout_s=0.0)
        assert controller.decide(obs(0.0, 90.0, 1800.0)) == 2400.0
        assert controller.decide(obs(1.0, 10.0, 2400.0)) == 1800.0

    def test_reset_clears_lockout(self, lut):
        controller = LUTController(lut, lockout_s=60.0)
        controller.decide(obs(0.0, 90.0, 1800.0))
        controller.reset()
        assert controller.decide(obs(1.0, 10.0, 2400.0)) == 1800.0


class TestValidation:
    def test_negative_lockout_rejected(self, lut):
        with pytest.raises(ValueError):
            LUTController(lut, lockout_s=-1.0)

    def test_zero_poll_rejected(self, lut):
        with pytest.raises(ValueError):
            LUTController(lut, poll_interval_s=0.0)

    def test_name(self, lut):
        assert LUTController(lut).name == "LUT"

"""Unit tests for the oracle controller extension."""

import pytest

from repro.core.controllers.base import ControllerObservation
from repro.core.controllers.oracle import OracleController


def obs(time_s, util, rpm):
    return ControllerObservation(
        time_s=time_s,
        max_cpu_temperature_c=60.0,
        avg_cpu_temperature_c=59.0,
        utilization_pct=util,
        current_rpm_command=rpm,
    )


@pytest.fixture(scope="module")
def oracle():
    return OracleController(lockout_s=0.0)


class TestOracleController:
    def test_full_load_optimum_near_2400(self, oracle):
        command = oracle.decide(obs(0.0, 100.0, 1800.0))
        assert command in (2400.0, 2700.0)

    def test_idle_optimum_is_minimum(self, oracle):
        command = oracle.decide(obs(0.0, 0.0, 3300.0))
        assert command == 1800.0

    def test_holds_at_optimum(self, oracle):
        target = oracle.decide(obs(0.0, 100.0, 1800.0))
        assert oracle.decide(obs(1.0, 100.0, target)) is None

    def test_quantization_caches(self):
        oracle = OracleController(lockout_s=0.0, utilization_quantum_pct=10.0)
        a = oracle.decide(obs(0.0, 51.0, 3300.0))
        b = oracle.decide(obs(1.0, 49.0, 3300.0))
        assert a == b  # both round to the 50% cache level

    def test_lockout(self):
        oracle = OracleController(lockout_s=60.0)
        first = oracle.decide(obs(0.0, 100.0, 1800.0))
        assert first is not None
        assert oracle.decide(obs(10.0, 0.0, first)) is None
        assert oracle.decide(obs(61.0, 0.0, first)) == 1800.0

    def test_respects_temperature_cap(self):
        oracle = OracleController(lockout_s=0.0, max_temperature_c=65.0)
        command = oracle.decide(obs(0.0, 100.0, 1800.0))
        # Equilibrium at 100% must stay under 65 degC -> needs > 3000 RPM.
        assert command >= 3300.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OracleController(candidates_rpm=())
        with pytest.raises(ValueError):
            OracleController(poll_interval_s=0.0)
        with pytest.raises(ValueError):
            OracleController(lockout_s=-1.0)
        with pytest.raises(ValueError):
            OracleController(utilization_quantum_pct=0.0)

    def test_name(self, oracle):
        assert oracle.name == "Oracle"

"""Unit tests for repro.units conversions and validators."""

import math

import pytest

from repro import units


class TestConversions:
    def test_minutes(self):
        assert units.minutes(5.0) == 300.0

    def test_hours(self):
        assert units.hours(2.0) == 7200.0

    def test_joules_to_kwh_roundtrip(self):
        assert units.joules_to_kwh(units.kwh_to_joules(0.67)) == pytest.approx(0.67)

    def test_one_kwh_is_3600000_joules(self):
        assert units.kwh_to_joules(1.0) == 3.6e6

    def test_cfm_roundtrip(self):
        assert units.m3_s_to_cfm(units.cfm_to_m3_s(150.0)) == pytest.approx(150.0)

    def test_cfm_to_m3s_magnitude(self):
        # 1 CFM is about 0.000472 m^3/s.
        assert units.cfm_to_m3_s(1.0) == pytest.approx(4.719474e-4)


class TestAirflowHeatCapacity:
    def test_scales_linearly_with_flow(self):
        one = units.airflow_heat_capacity_w_per_k(100.0)
        two = units.airflow_heat_capacity_w_per_k(200.0)
        assert two == pytest.approx(2.0 * one)

    def test_magnitude(self):
        # 100 CFM of air carries roughly 56 W/K.
        value = units.airflow_heat_capacity_w_per_k(100.0)
        assert 50.0 < value < 62.0

    def test_zero_flow_is_zero(self):
        assert units.airflow_heat_capacity_w_per_k(0.0) == 0.0

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            units.airflow_heat_capacity_w_per_k(-1.0)


class TestClamp:
    def test_inside_unchanged(self):
        assert units.clamp(5.0, 0.0, 10.0) == 5.0

    def test_below_clamps_to_low(self):
        assert units.clamp(-5.0, 0.0, 10.0) == 0.0

    def test_above_clamps_to_high(self):
        assert units.clamp(15.0, 0.0, 10.0) == 10.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            units.clamp(1.0, 10.0, 0.0)


class TestValidators:
    def test_temperature_accepts_room_temp(self):
        assert units.validate_temperature_c(24.0) == 24.0

    def test_temperature_rejects_below_absolute_zero(self):
        with pytest.raises(ValueError):
            units.validate_temperature_c(-300.0)

    def test_temperature_rejects_nan(self):
        with pytest.raises(ValueError):
            units.validate_temperature_c(math.nan)

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            units.validate_non_negative(-0.1, "x")

    def test_non_negative_rejects_inf(self):
        with pytest.raises(ValueError):
            units.validate_non_negative(math.inf, "x")

    def test_fraction_bounds(self):
        assert units.validate_fraction(0.0, "f") == 0.0
        assert units.validate_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            units.validate_fraction(1.01, "f")

    def test_utilization_bounds(self):
        assert units.validate_utilization_pct(0.0) == 0.0
        assert units.validate_utilization_pct(100.0) == 100.0
        with pytest.raises(ValueError):
            units.validate_utilization_pct(100.5)
        with pytest.raises(ValueError):
            units.validate_utilization_pct(-1.0)

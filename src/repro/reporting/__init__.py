"""Terminal-friendly rendering of experiment results.

The benches and examples render figures as ASCII charts and tables so
the reproduction artifacts live in plain-text files:

* :func:`ascii_chart` — multi-series scatter/line chart,
* :func:`sparkline` — one-line trend rendering,
* :func:`format_table` — aligned text tables from rows of cells.
"""

from repro.reporting.ascii import ascii_chart, format_table, sparkline

__all__ = ["ascii_chart", "format_table", "sparkline"]

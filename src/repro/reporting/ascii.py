"""ASCII rendering primitives for figures and tables."""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

#: Marker characters assigned to chart series, in order.
SERIES_MARKERS = "ox+*#@%&"

#: Density ramp used by :func:`sparkline`.
SPARK_BLOCKS = " .:-=+*#%@"


def ascii_chart(
    series: Mapping[str, Tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 16,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render ``{label: (x, y)}`` series as a multi-line ASCII chart.

    Series are overplotted with distinct markers and a legend is
    appended.  Intended for monotone-ish experiment curves, not for
    publication graphics.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("chart too small to render")
    if len(series) > len(SERIES_MARKERS):
        raise ValueError(f"at most {len(SERIES_MARKERS)} series supported")

    for label, (x, y) in series.items():
        if len(np.asarray(x)) != len(np.asarray(y)):
            raise ValueError(f"series {label!r} has mismatched x/y lengths")
        if len(np.asarray(x)) == 0:
            raise ValueError(f"series {label!r} is empty")

    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    x_min, x_max = float(np.min(all_x)), float(np.max(all_x))
    y_min, y_max = float(np.min(all_y)), float(np.max(all_y))
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, (x, y)), marker in zip(series.items(), SERIES_MARKERS):
        xs = np.asarray(x, dtype=float)
        ys = np.asarray(y, dtype=float)
        cols = ((xs - x_min) / (x_max - x_min) * (width - 1)).astype(int)
        rows = ((ys - y_min) / (y_max - y_min) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = []
    if ylabel:
        lines.append(f"  [{ylabel}]")
    lines.append(f"{y_max:9.1f} |" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + "|" + "".join(row))
    lines.append(f"{y_min:9.1f} |" + "".join(grid[-1]))
    lines.append(" " * 10 + "+" + "-" * width)
    footer = f"{x_min:<12.1f}{xlabel:^{max(0, width - 24)}}{x_max:>12.1f}"
    lines.append(" " * 10 + footer)
    legend = "  ".join(
        f"{marker}={label}"
        for (label, _), marker in zip(series.items(), SERIES_MARKERS)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a numeric series as a one-line density sparkline."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("empty series")
    if width < 1:
        raise ValueError("width must be positive")
    idx = np.linspace(0, data.size - 1, min(width, data.size)).astype(int)
    sampled = data[idx]
    lo, hi = float(np.min(sampled)), float(np.max(sampled))
    if hi == lo:
        return SPARK_BLOCKS[0] * len(sampled)
    scaled = ((sampled - lo) / (hi - lo) * (len(SPARK_BLOCKS) - 1)).astype(int)
    return "".join(SPARK_BLOCKS[s] for s in scaled)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align: str = "",
) -> str:
    """Render an aligned text table.

    *align* is one character per column, ``<`` or ``>`` (default:
    ``<`` for the first column, ``>`` for the rest — label then
    numbers).
    """
    if not headers:
        raise ValueError("need at least one column")
    ncols = len(headers)
    for row in rows:
        if len(row) != ncols:
            raise ValueError("row width does not match headers")
    if not align:
        align = "<" + ">" * (ncols - 1)
    if len(align) != ncols or any(a not in "<>" for a in align):
        raise ValueError("align must be one of <,> per column")

    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(ncols)]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(
            f"{cell:{align[i]}{widths[i]}}" for i, cell in enumerate(row)
        )
        lines.append(line.rstrip())
        if r == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)

"""Fleet-scale fault injection and degraded-operation scenarios.

The paper's control loop exists to keep servers safe and efficient
precisely when conditions degrade, and its prognostics reference
(Gross et al., MFPT 2006 — the paper's ref. [3]) is about detecting
failing sensors and components from telemetry.  This module brings
those failure modes to fleet scale as *declarative, time-windowed
events* that the :class:`~repro.fleet.engine.FleetEngine` injects into
every backend — the kernelized ``vector`` loop, the ``vector-legacy``
equivalence oracle, and the per-simulator ``reference`` loop — without
breaking the bit-identical vector/legacy trace contract:

* :class:`SensorFaultEvent` — one server's CSTH thermal channel lies
  to its controller, reusing the five single-server
  :class:`~repro.server.faults.SensorFault` modes (stuck, drift,
  offset, spike, dropout).  A dropout (NaN reading) makes the BMC
  hold the last fan command until the channel returns.
* :class:`FanDegradationEvent` — a fan bank derates: the achievable
  rotor speed is capped at ``rpm_factor``  of the bank's maximum
  (clamped to stay above the bank minimum), whatever the controller
  commands.
* :class:`ServerOutageEvent` — the server's compute capacity drops to
  zero; the placement policy respills its share of the aggregate
  demand across the surviving servers, and whatever does not fit
  anywhere is counted as fault-attributable SLA loss.
* :class:`CracExcursionEvent` — a CRAC/ambient disturbance transient:
  the supply temperature of one rack (or the whole room) is offset by
  ``delta_c`` for the window, layered onto
  :class:`~repro.fleet.topology.RecirculationAmbient` below the
  recirculation coupling.

A :class:`FaultSchedule` is the declarative container (a frozen
dataclass tree of primitives, so scenario sweeps content-hash it
exactly like any other parameter); :meth:`FaultSchedule.compile`
lowers it to a :class:`FleetFaultPlan` of whole-horizon per-tick mask
arrays — outage masks, fan rpm caps, supply deltas — evaluated on the
engine's exact accumulated tick-time grid
(:func:`~repro.engine.kernel.plan_tick_times`), so a window starting
mid-chunk takes effect at the correct tick on every backend.  Live
:class:`~repro.server.faults.SensorFault` instances are materialized
fresh per compile, so a stateful :class:`SpikeFault` RNG never leaks
draws between runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.engine.kernel import plan_tick_times
from repro.server.faults import (
    DriftFault,
    DropoutFault,
    FaultableSensor,
    OffsetFault,
    SensorFault,
    SpikeFault,
    StuckFault,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.topology import Fleet

#: The supported sensor-fault modes (the five single-server classes).
SENSOR_FAULT_MODES = ("stuck", "drift", "offset", "spike", "dropout")


def _validate_window(start_s: float, end_s: float) -> None:
    if not math.isfinite(start_s) or start_s < 0.0:
        raise ValueError(f"start_s must be finite and >= 0, got {start_s!r}")
    if math.isnan(end_s) or end_s <= start_s:
        raise ValueError(
            f"end_s must be after start_s ({start_s}), got {end_s!r}"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One time-windowed disturbance (active on ``start_s <= t < end_s``)."""

    #: Onset time, seconds (simulation clock).
    start_s: float = 0.0
    #: Repair / end time, seconds (``inf`` = never repaired).
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _validate_window(self.start_s, self.end_s)

    def active_mask(self, times_s: np.ndarray) -> np.ndarray:
        """Boolean activity over the engine's tick-time grid."""
        return (times_s >= self.start_s) & (times_s < self.end_s)


@dataclass(frozen=True)
class SensorFaultEvent(FaultEvent):
    """One server's thermal telemetry channel misbehaves.

    ``mode`` selects the single-server fault class; ``value`` carries
    its magnitude — the stuck reading in °C, the drift rate in °C/s,
    the calibration offset in °C, or the spike magnitude in °C
    (ignored for ``dropout``).  ``probability``/``seed`` apply to
    ``spike`` only.
    """

    #: Flat (rack-major) index of the affected server.
    server: int = 0
    #: One of :data:`SENSOR_FAULT_MODES`.
    mode: str = "stuck"
    #: Mode magnitude: stuck °C, drift °C/s, offset °C, spike °C.
    value: float = 0.0
    #: Per-poll spike probability (``spike`` mode only).
    probability: float = 0.05
    #: Spike RNG seed (``spike`` mode only).
    seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.server < 0:
            raise ValueError("server index must be >= 0")
        if self.mode not in SENSOR_FAULT_MODES:
            raise ValueError(
                f"unknown sensor-fault mode {self.mode!r} "
                f"(have {SENSOR_FAULT_MODES})"
            )
        # validate up front, not at compile time: a bad schedule must
        # fail while it is being loaded (the CLI's error path), never
        # mid-run
        if not math.isfinite(self.value):
            raise ValueError(f"value must be finite, got {self.value!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability!r}"
            )

    def make_fault(self) -> SensorFault:
        """A fresh live :class:`SensorFault` for one run.

        New instance per compile: :class:`SpikeFault` keeps RNG state,
        and sharing it across runs would break seeded reproducibility.
        """
        if self.mode == "stuck":
            return StuckFault(self.value, self.start_s, self.end_s)
        if self.mode == "drift":
            return DriftFault(self.value, self.start_s, self.end_s)
        if self.mode == "offset":
            return OffsetFault(self.value, self.start_s, self.end_s)
        if self.mode == "spike":
            return SpikeFault(
                self.value,
                probability=self.probability,
                seed=self.seed,
                start_s=self.start_s,
                end_s=self.end_s,
            )
        return DropoutFault(self.start_s, self.end_s)


@dataclass(frozen=True)
class FanDegradationEvent(FaultEvent):
    """A fan bank derates: achievable speed capped at a max fraction.

    While active the physical rotor command is
    ``min(command, rpm_factor * rpm_max)`` — clamped to stay at or
    above the bank's minimum speed (a degraded bank still spins).  The
    controller keeps commanding (and observing) its own value; only
    the actuation is derated.
    """

    server: int = 0
    #: Fraction of the bank's ``rpm_max`` still achievable, in (0, 1].
    rpm_factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.server < 0:
            raise ValueError("server index must be >= 0")
        if not 0.0 < self.rpm_factor <= 1.0:
            raise ValueError(
                f"rpm_factor must be in (0, 1], got {self.rpm_factor!r}"
            )


@dataclass(frozen=True)
class ServerOutageEvent(FaultEvent):
    """A server goes down: capacity zero, load respills elsewhere."""

    server: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.server < 0:
            raise ValueError("server index must be >= 0")


@dataclass(frozen=True)
class CracExcursionEvent(FaultEvent):
    """A CRAC supply setpoint excursion (°C) over one rack or the room.

    ``rack=None`` disturbs every rack (room-level ambient transient);
    ``delta_c`` may be negative (overcooling) or positive (a failing
    or setback CRAC unit).
    """

    #: Supply temperature offset while active, °C.
    delta_c: float = 2.0
    #: Affected rack index, or ``None`` for the whole room.
    rack: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.delta_c):
            raise ValueError("delta_c must be finite")
        if self.rack is not None and self.rack < 0:
            raise ValueError("rack index must be >= 0")


#: Any concrete fault event.
AnyFaultEvent = Union[
    SensorFaultEvent,
    FanDegradationEvent,
    ServerOutageEvent,
    CracExcursionEvent,
]

#: JSON ``kind`` tag → event class, for the CLI / sweep spec format.
_EVENT_KINDS = {
    "sensor": SensorFaultEvent,
    "fan": FanDegradationEvent,
    "outage": ServerOutageEvent,
    "crac": CracExcursionEvent,
}
_KIND_OF_CLASS = {cls: kind for kind, cls in _EVENT_KINDS.items()}


@dataclass(frozen=True)
class FaultSchedule:
    """A declarative, content-hashable set of fleet fault events.

    The schedule is pure data (frozen dataclasses of primitives): it
    can be embedded in a :class:`~repro.sweep.spec.ScenarioSpec`
    parameter mapping and content-hashes deterministically, so sweeps
    over failure scenarios are cache-correct.  Compile it per run with
    :meth:`compile`; an empty schedule compiles to ``None`` and the
    engine takes exactly its fault-free path.
    """

    events: Tuple[AnyFaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"expected FaultEvent instances, got {type(event).__name__}"
                )
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def empty(self) -> bool:
        """Whether the schedule holds no events at all."""
        return not self.events

    # ------------------------------------------------------------------
    # JSON round-trip (the CLI's --faults file format)
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """The events as plain ``{"kind": ..., ...}`` mappings."""
        out = []
        for event in self.events:
            entry: dict = {"kind": _KIND_OF_CLASS[type(event)]}
            for name, value in vars(event).items():
                if isinstance(value, float) and math.isinf(value):
                    continue  # "no end" is the JSON default
                entry[name] = value
            out.append(entry)
        return out

    @classmethod
    def from_dicts(cls, entries: Sequence[Mapping[str, Any]]) -> "FaultSchedule":
        """Build a schedule from ``{"kind": ..., ...}`` mappings."""
        events = []
        for entry in entries:
            if not isinstance(entry, Mapping):
                raise ValueError(
                    "fault events must be JSON objects, got "
                    f"{type(entry).__name__}: {entry!r}"
                )
            entry = dict(entry)
            kind = entry.pop("kind", None)
            if kind not in _EVENT_KINDS:
                raise ValueError(
                    f"unknown fault event kind {kind!r} "
                    f"(have {sorted(_EVENT_KINDS)})"
                )
            try:
                events.append(_EVENT_KINDS[kind](**entry))
            except TypeError as exc:
                raise ValueError(f"bad {kind!r} fault event: {exc}") from None
        return cls(events=tuple(events))

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the schedule as a JSON list of event objects."""
        path = Path(path)
        with path.open("w") as handle:
            json.dump(self.to_dicts(), handle, indent=1)
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "FaultSchedule":
        """Load a schedule written by :meth:`to_json` (or by hand)."""
        with Path(path).open("r") as handle:
            entries = json.load(handle)
        if not isinstance(entries, list):
            raise ValueError("fault spec must be a JSON list of events")
        return cls.from_dicts(entries)

    @classmethod
    def resolve(cls, value: object) -> Optional["FaultSchedule"]:
        """Coerce a sweep/CLI parameter into a schedule.

        Accepts ``None`` (no faults), a :class:`FaultSchedule`, or a
        sequence of event mappings (the JSON form).  Empty schedules
        resolve to ``None``.
        """
        if value is None:
            return None
        if isinstance(value, FaultSchedule):
            return None if value.empty else value
        if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            if all(isinstance(item, FaultEvent) for item in value):
                schedule = cls(events=tuple(value))
            else:
                schedule = cls.from_dicts(value)
            return None if schedule.empty else schedule
        raise TypeError(
            "faults must be a FaultSchedule or a list of event mappings, "
            f"got {type(value).__name__}"
        )

    # ------------------------------------------------------------------
    # validation and compilation
    # ------------------------------------------------------------------
    def validate_for(self, fleet: "Fleet") -> None:
        """Reject events targeting servers/racks the fleet lacks."""
        n = fleet.server_count
        racks = fleet.rack_count
        for event in self.events:
            server = getattr(event, "server", None)
            if server is not None and server >= n:
                raise ValueError(
                    f"fault event targets server {server}, "
                    f"fleet has {n} servers"
                )
            rack = getattr(event, "rack", None)
            if rack is not None and rack >= racks:
                raise ValueError(
                    f"fault event targets rack {rack}, fleet has {racks} racks"
                )

    def compile(
        self, fleet: "Fleet", steps: int, dt_s: float
    ) -> Optional["FleetFaultPlan"]:
        """Lower the schedule to per-tick mask arrays for one run.

        Activity is evaluated on the engine's accumulated tick-time
        grid (the time at which each tick's scheduling and polling
        happen), so both fleet loops see identical masks and onsets
        land on the exact tick, never the next poll boundary.  Returns
        ``None`` for an empty schedule.
        """
        if self.empty:
            return None
        self.validate_for(fleet)
        n = fleet.server_count
        times = plan_tick_times(steps, dt_s)[:steps]
        rack_of = np.asarray(fleet.rack_index_of_server)

        outage = np.zeros((steps, n), dtype=bool)
        rpm_cap = np.full((steps, n), np.inf)
        supply_delta = np.zeros((steps, n))
        fault_active = np.zeros((steps, n), dtype=bool)
        sensor_channels = [FaultableSensor() for _ in range(n)]
        has_fan = False
        has_excursions = False

        rpm_min = np.array([spec.fan.rpm_min for spec in fleet.servers])
        rpm_max = np.array([spec.fan.rpm_max for spec in fleet.servers])

        for event in self.events:
            mask = event.active_mask(times)
            if isinstance(event, ServerOutageEvent):
                outage[mask, event.server] = True
                fault_active[mask, event.server] = True
            elif isinstance(event, FanDegradationEvent):
                has_fan = True
                cap = min(
                    rpm_max[event.server],
                    max(
                        rpm_min[event.server],
                        event.rpm_factor * rpm_max[event.server],
                    ),
                )
                rpm_cap[mask, event.server] = np.minimum(
                    rpm_cap[mask, event.server], cap
                )
                fault_active[mask, event.server] = True
            elif isinstance(event, CracExcursionEvent):
                has_excursions = True
                if event.rack is None:
                    affected = np.ones(n, dtype=bool)
                else:
                    affected = rack_of == event.rack
                supply_delta[np.ix_(mask, affected)] += event.delta_c
                fault_active[np.ix_(mask, affected)] = True
            else:  # SensorFaultEvent
                sensor_channels[event.server].inject(event.make_fault())
                fault_active[mask, event.server] = True

        return FleetFaultPlan(
            outage=outage,
            outage_any=outage.any(axis=1),
            rpm_cap=rpm_cap,
            has_fan_faults=has_fan,
            supply_delta=supply_delta,
            has_excursions=has_excursions,
            fault_active=fault_active,
            sensor_channels=sensor_channels,
        )


class FleetFaultPlan:
    """A compiled fault schedule: whole-horizon per-tick mask arrays.

    Produced by :meth:`FaultSchedule.compile` for one run; consumed by
    both fleet engine loops (the masks are shared, so the two backends
    cannot disagree about when an event is active).  All arrays are
    ``(steps, n)`` in the fleet's flat server order.
    """

    __slots__ = (
        "outage",
        "outage_any",
        "rpm_cap",
        "has_fan_faults",
        "supply_delta",
        "has_excursions",
        "fault_active",
        "sensor_channels",
        "_has_sensor",
    )

    def __init__(
        self,
        outage: np.ndarray,
        outage_any: np.ndarray,
        rpm_cap: np.ndarray,
        has_fan_faults: bool,
        supply_delta: np.ndarray,
        has_excursions: bool,
        fault_active: np.ndarray,
        sensor_channels: Sequence[FaultableSensor],
    ) -> None:
        #: Per-tick per-server outage mask (True = zero capacity).
        self.outage = outage
        #: Per-tick "any server out" flags (skips the respill math).
        self.outage_any = outage_any
        #: Per-tick per-server achievable-rpm cap (inf = healthy).
        self.rpm_cap = rpm_cap
        self.has_fan_faults = has_fan_faults
        #: Per-tick per-server CRAC supply offset, °C.
        self.supply_delta = supply_delta
        self.has_excursions = has_excursions
        #: Per-tick per-server "any fault touches this server" mask.
        self.fault_active = fault_active
        #: One faultable thermal channel per server, polled by the
        #: engine's controller loop.
        self.sensor_channels = list(sensor_channels)
        self._has_sensor = any(
            channel.fault_count for channel in self.sensor_channels
        )

    @property
    def has_sensor_faults(self) -> bool:
        """Whether any server has a telemetry fault registered."""
        return self._has_sensor

    def transform_observation(
        self, server: int, time_s: float, max_c: float, avg_c: float
    ) -> Tuple[float, float]:
        """Apply *server*'s active sensor faults to one controller poll.

        The fleet engine exposes one thermal channel per server (the
        max and mean junction readings); composition is the
        single-server :meth:`FaultableSensor.transform` — the max
        reading goes through the whole fault chain first, then the
        mean, a fixed order both backends share so stateful faults
        (spikes) consume their RNG identically.  A dropout yields NaN,
        which the engine treats as "hold the last command".
        """
        channel = self.sensor_channels[server]
        if not channel.fault_count:
            return max_c, avg_c
        return (
            channel.transform(time_s, max_c),
            channel.transform(time_s, avg_c),
        )

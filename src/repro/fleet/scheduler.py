"""Job placement across the fleet: pluggable scheduling policies.

Every tick the engine converts the aggregate demand (a
``workloads.datacenter`` utilization profile scaled to the whole
fleet) into per-server utilization targets.  A
:class:`PlacementPolicy` ranks the servers; the scheduler then fills
them greedily in that order, capping each server at 100% and
reporting any unserved remainder as an SLA violation.

Policies:

* :class:`RoundRobinPolicy` — rotate the fill order every tick
  (classic load spreading, thermally blind),
* :class:`LeastUtilizedPolicy` — fill the currently least-busy
  servers first,
* :class:`CoolestFirstPolicy` — fill the servers with the coldest
  hottest-junction first (thermal-aware placement),
* :class:`LeakageAwarePolicy` — fill the servers with the smallest
  marginal leakage cost ``dP_leak/dT = k2·k3·exp(k3·T)`` first, the
  fleet-level analogue of the paper's leakage-aware control,
* :class:`DvfsAwarePolicy` — fill the servers running closest to
  nominal frequency first, so demand lands where a coordinated
  fan+DVFS controller has the headroom to execute it without deficit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.units import validate_non_negative
from repro.workloads.profile import UtilizationProfile

#: Per-server utilization ceiling, percent.
SERVER_CAP_PCT = 100.0


@dataclass(frozen=True)
class ServerLoadView:
    """What a placement policy may observe about one server."""

    index: int
    rack_index: int
    #: Executed utilization over the previous tick, percent.
    utilization_pct: float
    #: Hottest junction temperature, °C.
    max_junction_c: float
    #: Inlet (post-recirculation) air temperature, °C.
    inlet_c: float
    #: Instantaneous whole-CPU leakage power, watts.
    leakage_w: float
    #: Marginal leakage cost ``dP_leak/dT_j`` summed over sockets, W/°C.
    leakage_slope_w_per_c: float
    #: Active p-state during the previous tick (0 = nominal frequency).
    pstate_index: int = 0


class FleetLoadArrays:
    """Array view of the whole fleet, one element per server.

    The kernelized fleet engine keeps per-server state in persistent
    ``(N,)`` arrays; policies that implement
    :meth:`PlacementPolicy.order_indices` rank directly on them instead
    of having the engine materialize N :class:`ServerLoadView` objects
    every tick (the pre-kernel hot spot).

    The leakage slope is evaluated lazily: it costs an ``(N, S)``
    exponential, and only leakage-aware rankings (or the view
    fallback) read it.  The provider reads the **live** fleet state,
    so the first access must happen while the pre-step state is
    current — i.e. inside ``order_indices`` during the scheduling
    phase, before the tick's physics step (the value is cached from
    then on).  Do not hold the object across ticks.
    """

    __slots__ = (
        "utilization_pct",
        "max_junction_c",
        "inlet_c",
        "leakage_w",
        "pstate_index",
        "rack_index",
        "_slope",
        "_slope_fn",
    )

    def __init__(
        self,
        utilization_pct: np.ndarray,
        max_junction_c: np.ndarray,
        inlet_c: np.ndarray,
        leakage_w: np.ndarray,
        pstate_index: np.ndarray,
        rack_index: np.ndarray,
        leakage_slope_w_per_c: Optional[np.ndarray] = None,
        leakage_slope_fn=None,
    ):
        #: Executed utilization over the previous tick, percent.
        self.utilization_pct = utilization_pct
        #: Hottest junction per server, °C.
        self.max_junction_c = max_junction_c
        #: Inlet (post-recirculation) air temperature, °C.
        self.inlet_c = inlet_c
        #: Instantaneous whole-CPU leakage power, watts.
        self.leakage_w = leakage_w
        #: Active p-state during the previous tick (0 = nominal).
        self.pstate_index = pstate_index
        #: Rack index of each server.
        self.rack_index = rack_index
        if leakage_slope_w_per_c is None and leakage_slope_fn is None:
            raise ValueError(
                "need leakage_slope_w_per_c or a leakage_slope_fn provider"
            )
        self._slope = leakage_slope_w_per_c
        self._slope_fn = leakage_slope_fn

    @property
    def leakage_slope_w_per_c(self) -> np.ndarray:
        """Marginal leakage cost ``dP_leak/dT_j`` per server, W/°C."""
        if self._slope is None:
            self._slope = self._slope_fn()
        return self._slope


class PlacementPolicy(ABC):
    """Ranks servers; earlier in the order means filled first."""

    name = "policy"

    def reset(self) -> None:
        """Clear internal state between runs."""

    @abstractmethod
    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        """Return all server indices, highest placement priority first."""

    def order_indices(self, arrays: FleetLoadArrays):
        """Array-based ranking; ``None`` falls back to :meth:`order`.

        Implementations must produce exactly the permutation
        :meth:`order` would return for view objects built from the
        same arrays (the engine's bit-identical trace contract rides
        on it).  The default opts out, so custom view-based policies
        keep working unchanged.
        """
        return None


class RoundRobinPolicy(PlacementPolicy):
    """Rotate the fill order by one server every scheduling tick."""

    name = "round-robin"

    def __init__(self) -> None:
        self._start = 0

    def reset(self) -> None:
        self._start = 0

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        n = len(views)
        start = self._start % n
        self._start += 1
        return [views[(start + k) % n].index for k in range(n)]

    def order_indices(self, arrays: FleetLoadArrays) -> np.ndarray:
        """The same rotation, sharing the tick counter with `order`."""
        n = len(arrays.utilization_pct)
        start = self._start % n
        self._start += 1
        return (start + np.arange(n)) % n


class LeastUtilizedPolicy(PlacementPolicy):
    """Fill the currently least-busy servers first."""

    name = "least-utilized"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        utils = np.array([v.utilization_pct for v in views])
        return [views[i].index for i in np.argsort(utils, kind="stable")]

    def order_indices(self, arrays: FleetLoadArrays) -> np.ndarray:
        """Stable argsort on the persistent utilization array."""
        return np.argsort(arrays.utilization_pct, kind="stable")


class CoolestFirstPolicy(PlacementPolicy):
    """Fill the thermally coldest servers first."""

    name = "coolest-first"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        temps = np.array([v.max_junction_c for v in views])
        return [views[i].index for i in np.argsort(temps, kind="stable")]

    def order_indices(self, arrays: FleetLoadArrays) -> np.ndarray:
        """Stable argsort on the persistent junction array."""
        return np.argsort(arrays.max_junction_c, kind="stable")


class LeakageAwarePolicy(PlacementPolicy):
    """Fill the servers with the smallest marginal leakage cost first.

    The exponential leakage model makes ``dP_leak/dT`` grow with
    temperature, so a watt of extra load is cheapest on the server
    whose junctions sit lowest on the exponential; inlet temperature
    breaks ties (a cooler inlet means the added heat settles lower).
    """

    name = "leakage-aware"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        slopes = np.array([v.leakage_slope_w_per_c for v in views])
        inlets = np.array([v.inlet_c for v in views])
        return [views[i].index for i in np.lexsort((inlets, slopes))]

    def order_indices(self, arrays: FleetLoadArrays) -> np.ndarray:
        """The same slope-then-inlet lexsort, array-direct."""
        return np.lexsort((arrays.inlet_c, arrays.leakage_slope_w_per_c))


class DvfsAwarePolicy(PlacementPolicy):
    """Fill the nominal-frequency, already-loaded servers first.

    When per-server controllers also actuate DVFS (the coordinated
    fan + p-state policy), demand placed on a server parked in a deep
    p-state stretches its busy time and — once the stretch saturates —
    becomes a work deficit.  Controllers observe the *previous* tick,
    so every reallocation onto a freshly-idle server opens a one-tick
    deficit window (its governor is parking it at the very moment the
    scheduler loads it).  Filling the lowest p-state index first keeps
    demand where the frequency headroom is, and breaking ties by
    *descending* executed utilization keeps the busy set stable so
    those windows never open in steady state.
    """

    name = "dvfs-aware"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        pstates = np.array([v.pstate_index for v in views])
        utils = np.array([v.utilization_pct for v in views])
        return [views[i].index for i in np.lexsort((-utils, pstates))]

    def order_indices(self, arrays: FleetLoadArrays) -> np.ndarray:
        """The same p-state-then-utilization lexsort, array-direct."""
        return np.lexsort((-arrays.utilization_pct, arrays.pstate_index))


#: Registry used by the CLI and examples.
PLACEMENT_POLICIES = {
    policy.name: policy
    for policy in (
        RoundRobinPolicy,
        LeastUtilizedPolicy,
        CoolestFirstPolicy,
        LeakageAwarePolicy,
        DvfsAwarePolicy,
    )
}


@dataclass(frozen=True)
class SchedulingDecision:
    """Per-server utilization targets for one tick."""

    allocations_pct: np.ndarray
    #: Demand that did not fit anywhere, in single-server percent units.
    unserved_pct: float


class FleetScheduler:
    """Greedy capacity filler driven by a placement policy.

    *server_cap_pct* models the per-server admission ceiling real
    clusters run with (thermal / tail-latency headroom); demand that
    does not fit under the caps anywhere is reported unserved.
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        server_cap_pct: float = SERVER_CAP_PCT,
    ):
        if not 0.0 < server_cap_pct <= SERVER_CAP_PCT:
            raise ValueError(
                f"server_cap_pct must be in (0, {SERVER_CAP_PCT}], "
                f"got {server_cap_pct}"
            )
        self.policy = policy
        self.server_cap_pct = float(server_cap_pct)

    @property
    def name(self) -> str:
        """The underlying policy name (used in reports)."""
        return self.policy.name

    def reset(self) -> None:
        """Clear policy state between runs."""
        self.policy.reset()

    def _fill(
        self, order, server_count: int, total_demand_pct: float
    ) -> SchedulingDecision:
        """The greedy Python fill along *order* (may skip servers)."""
        allocations = np.zeros(server_count)
        remaining = float(total_demand_pct)
        for index in order:
            if remaining <= 0.0:
                break
            share = min(self.server_cap_pct, remaining)
            allocations[index] = share
            remaining -= share
        return SchedulingDecision(
            allocations_pct=allocations, unserved_pct=max(0.0, remaining)
        )

    def _ordered(self, views: Sequence[ServerLoadView]) -> List[int]:
        """The policy's validated fill order for *views*."""
        if not views:
            raise ValueError("need at least one server view")
        order = list(self.policy.order(views))
        if sorted(order) != list(range(len(views))):
            raise ValueError(
                f"policy {self.policy.name!r} returned an invalid order"
            )
        return order

    def assign(
        self, views: Sequence[ServerLoadView], total_demand_pct: float
    ) -> SchedulingDecision:
        """Split *total_demand_pct* (single-server % units) across servers.

        For degraded fleets (down servers excluded from the fill) use
        :meth:`assign_with_spill`, which also produces the healthy
        counterfactual the fault metrics need.
        """
        validate_non_negative(total_demand_pct, "total_demand_pct")
        return self._fill(self._ordered(views), len(views), total_demand_pct)

    def assign_with_spill(
        self,
        views: Sequence[ServerLoadView],
        total_demand_pct: float,
        available: np.ndarray,
    ) -> Tuple[SchedulingDecision, SchedulingDecision]:
        """One degraded fill plus its all-servers-up counterfactual.

        The policy is ranked **once** (stateful policies like
        round-robin must advance exactly one tick); the same order is
        then filled twice — restricted to *available* servers, and
        unrestricted.  The pair lets the engine attribute lost work to
        the outage: counterfactual allocations landing on down servers
        are the respilled work, and any unserved demand beyond the
        counterfactual's is fault-attributable SLA loss.
        """
        validate_non_negative(total_demand_pct, "total_demand_pct")
        order = self._ordered(views)
        counterfactual = self._fill(order, len(views), total_demand_pct)
        degraded = self._fill(
            [index for index in order if available[index]],
            len(views),
            total_demand_pct,
        )
        return degraded, counterfactual

    def assign_indexed(
        self, order: np.ndarray, server_count: int, total_demand_pct: float
    ) -> SchedulingDecision:
        """Greedy fill along a trusted pre-ranked *order*, vectorized.

        Fast path for policies providing
        :meth:`PlacementPolicy.order_indices`: skips the view
        materialization and the O(N log N) permutation validation of
        :meth:`assign` and replaces the per-server Python fill loop
        with ``np.subtract.accumulate`` — which subtracts strictly
        sequentially, reproducing the loop's ``remaining`` sequence
        (and therefore the partial final share and the unserved
        remainder) bit for bit.  *order* may rank only a subset of the
        servers (the fault path filters out outage servers); the rest
        keep zero allocation.
        """
        validate_non_negative(total_demand_pct, "total_demand_pct")
        allocations = np.zeros(server_count)
        total = float(total_demand_pct)
        if total <= 0.0:
            return SchedulingDecision(
                allocations_pct=allocations, unserved_pct=max(0.0, total)
            )
        cap = self.server_cap_pct
        # remaining-demand sequence [total, total - cap, ...] exactly as
        # the loop computes it; every fill but the last takes the full
        # cap, so the sequence needs at most min(n, ceil(total/cap)) + 1
        # entries.
        count_max = min(len(order), int(np.ceil(total / cap)) + 1)
        remaining_seq = np.full(count_max + 1, cap)
        remaining_seq[0] = total
        np.subtract.accumulate(remaining_seq, out=remaining_seq)
        fills = int((remaining_seq[:count_max] > 0.0).sum())
        allocations[order[:fills]] = np.minimum(cap, remaining_seq[:fills])
        return SchedulingDecision(
            allocations_pct=allocations,
            unserved_pct=max(0.0, float(remaining_seq[fills])),
        )


class FleetWorkload:
    """An aggregate demand trace split across *server_count* machines.

    Wraps a :class:`UtilizationProfile` whose value is interpreted as
    the **fleet-average** utilization percentage, so the same diurnal /
    batch-window / flash-crowd builders that drive one server scale to
    any fleet size.
    """

    #: Profile-backed demand is a pure function of time, so the engine
    #: may precompute it for the whole horizon.  Subclasses whose
    #: demand depends on run state (e.g. the facility
    #: :class:`~repro.facility.workload.WorkloadQueue`) set this True
    #: and are evaluated tick by tick instead.
    dynamic = False

    def __init__(self, profile: UtilizationProfile, server_count: int):
        if server_count <= 0:
            raise ValueError("server_count must be positive")
        self.profile = profile
        self.server_count = server_count

    def reset(self) -> None:
        """Restore pre-run state (no-op for pure profile demand)."""

    def record_executed(
        self, time_s: float, executed_total_pct: float, dt_s: float
    ) -> None:
        """Feed back the work the fleet executed this tick (no-op here).

        Dynamic workloads use this to drain queued jobs; profile-backed
        demand ignores it.
        """

    @property
    def duration_s(self) -> float:
        """Nominal workload length, seconds."""
        return self.profile.duration_s

    def fleet_average_pct(self, time_s: float) -> float:
        """The underlying profile value at *time_s*."""
        return self.profile.utilization_pct(time_s)

    def total_demand_pct(self, time_s: float) -> float:
        """Aggregate demand in single-server percent units.

        100% × *server_count* is the whole fleet flat out.
        """
        return self.profile.utilization_pct(time_s) * self.server_count

    def split(
        self,
        scheduler: FleetScheduler,
        views: Sequence[ServerLoadView],
        time_s: float,
    ) -> SchedulingDecision:
        """Convenience: demand at *time_s* pushed through *scheduler*."""
        if len(views) != self.server_count:
            raise ValueError(
                f"expected {self.server_count} views, got {len(views)}"
            )
        return scheduler.assign(views, self.total_demand_pct(time_s))

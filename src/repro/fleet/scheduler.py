"""Job placement across the fleet: pluggable scheduling policies.

Every tick the engine converts the aggregate demand (a
``workloads.datacenter`` utilization profile scaled to the whole
fleet) into per-server utilization targets.  A
:class:`PlacementPolicy` ranks the servers; the scheduler then fills
them greedily in that order, capping each server at 100% and
reporting any unserved remainder as an SLA violation.

Policies:

* :class:`RoundRobinPolicy` — rotate the fill order every tick
  (classic load spreading, thermally blind),
* :class:`LeastUtilizedPolicy` — fill the currently least-busy
  servers first,
* :class:`CoolestFirstPolicy` — fill the servers with the coldest
  hottest-junction first (thermal-aware placement),
* :class:`LeakageAwarePolicy` — fill the servers with the smallest
  marginal leakage cost ``dP_leak/dT = k2·k3·exp(k3·T)`` first, the
  fleet-level analogue of the paper's leakage-aware control,
* :class:`DvfsAwarePolicy` — fill the servers running closest to
  nominal frequency first, so demand lands where a coordinated
  fan+DVFS controller has the headroom to execute it without deficit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.units import validate_non_negative
from repro.workloads.profile import UtilizationProfile

#: Per-server utilization ceiling, percent.
SERVER_CAP_PCT = 100.0


@dataclass(frozen=True)
class ServerLoadView:
    """What a placement policy may observe about one server."""

    index: int
    rack_index: int
    #: Executed utilization over the previous tick, percent.
    utilization_pct: float
    #: Hottest junction temperature, °C.
    max_junction_c: float
    #: Inlet (post-recirculation) air temperature, °C.
    inlet_c: float
    #: Instantaneous whole-CPU leakage power, watts.
    leakage_w: float
    #: Marginal leakage cost ``dP_leak/dT_j`` summed over sockets, W/°C.
    leakage_slope_w_per_c: float
    #: Active p-state during the previous tick (0 = nominal frequency).
    pstate_index: int = 0


class PlacementPolicy(ABC):
    """Ranks servers; earlier in the order means filled first."""

    name = "policy"

    def reset(self) -> None:
        """Clear internal state between runs."""

    @abstractmethod
    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        """Return all server indices, highest placement priority first."""


class RoundRobinPolicy(PlacementPolicy):
    """Rotate the fill order by one server every scheduling tick."""

    name = "round-robin"

    def __init__(self) -> None:
        self._start = 0

    def reset(self) -> None:
        self._start = 0

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        n = len(views)
        start = self._start % n
        self._start += 1
        return [views[(start + k) % n].index for k in range(n)]


class LeastUtilizedPolicy(PlacementPolicy):
    """Fill the currently least-busy servers first."""

    name = "least-utilized"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        utils = np.array([v.utilization_pct for v in views])
        return [views[i].index for i in np.argsort(utils, kind="stable")]


class CoolestFirstPolicy(PlacementPolicy):
    """Fill the thermally coldest servers first."""

    name = "coolest-first"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        temps = np.array([v.max_junction_c for v in views])
        return [views[i].index for i in np.argsort(temps, kind="stable")]


class LeakageAwarePolicy(PlacementPolicy):
    """Fill the servers with the smallest marginal leakage cost first.

    The exponential leakage model makes ``dP_leak/dT`` grow with
    temperature, so a watt of extra load is cheapest on the server
    whose junctions sit lowest on the exponential; inlet temperature
    breaks ties (a cooler inlet means the added heat settles lower).
    """

    name = "leakage-aware"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        slopes = np.array([v.leakage_slope_w_per_c for v in views])
        inlets = np.array([v.inlet_c for v in views])
        return [views[i].index for i in np.lexsort((inlets, slopes))]


class DvfsAwarePolicy(PlacementPolicy):
    """Fill the nominal-frequency, already-loaded servers first.

    When per-server controllers also actuate DVFS (the coordinated
    fan + p-state policy), demand placed on a server parked in a deep
    p-state stretches its busy time and — once the stretch saturates —
    becomes a work deficit.  Controllers observe the *previous* tick,
    so every reallocation onto a freshly-idle server opens a one-tick
    deficit window (its governor is parking it at the very moment the
    scheduler loads it).  Filling the lowest p-state index first keeps
    demand where the frequency headroom is, and breaking ties by
    *descending* executed utilization keeps the busy set stable so
    those windows never open in steady state.
    """

    name = "dvfs-aware"

    def order(self, views: Sequence[ServerLoadView]) -> Sequence[int]:
        pstates = np.array([v.pstate_index for v in views])
        utils = np.array([v.utilization_pct for v in views])
        return [views[i].index for i in np.lexsort((-utils, pstates))]


#: Registry used by the CLI and examples.
PLACEMENT_POLICIES = {
    policy.name: policy
    for policy in (
        RoundRobinPolicy,
        LeastUtilizedPolicy,
        CoolestFirstPolicy,
        LeakageAwarePolicy,
        DvfsAwarePolicy,
    )
}


@dataclass(frozen=True)
class SchedulingDecision:
    """Per-server utilization targets for one tick."""

    allocations_pct: np.ndarray
    #: Demand that did not fit anywhere, in single-server percent units.
    unserved_pct: float


class FleetScheduler:
    """Greedy capacity filler driven by a placement policy.

    *server_cap_pct* models the per-server admission ceiling real
    clusters run with (thermal / tail-latency headroom); demand that
    does not fit under the caps anywhere is reported unserved.
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        server_cap_pct: float = SERVER_CAP_PCT,
    ):
        if not 0.0 < server_cap_pct <= SERVER_CAP_PCT:
            raise ValueError(
                f"server_cap_pct must be in (0, {SERVER_CAP_PCT}], "
                f"got {server_cap_pct}"
            )
        self.policy = policy
        self.server_cap_pct = float(server_cap_pct)

    @property
    def name(self) -> str:
        """The underlying policy name (used in reports)."""
        return self.policy.name

    def reset(self) -> None:
        """Clear policy state between runs."""
        self.policy.reset()

    def assign(
        self, views: Sequence[ServerLoadView], total_demand_pct: float
    ) -> SchedulingDecision:
        """Split *total_demand_pct* (single-server % units) across servers."""
        validate_non_negative(total_demand_pct, "total_demand_pct")
        if not views:
            raise ValueError("need at least one server view")
        order = list(self.policy.order(views))
        if sorted(order) != list(range(len(views))):
            raise ValueError(
                f"policy {self.policy.name!r} returned an invalid order"
            )
        allocations = np.zeros(len(views))
        remaining = float(total_demand_pct)
        for index in order:
            if remaining <= 0.0:
                break
            share = min(self.server_cap_pct, remaining)
            allocations[index] = share
            remaining -= share
        return SchedulingDecision(
            allocations_pct=allocations, unserved_pct=max(0.0, remaining)
        )


class FleetWorkload:
    """An aggregate demand trace split across *server_count* machines.

    Wraps a :class:`UtilizationProfile` whose value is interpreted as
    the **fleet-average** utilization percentage, so the same diurnal /
    batch-window / flash-crowd builders that drive one server scale to
    any fleet size.
    """

    def __init__(self, profile: UtilizationProfile, server_count: int):
        if server_count <= 0:
            raise ValueError("server_count must be positive")
        self.profile = profile
        self.server_count = server_count

    @property
    def duration_s(self) -> float:
        """Nominal workload length, seconds."""
        return self.profile.duration_s

    def fleet_average_pct(self, time_s: float) -> float:
        """The underlying profile value at *time_s*."""
        return self.profile.utilization_pct(time_s)

    def total_demand_pct(self, time_s: float) -> float:
        """Aggregate demand in single-server percent units.

        100% × *server_count* is the whole fleet flat out.
        """
        return self.profile.utilization_pct(time_s) * self.server_count

    def split(
        self,
        scheduler: FleetScheduler,
        views: Sequence[ServerLoadView],
        time_s: float,
    ) -> SchedulingDecision:
        """Convenience: demand at *time_s* pushed through *scheduler*."""
        if len(views) != self.server_count:
            raise ValueError(
                f"expected {self.server_count} views, got {len(views)}"
            )
        return scheduler.assign(views, self.total_demand_pct(time_s))

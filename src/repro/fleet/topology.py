"""Rack-scale topology: racks, fleets, and heat recirculation.

The paper controls one server in an isolated 24 °C room and proposes
extending the approach to real data-center conditions.  This module
supplies the missing physical context:

* a :class:`Rack` is an ordered column of servers behind one CRAC
  supply (constant set point or any :class:`AmbientModel`),
* a :class:`Fleet` composes racks and carries a **heat-recirculation
  matrix** ``K`` whose entry ``K[i, j]`` is the fraction of server
  *j*'s exhaust temperature rise that re-enters server *i*'s inlet —
  the coupling that makes data-center inlets warmer than the CRAC
  supply (hot-aisle bypass, top-of-rack recirculation),
* :class:`RecirculationAmbient` wraps a CRAC supply model with the
  mutable recirculation offset the fleet engine updates each tick, so
  an unmodified :class:`~repro.server.server.ServerSimulator` sees the
  coupled inlet through its ordinary ambient interface.

With ``K = 0`` and a constant supply, every server sees exactly the
paper's isolated-room conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.server.ambient import AmbientModel, ConstantAmbient
from repro.server.specs import ServerSpec, default_server_spec
from repro.units import airflow_heat_capacity_w_per_k, validate_temperature_c


class RecirculationAmbient(AmbientModel):
    """A CRAC supply model plus a mutable recirculation offset.

    The fleet engine recomputes the offset every tick from the coupled
    servers' exhaust heat; with the offset at zero this is exactly the
    wrapped supply model (an isolated server).
    """

    def __init__(self, supply: AmbientModel):
        self.supply = supply
        self._offset_c = 0.0
        self._excursion_c = 0.0

    @property
    def offset_c(self) -> float:
        """Current recirculation-induced inlet temperature rise, °C."""
        return self._offset_c

    def set_offset(self, offset_c: float) -> None:
        """Install the recirculation rise for the next simulation step."""
        if not np.isfinite(offset_c) or offset_c < 0.0:
            raise ValueError(
                f"recirculation offset must be finite and non-negative, "
                f"got {offset_c!r}"
            )
        self._offset_c = float(offset_c)

    @property
    def excursion_c(self) -> float:
        """Current CRAC setpoint excursion layered onto the supply, °C."""
        return self._excursion_c

    def set_excursion(self, delta_c: float) -> None:
        """Install a supply-setpoint excursion (may be negative).

        Models a CRAC disturbance transient (see
        :mod:`repro.fleet.faults`): the excursion shifts the *supply*
        below the recirculation offset, so the fleet engine's inlet
        arithmetic ``(supply + excursion) + recirculation`` is
        reproduced term for term.
        """
        if not np.isfinite(delta_c):
            raise ValueError(f"excursion must be finite, got {delta_c!r}")
        self._excursion_c = float(delta_c)

    def temperature_c(self, time_s: float) -> float:
        supply = self.supply.temperature_c(time_s)
        if self._excursion_c:
            supply = supply + self._excursion_c
        return supply + self._offset_c


def exhaust_temperature_rise_c(power_w, airflow_cfm):
    """Temperature rise of the air stream crossing a server, °C.

    ``ΔT = P / (m_dot · c_p)`` — array-friendly so the engine can
    evaluate the whole fleet at once.
    """
    airflow = np.asarray(airflow_cfm, dtype=float)
    if np.any(airflow <= 0.0):
        raise ValueError("airflow must be positive to carry exhaust heat")
    result = np.asarray(power_w, dtype=float) / airflow_heat_capacity_w_per_k(
        airflow
    )
    if np.ndim(power_w) == 0 and np.ndim(airflow_cfm) == 0:
        return float(result)
    return result


@dataclass(frozen=True)
class Rack:
    """One rack: an ordered column of servers behind one CRAC feed."""

    name: str
    servers: Tuple[ServerSpec, ...]
    #: CRAC supply set point used when no explicit model is given.
    crac_supply_c: float = 24.0
    #: Optional time-varying CRAC supply (overrides ``crac_supply_c``).
    crac: Optional[AmbientModel] = None

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError(f"rack {self.name!r} needs at least one server")
        validate_temperature_c(self.crac_supply_c, "crac_supply_c")

    @property
    def server_count(self) -> int:
        """Number of servers in the rack."""
        return len(self.servers)

    def supply_model(self) -> AmbientModel:
        """The CRAC supply as an :class:`AmbientModel`."""
        if self.crac is not None:
            return self.crac
        return ConstantAmbient(self.crac_supply_c)


@dataclass(frozen=True)
class Fleet:
    """Racks plus the inter-server heat-recirculation coupling.

    Servers are indexed rack-major: rack 0's servers first (in rack
    order), then rack 1's, and so on.  ``recirculation[i, j]`` is the
    fraction of server *j*'s exhaust temperature rise arriving at
    server *i*'s inlet; ``None`` means no coupling (isolated rooms).
    """

    racks: Tuple[Rack, ...]
    #: compare=False: dataclass ``==``/``hash`` over an ndarray would
    #: raise; identity of a fleet is its racks.
    recirculation: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.racks:
            raise ValueError("fleet needs at least one rack")
        if self.recirculation is not None:
            matrix = np.asarray(self.recirculation, dtype=float)
            n = self.server_count
            if matrix.shape != (n, n):
                raise ValueError(
                    f"recirculation matrix must be {n}x{n} for this fleet, "
                    f"got {matrix.shape}"
                )
            if np.any(~np.isfinite(matrix)) or np.any(matrix < 0.0):
                raise ValueError(
                    "recirculation entries must be finite and non-negative"
                )
            if np.any(np.diag(matrix) != 0.0):
                raise ValueError(
                    "recirculation diagonal must be zero (a server does "
                    "not re-ingest its own exhaust in this model)"
                )
            if np.any(matrix.sum(axis=1) >= 1.0):
                raise ValueError(
                    "recirculation row sums must stay below 1 "
                    "(inlets cannot receive more than the total exhaust)"
                )
            object.__setattr__(self, "recirculation", matrix)

    @property
    def server_count(self) -> int:
        """Total number of servers across all racks."""
        return sum(rack.server_count for rack in self.racks)

    @property
    def rack_count(self) -> int:
        """Number of racks."""
        return len(self.racks)

    @property
    def servers(self) -> Tuple[ServerSpec, ...]:
        """All server specs in flat (rack-major) index order."""
        return tuple(spec for rack in self.racks for spec in rack.servers)

    @property
    def rack_index_of_server(self) -> Tuple[int, ...]:
        """Owning rack index for each flat server index."""
        return tuple(
            r for r, rack in enumerate(self.racks)
            for _ in range(rack.server_count)
        )

    def rack_slices(self) -> List[slice]:
        """Flat-index slice covering each rack's servers."""
        slices: List[slice] = []
        start = 0
        for rack in self.racks:
            slices.append(slice(start, start + rack.server_count))
            start += rack.server_count
        return slices

    def recirculation_matrix(self) -> np.ndarray:
        """The coupling matrix (zeros when the fleet is uncoupled)."""
        if self.recirculation is None:
            n = self.server_count
            return np.zeros((n, n))
        return self.recirculation

    def supply_models(self) -> List[AmbientModel]:
        """One CRAC supply model per server, flat index order."""
        return [
            rack.supply_model()
            for rack in self.racks
            for _ in range(rack.server_count)
        ]

    def supply_temperatures_c(self, time_s: float) -> np.ndarray:
        """Per-server CRAC supply temperature at *time_s*."""
        return np.array(
            [
                rack.supply_model().temperature_c(time_s)
                for rack in self.racks
                for _ in range(rack.server_count)
            ]
        )

    def inlet_temperatures_c(
        self, time_s: float, exhaust_rise_c: Sequence[float]
    ) -> np.ndarray:
        """Per-server inlet: CRAC supply plus recirculated exhaust."""
        rise = np.asarray(exhaust_rise_c, dtype=float)
        if rise.shape != (self.server_count,):
            raise ValueError(
                f"need one exhaust rise per server ({self.server_count}), "
                f"got shape {rise.shape}"
            )
        return self.supply_temperatures_c(time_s) + (
            self.recirculation_matrix() @ rise
        )


def build_recirculation_matrix(
    rack_sizes: Sequence[int],
    intra_rack_coupling: float = 0.05,
    cross_rack_coupling: float = 0.004,
    neighbor_reach: int = 2,
) -> np.ndarray:
    """Distance-decayed coupling within racks, uniform across racks.

    Within a rack, server *i* receives ``intra_rack_coupling / d`` of
    each neighbor at chassis distance ``d <= neighbor_reach`` (vertical
    recirculation over the rack face); every server in *another* rack
    contributes the smaller ``cross_rack_coupling`` (room-level mixing).
    """
    if not rack_sizes or any(s <= 0 for s in rack_sizes):
        raise ValueError("rack_sizes must be positive")
    if intra_rack_coupling < 0.0 or cross_rack_coupling < 0.0:
        raise ValueError("couplings must be non-negative")
    if neighbor_reach < 0:
        raise ValueError("neighbor_reach must be non-negative")
    n = sum(rack_sizes)
    rack_of = np.repeat(np.arange(len(rack_sizes)), rack_sizes)
    pos = np.concatenate([np.arange(size) for size in rack_sizes])
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if rack_of[i] == rack_of[j]:
                distance = abs(int(pos[i]) - int(pos[j]))
                if 1 <= distance <= neighbor_reach:
                    matrix[i, j] = intra_rack_coupling / distance
            else:
                matrix[i, j] = cross_rack_coupling
    row_sums = matrix.sum(axis=1)
    if np.any(row_sums >= 1.0):
        raise ValueError(
            f"couplings too strong: max row sum {row_sums.max():.3f} >= 1"
        )
    return matrix


def build_uniform_fleet(
    rack_count: int = 2,
    servers_per_rack: int = 4,
    spec: Optional[ServerSpec] = None,
    crac_supply_c: float = 24.0,
    intra_rack_coupling: float = 0.05,
    cross_rack_coupling: float = 0.004,
) -> Fleet:
    """A homogeneous fleet with the default recirculation pattern."""
    if rack_count <= 0 or servers_per_rack <= 0:
        raise ValueError("rack_count and servers_per_rack must be positive")
    spec = spec if spec is not None else default_server_spec()
    racks = tuple(
        Rack(
            name=f"rack{r}",
            servers=tuple(spec for _ in range(servers_per_rack)),
            crac_supply_c=crac_supply_c,
        )
        for r in range(rack_count)
    )
    matrix = build_recirculation_matrix(
        [servers_per_rack] * rack_count,
        intra_rack_coupling=intra_rack_coupling,
        cross_rack_coupling=cross_rack_coupling,
    )
    return Fleet(racks=racks, recirculation=matrix)

"""Lock-step multi-server simulation engine.

Steps every server in the fleet through the same tick sequence the
single-server :class:`~repro.server.server.ServerSimulator` uses, but
with the hot per-step math — fan slew, airflow, the RC thermal
substeps, and the power decomposition — evaluated as numpy arrays over
all servers and sockets at once (the ``vector`` backend).  A
``reference`` backend drives one real :class:`ServerSimulator` per
server through :class:`RecirculationAmbient` wrappers; it is the
ground truth the vectorized math is tested against and the naive
baseline the scaling benchmark compares to.

Each server keeps its *own* controller instance (any
:class:`~repro.core.controllers.base.FanController`), polled on its own
cadence exactly as the single-server runner does.  Controllers that
additionally expose ``decide_pstate`` (the coordinated fan + DVFS
policy) have their p-state commands actuated per server: the demanded
allocation is stretched by ``f_nom / f`` into executed utilization
(numpy-batched, saturating at 100%), and the saturated remainder is
accumulated as a per-server work deficit that the fleet SLA metrics
combine with scheduler-unserved demand.  Controllers in the fleet
observe ground-truth junction temperatures and the previous tick's
executed utilization (the fleet engine trades the runner's
noisy-sensor / ``sar``-window emulation for scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.controllers.default import FixedSpeedController
from repro.fleet.metrics import FleetMetrics, compute_fleet_metrics
from repro.fleet.scheduler import (
    FleetScheduler,
    FleetWorkload,
    RoundRobinPolicy,
    ServerLoadView,
)
from repro.fleet.topology import (
    Fleet,
    RecirculationAmbient,
    exhaust_temperature_rise_c,
)
from repro.server.ambient import ConstantAmbient
from repro.server.power import leakage_power_w, leakage_slope_w_per_c
from repro.server.server import CriticalTemperatureError, ServerSimulator
from repro.server.thermal import MAX_SUBSTEP_S, convective_resistance_k_w
from repro.units import airflow_heat_capacity_w_per_k
from repro.workloads.profile import UtilizationProfile

#: Poll-time comparison slack, seconds (matches the experiment runner).
_POLL_EPS_S = 1e-9


#: Cold-start fan settle horizon, seconds (matches the paper protocol's
#: ">= 10 minutes idle" phase; long enough that any rotor reaches the
#: commanded speed exactly).
_COLD_START_SETTLE_S = 600.0


@dataclass
class _TickState:
    """Per-server outputs of one physics tick (flat index order)."""

    total_power_w: np.ndarray
    fan_power_w: np.ndarray
    airflow_cfm: np.ndarray
    mean_rpm: np.ndarray
    max_junction_c: np.ndarray
    avg_junction_c: np.ndarray
    leakage_w: np.ndarray
    leakage_slope_w_per_c: np.ndarray
    dimm_bank_c: np.ndarray
    #: Executed (busy-fraction) utilization after the p-state stretch.
    executed_pct: np.ndarray
    #: DVFS deficit rate this tick, nominal percent (0 when keeping up).
    work_deficit_pct: np.ndarray
    #: P-state each server ran this tick.
    pstate_index: np.ndarray


class _VectorBackend:
    """Numpy-batched physics for a homogeneous-socket-count fleet."""

    def __init__(self, fleet: Fleet):
        servers = fleet.servers
        socket_counts = {spec.socket_count for spec in servers}
        if len(socket_counts) != 1:
            raise ValueError(
                "the vector backend needs every server to have the same "
                f"socket count (got {sorted(socket_counts)}); use "
                "backend='reference' for heterogeneous fleets"
            )
        n = len(servers)

        def per_server(getter) -> np.ndarray:
            return np.array([float(getter(s)) for s in servers])

        def per_socket(getter) -> np.ndarray:
            return np.array(
                [[float(getter(sock)) for sock in s.sockets] for s in servers]
            )

        # fan bank (uniform command across the bank, as the paper runs)
        self.fan_count = per_server(lambda s: s.fan_count)
        self.rpm_min = per_server(lambda s: s.fan.rpm_min)
        self.rpm_max = per_server(lambda s: s.fan.rpm_max)
        self.fan_rpm_ref = per_server(lambda s: s.fan.rpm_ref)
        self.fan_power_ref_w = per_server(lambda s: s.fan.power_at_ref_w)
        self.fan_power_exp = per_server(lambda s: s.fan.power_exponent)
        self.fan_cfm_ref = per_server(lambda s: s.fan.cfm_at_ref)
        self.fan_slew = per_server(lambda s: s.fan.slew_rpm_per_s)
        # board / memory
        self.board_w = per_server(lambda s: s.board_power_w)
        self.mem_idle_w = per_server(lambda s: s.memory.p_idle_w)
        self.mem_k_w_pct = per_server(lambda s: s.memory.k_active_w_per_pct)
        self.mem_r_ref = per_server(lambda s: s.memory.r_bank_air_ref_k_w)
        self.mem_rpm_ref = per_server(lambda s: s.memory.rpm_ref_thermal)
        self.mem_flow_exp = per_server(lambda s: s.memory.flow_exponent)
        self.mem_c_bank = per_server(lambda s: s.memory.c_bank_j_k)
        self.preheat_frac = per_server(lambda s: s.memory.preheat_fraction)
        self.critical_c = per_server(lambda s: s.critical_temperature_c)
        # sockets, (server, socket)
        self.sock_idle_w = per_socket(lambda k: k.p_idle_w)
        self.sock_k_w_pct = per_socket(lambda k: k.k_active_w_per_pct)
        self.leak_const_w = per_socket(lambda k: k.leak_const_w)
        self.leak_k2_w = per_socket(lambda k: k.leak_k2_w)
        self.leak_k3_per_c = per_socket(lambda k: k.leak_k3_per_c)
        self.r_jh = per_socket(lambda k: k.r_junction_heatsink_k_w)
        self.c_j = per_socket(lambda k: k.c_junction_j_k)
        self.r_ha_ref = per_socket(lambda k: k.r_heatsink_air_ref_k_w)
        self.rpm_ref_thermal = per_socket(lambda k: k.rpm_ref_thermal)
        self.flow_exp = per_socket(lambda k: k.flow_exponent)
        self.c_h = per_socket(lambda k: k.c_heatsink_j_k)

        initial = fleet.supply_temperatures_c(0.0)
        self.t_j = np.repeat(initial[:, None], self.sock_idle_w.shape[1], 1)
        self.t_h = self.t_j.copy()
        self.t_m = initial.copy()
        self.rpm = per_server(lambda s: s.default_fan_rpm)

        # DVFS: per-server p-state plus the three scaling factors the
        # scalar power model derives from it, kept as flat arrays so
        # the per-tick stretch/power math stays fully batched.
        self._fleet = fleet
        self._dvfs = [spec.dvfs for spec in servers]
        self.pstate = np.zeros(n, dtype=int)
        self.freq_ratio = np.ones(n)
        self.static_scale = np.ones(n)
        self.dynamic_scale = np.ones(n)

    def set_pstate(self, server_index: int, pstate_index: int) -> None:
        """Switch one server's sockets to *pstate_index* (validated)."""
        dvfs = self._dvfs[server_index]
        dvfs.state(pstate_index)  # raises IndexError if out of range
        self.pstate[server_index] = pstate_index
        self.freq_ratio[server_index] = dvfs.frequency_ratio(pstate_index)
        self.static_scale[server_index] = dvfs.static_power_scale(pstate_index)
        self.dynamic_scale[server_index] = dvfs.dynamic_power_scale(
            pstate_index
        )

    def force_cold_state(self, cold_start_rpm: float) -> None:
        """Settle every server at the idle equilibrium for *cold_start_rpm*.

        Mirrors the experiment protocol's pre-``t = 0`` phase by
        settling one real :class:`ServerSimulator` per server (init
        only — the hot path stays batched), so a cold-started fleet
        run is bit-compatible with ``run_experiment``.
        """
        supply = self._fleet.supply_temperatures_c(0.0)
        for i, spec in enumerate(self._fleet.servers):
            sim = ServerSimulator(
                spec=spec,
                ambient=ConstantAmbient(float(supply[i])),
                trip_on_critical=False,
            )
            sim.set_fan_rpm(cold_start_rpm)
            sim.fans.step(dt_s=_COLD_START_SETTLE_S)
            sim.settle_to_steady_state(utilization_pct=0.0)
            self.t_j[i] = sim.thermal.state.junction_c
            self.t_h[i] = sim.thermal.state.heatsink_c
            self.t_m[i] = sim.thermal.state.dimm_bank_c
            self.rpm[i] = sim.fans.mean_rpm

    def _leakage(self, t_j: np.ndarray) -> np.ndarray:
        return leakage_power_w(
            self.leak_const_w, self.leak_k2_w, self.leak_k3_per_c, t_j
        )

    def leakage_slope_w_per_c(self) -> np.ndarray:
        """Per-server ``dP_leak/dT_j`` summed over sockets, W/°C."""
        return leakage_slope_w_per_c(
            self.leak_k2_w, self.leak_k3_per_c, self.t_j
        ).sum(axis=1)

    def step(
        self,
        dt_s: float,
        demand_pct: np.ndarray,
        rpm_command: np.ndarray,
        inlet_c: np.ndarray,
        offsets_c: np.ndarray,
    ) -> _TickState:
        # fan slew, then airflow/power at the new speed (as the
        # single-server simulator orders it)
        max_delta = self.fan_slew * dt_s
        self.rpm += np.clip(rpm_command - self.rpm, -max_delta, max_delta)
        airflow = self.fan_count * self.fan_cfm_ref * self.rpm / self.fan_rpm_ref
        fan_power = (
            self.fan_count
            * self.fan_power_ref_w
            * (self.rpm / self.fan_rpm_ref) ** self.fan_power_exp
        )

        # DVFS stretch: demanded nominal work runs slower at a deep
        # p-state, so the busy fraction grows by f_nom/f and saturates
        # at 100% — the saturated remainder is lost throughput,
        # reported (in nominal percent) as the work deficit.  Ordering
        # matches DvfsSpec.executed_utilization_pct / work_deficit_pct
        # so the batch stays bit-compatible with the scalar simulator.
        stretched = demand_pct / self.freq_ratio
        u = np.minimum(100.0, stretched)
        deficit = np.where(
            stretched <= 100.0, 0.0, (stretched - 100.0) * self.freq_ratio
        )

        mem_power = self.mem_idle_w + self.mem_k_w_pct * u
        capacity = airflow_heat_capacity_w_per_k(airflow)
        cpu_inlet = inlet_c + self.preheat_frac * mem_power / capacity
        r_ma = convective_resistance_k_w(
            self.mem_r_ref, self.rpm, self.mem_rpm_ref, self.mem_flow_exp
        )
        r_ha = convective_resistance_k_w(
            self.r_ha_ref, self.rpm[:, None], self.rpm_ref_thermal, self.flow_exp
        )

        active = (
            self.sock_idle_w * self.static_scale[:, None]
            + self.sock_k_w_pct * u[:, None] * self.dynamic_scale[:, None]
        )
        substeps = max(1, int(np.ceil(dt_s / MAX_SUBSTEP_S)))
        h = dt_s / substeps
        cpu_inlet_col = cpu_inlet[:, None]
        for _ in range(substeps):
            heat_in = active + self._leakage(self.t_j)
            q_jh = (self.t_j - self.t_h) / self.r_jh
            q_ha = (self.t_h - cpu_inlet_col) / r_ha
            self.t_j += h * (heat_in - q_jh) / self.c_j
            self.t_h += h * (q_jh - q_ha) / self.c_h
            q_ma = (self.t_m - inlet_c) / r_ma
            self.t_m += h * (mem_power - q_ma) / self.mem_c_bank

        leakage = self._leakage(self.t_j)
        total = (
            self.board_w
            + mem_power
            + active.sum(axis=1)
            + leakage.sum(axis=1)
            + fan_power
        )
        return _TickState(
            total_power_w=total,
            fan_power_w=fan_power,
            airflow_cfm=airflow,
            mean_rpm=self.rpm.copy(),
            max_junction_c=self.t_j.max(axis=1),
            avg_junction_c=self.t_j.mean(axis=1),
            leakage_w=leakage.sum(axis=1),
            leakage_slope_w_per_c=self.leakage_slope_w_per_c(),
            dimm_bank_c=self.t_m.copy(),
            executed_pct=u,
            work_deficit_pct=deficit,
            pstate_index=self.pstate.copy(),
        )

    def check_critical(self, trip: bool) -> None:
        if not trip:
            return
        hottest = self.t_j.max(axis=1)
        over = np.nonzero(hottest > self.critical_c)[0]
        if over.size:
            i = int(over[0])
            raise CriticalTemperatureError(
                f"server {i} junction reached {hottest[i]:.1f} degC "
                f"(critical threshold {self.critical_c[i]:.1f} degC)"
            )

    def initial_views_data(self):
        leak = self._leakage(self.t_j)
        return (
            self.t_j.max(axis=1),
            self.t_j.mean(axis=1),
            leak.sum(axis=1),
            self.leakage_slope_w_per_c(),
        )


class _ReferenceBackend:
    """One real :class:`ServerSimulator` per server (the naive loop)."""

    def __init__(self, fleet: Fleet, seed: int, trip_on_critical: bool):
        self.sims: List[ServerSimulator] = []
        for i, (spec, supply) in enumerate(
            zip(fleet.servers, fleet.supply_models())
        ):
            self.sims.append(
                ServerSimulator(
                    spec=spec,
                    ambient=RecirculationAmbient(supply),
                    seed=seed + i,
                    trip_on_critical=trip_on_critical,
                )
            )
        self.rpm = np.array([sim.fans.mean_rpm for sim in self.sims])

    def set_pstate(self, server_index: int, pstate_index: int) -> None:
        """Switch one wrapped simulator to *pstate_index*."""
        self.sims[server_index].set_pstate(pstate_index)

    def force_cold_state(self, cold_start_rpm: float) -> None:
        """The experiment protocol's pre-``t = 0`` idle settle, per sim."""
        for sim in self.sims:
            sim.set_fan_rpm(cold_start_rpm)
            sim.fans.step(dt_s=_COLD_START_SETTLE_S)
            sim.settle_to_steady_state(utilization_pct=0.0)
        self.rpm = np.array([sim.fans.mean_rpm for sim in self.sims])

    def _views_data(self):
        max_j, avg_j, leak_w, slope = [], [], [], []
        for sim in self.sims:
            junctions = sim.thermal.state.junction_c
            max_j.append(max(junctions))
            avg_j.append(sum(junctions) / len(junctions))
            leak_w.append(
                sum(
                    sim.power_model.socket_leakage_w(sock, t)
                    for sock, t in zip(sim.spec.sockets, junctions)
                )
            )
            slope.append(
                sum(
                    float(
                        leakage_slope_w_per_c(
                            sock.leak_k2_w, sock.leak_k3_per_c, t
                        )
                    )
                    for sock, t in zip(sim.spec.sockets, junctions)
                )
            )
        return (
            np.array(max_j),
            np.array(avg_j),
            np.array(leak_w),
            np.array(slope),
        )

    def step(
        self,
        dt_s: float,
        demand_pct: np.ndarray,
        rpm_command: np.ndarray,
        inlet_c: np.ndarray,
        offsets_c: np.ndarray,
    ) -> _TickState:
        total, fan, airflow, rpm, dimm = [], [], [], [], []
        executed, deficit, pstate = [], [], []
        for i, sim in enumerate(self.sims):
            sim.ambient.set_offset(float(offsets_c[i]))
            sim.set_fan_rpm(float(rpm_command[i]))
            index = sim.power_model.pstate_index
            # The same per-step deficit term the simulator accumulates
            # internally, surfaced per tick for the fleet traces.
            deficit.append(
                sim.spec.dvfs.work_deficit_pct(float(demand_pct[i]), index)
            )
            pstate.append(index)
            state = sim.step(dt_s, float(demand_pct[i]))
            total.append(state.power.total_w)
            fan.append(state.power.fan_w)
            airflow.append(sim.fans.total_airflow_cfm())
            rpm.append(state.mean_fan_rpm)
            dimm.append(state.thermal.dimm_bank_c)
            executed.append(state.utilization_pct)
        max_j, avg_j, leak_w, slope = self._views_data()
        self.rpm = np.array(rpm)
        return _TickState(
            total_power_w=np.array(total),
            fan_power_w=np.array(fan),
            airflow_cfm=np.array(airflow),
            mean_rpm=self.rpm.copy(),
            max_junction_c=max_j,
            avg_junction_c=avg_j,
            leakage_w=leak_w,
            leakage_slope_w_per_c=slope,
            dimm_bank_c=np.array(dimm),
            executed_pct=np.array(executed),
            work_deficit_pct=np.array(deficit),
            pstate_index=np.array(pstate, dtype=int),
        )

    def check_critical(self, trip: bool) -> None:
        """The wrapped simulators trip during :meth:`step` themselves."""

    def initial_views_data(self):
        return self._views_data()


@dataclass
class FleetResult:
    """Traces and aggregates of one fleet run (ticks × servers)."""

    scheduler_name: str
    controller_name: str
    backend: str
    #: Tick length, s.
    dt_s: float
    #: Tick timestamps, s.
    times_s: np.ndarray
    #: Per-server wall power per tick, W.
    total_power_w: np.ndarray
    #: Per-server fan power per tick, W.
    fan_power_w: np.ndarray
    #: Hottest junction per server and tick, °C.
    max_junction_c: np.ndarray
    #: Executed (post-p-state-stretch) utilization per tick, %.
    utilization_pct: np.ndarray
    #: Per-server inlet temperature per tick, °C.
    inlet_c: np.ndarray
    #: Per-server mean fan speed per tick, RPM.
    mean_rpm: np.ndarray
    #: Demand the scheduler found no capacity for, single-server %.
    unserved_pct: np.ndarray
    #: P-state each server ran per tick (0 = nominal).
    pstate_index: np.ndarray
    #: DVFS deficit rate per tick and server, nominal percent.
    work_deficit_pct: np.ndarray
    metrics: FleetMetrics

    @property
    def fleet_power_w(self) -> np.ndarray:
        """Summed fleet power per tick, W."""
        return self.total_power_w.sum(axis=1)

    @property
    def work_deficit_pct_s(self) -> np.ndarray:
        """Cumulative per-server DVFS deficit, %·s (ticks × servers).

        Accumulated with the same per-step additions as
        :attr:`ServerSimulator.work_deficit_pct_s`, so the N=1 trace is
        comparable bit-for-bit.
        """
        return np.cumsum(self.work_deficit_pct * self.dt_s, axis=0)


class FleetEngine:
    """Schedules, controls and steps N servers in lock-step."""

    def __init__(
        self,
        fleet: Fleet,
        workload: Union[FleetWorkload, UtilizationProfile],
        scheduler: Optional[FleetScheduler] = None,
        controller_factory: Optional[Callable[[int], FanController]] = None,
        backend: str = "vector",
        seed: int = 0,
        trip_on_critical: bool = True,
        cold_start: bool = False,
        cold_start_rpm: float = 3600.0,
    ):
        if backend not in ("vector", "reference"):
            raise ValueError(f"unknown backend {backend!r}")
        self.fleet = fleet
        if not isinstance(workload, FleetWorkload):
            workload = FleetWorkload(workload, fleet.server_count)
        if workload.server_count != fleet.server_count:
            raise ValueError(
                f"workload is sized for {workload.server_count} servers, "
                f"fleet has {fleet.server_count}"
            )
        self.workload = workload
        self.scheduler = (
            scheduler
            if scheduler is not None
            else FleetScheduler(RoundRobinPolicy())
        )
        if controller_factory is None:
            controller_factory = lambda index: FixedSpeedController()
        self.controllers: List[FanController] = [
            controller_factory(i) for i in range(fleet.server_count)
        ]
        self.backend = backend
        self.seed = seed
        self.trip_on_critical = trip_on_critical
        if cold_start:
            for index, spec in enumerate(fleet.servers):
                if not spec.fan.rpm_min <= cold_start_rpm <= spec.fan.rpm_max:
                    raise ValueError(
                        f"server {index}: cold_start_rpm {cold_start_rpm} "
                        f"outside supported range "
                        f"[{spec.fan.rpm_min}, {spec.fan.rpm_max}]"
                    )
        self.cold_start = cold_start
        self.cold_start_rpm = float(cold_start_rpm)

    # ------------------------------------------------------------------
    def _make_backend(self):
        if self.backend == "vector":
            return _VectorBackend(self.fleet)
        return _ReferenceBackend(self.fleet, self.seed, self.trip_on_critical)

    def _validated_command(self, index: int, rpm: float) -> float:
        fan = self.fleet.servers[index].fan
        if not fan.rpm_min <= rpm <= fan.rpm_max:
            raise ValueError(
                f"server {index}: rpm {rpm} outside supported range "
                f"[{fan.rpm_min}, {fan.rpm_max}]"
            )
        return float(rpm)

    def _validated_pstate(self, index: int, pstate: int) -> int:
        ladder = self.fleet.servers[index].dvfs
        if not 0 <= pstate < len(ladder):
            raise ValueError(
                f"server {index}: p-state {pstate} outside the "
                f"{len(ladder)}-state ladder"
            )
        return int(pstate)

    def run(
        self, dt_s: float = 1.0, duration_s: Optional[float] = None
    ) -> FleetResult:
        """Run the whole scenario and return traces plus metrics."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if duration_s is None:
            duration_s = self.workload.duration_s
        steps = int(round(duration_s / dt_s))
        if steps <= 0:
            raise ValueError("workload too short for the configured dt_s")

        n = self.fleet.server_count
        physics = self._make_backend()
        if self.cold_start:
            physics.force_cold_state(self.cold_start_rpm)
        rack_of = self.fleet.rack_index_of_server
        coupling = self.fleet.recirculation_matrix()
        supply_models = self.fleet.supply_models()
        constant_supply = all(rack.crac is None for rack in self.fleet.racks)
        supply_now = self.fleet.supply_temperatures_c(0.0)

        self.scheduler.reset()
        rpm_command = np.empty(n)
        next_poll = np.zeros(n)
        for i, controller in enumerate(self.controllers):
            controller.reset()
            initial = controller.initial_rpm()
            rpm_command[i] = self._validated_command(
                i, initial if initial is not None else float(physics.rpm[i])
            )

        executed = np.zeros(n)
        pstate_now = np.zeros(n, dtype=int)
        exhaust_rise = np.zeros(n)
        max_j, avg_j, leak_w, leak_slope = physics.initial_views_data()

        times = np.arange(1, steps + 1) * dt_s
        trace_power = np.empty((steps, n))
        trace_fan = np.empty((steps, n))
        trace_junction = np.empty((steps, n))
        trace_util = np.empty((steps, n))
        trace_inlet = np.empty((steps, n))
        trace_rpm = np.empty((steps, n))
        trace_unserved = np.empty(steps)
        trace_pstate = np.empty((steps, n), dtype=int)
        trace_deficit = np.empty((steps, n))

        time_s = 0.0
        for tick in range(steps):
            if not constant_supply:
                supply_now = np.array(
                    [m.temperature_c(time_s) for m in supply_models]
                )
            offsets = coupling @ exhaust_rise
            inlet = supply_now + offsets

            views = [
                ServerLoadView(
                    index=i,
                    rack_index=rack_of[i],
                    utilization_pct=float(executed[i]),
                    max_junction_c=float(max_j[i]),
                    inlet_c=float(inlet[i]),
                    leakage_w=float(leak_w[i]),
                    leakage_slope_w_per_c=float(leak_slope[i]),
                    pstate_index=int(pstate_now[i]),
                )
                for i in range(n)
            ]
            decision = self.scheduler.assign(
                views, self.workload.total_demand_pct(time_s)
            )

            for i in np.nonzero(time_s >= next_poll - _POLL_EPS_S)[0]:
                controller = self.controllers[i]
                observation = ControllerObservation(
                    time_s=time_s,
                    max_cpu_temperature_c=float(max_j[i]),
                    avg_cpu_temperature_c=float(avg_j[i]),
                    utilization_pct=float(executed[i]),
                    current_rpm_command=float(rpm_command[i]),
                )
                wanted = controller.decide(observation)
                if wanted is not None and wanted != rpm_command[i]:
                    rpm_command[i] = self._validated_command(i, wanted)
                # Coordinated controllers additionally command a
                # p-state, polled on the same cadence and in the same
                # order as the single-server runner.
                decide_pstate = getattr(controller, "decide_pstate", None)
                if decide_pstate is not None:
                    wanted_pstate = decide_pstate(observation)
                    if wanted_pstate is not None:
                        physics.set_pstate(
                            int(i),
                            self._validated_pstate(int(i), int(wanted_pstate)),
                        )
                # Advance past the current time: with dt_s larger than
                # the poll interval a single increment would let the
                # poll clock fall unboundedly behind the simulation.
                while time_s >= next_poll[i] - _POLL_EPS_S:
                    next_poll[i] += controller.poll_interval_s

            demand = decision.allocations_pct
            state = physics.step(dt_s, demand, rpm_command, inlet, offsets)
            physics.check_critical(self.trip_on_critical)

            max_j = state.max_junction_c
            avg_j = state.avg_junction_c
            leak_w = state.leakage_w
            leak_slope = state.leakage_slope_w_per_c
            executed = state.executed_pct
            pstate_now = state.pstate_index
            exhaust_rise = exhaust_temperature_rise_c(
                state.total_power_w, state.airflow_cfm
            )

            trace_power[tick] = state.total_power_w
            trace_fan[tick] = state.fan_power_w
            trace_junction[tick] = state.max_junction_c
            trace_util[tick] = executed
            trace_inlet[tick] = inlet
            trace_rpm[tick] = state.mean_rpm
            trace_unserved[tick] = decision.unserved_pct
            trace_pstate[tick] = state.pstate_index
            trace_deficit[tick] = state.work_deficit_pct
            time_s += dt_s

        metrics = compute_fleet_metrics(
            self.fleet,
            dt_s,
            trace_power,
            trace_fan,
            trace_junction,
            trace_util,
            trace_inlet,
            trace_unserved,
            work_deficit_pct=trace_deficit,
        )
        controller_names = {c.name for c in self.controllers}
        return FleetResult(
            scheduler_name=self.scheduler.name,
            controller_name=(
                controller_names.pop()
                if len(controller_names) == 1
                else "mixed"
            ),
            backend=self.backend,
            dt_s=dt_s,
            times_s=times,
            total_power_w=trace_power,
            fan_power_w=trace_fan,
            max_junction_c=trace_junction,
            utilization_pct=trace_util,
            inlet_c=trace_inlet,
            mean_rpm=trace_rpm,
            unserved_pct=trace_unserved,
            pstate_index=trace_pstate,
            work_deficit_pct=trace_deficit,
            metrics=metrics,
        )

"""Lock-step multi-server simulation engine.

Steps every server in the fleet through the same tick sequence the
single-server :class:`~repro.server.server.ServerSimulator` uses, with
the hot per-step math — fan slew, airflow, the RC thermal substeps,
and the power decomposition — evaluated as numpy arrays over all
servers and sockets at once by the
:class:`~repro.engine.kernel.FleetVectorKernel`.

Four backends are available:

* ``vector`` (default) — the kernelized loop: persistent ``(N, ·)``
  state arrays feed the placement policy directly
  (:meth:`~repro.fleet.scheduler.PlacementPolicy.order_indices`),
  per-tick inputs (aggregate demand, CRAC supplies) are precomputed
  for the whole horizon, and the physics writes straight into the
  preallocated trace block.  Custom view-based policies transparently
  fall back to per-tick :class:`ServerLoadView` construction.
* ``vector-legacy`` — the pre-kernel per-tick loop over the same
  batched physics (views rebuilt every tick, validated scheduling).
  Kept as the bit-identical equivalence oracle and the baseline
  ``benchmarks/bench_kernel.py`` measures the kernel speedup against.
* ``reference`` — one real :class:`ServerSimulator` per server; the
  ground truth the vectorized math is tested against and the naive
  baseline of the scaling benchmark.
* ``sharded`` — the ``vector`` loop partitioned across per-shard
  kernels (worker processes over shared memory, or in-process with
  ``shard_mode="inline"``) with trace columns streamed to
  memory-mapped ``.npy`` segments instead of held in RAM; traces are
  bit-identical to ``vector``.  See :mod:`repro.engine.sharded` and
  ``docs/scaling.md``.

Each server keeps its *own* controller instance (any
:class:`~repro.core.controllers.base.FanController`), polled on its own
cadence exactly as the single-server runner does.  Controllers that
additionally expose ``decide_pstate`` (the coordinated fan + DVFS
policy) have their p-state commands actuated per server: the demanded
allocation is stretched by ``f_nom / f`` into executed utilization
(numpy-batched, saturating at 100%), and the saturated remainder is
accumulated as a per-server work deficit that the fleet SLA metrics
combine with scheduler-unserved demand.  Controllers in the fleet
observe ground-truth junction temperatures and the previous tick's
executed utilization (the fleet engine trades the runner's
noisy-sensor / ``sar``-window emulation for scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isnan
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # observability taps; annotation-only imports
    from repro.obs.capture import FleetCapture
    from repro.obs.metrics import MetricsRegistry

import numpy as np

from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.controllers.default import FixedSpeedController
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    CheckpointWriter,
    RunInterrupted,
    load_arrays,
    load_pickle,
    prune_checkpoints,
    read_manifest,
    require_fingerprint,
    resolve_checkpoint,
)
from repro.engine.kernel import (
    COLD_START_SETTLE_S,
    POLL_EPS_S,
    FleetTickState,
    FleetVectorKernel,
    plan_tick_times,
)
from repro.fleet.faults import FaultSchedule, FleetFaultPlan
from repro.fleet.metrics import FleetMetrics, compute_fleet_metrics
from repro.fleet.scheduler import (
    FleetLoadArrays,
    FleetScheduler,
    FleetWorkload,
    RoundRobinPolicy,
    ServerLoadView,
)
from repro.fleet.topology import (
    Fleet,
    RecirculationAmbient,
    exhaust_temperature_rise_c,
)
from repro.server.power import leakage_slope_w_per_c
from repro.server.server import ServerSimulator
from repro.server.thermal import substep_schedule
from repro.workloads.profile import UtilizationProfile

#: Poll-time comparison slack, seconds (matches the experiment runner).
_POLL_EPS_S = POLL_EPS_S

#: Cold-start fan settle horizon, seconds (see the execution kernel).
_COLD_START_SETTLE_S = COLD_START_SETTLE_S


class _ReferenceBackend:
    """One real :class:`ServerSimulator` per server (the naive loop)."""

    def __init__(self, fleet: Fleet, seed: int, trip_on_critical: bool):
        self.sims: List[ServerSimulator] = []
        for i, (spec, supply) in enumerate(
            zip(fleet.servers, fleet.supply_models())
        ):
            self.sims.append(
                ServerSimulator(
                    spec=spec,
                    ambient=RecirculationAmbient(supply),
                    seed=seed + i,
                    trip_on_critical=trip_on_critical,
                )
            )
        self.rpm = np.array([sim.fans.mean_rpm for sim in self.sims])

    def set_pstate(self, server_index: int, pstate_index: int) -> None:
        """Switch one wrapped simulator to *pstate_index*."""
        self.sims[server_index].set_pstate(pstate_index)

    def force_cold_state(self, cold_start_rpm: float) -> None:
        """The experiment protocol's pre-``t = 0`` idle settle, per sim."""
        for sim in self.sims:
            sim.set_fan_rpm(cold_start_rpm)
            sim.fans.step(dt_s=_COLD_START_SETTLE_S)
            sim.settle_to_steady_state(utilization_pct=0.0)
        self.rpm = np.array([sim.fans.mean_rpm for sim in self.sims])

    def _views_data(self):
        max_junction_c, avg_junction_c, leak_w, slope = [], [], [], []
        for sim in self.sims:
            junctions = sim.thermal.state.junction_c
            max_junction_c.append(max(junctions))
            avg_junction_c.append(sum(junctions) / len(junctions))
            leak_w.append(
                sum(
                    sim.power_model.socket_leakage_w(sock, t)
                    for sock, t in zip(sim.spec.sockets, junctions)
                )
            )
            slope.append(
                sum(
                    float(
                        leakage_slope_w_per_c(
                            sock.leak_k2_w, sock.leak_k3_per_c, t
                        )
                    )
                    for sock, t in zip(sim.spec.sockets, junctions)
                )
            )
        return (
            np.array(max_junction_c),
            np.array(avg_junction_c),
            np.array(leak_w),
            np.array(slope),
        )

    def step(
        self,
        dt_s: float,
        demand_pct: np.ndarray,
        rpm_command: np.ndarray,
        inlet_c: np.ndarray,
        offsets_c: np.ndarray,
    ) -> FleetTickState:
        total, fan, airflow, rpm, dimm = [], [], [], [], []
        executed, deficit, pstate = [], [], []
        for i, sim in enumerate(self.sims):
            sim.ambient.set_offset(float(offsets_c[i]))
            sim.set_fan_rpm(float(rpm_command[i]))
            index = sim.power_model.pstate_index
            # The same per-step deficit term the simulator accumulates
            # internally, surfaced per tick for the fleet traces.
            deficit.append(
                sim.spec.dvfs.work_deficit_pct(float(demand_pct[i]), index)
            )
            pstate.append(index)
            state = sim.step(dt_s, float(demand_pct[i]))
            total.append(state.power.total_w)
            fan.append(state.power.fan_w)
            airflow.append(sim.fans.total_airflow_cfm())
            rpm.append(state.mean_fan_rpm)
            dimm.append(state.thermal.dimm_bank_c)
            executed.append(state.utilization_pct)
        max_junction_c, avg_junction_c, leak_w, slope = self._views_data()
        self.rpm = np.array(rpm)
        return FleetTickState(
            total_power_w=np.array(total),
            fan_power_w=np.array(fan),
            airflow_cfm=np.array(airflow),
            mean_rpm=self.rpm.copy(),
            max_junction_c=max_junction_c,
            avg_junction_c=avg_junction_c,
            leakage_w=leak_w,
            leakage_slope_w_per_c=slope,
            dimm_bank_c=np.array(dimm),
            executed_pct=np.array(executed),
            work_deficit_pct=np.array(deficit),
            pstate_index=np.array(pstate, dtype=int),
        )

    def check_critical(self, trip: bool) -> None:
        """The wrapped simulators trip during :meth:`step` themselves."""

    def apply_supply_excursions(self, deltas_c: np.ndarray) -> None:
        """Install per-server CRAC excursions on the wrapped ambients.

        The sims read their inlet as ``(supply + excursion) + offset``,
        matching the engine's inlet arithmetic term for term.
        """
        for sim, delta in zip(self.sims, deltas_c):
            sim.ambient.set_excursion(float(delta))

    def initial_views_data(self):
        return self._views_data()


@dataclass
class FleetResult:
    """Traces and aggregates of one fleet run (ticks × servers)."""

    scheduler_name: str
    controller_name: str
    backend: str
    #: Tick length, s.
    dt_s: float
    #: Tick timestamps, s.
    times_s: np.ndarray
    #: Per-server wall power per tick, W.
    total_power_w: np.ndarray
    #: Per-server fan power per tick, W.
    fan_power_w: np.ndarray
    #: Hottest junction per server and tick, °C.
    max_junction_c: np.ndarray
    #: Executed (post-p-state-stretch) utilization per tick, %.
    utilization_pct: np.ndarray
    #: Per-server inlet temperature per tick, °C.
    inlet_c: np.ndarray
    #: Per-server mean fan speed per tick, RPM.
    mean_rpm: np.ndarray
    #: Demand the scheduler found no capacity for, single-server %.
    unserved_pct: np.ndarray
    #: P-state each server ran per tick (0 = nominal).
    pstate_index: np.ndarray
    #: DVFS deficit rate per tick and server, nominal percent.
    work_deficit_pct: np.ndarray
    metrics: FleetMetrics
    #: Per-tick per-server "any fault event active" mask (all False on
    #: fault-free runs).  See :mod:`repro.fleet.faults`.
    fault_active: Optional[np.ndarray] = None
    #: Work respilled off outage servers per tick, single-server %.
    respilled_pct: Optional[np.ndarray] = None
    #: Fault-attributable unserved demand per tick, single-server %.
    fault_unserved_pct: Optional[np.ndarray] = None

    @property
    def fleet_power_w(self) -> np.ndarray:
        """Summed fleet power per tick, W."""
        return self.total_power_w.sum(axis=1)

    @property
    def work_deficit_pct_s(self) -> np.ndarray:
        """Cumulative per-server DVFS deficit, %·s (ticks × servers).

        Accumulated with the same per-step additions as
        :attr:`ServerSimulator.work_deficit_pct_s`, so the N=1 trace is
        comparable bit-for-bit.
        """
        return np.cumsum(self.work_deficit_pct * self.dt_s, axis=0)


@dataclass(frozen=True)
class FleetTickView:
    """Read-only per-tick snapshot yielded by :meth:`FleetEngine.run_stream`.

    Array fields are length-N views into the engine's trace block for
    the just-completed tick; ``time_s`` is the end-of-tick timestamp
    (the same grid as :attr:`FleetResult.times_s`).
    """

    tick: int
    time_s: float
    total_power_w: np.ndarray
    fan_power_w: np.ndarray
    max_junction_c: np.ndarray
    utilization_pct: np.ndarray
    inlet_c: np.ndarray
    mean_rpm: np.ndarray
    unserved_pct: float
    #: True for ticks re-emitted from a restored checkpoint prefix (a
    #: resumed stream replays them so consumers can rebuild derived
    #: state deterministically before live ticks arrive).
    replayed: bool = False


class FleetEngine:
    """Schedules, controls and steps N servers in lock-step."""

    def __init__(
        self,
        fleet: Fleet,
        workload: Union[FleetWorkload, UtilizationProfile],
        scheduler: Optional[FleetScheduler] = None,
        controller_factory: Optional[Callable[[int], FanController]] = None,
        backend: str = "vector",
        seed: int = 0,
        trip_on_critical: bool = True,
        cold_start: bool = False,
        cold_start_rpm: float = 3600.0,
        faults: Optional[FaultSchedule] = None,
        capture: Optional["FleetCapture"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        shards: Optional[Union[int, Sequence[int]]] = None,
        trace_dir: Optional[str] = None,
        shard_mode: str = "auto",
        stream_chunk_ticks: Optional[int] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        barrier_timeout_s: Optional[float] = None,
    ):
        if backend not in ("vector", "vector-legacy", "reference", "sharded"):
            raise ValueError(f"unknown backend {backend!r}")
        self.fleet = fleet
        if not isinstance(workload, FleetWorkload):
            workload = FleetWorkload(workload, fleet.server_count)
        if workload.server_count != fleet.server_count:
            raise ValueError(
                f"workload is sized for {workload.server_count} servers, "
                f"fleet has {fleet.server_count}"
            )
        # Dynamic workloads (e.g. the facility WorkloadQueue) evaluate
        # demand tick by tick against mutable queue state, which the
        # sharded coordinator does not replicate and the checkpoint
        # writer does not persist — reject both up front.
        if workload.dynamic and backend == "sharded":
            raise ValueError(
                "dynamic workloads are not supported on the sharded "
                "backend; use 'vector' or 'vector-legacy'"
            )
        if workload.dynamic and checkpoint is not None:
            raise ValueError(
                "dynamic workloads cannot be checkpointed: queue state "
                "is not persisted"
            )
        self.workload = workload
        self.scheduler = (
            scheduler
            if scheduler is not None
            else FleetScheduler(RoundRobinPolicy())
        )
        if controller_factory is None:
            controller_factory = lambda index: FixedSpeedController()
        self.controllers: List[FanController] = [
            controller_factory(i) for i in range(fleet.server_count)
        ]
        self.backend = backend
        # Sharded-execution knobs (see repro.engine.sharded): the shard
        # partition, the streamed-trace directory (None = temporary),
        # the worker mode, and the spill-chunk length.  Validated here
        # so a bad partition fails at construction, not mid-run.
        if backend != "sharded" and (
            shards is not None
            or trace_dir is not None
            or stream_chunk_ticks is not None
        ):
            raise ValueError(
                "shards / trace_dir / stream_chunk_ticks require "
                f"backend='sharded', engine uses {backend!r}"
            )
        if shard_mode not in ("auto", "process", "inline"):
            raise ValueError(f"unknown shard_mode {shard_mode!r}")
        if stream_chunk_ticks is not None and int(stream_chunk_ticks) < 1:
            raise ValueError("stream_chunk_ticks must be >= 1")
        if shards is not None:
            from repro.telemetry.segments import partition_servers

            partition_servers(fleet.server_count, shards)
        if barrier_timeout_s is not None:
            if backend != "sharded":
                raise ValueError(
                    "barrier_timeout_s requires backend='sharded', "
                    f"engine uses {backend!r}"
                )
            if not float(barrier_timeout_s) > 0.0:
                raise ValueError("barrier_timeout_s must be positive")
        if checkpoint is not None and not isinstance(
            checkpoint, CheckpointConfig
        ):
            raise TypeError(
                "checkpoint must be a CheckpointConfig, got "
                f"{type(checkpoint).__name__}"
            )
        self.shards = shards
        self.trace_dir = trace_dir
        self.shard_mode = shard_mode
        self.stream_chunk_ticks = stream_chunk_ticks
        self.barrier_timeout_s = (
            float(barrier_timeout_s) if barrier_timeout_s is not None else None
        )
        #: Periodic run-state checkpointing (None = disabled); see
        #: :mod:`repro.engine.checkpoint` and ``docs/resilience.md``.
        self.checkpoint = checkpoint
        #: Last committed checkpoint of the current/most recent run.
        self.last_checkpoint_path = None
        #: Tick the most recent run resumed from (0 = started fresh).
        self.last_resume_tick = 0
        self._stop_requested = False
        self._checkpoint_requested = False
        #: Wall-clock / RSS figures of the most recent sharded run
        #: (None until one completes; see repro.engine.sharded).
        self.last_run_stats: Optional[Dict[str, object]] = None
        self.seed = seed
        self.trip_on_critical = trip_on_critical
        if cold_start:
            for index, spec in enumerate(fleet.servers):
                if not spec.fan.rpm_min <= cold_start_rpm <= spec.fan.rpm_max:
                    raise ValueError(
                        f"server {index}: cold_start_rpm {cold_start_rpm} "
                        f"outside supported range "
                        f"[{spec.fan.rpm_min}, {spec.fan.rpm_max}]"
                    )
        self.cold_start = cold_start
        self.cold_start_rpm = float(cold_start_rpm)
        if faults is not None and not isinstance(faults, FaultSchedule):
            raise TypeError(
                f"faults must be a FaultSchedule, got {type(faults).__name__}"
            )
        if faults is not None:
            faults.validate_for(fleet)
        self.faults = faults
        # Observability taps (see repro.obs): both default to None and
        # cost nothing when absent.  ``capture`` streams trace rows
        # into a timeseries store at chunk granularity; ``metrics``
        # receives per-phase timers from the kernel loop.
        self.capture = capture
        self.metrics = metrics
        #: Result of the most recent completed run (set by ``run`` and
        #: by exhausting :meth:`run_stream`).
        self.last_result: Optional[FleetResult] = None

    # ------------------------------------------------------------------
    def _make_backend(self):
        if self.backend in ("vector", "vector-legacy"):
            return FleetVectorKernel(self.fleet, metrics=self.metrics)
        return _ReferenceBackend(self.fleet, self.seed, self.trip_on_critical)

    def _validated_command(self, index: int, rpm: float) -> float:
        fan = self.fleet.servers[index].fan
        if not fan.rpm_min <= rpm <= fan.rpm_max:
            raise ValueError(
                f"server {index}: rpm {rpm} outside supported range "
                f"[{fan.rpm_min}, {fan.rpm_max}]"
            )
        return float(rpm)

    def _validated_pstate(self, index: int, pstate: int) -> int:
        ladder = self.fleet.servers[index].dvfs
        if not 0 <= pstate < len(ladder):
            raise ValueError(
                f"server {index}: p-state {pstate} outside the "
                f"{len(ladder)}-state ladder"
            )
        return int(pstate)

    # ------------------------------------------------------------------
    # checkpoint / cooperative-stop plumbing
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the running loop to stop at the next tick boundary.

        With checkpointing configured the loop writes a final
        checkpoint first, then raises
        :class:`~repro.engine.checkpoint.RunInterrupted` carrying its
        path; without, it raises immediately.  Safe to call from a
        signal handler.
        """
        self._stop_requested = True

    def request_checkpoint(self) -> None:
        """Ask the running loop for an off-cadence checkpoint."""
        self._checkpoint_requested = True

    def _run_fingerprint(
        self, dt_s: float, steps: int, kind: str
    ) -> Dict[str, object]:
        """JSON-able run identity pinned into checkpoint manifests."""
        return {
            "kind": kind,
            "backend": self.backend,
            "server_count": self.fleet.server_count,
            "steps": int(steps),
            "dt_s": float(dt_s),
            "seed": self.seed,
            "scheduler": self.scheduler.name,
            "controllers": sorted({c.name for c in self.controllers}),
            "cold_start": bool(self.cold_start),
            "fault_events": len(self.faults.events)
            if self.faults is not None
            else 0,
        }

    def _write_run_checkpoint(
        self,
        kind: str,
        tick: int,
        dt_s: float,
        steps: int,
        plan: Optional[FleetFaultPlan],
        trace: Dict[str, np.ndarray],
        state: Dict[str, np.ndarray],
        extra_pickles: Sequence = (),
    ):
        """Commit one atomic checkpoint after ``tick`` completed ticks."""
        cfg = self.checkpoint
        writer = CheckpointWriter(cfg.root, tick)
        writer.arrays("state", state)
        writer.arrays("trace", {name: trace[name][:tick] for name in trace})
        writer.pickle(
            "control",
            {
                "controllers": self.controllers,
                "scheduler": self.scheduler,
                "sensor_channels": plan.sensor_channels
                if plan is not None
                else None,
            },
        )
        for name, obj in extra_pickles:
            writer.pickle(name, obj)
        path = writer.commit(kind, self._run_fingerprint(dt_s, steps, kind))
        prune_checkpoints(cfg.root, cfg.keep)
        self.last_checkpoint_path = path
        self._checkpoint_requested = False
        return path

    def _load_run_checkpoint(
        self,
        resume_from,
        kind: str,
        dt_s: float,
        steps: int,
        plan: Optional[FleetFaultPlan],
        trace: Dict[str, np.ndarray],
    ):
        """Restore an in-memory-loop checkpoint; returns (tick, state, dir).

        Verifies payload checksums and the run fingerprint, refills the
        trace prefix, and swaps in the pickled controllers, scheduler
        and stateful fault-sensor channels.
        """
        directory = resolve_checkpoint(resume_from)
        manifest = read_manifest(directory)
        if manifest.get("kind") != kind:
            raise CheckpointError(
                f"checkpoint at {directory} is a {manifest.get('kind')!r} "
                f"checkpoint, this run needs {kind!r}"
            )
        require_fingerprint(
            manifest, self._run_fingerprint(dt_s, steps, kind)
        )
        tick = int(manifest["tick"])
        if not 0 < tick < steps:
            raise CheckpointError(
                f"checkpoint tick {tick} outside the run's 1..{steps - 1}"
            )
        state = load_arrays(directory, "state")
        saved_trace = load_arrays(directory, "trace")
        for name in trace:
            trace[name][:tick] = saved_trace[name]
        control = load_pickle(directory, "control")
        self.controllers = list(control["controllers"])
        if len(self.controllers) != self.fleet.server_count:
            raise CheckpointError(
                "checkpointed controller count does not match the fleet"
            )
        self.scheduler = control["scheduler"]
        channels = control["sensor_channels"]
        if plan is not None and channels is not None:
            plan.sensor_channels[:] = channels
        self.last_resume_tick = tick
        # until a newer checkpoint commits, the resumed-from one is
        # still the right restart point after another interruption
        self.last_checkpoint_path = directory
        return tick, state, directory

    def run(
        self,
        dt_s: float = 1.0,
        duration_s: Optional[float] = None,
        resume_from=None,
    ) -> FleetResult:
        """Run the whole scenario and return traces plus metrics.

        The ``vector`` backend executes the kernelized loop; the
        ``vector-legacy`` and ``reference`` backends run the pre-kernel
        per-tick loop (both produce the same traces as ``vector``, the
        former bit for bit); the ``sharded`` backend partitions the
        kernelized loop across shard workers with streamed traces
        (bit-identical to ``vector``, see :mod:`repro.engine.sharded`).
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if duration_s is None:
            duration_s = self.workload.duration_s
        steps = int(round(duration_s / dt_s))
        if steps <= 0:
            raise ValueError("workload too short for the configured dt_s")
        if self.workload.dynamic and resume_from is not None:
            raise ValueError(
                "dynamic workloads cannot resume from a checkpoint"
            )
        self.workload.reset()
        # Compile the fault schedule once, on the engine's exact tick
        # grid, and hand the same mask arrays to whichever loop runs —
        # the backends cannot disagree about event timing.  An empty
        # schedule compiles to None: the loops take the identical
        # fault-free path a run without a schedule takes.
        plan = (
            self.faults.compile(self.fleet, steps, dt_s)
            if self.faults is not None
            else None
        )
        self._stop_requested = False
        self._checkpoint_requested = False
        self.last_resume_tick = 0
        if resume_from is None:
            self.last_checkpoint_path = None
        if self.backend == "vector":
            return self._run_kernel(dt_s, steps, plan, resume_from)
        if self.backend == "sharded":
            from repro.engine.sharded import run_sharded

            result = run_sharded(self, dt_s, steps, plan, resume_from)
        else:
            result = self._run_legacy(dt_s, steps, plan, resume_from)
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # shared setup / teardown
    # ------------------------------------------------------------------
    @staticmethod
    def _build_views(
        n, rack_of, executed, max_junction_c, inlet, leak_w, leak_slope, pstate_now
    ) -> List[ServerLoadView]:
        """Materialize per-server views for view-based policies.

        Single source for both the legacy loop and the kernel loop's
        custom-policy fallback, so the two paths cannot drift apart
        field-wise.
        """
        return [
            ServerLoadView(
                index=i,
                rack_index=int(rack_of[i]),
                utilization_pct=float(executed[i]),
                max_junction_c=float(max_junction_c[i]),
                inlet_c=float(inlet[i]),
                leakage_w=float(leak_w[i]),
                leakage_slope_w_per_c=float(leak_slope[i]),
                pstate_index=int(pstate_now[i]),
            )
            for i in range(n)
        ]

    def _reset_controllers(self, physics, n: int) -> np.ndarray:
        self.scheduler.reset()
        rpm_command = np.empty(n)
        for i, controller in enumerate(self.controllers):
            controller.reset()
            initial = controller.initial_rpm()
            rpm_command[i] = self._validated_command(
                i, initial if initial is not None else float(physics.rpm[i])
            )
        return rpm_command

    def _build_result(
        self,
        dt_s,
        steps,
        trace_power,
        trace_fan,
        trace_junction,
        trace_util,
        trace_inlet,
        trace_rpm,
        trace_unserved,
        trace_pstate,
        trace_deficit,
        plan: Optional[FleetFaultPlan] = None,
        trace_respilled: Optional[np.ndarray] = None,
        trace_fault_unserved: Optional[np.ndarray] = None,
    ) -> FleetResult:
        n = self.fleet.server_count
        fault_active = (
            plan.fault_active
            if plan is not None
            else np.zeros((steps, n), dtype=bool)
        )
        if trace_respilled is None:
            trace_respilled = np.zeros(steps)
        if trace_fault_unserved is None:
            trace_fault_unserved = np.zeros(steps)
        metrics = compute_fleet_metrics(
            self.fleet,
            dt_s,
            trace_power,
            trace_fan,
            trace_junction,
            trace_util,
            trace_inlet,
            trace_unserved,
            work_deficit_pct=trace_deficit,
            fault_active=fault_active,
            respilled_pct=trace_respilled,
            fault_unserved_pct=trace_fault_unserved,
        )
        controller_names = {c.name for c in self.controllers}
        return FleetResult(
            scheduler_name=self.scheduler.name,
            controller_name=(
                controller_names.pop()
                if len(controller_names) == 1
                else "mixed"
            ),
            backend=self.backend,
            dt_s=dt_s,
            times_s=np.arange(1, steps + 1) * dt_s,
            total_power_w=trace_power,
            fan_power_w=trace_fan,
            max_junction_c=trace_junction,
            utilization_pct=trace_util,
            inlet_c=trace_inlet,
            mean_rpm=trace_rpm,
            unserved_pct=trace_unserved,
            pstate_index=trace_pstate,
            work_deficit_pct=trace_deficit,
            metrics=metrics,
            fault_active=fault_active,
            respilled_pct=trace_respilled,
            fault_unserved_pct=trace_fault_unserved,
        )

    def _alloc_traces(self, steps: int) -> Dict[str, np.ndarray]:
        """Preallocate the whole-horizon trace block for one run."""
        n = self.fleet.server_count
        return {
            "power": np.empty((steps, n)),
            "fan": np.empty((steps, n)),
            "junction": np.empty((steps, n)),
            "util": np.empty((steps, n)),
            "inlet": np.empty((steps, n)),
            "rpm": np.empty((steps, n)),
            "unserved": np.empty(steps),
            "pstate": np.empty((steps, n), dtype=int),
            "deficit": np.empty((steps, n)),
            "respilled": np.zeros(steps),
            "fault_unserved": np.zeros(steps),
        }

    def _result_from_traces(
        self,
        dt_s: float,
        steps: int,
        trace: Dict[str, np.ndarray],
        plan: Optional[FleetFaultPlan],
    ) -> FleetResult:
        return self._build_result(
            dt_s,
            steps,
            trace["power"],
            trace["fan"],
            trace["junction"],
            trace["util"],
            trace["inlet"],
            trace["rpm"],
            trace["unserved"],
            trace["pstate"],
            trace["deficit"],
            plan=plan,
            trace_respilled=trace["respilled"],
            trace_fault_unserved=trace["fault_unserved"],
        )

    def _capture_flush(
        self,
        times_rec: np.ndarray,
        trace: Dict[str, np.ndarray],
        start: int,
        stop: int,
    ) -> None:
        """Hand trace rows ``[start, stop)`` to the capture tap."""
        self.capture.flush(
            times_rec[start:stop],
            {
                "power": trace["power"][start:stop],
                "fan": trace["fan"][start:stop],
                "junction": trace["junction"][start:stop],
                "util": trace["util"][start:stop],
                "inlet": trace["inlet"][start:stop],
                "rpm": trace["rpm"][start:stop],
            },
            unserved_pct=trace["unserved"][start:stop],
        )

    # ------------------------------------------------------------------
    # kernelized loop (backend="vector")
    # ------------------------------------------------------------------
    def _run_kernel(
        self,
        dt_s: float,
        steps: int,
        plan: Optional[FleetFaultPlan] = None,
        resume_from=None,
    ) -> FleetResult:
        trace = self._alloc_traces(steps)
        for _ in self._kernel_tick_stream(
            dt_s, steps, plan, trace, resume_from
        ):
            pass
        result = self._result_from_traces(dt_s, steps, trace, plan)
        self.last_result = result
        return result

    def run_stream(
        self,
        dt_s: float = 1.0,
        duration_s: Optional[float] = None,
        resume_from=None,
    ) -> Iterator["FleetTickView"]:
        """Incrementally run the scenario, yielding one view per tick.

        The streaming twin of :meth:`run` for the ``vector`` backend:
        the identical kernel loop executes underneath (bit-identical
        traces), but control returns to the caller after every tick —
        the live telemetry service paces this generator against wall
        clock.  After exhaustion the full :class:`FleetResult` is
        available as :attr:`last_result`.

        The yielded arrays are views into the engine's trace block:
        read them, never write them.
        """
        if self.backend != "vector":
            raise ValueError(
                "run_stream requires the 'vector' backend, "
                f"engine uses {self.backend!r}"
            )
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        if duration_s is None:
            duration_s = self.workload.duration_s
        steps = int(round(duration_s / dt_s))
        if steps <= 0:
            raise ValueError("workload too short for the configured dt_s")
        if self.workload.dynamic and resume_from is not None:
            raise ValueError(
                "dynamic workloads cannot resume from a checkpoint"
            )
        self.workload.reset()
        plan = (
            self.faults.compile(self.fleet, steps, dt_s)
            if self.faults is not None
            else None
        )
        trace = self._alloc_traces(steps)
        self._stop_requested = False
        self._checkpoint_requested = False
        self.last_resume_tick = 0
        if resume_from is None:
            self.last_checkpoint_path = None

        def stream() -> Iterator[FleetTickView]:
            for tick, time_s in self._kernel_tick_stream(
                dt_s, steps, plan, trace, resume_from
            ):
                yield FleetTickView(
                    tick=tick,
                    time_s=time_s,
                    total_power_w=trace["power"][tick],
                    fan_power_w=trace["fan"][tick],
                    max_junction_c=trace["junction"][tick],
                    utilization_pct=trace["util"][tick],
                    inlet_c=trace["inlet"][tick],
                    mean_rpm=trace["rpm"][tick],
                    unserved_pct=float(trace["unserved"][tick]),
                    replayed=tick < self.last_resume_tick,
                )
            self.last_result = self._result_from_traces(
                dt_s, steps, trace, plan
            )

        return stream()

    def _kernel_tick_stream(
        self,
        dt_s: float,
        steps: int,
        plan: Optional[FleetFaultPlan],
        trace: Dict[str, np.ndarray],
        resume_from=None,
    ) -> Iterator[tuple]:
        """The kernelized per-tick loop, yielding ``(tick, time_s)``.

        Single implementation behind both :meth:`run` (which drains
        it) and :meth:`run_stream`; the yield sits after the tick's
        trace rows are final.  ``time_s`` in the yielded pair is the
        *end-of-tick* timestamp, matching ``FleetResult.times_s``.

        With ``resume_from`` the restored ticks are re-yielded first
        (their trace rows come from the checkpoint), then the loop
        continues from the checkpointed tick with restored kernel,
        controller, scheduler and fault-channel state — the completed
        trace is bit-identical to an uninterrupted run.
        """
        n = self.fleet.server_count
        start_tick = 0
        restored = None
        if resume_from is not None:
            start_tick, restored, _ = self._load_run_checkpoint(
                resume_from, "fleet-vector", dt_s, steps, plan, trace
            )
        physics = FleetVectorKernel(self.fleet, metrics=self.metrics)
        if restored is not None:
            physics.load_state_arrays(
                {
                    key: restored[f"kernel_{key}"]
                    for key in FleetVectorKernel.STATE_KEYS
                }
            )
        elif self.cold_start:
            physics.force_cold_state(self.cold_start_rpm)
        rack_of = np.asarray(self.fleet.rack_index_of_server)
        coupling = self.fleet.recirculation_matrix()
        supply_models = self.fleet.supply_models()
        constant_supply = all(rack.crac is None for rack in self.fleet.racks)
        supply_now = self.fleet.supply_temperatures_c(0.0)
        supply_base = supply_now

        substeps, h = substep_schedule(dt_s)
        times_pre = plan_tick_times(steps, dt_s)[:steps]
        times_pre_list = times_pre.tolist()
        # Whole-horizon per-tick inputs: aggregate demand (the profile
        # is evaluated once, elementwise-stable) and, when any rack has
        # a CRAC model, the per-server supply series.  Dynamic
        # workloads (queue-backed) cannot be precomputed: their demand
        # depends on what earlier ticks executed, so the loop asks
        # them tick by tick — the same call order the legacy loop
        # uses, keeping the two backends bit-identical.
        dynamic_demand = self.workload.dynamic
        totals_list = None
        if not dynamic_demand:
            totals_list = (
                self.workload.profile.utilization_chunk(times_pre)
                * self.workload.server_count
            ).tolist()
        supply_matrix = None
        if not constant_supply:
            supply_matrix = np.empty((steps, n))
            for column, model in enumerate(supply_models):
                supply_matrix[:, column] = model.temperature_chunk(times_pre)

        if restored is not None:
            rpm_command = restored["rpm_command"].copy()
            next_poll = restored["next_poll"].copy()
            next_poll_due = float(restored["next_poll_due"])
            executed = restored["executed"].copy()
            pstate_now = restored["pstate_now"].copy()
            exhaust_rise = restored["exhaust_rise"].copy()
            max_junction_c = restored["max_junction"].copy()
            leak_w = restored["leak_w"].copy()
        else:
            rpm_command = self._reset_controllers(physics, n)
            next_poll = np.zeros(n)
            next_poll_due = 0.0

            executed = np.zeros(n)
            pstate_now = np.zeros(n, dtype=int)
            exhaust_rise = np.zeros(n)
            max_junction_c, _, leak_w, _ = physics.initial_views_data()
        # the junction mean feeds only controller observations, and the
        # leakage slope only leakage-aware rankings / view fallbacks —
        # both are computed lazily from the pre-step fleet state
        slope_fn = physics.leakage_slope_w_per_c

        trace_power = trace["power"]
        trace_fan = trace["fan"]
        trace_junction = trace["junction"]
        trace_util = trace["util"]
        trace_inlet = trace["inlet"]
        trace_rpm = trace["rpm"]
        trace_unserved = trace["unserved"]
        trace_pstate = trace["pstate"]
        trace_deficit = trace["deficit"]
        trace_respilled = trace["respilled"]
        trace_fault_unserved = trace["fault_unserved"]

        policy = self.scheduler.policy
        controllers = self.controllers
        decide_pstate_fns = [
            getattr(controller, "decide_pstate", None)
            for controller in controllers
        ]
        apply_faults = plan is not None

        # Observability taps — both None in plain batch runs, in which
        # case the loop body takes the exact pre-existing path.
        capture = self.capture
        times_rec = np.arange(1, steps + 1) * dt_s
        flush_start = 0
        chunk_ticks = capture.chunk_ticks if capture is not None else 0
        if capture is not None:
            capture.bind(n)
            # Replay the restored trace prefix through the capture tap
            # in the exact chunk slices the uninterrupted run flushed:
            # the store (lost with the interrupted process) is rebuilt
            # bit-identically, and flush_start lands where it would be.
            while flush_start + chunk_ticks <= start_tick:
                self._capture_flush(
                    times_rec, trace, flush_start, flush_start + chunk_ticks
                )
                flush_start += chunk_ticks
        timers = None
        if self.metrics is not None:
            timers = (
                self.metrics.timer(
                    "repro_fleet_placement",
                    "Placement policy + scheduler assignment",
                ),
                self.metrics.timer(
                    "repro_fleet_control_poll",
                    "Controller polls (fan + p-state decisions)",
                ),
                self.metrics.timer(
                    "repro_fleet_thermal_step",
                    "Vectorized physics step (RC substeps + power)",
                ),
                self.metrics.timer(
                    "repro_fleet_trace_write",
                    "Capture flushes into the timeseries store",
                ),
            )

        ckpt_cfg = self.checkpoint
        ckpt_every = ckpt_cfg.every_ticks(dt_s) if ckpt_cfg is not None else 0

        for tick in range(start_tick):
            yield tick, times_rec[tick]

        for tick in range(start_tick, steps):
            time_s = times_pre_list[tick]
            total_demand = (
                totals_list[tick]
                if totals_list is not None
                else self.workload.total_demand_pct(time_s)
            )
            if supply_matrix is not None:
                supply_now = supply_matrix[tick]
            elif apply_faults:
                supply_now = supply_base
            if apply_faults and plan.has_excursions:
                supply_now = supply_now + plan.supply_delta[tick]
            offsets = coupling @ exhaust_rise
            inlet = supply_now + offsets

            outage_now = apply_faults and plan.outage_any[tick]
            if timers is not None:
                _t0 = perf_counter()
            arrays = FleetLoadArrays(
                utilization_pct=executed,
                max_junction_c=max_junction_c,
                inlet_c=inlet,
                leakage_w=leak_w,
                pstate_index=pstate_now,
                rack_index=rack_of,
                leakage_slope_fn=slope_fn,
            )
            order = policy.order_indices(arrays)
            if order is not None:
                if outage_now:
                    # degraded fill plus the all-up counterfactual —
                    # both along the single policy ranking, so the
                    # respill/SLA attribution needs no second ranking
                    out_row = plan.outage[tick]
                    order = np.asarray(order)
                    counterfactual = self.scheduler.assign_indexed(
                        order, n, total_demand
                    )
                    decision = self.scheduler.assign_indexed(
                        order[~out_row[order]], n, total_demand
                    )
                    trace_respilled[tick] = float(
                        counterfactual.allocations_pct[out_row].sum()
                    )
                    trace_fault_unserved[tick] = max(
                        0.0,
                        decision.unserved_pct - counterfactual.unserved_pct,
                    )
                else:
                    decision = self.scheduler.assign_indexed(
                        order, n, total_demand
                    )
            else:
                # view-based custom policy: full legacy scheduling path
                views = self._build_views(
                    n,
                    rack_of,
                    executed,
                    max_junction_c,
                    inlet,
                    leak_w,
                    arrays.leakage_slope_w_per_c,
                    pstate_now,
                )
                if outage_now:
                    out_row = plan.outage[tick]
                    decision, counterfactual = self.scheduler.assign_with_spill(
                        views, total_demand, ~out_row
                    )
                    trace_respilled[tick] = float(
                        counterfactual.allocations_pct[out_row].sum()
                    )
                    trace_fault_unserved[tick] = max(
                        0.0,
                        decision.unserved_pct - counterfactual.unserved_pct,
                    )
                else:
                    decision = self.scheduler.assign(views, total_demand)
            if timers is not None:
                timers[0].add(perf_counter() - _t0)

            if time_s >= next_poll_due - _POLL_EPS_S:
                if timers is not None:
                    _t0 = perf_counter()
                avg_junction_c = physics.t_j.mean(axis=1)
                for i in np.nonzero(time_s >= next_poll - _POLL_EPS_S)[0]:
                    controller = controllers[i]
                    max_c = float(max_junction_c[i])
                    avg_c = float(avg_junction_c[i])
                    if apply_faults and plan.has_sensor_faults:
                        max_c, avg_c = plan.transform_observation(
                            int(i), time_s, max_c, avg_c
                        )
                    # A dropped-out channel (NaN reading) makes the BMC
                    # hold the last fan and p-state commands; the poll
                    # clock still advances.
                    if not (isnan(max_c) or isnan(avg_c)):
                        observation = ControllerObservation(
                            time_s=time_s,
                            max_cpu_temperature_c=max_c,
                            avg_cpu_temperature_c=avg_c,
                            utilization_pct=float(executed[i]),
                            current_rpm_command=float(rpm_command[i]),
                        )
                        wanted = controller.decide(observation)
                        if wanted is not None and wanted != rpm_command[i]:
                            rpm_command[i] = self._validated_command(i, wanted)
                        # Coordinated controllers additionally command a
                        # p-state, polled on the same cadence and in the
                        # same order as the single-server runner.
                        decide_pstate = decide_pstate_fns[i]
                        if decide_pstate is not None:
                            wanted_pstate = decide_pstate(observation)
                            if wanted_pstate is not None:
                                physics.set_pstate(
                                    int(i),
                                    self._validated_pstate(
                                        int(i), int(wanted_pstate)
                                    ),
                                )
                    # Advance past the current time: with dt_s larger
                    # than the poll interval a single increment would
                    # let the poll clock fall unboundedly behind.
                    while time_s >= next_poll[i] - _POLL_EPS_S:
                        next_poll[i] += controller.poll_interval_s
                next_poll_due = next_poll.min()
                if timers is not None:
                    timers[1].add(perf_counter() - _t0)

            # a degraded fan bank caps the achievable rotor speed below
            # the controller's command (the command itself is untouched)
            if apply_faults and plan.has_fan_faults:
                actuated_rpm = np.minimum(rpm_command, plan.rpm_cap[tick])
            else:
                actuated_rpm = rpm_command

            if timers is not None:
                _t0 = perf_counter()
            air_capacity, leak_w = physics.step_into(
                dt_s,
                substeps,
                h,
                decision.allocations_pct,
                actuated_rpm,
                inlet,
                trace_power[tick],
                trace_fan[tick],
                trace_junction[tick],
                trace_util[tick],
                trace_rpm[tick],
                trace_pstate[tick],
                trace_deficit[tick],
            )
            physics.check_critical(self.trip_on_critical)

            max_junction_c = trace_junction[tick]
            executed = trace_util[tick]
            pstate_now = trace_pstate[tick]
            # exhaust_temperature_rise_c, with the already-computed
            # stream heat capacity (identical expression and operands)
            exhaust_rise = trace_power[tick] / air_capacity
            trace_inlet[tick] = inlet
            trace_unserved[tick] = decision.unserved_pct
            if dynamic_demand:
                self.workload.record_executed(
                    time_s, float(executed.sum()), dt_s
                )
            if timers is not None:
                timers[2].add(perf_counter() - _t0)

            if capture is not None and (
                tick + 1 - flush_start >= chunk_ticks or tick + 1 == steps
            ):
                if timers is not None:
                    _t0 = perf_counter()
                self._capture_flush(times_rec, trace, flush_start, tick + 1)
                flush_start = tick + 1
                if timers is not None:
                    timers[3].add(perf_counter() - _t0)

            if (
                ckpt_cfg is not None
                and tick + 1 < steps
                and (
                    (tick + 1) % ckpt_every == 0
                    or self._checkpoint_requested
                    or self._stop_requested
                )
            ):
                state = {
                    f"kernel_{key}": value
                    for key, value in physics.state_arrays().items()
                }
                state.update(
                    rpm_command=rpm_command.copy(),
                    next_poll=next_poll.copy(),
                    next_poll_due=np.float64(next_poll_due),
                    executed=np.array(executed),
                    pstate_now=np.array(pstate_now),
                    exhaust_rise=np.array(exhaust_rise),
                    max_junction=np.array(max_junction_c),
                    leak_w=np.array(leak_w),
                )
                self._write_run_checkpoint(
                    "fleet-vector", tick + 1, dt_s, steps, plan, trace, state
                )
            if self._stop_requested and tick + 1 < steps:
                raise RunInterrupted(
                    f"fleet run stopped at tick {tick + 1}/{steps}",
                    self.last_checkpoint_path,
                )

            yield tick, times_rec[tick]

        if self.metrics is not None:
            self.metrics.counter(
                "repro_fleet_ticks_total", "Fleet engine ticks executed"
            ).inc(steps)
            self.metrics.gauge(
                "repro_fleet_sim_time_seconds", "Simulated seconds completed"
            ).set(steps * dt_s)

    # ------------------------------------------------------------------
    # pre-kernel loop (backends "vector-legacy" and "reference")
    # ------------------------------------------------------------------
    def _run_legacy(
        self,
        dt_s: float,
        steps: int,
        plan: Optional[FleetFaultPlan] = None,
        resume_from=None,
    ) -> FleetResult:
        n = self.fleet.server_count
        trace = self._alloc_traces(steps)
        start_tick = 0
        restored = None
        if resume_from is not None:
            start_tick, restored, resume_dir = self._load_run_checkpoint(
                resume_from, "fleet-legacy", dt_s, steps, plan, trace
            )
        if restored is not None and self.backend == "reference":
            physics = load_pickle(resume_dir, "backend")
        else:
            physics = self._make_backend()
            if restored is not None:
                physics.load_state_arrays(
                    {
                        key: restored[f"kernel_{key}"]
                        for key in FleetVectorKernel.STATE_KEYS
                    }
                )
            elif self.cold_start:
                physics.force_cold_state(self.cold_start_rpm)
        rack_of = self.fleet.rack_index_of_server
        coupling = self.fleet.recirculation_matrix()
        supply_models = self.fleet.supply_models()
        constant_supply = all(rack.crac is None for rack in self.fleet.racks)
        supply_now = self.fleet.supply_temperatures_c(0.0)

        if restored is not None:
            rpm_command = restored["rpm_command"].copy()
            next_poll = restored["next_poll"].copy()
            executed = restored["executed"].copy()
            pstate_now = restored["pstate_now"].copy()
            exhaust_rise = restored["exhaust_rise"].copy()
            max_junction_c = restored["max_junction"].copy()
            avg_junction_c = restored["avg_junction"].copy()
            leak_w = restored["leak_w"].copy()
            leak_slope = restored["leak_slope"].copy()
        else:
            rpm_command = self._reset_controllers(physics, n)
            next_poll = np.zeros(n)

            executed = np.zeros(n)
            pstate_now = np.zeros(n, dtype=int)
            exhaust_rise = np.zeros(n)
            max_junction_c, avg_junction_c, leak_w, leak_slope = physics.initial_views_data()

        trace_power = trace["power"]
        trace_fan = trace["fan"]
        trace_junction = trace["junction"]
        trace_util = trace["util"]
        trace_inlet = trace["inlet"]
        trace_rpm = trace["rpm"]
        trace_unserved = trace["unserved"]
        trace_pstate = trace["pstate"]
        trace_deficit = trace["deficit"]
        trace_respilled = trace["respilled"]
        trace_fault_unserved = trace["fault_unserved"]

        apply_faults = plan is not None
        apply_excursions = getattr(physics, "apply_supply_excursions", None)
        dynamic_demand = self.workload.dynamic

        # Live capture rides the same trace-row seam as the kernel
        # loop, so captured streams are backend-independent.
        capture = self.capture
        times_rec = np.arange(1, steps + 1) * dt_s
        flush_start = 0
        capture_rows = {
            "power": trace_power,
            "fan": trace_fan,
            "junction": trace_junction,
            "util": trace_util,
            "inlet": trace_inlet,
            "rpm": trace_rpm,
            "unserved": trace_unserved,
        }
        if capture is not None:
            capture.bind(n)
            # replay the restored prefix in the original flush slices
            # (see the kernel loop)
            while flush_start + capture.chunk_ticks <= start_tick:
                sl = slice(flush_start, flush_start + capture.chunk_ticks)
                capture.flush(
                    times_rec[sl],
                    {k: v[sl] for k, v in capture_rows.items() if v.ndim == 2},
                    unserved_pct=trace_unserved[sl],
                )
                flush_start += capture.chunk_ticks

        ckpt_cfg = self.checkpoint
        ckpt_every = ckpt_cfg.every_ticks(dt_s) if ckpt_cfg is not None else 0

        time_s = float(restored["time_s"]) if restored is not None else 0.0
        for tick in range(start_tick, steps):
            if not constant_supply:
                supply_now = np.array(
                    [m.temperature_c(time_s) for m in supply_models]
                )
            if apply_faults and plan.has_excursions:
                # same term order as the kernel loop (and as
                # RecirculationAmbient): (supply + excursion) + offset
                inlet_supply = supply_now + plan.supply_delta[tick]
                if apply_excursions is not None:
                    apply_excursions(plan.supply_delta[tick])
            else:
                inlet_supply = supply_now
            offsets = coupling @ exhaust_rise
            inlet = inlet_supply + offsets

            views = self._build_views(
                n,
                rack_of,
                executed,
                max_junction_c,
                inlet,
                leak_w,
                leak_slope,
                pstate_now,
            )
            if apply_faults and plan.outage_any[tick]:
                out_row = plan.outage[tick]
                decision, counterfactual = self.scheduler.assign_with_spill(
                    views, self.workload.total_demand_pct(time_s), ~out_row
                )
                trace_respilled[tick] = float(
                    counterfactual.allocations_pct[out_row].sum()
                )
                trace_fault_unserved[tick] = max(
                    0.0, decision.unserved_pct - counterfactual.unserved_pct
                )
            else:
                decision = self.scheduler.assign(
                    views, self.workload.total_demand_pct(time_s)
                )

            for i in np.nonzero(time_s >= next_poll - _POLL_EPS_S)[0]:
                controller = self.controllers[i]
                max_c = float(max_junction_c[i])
                avg_c = float(avg_junction_c[i])
                if apply_faults and plan.has_sensor_faults:
                    max_c, avg_c = plan.transform_observation(
                        int(i), time_s, max_c, avg_c
                    )
                # A dropped-out channel (NaN reading) makes the BMC
                # hold the last fan and p-state commands; the poll
                # clock still advances.
                if not (isnan(max_c) or isnan(avg_c)):
                    observation = ControllerObservation(
                        time_s=time_s,
                        max_cpu_temperature_c=max_c,
                        avg_cpu_temperature_c=avg_c,
                        utilization_pct=float(executed[i]),
                        current_rpm_command=float(rpm_command[i]),
                    )
                    wanted = controller.decide(observation)
                    if wanted is not None and wanted != rpm_command[i]:
                        rpm_command[i] = self._validated_command(i, wanted)
                    # Coordinated controllers additionally command a
                    # p-state, polled on the same cadence and in the same
                    # order as the single-server runner.
                    decide_pstate = getattr(controller, "decide_pstate", None)
                    if decide_pstate is not None:
                        wanted_pstate = decide_pstate(observation)
                        if wanted_pstate is not None:
                            physics.set_pstate(
                                int(i),
                                self._validated_pstate(
                                    int(i), int(wanted_pstate)
                                ),
                            )
                # Advance past the current time: with dt_s larger than
                # the poll interval a single increment would let the
                # poll clock fall unboundedly behind the simulation.
                while time_s >= next_poll[i] - _POLL_EPS_S:
                    next_poll[i] += controller.poll_interval_s

            # degraded fan banks cap the achievable speed (see the
            # kernel loop)
            if apply_faults and plan.has_fan_faults:
                actuated_rpm = np.minimum(rpm_command, plan.rpm_cap[tick])
            else:
                actuated_rpm = rpm_command

            demand = decision.allocations_pct
            state = physics.step(dt_s, demand, actuated_rpm, inlet, offsets)
            physics.check_critical(self.trip_on_critical)

            max_junction_c = state.max_junction_c
            avg_junction_c = state.avg_junction_c
            leak_w = state.leakage_w
            leak_slope = state.leakage_slope_w_per_c
            executed = state.executed_pct
            pstate_now = state.pstate_index
            exhaust_rise = exhaust_temperature_rise_c(
                state.total_power_w, state.airflow_cfm
            )

            trace_power[tick] = state.total_power_w
            trace_fan[tick] = state.fan_power_w
            trace_junction[tick] = state.max_junction_c
            trace_util[tick] = executed
            trace_inlet[tick] = inlet
            trace_rpm[tick] = state.mean_rpm
            trace_unserved[tick] = decision.unserved_pct
            trace_pstate[tick] = state.pstate_index
            trace_deficit[tick] = state.work_deficit_pct
            if dynamic_demand:
                self.workload.record_executed(
                    time_s, float(executed.sum()), dt_s
                )
            time_s += dt_s

            if capture is not None and (
                tick + 1 - flush_start >= capture.chunk_ticks
                or tick + 1 == steps
            ):
                sl = slice(flush_start, tick + 1)
                capture.flush(
                    times_rec[sl],
                    {k: v[sl] for k, v in capture_rows.items() if v.ndim == 2},
                    unserved_pct=trace_unserved[sl],
                )
                flush_start = tick + 1

            if (
                ckpt_cfg is not None
                and tick + 1 < steps
                and (
                    (tick + 1) % ckpt_every == 0
                    or self._checkpoint_requested
                    or self._stop_requested
                )
            ):
                state = {
                    "rpm_command": rpm_command.copy(),
                    "next_poll": next_poll.copy(),
                    "executed": np.array(executed),
                    "pstate_now": np.array(pstate_now),
                    "exhaust_rise": np.array(exhaust_rise),
                    "max_junction": np.array(max_junction_c),
                    "avg_junction": np.array(avg_junction_c),
                    "leak_w": np.array(leak_w),
                    "leak_slope": np.array(leak_slope),
                    "time_s": np.float64(time_s),
                }
                extra_pickles = []
                if self.backend == "reference":
                    extra_pickles.append(("backend", physics))
                else:
                    state.update(
                        {
                            f"kernel_{key}": value
                            for key, value in physics.state_arrays().items()
                        }
                    )
                self._write_run_checkpoint(
                    "fleet-legacy",
                    tick + 1,
                    dt_s,
                    steps,
                    plan,
                    trace,
                    state,
                    extra_pickles,
                )
            if self._stop_requested and tick + 1 < steps:
                raise RunInterrupted(
                    f"fleet run stopped at tick {tick + 1}/{steps}",
                    self.last_checkpoint_path,
                )

        return self._result_from_traces(dt_s, steps, trace, plan)

"""Fleet-level aggregation of the per-server simulation traces.

The single-server reproduction reports Table-I style metrics per run;
at fleet scale the interesting quantities are aggregates — total and
fan energy, the coincident peak (what the feed breaker sees), the
hot-spot temperature anywhere in the room, SLA violations from demand
that found no capacity — plus the same breakdown per rack, which is
what a data-center operator actually inspects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.fleet.topology import Fleet
from repro.units import joules_to_kwh, kwh_to_joules

#: Unserved demand below this (single-server %) does not count as a
#: violation tick — it is scheduler round-off, not lost work.
SLA_TICK_TOLERANCE_PCT = 1e-9


@dataclass(frozen=True)
class RackMetrics:
    """Aggregates for one rack over a fleet run."""

    name: str
    server_count: int
    energy_kwh: float
    fan_energy_kwh: float
    peak_power_w: float
    hot_spot_c: float
    mean_utilization_pct: float
    mean_inlet_c: float
    #: Demanded-but-unexecuted work from DVFS saturation, %·s.
    dvfs_deficit_pct_s: float = 0.0


@dataclass(frozen=True)
class FleetMetrics:
    """Whole-fleet aggregates plus the per-rack breakdown."""

    server_count: int
    duration_s: float
    energy_kwh: float
    fan_energy_kwh: float
    #: Coincident fleet peak — max over time of the summed power, W.
    peak_power_w: float
    #: Hottest junction anywhere in the fleet over the run, °C.
    hot_spot_c: float
    mean_utilization_pct: float
    #: Server-weighted mean inlet temperature over the run, °C.
    mean_inlet_c: float
    #: Integral of unserved demand, single-server %·s.
    sla_unserved_pct_s: float
    #: Number of ticks with any unserved demand or DVFS deficit.
    sla_violation_ticks: int
    racks: Tuple[RackMetrics, ...]
    #: Demanded-but-unexecuted work from DVFS saturation, %·s (zero
    #: unless per-server controllers parked too-deep p-states).
    dvfs_deficit_pct_s: float = 0.0
    #: Wall time during which at least one fault event was active, s.
    fault_time_s: float = 0.0
    #: Summed per-server faulted time (server·s): two servers degraded
    #: for a minute each count 120 s here but 60 s above.
    fault_server_time_s: float = 0.0
    #: Ticks with at least one active fault event.
    fault_ticks: int = 0
    #: Work respilled off outage servers onto survivors, %·s — the
    #: counterfactual allocations the down servers would have carried.
    respilled_pct_s: float = 0.0
    #: Unserved demand attributable to faults, %·s: actual unserved
    #: minus the all-servers-up counterfactual's.
    fault_sla_pct_s: float = 0.0

    @property
    def sla_total_pct_s(self) -> float:
        """All lost work: scheduler-unserved demand plus DVFS deficit.

        This is the fleet-level SLA number a coordinated fan+DVFS
        policy must keep at zero — demand can be lost both *before*
        placement (no capacity anywhere) and *after* it (a server's
        sockets too slow for its allocation).
        """
        return self.sla_unserved_pct_s + self.dvfs_deficit_pct_s

    @property
    def avg_power_w(self) -> float:
        """Time-averaged whole-fleet power."""
        if self.duration_s <= 0:
            return 0.0
        return kwh_to_joules(self.energy_kwh) / self.duration_s


def compute_fleet_metrics(
    fleet: Fleet,
    dt_s: float,
    total_power_w: np.ndarray,
    fan_power_w: np.ndarray,
    max_junction_c: np.ndarray,
    utilization_pct: np.ndarray,
    inlet_c: np.ndarray,
    unserved_pct: np.ndarray,
    work_deficit_pct: Optional[np.ndarray] = None,
    fault_active: Optional[np.ndarray] = None,
    respilled_pct: Optional[np.ndarray] = None,
    fault_unserved_pct: Optional[np.ndarray] = None,
) -> FleetMetrics:
    """Aggregate per-tick × per-server traces into :class:`FleetMetrics`.

    All 2-D arrays are shaped ``(ticks, servers)`` with servers in the
    fleet's flat (rack-major) index order; energies use the same
    rectangular ``P·dt`` accumulation as the engine.
    ``utilization_pct`` is *executed* utilization and
    ``work_deficit_pct`` the per-tick DVFS deficit rate in nominal
    percent (omitted / ``None`` means no DVFS actuation: zero deficit).
    The degraded-mode inputs (see :mod:`repro.fleet.faults`) are
    ``fault_active`` (per-tick per-server fault mask),
    ``respilled_pct`` and ``fault_unserved_pct`` (per-tick, in
    single-server percent); omitted means a fault-free run.
    """
    if dt_s <= 0:
        raise ValueError("dt_s must be positive")
    power = np.asarray(total_power_w, dtype=float)
    if power.ndim != 2 or power.shape[1] != fleet.server_count:
        raise ValueError(
            f"expected (ticks, {fleet.server_count}) traces, "
            f"got shape {power.shape}"
        )
    ticks = power.shape[0]
    fan = np.asarray(fan_power_w, dtype=float)
    junctions = np.asarray(max_junction_c, dtype=float)
    util = np.asarray(utilization_pct, dtype=float)
    inlet = np.asarray(inlet_c, dtype=float)
    unserved = np.asarray(unserved_pct, dtype=float)
    if work_deficit_pct is None:
        deficit = np.zeros_like(power)
    else:
        deficit = np.asarray(work_deficit_pct, dtype=float)
    for name, arr in (
        ("fan_power_w", fan),
        ("max_junction_c", junctions),
        ("utilization_pct", util),
        ("inlet_c", inlet),
        ("work_deficit_pct", deficit),
    ):
        if arr.shape != power.shape:
            raise ValueError(f"{name} shape {arr.shape} != {power.shape}")
    if unserved.shape != (ticks,):
        raise ValueError(
            f"unserved_pct must be one value per tick ({ticks},), "
            f"got shape {unserved.shape}"
        )

    racks = []
    for rack, sl in zip(fleet.racks, fleet.rack_slices()):
        racks.append(
            RackMetrics(
                name=rack.name,
                server_count=rack.server_count,
                energy_kwh=joules_to_kwh(float(power[:, sl].sum()) * dt_s),
                fan_energy_kwh=joules_to_kwh(float(fan[:, sl].sum()) * dt_s),
                peak_power_w=float(power[:, sl].sum(axis=1).max()),
                hot_spot_c=float(junctions[:, sl].max()),
                mean_utilization_pct=float(util[:, sl].mean()),
                mean_inlet_c=float(inlet[:, sl].mean()),
                dvfs_deficit_pct_s=float(deficit[:, sl].sum()) * dt_s,
            )
        )
    deficit_per_tick = deficit.sum(axis=1)
    violation_ticks = (unserved > SLA_TICK_TOLERANCE_PCT) | (
        deficit_per_tick > SLA_TICK_TOLERANCE_PCT
    )

    fault_time_s = 0.0
    fault_server_time_s = 0.0
    fault_ticks = 0
    if fault_active is not None:
        active = np.asarray(fault_active, dtype=bool)
        if active.shape != power.shape:
            raise ValueError(
                f"fault_active shape {active.shape} != {power.shape}"
            )
        fault_ticks = int(active.any(axis=1).sum())
        fault_time_s = fault_ticks * dt_s
        fault_server_time_s = float(active.sum()) * dt_s
    respilled_pct_s = 0.0
    if respilled_pct is not None:
        respilled = np.asarray(respilled_pct, dtype=float)
        if respilled.shape != (ticks,):
            raise ValueError(
                f"respilled_pct must be one value per tick ({ticks},), "
                f"got shape {respilled.shape}"
            )
        respilled_pct_s = float(respilled.sum()) * dt_s
    fault_sla_pct_s = 0.0
    if fault_unserved_pct is not None:
        fault_unserved = np.asarray(fault_unserved_pct, dtype=float)
        if fault_unserved.shape != (ticks,):
            raise ValueError(
                f"fault_unserved_pct must be one value per tick ({ticks},), "
                f"got shape {fault_unserved.shape}"
            )
        fault_sla_pct_s = float(fault_unserved.sum()) * dt_s

    return FleetMetrics(
        server_count=fleet.server_count,
        duration_s=ticks * dt_s,
        energy_kwh=joules_to_kwh(float(power.sum()) * dt_s),
        fan_energy_kwh=joules_to_kwh(float(fan.sum()) * dt_s),
        peak_power_w=float(power.sum(axis=1).max()),
        hot_spot_c=float(junctions.max()),
        mean_utilization_pct=float(util.mean()),
        mean_inlet_c=float(inlet.mean()),
        sla_unserved_pct_s=float(unserved.sum()) * dt_s,
        sla_violation_ticks=int(np.sum(violation_ticks)),
        racks=tuple(racks),
        dvfs_deficit_pct_s=float(deficit.sum()) * dt_s,
        fault_time_s=fault_time_s,
        fault_server_time_s=fault_server_time_s,
        fault_ticks=fault_ticks,
        respilled_pct_s=respilled_pct_s,
        fault_sla_pct_s=fault_sla_pct_s,
    )

"""Fleet simulation: rack-scale topology, scheduling, and batching.

Turns the single-server reproduction into a data-center-scale
experiment platform, the extension the paper's conclusion proposes:

* :mod:`repro.fleet.topology` — racks, fleets, CRAC supplies, and the
  heat-recirculation coupling between server exhausts and inlets,
* :mod:`repro.fleet.scheduler` — pluggable job-placement policies
  (round-robin, least-utilized, coolest-first, leakage-aware,
  dvfs-aware) splitting an aggregate demand trace across the fleet,
* :mod:`repro.fleet.engine` — the vectorized lock-step engine stepping
  N servers per tick with numpy-batched thermal/power/leakage math,
  each server under its own fan (and, for coordinated controllers,
  DVFS p-state) controller,
* :mod:`repro.fleet.metrics` — fleet energy, coincident peak power,
  hot-spot temperature, SLA violations (scheduler-unserved demand plus
  DVFS work deficit), degraded-mode aggregates, and per-rack
  breakdowns,
* :mod:`repro.fleet.faults` — declarative fleet-scale fault injection
  (sensor faults, fan degradation, server outages, CRAC excursions)
  compiled to per-tick masks for every engine backend.
"""

from repro.fleet.engine import FleetEngine, FleetResult
from repro.fleet.faults import (
    SENSOR_FAULT_MODES,
    CracExcursionEvent,
    FanDegradationEvent,
    FaultSchedule,
    FleetFaultPlan,
    SensorFaultEvent,
    ServerOutageEvent,
)
from repro.fleet.metrics import (
    FleetMetrics,
    RackMetrics,
    compute_fleet_metrics,
)
from repro.fleet.scheduler import (
    PLACEMENT_POLICIES,
    CoolestFirstPolicy,
    DvfsAwarePolicy,
    FleetLoadArrays,
    FleetScheduler,
    FleetWorkload,
    LeakageAwarePolicy,
    LeastUtilizedPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    SchedulingDecision,
    ServerLoadView,
)
from repro.fleet.topology import (
    Fleet,
    Rack,
    RecirculationAmbient,
    build_recirculation_matrix,
    build_uniform_fleet,
    exhaust_temperature_rise_c,
)

__all__ = [
    "FleetEngine",
    "FleetResult",
    "SENSOR_FAULT_MODES",
    "CracExcursionEvent",
    "FanDegradationEvent",
    "FaultSchedule",
    "FleetFaultPlan",
    "SensorFaultEvent",
    "ServerOutageEvent",
    "FleetMetrics",
    "RackMetrics",
    "compute_fleet_metrics",
    "PLACEMENT_POLICIES",
    "CoolestFirstPolicy",
    "DvfsAwarePolicy",
    "FleetLoadArrays",
    "FleetScheduler",
    "FleetWorkload",
    "LeakageAwarePolicy",
    "LeastUtilizedPolicy",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "SchedulingDecision",
    "ServerLoadView",
    "Fleet",
    "Rack",
    "RecirculationAmbient",
    "build_recirculation_matrix",
    "build_uniform_fleet",
    "exhaust_temperature_rise_c",
]

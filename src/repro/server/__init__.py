"""Enterprise-server simulation substrate.

This package replaces the paper's physical testbed (a 2-socket SPARC T3
enterprise server with externally powered fans) with a calibrated
physics model:

* :mod:`repro.server.specs` — hardware description dataclasses and the
  default SPARC-T3-class server specification,
* :mod:`repro.server.fan` — cubic fan power law, airflow, slew limits,
* :mod:`repro.server.power` — active / leakage / memory / board power,
* :mod:`repro.server.thermal` — RC thermal network with fan-speed
  dependent convective resistances,
* :mod:`repro.server.sensors` — noisy, quantized sensor channels,
* :mod:`repro.server.ambient` — machine-room ambient model,
* :mod:`repro.server.server` — the composed closed simulator.
"""

from repro.server.ambient import AmbientModel, ConstantAmbient, SinusoidalAmbient
from repro.server.dvfs import DvfsSpec, PState, default_dvfs_ladder
from repro.server.fan import FanBank, FanModel, fan_speed_ladder
from repro.server.faults import (
    DriftFault,
    DropoutFault,
    FaultableSensor,
    OffsetFault,
    SensorFault,
    SpikeFault,
    StuckFault,
)
from repro.server.power import PowerBreakdown, PowerModel
from repro.server.sensors import Sensor, SensorSpec
from repro.server.server import ServerSimulator, ServerState
from repro.server.specs import (
    CpuSocketSpec,
    FanSpec,
    MemorySpec,
    SensorNoiseSpec,
    ServerSpec,
    default_server_spec,
)
from repro.server.thermal import ThermalNetwork, ThermalState

__all__ = [
    "AmbientModel",
    "ConstantAmbient",
    "SinusoidalAmbient",
    "DvfsSpec",
    "PState",
    "default_dvfs_ladder",
    "DriftFault",
    "DropoutFault",
    "FaultableSensor",
    "OffsetFault",
    "SensorFault",
    "SpikeFault",
    "StuckFault",
    "FanBank",
    "FanModel",
    "fan_speed_ladder",
    "PowerBreakdown",
    "PowerModel",
    "Sensor",
    "SensorSpec",
    "ServerSimulator",
    "ServerState",
    "CpuSocketSpec",
    "FanSpec",
    "MemorySpec",
    "SensorNoiseSpec",
    "ServerSpec",
    "default_server_spec",
    "ThermalNetwork",
    "ThermalState",
]

"""Sensor models: Gaussian noise plus quantization.

The controllers in the paper act on *measured* values (CSTH channels),
not ground truth.  Realistic measurement noise matters in two places:

* the leakage model fit quality (the paper reports 2.243 W RMS error —
  essentially the sensor noise floor), and
* the bang-bang controller, whose thresholds are crossed earlier or
  later depending on sensor jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import validate_non_negative


@dataclass(frozen=True)
class SensorSpec:
    """Noise description of one sensor channel."""

    sigma: float = 0.0
    quantum: float = 0.0

    def __post_init__(self) -> None:
        validate_non_negative(self.sigma, "sigma")
        validate_non_negative(self.quantum, "quantum")


class Sensor:
    """Applies a :class:`SensorSpec` to ground-truth values."""

    def __init__(self, spec: SensorSpec, rng: np.random.Generator):
        self.spec = spec
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The noise stream (exposed so checkpoints can save its state)."""
        return self._rng

    def read(self, true_value: float) -> float:
        """One noisy, quantized observation of *true_value*."""
        value = float(true_value)
        if self.spec.sigma > 0.0:
            value += float(self._rng.normal(0.0, self.spec.sigma))
        if self.spec.quantum > 0.0:
            value = round(value / self.spec.quantum) * self.spec.quantum
        return value

    def read_many(self, true_values) -> tuple:
        """Observe a sequence of ground-truth values."""
        return tuple(self.read(v) for v in true_values)

    # ------------------------------------------------------------------
    # batched interface (execution kernel)
    # ------------------------------------------------------------------
    def sample_noise(self, shape) -> np.ndarray:
        """Pre-draw Gaussian noise for *shape* future readings.

        ``Generator.normal`` fills arrays in C order from the same bit
        stream scalar draws consume, so ``sample_noise((k, m))`` yields
        exactly the values ``k * m`` sequential :meth:`read` calls
        would have added — the property that lets the execution kernel
        draw a whole chunk's sensor noise up front without perturbing
        seeded reproducibility.  Draws nothing (all zeros) when the
        channel is noise-free, matching the scalar path.
        """
        if self.spec.sigma > 0.0:
            return self._rng.normal(0.0, self.spec.sigma, size=shape)
        return np.zeros(shape)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Apply the channel's quantization to noisy *values*.

        ``np.round`` and builtin ``round`` both round half to even, so
        this matches :meth:`read` bit for bit.
        """
        if self.spec.quantum > 0.0:
            return np.round(values / self.spec.quantum) * self.spec.quantum
        return values

    def read_array(self, true_values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read_many`: one draw per element, C order."""
        values = np.asarray(true_values, dtype=float)
        if self.spec.sigma > 0.0:
            values = values + self.sample_noise(values.shape)
        return self.quantize(values)

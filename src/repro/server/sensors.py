"""Sensor models: Gaussian noise plus quantization.

The controllers in the paper act on *measured* values (CSTH channels),
not ground truth.  Realistic measurement noise matters in two places:

* the leakage model fit quality (the paper reports 2.243 W RMS error —
  essentially the sensor noise floor), and
* the bang-bang controller, whose thresholds are crossed earlier or
  later depending on sensor jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import validate_non_negative


@dataclass(frozen=True)
class SensorSpec:
    """Noise description of one sensor channel."""

    sigma: float = 0.0
    quantum: float = 0.0

    def __post_init__(self) -> None:
        validate_non_negative(self.sigma, "sigma")
        validate_non_negative(self.quantum, "quantum")


class Sensor:
    """Applies a :class:`SensorSpec` to ground-truth values."""

    def __init__(self, spec: SensorSpec, rng: np.random.Generator):
        self.spec = spec
        self._rng = rng

    def read(self, true_value: float) -> float:
        """One noisy, quantized observation of *true_value*."""
        value = float(true_value)
        if self.spec.sigma > 0.0:
            value += float(self._rng.normal(0.0, self.spec.sigma))
        if self.spec.quantum > 0.0:
            value = round(value / self.spec.quantum) * self.spec.quantum
        return value

    def read_many(self, true_values) -> tuple:
        """Observe a sequence of ground-truth values."""
        return tuple(self.read(v) for v in true_values)

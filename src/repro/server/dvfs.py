"""Dynamic voltage and frequency scaling (DVFS) of the CPU sockets.

The paper's related work (Shin et al., ICCAD'09 — its ref. [5])
combines DVFS with fan control, and the paper's own conclusion points
to richer energy-performance runtime control as future work.  This
module adds p-states to the simulated server so that extension can be
studied:

* dynamic power scales with ``f · V^2`` relative to the nominal state,
* static (idle-floor) power scales with ``V^2``,
* running below nominal frequency stretches the same demanded work
  over more busy time: ``U_executed = U_demand * f_nom / f``, saturating
  at 100% (saturation means lost throughput, which the simulator
  accounts as a work deficit).

Leakage is kept on the paper's temperature-only model: its voltage
dependence is second-order over the narrow ladder used here and the
paper's fitted form has no voltage term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.units import validate_utilization_pct


@dataclass(frozen=True)
class PState:
    """One operating point of the voltage/frequency ladder."""

    frequency_ghz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if self.voltage_v <= 0:
            raise ValueError("voltage_v must be positive")


@dataclass(frozen=True)
class DvfsSpec:
    """The p-state ladder, ordered from nominal (fastest) downward."""

    pstates: Tuple[PState, ...] = field(
        default_factory=lambda: (PState(frequency_ghz=1.65, voltage_v=1.0),)
    )

    def __post_init__(self) -> None:
        if not self.pstates:
            raise ValueError("need at least one p-state")
        freqs = [p.frequency_ghz for p in self.pstates]
        if any(b >= a for a, b in zip(freqs[:-1], freqs[1:])):
            raise ValueError("p-states must be strictly descending in frequency")
        volts = [p.voltage_v for p in self.pstates]
        if any(b > a for a, b in zip(volts[:-1], volts[1:])):
            raise ValueError("voltage must be non-increasing down the ladder")

    @property
    def nominal(self) -> PState:
        """The fastest (index 0) state."""
        return self.pstates[0]

    def __len__(self) -> int:
        return len(self.pstates)

    def state(self, index: int) -> PState:
        """Look up a p-state by ladder index."""
        if not 0 <= index < len(self.pstates):
            raise IndexError(f"p-state index {index} out of range")
        return self.pstates[index]

    # ------------------------------------------------------------------
    # scaling laws
    # ------------------------------------------------------------------
    def frequency_ratio(self, index: int) -> float:
        """``f / f_nom`` of p-state *index*."""
        return self.state(index).frequency_ghz / self.nominal.frequency_ghz

    def voltage_ratio(self, index: int) -> float:
        """``V / V_nom`` of p-state *index*."""
        return self.state(index).voltage_v / self.nominal.voltage_v

    def dynamic_power_scale(self, index: int) -> float:
        """Per-executed-percent dynamic power scale, ``(f/fn)(V/Vn)^2``."""
        return self.frequency_ratio(index) * self.voltage_ratio(index) ** 2

    def static_power_scale(self, index: int) -> float:
        """Idle-floor power scale, ``(V/Vn)^2``."""
        return self.voltage_ratio(index) ** 2

    def executed_utilization_pct(self, demand_pct: float, index: int) -> float:
        """Busy fraction when *demand_pct* of nominal work runs at state
        *index* — saturates at 100%."""
        validate_utilization_pct(demand_pct, "demand_pct")
        stretched = demand_pct / self.frequency_ratio(index)
        return min(100.0, stretched)

    def work_deficit_pct(self, demand_pct: float, index: int) -> float:
        """Demanded-but-unexecuted work at state *index*, in nominal
        utilization percent (0 when the state keeps up)."""
        validate_utilization_pct(demand_pct, "demand_pct")
        stretched = demand_pct / self.frequency_ratio(index)
        if stretched <= 100.0:
            return 0.0
        return (stretched - 100.0) * self.frequency_ratio(index)

    def stretch_chunk(self, demand_pct, index: int):
        """Vectorized executed utilization and deficit rate for a chunk.

        Returns ``(executed_pct, deficit_pct)`` arrays for a whole
        chunk of demanded utilizations at p-state *index*.  Every
        elementwise operation mirrors
        :meth:`executed_utilization_pct` / :meth:`work_deficit_pct`
        (IEEE add/mul/div/min are bit-identical between numpy and
        scalar Python), so chunked runs reproduce tick-by-tick traces
        exactly.
        """
        demand = np.asarray(demand_pct, dtype=float)
        ratio = self.frequency_ratio(index)
        stretched = demand / ratio
        executed = np.minimum(100.0, stretched)
        deficit = np.where(stretched <= 100.0, 0.0, (stretched - 100.0) * ratio)
        return executed, deficit

    def slowest_state_sustaining(
        self, demand_pct: float, headroom_pct: float = 90.0
    ) -> int:
        """Deepest p-state whose executed utilization stays below
        *headroom_pct* (nominal state if none qualifies)."""
        validate_utilization_pct(demand_pct, "demand_pct")
        if not 0.0 < headroom_pct <= 100.0:
            raise ValueError("headroom_pct must be in (0, 100]")
        best = 0
        for index in range(len(self.pstates)):
            if self.executed_utilization_pct(demand_pct, index) <= headroom_pct:
                best = index
            else:
                break
        return best


def default_dvfs_ladder() -> DvfsSpec:
    """A four-step ladder for the T3-class part (nominal 1.65 GHz)."""
    return DvfsSpec(
        pstates=(
            PState(frequency_ghz=1.65, voltage_v=1.00),
            PState(frequency_ghz=1.40, voltage_v=0.93),
            PState(frequency_ghz=1.20, voltage_v=0.87),
            PState(frequency_ghz=1.00, voltage_v=0.80),
        )
    )

"""Sensor fault injection.

CSTH exists for electronic prognostics — detecting degrading sensors
and components from telemetry (Gross et al., MFPT 2006, the paper's
ref. [3]).  Fan controllers consume the same sensor channels, so a
stuck or drifting thermal sensor directly corrupts control decisions:
a stuck-low sensor can blind the bang-bang controller to overheating.

This module injects the classic failure modes into any sensor channel:

* ``StuckFault`` — the reading freezes at a value,
* ``DriftFault`` — a slow additive ramp (degrading sensor),
* ``OffsetFault`` — a fixed calibration offset,
* ``SpikeFault`` — intermittent large excursions,
* ``DropoutFault`` — the channel goes silent (NaN readings).

Faults are time-scheduled so experiments can inject mid-run.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.units import validate_non_negative


class SensorFault(ABC):
    """A transformation applied to a sensor reading while active."""

    def __init__(self, start_s: float = 0.0, end_s: float = math.inf):
        validate_non_negative(start_s, "start_s")
        if end_s <= start_s:
            raise ValueError("end_s must be after start_s")
        self.start_s = start_s
        self.end_s = end_s

    def active(self, time_s: float) -> bool:
        """Whether the fault is in effect at *time_s*."""
        return self.start_s <= time_s < self.end_s

    @abstractmethod
    def apply(self, time_s: float, reading: float) -> float:
        """Transform *reading* (called only while active)."""


class StuckFault(SensorFault):
    """The reading freezes at ``stuck_value``."""

    def __init__(self, stuck_value: float, start_s: float = 0.0, end_s: float = math.inf):
        super().__init__(start_s, end_s)
        self.stuck_value = float(stuck_value)

    def apply(self, time_s: float, reading: float) -> float:
        return self.stuck_value


class OffsetFault(SensorFault):
    """A fixed calibration offset is added to every reading."""

    def __init__(self, offset: float, start_s: float = 0.0, end_s: float = math.inf):
        super().__init__(start_s, end_s)
        self.offset = float(offset)

    def apply(self, time_s: float, reading: float) -> float:
        return reading + self.offset


class DriftFault(SensorFault):
    """An additive ramp growing at ``rate_per_s`` from fault onset."""

    def __init__(
        self, rate_per_s: float, start_s: float = 0.0, end_s: float = math.inf
    ):
        super().__init__(start_s, end_s)
        self.rate_per_s = float(rate_per_s)

    def apply(self, time_s: float, reading: float) -> float:
        return reading + self.rate_per_s * (time_s - self.start_s)


class SpikeFault(SensorFault):
    """Random large excursions with a given per-reading probability."""

    def __init__(
        self,
        magnitude: float,
        probability: float = 0.05,
        seed: int = 0,
        start_s: float = 0.0,
        end_s: float = math.inf,
    ):
        super().__init__(start_s, end_s)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.magnitude = float(magnitude)
        self.probability = probability
        self._rng = np.random.default_rng(seed)

    def apply(self, time_s: float, reading: float) -> float:
        if self._rng.random() < self.probability:
            sign = 1.0 if self._rng.random() < 0.5 else -1.0
            return reading + sign * self.magnitude
        return reading


class DropoutFault(SensorFault):
    """The channel returns NaN (no data) while active."""

    def apply(self, time_s: float, reading: float) -> float:
        return math.nan


class FaultableSensor:
    """Wraps a reading source with a schedule of injected faults.

    Faults compose in registration order (e.g. an offset on top of a
    drift); a stuck or dropout fault naturally dominates anything
    applied before it.
    """

    def __init__(self):
        self._faults: list[SensorFault] = []

    def inject(self, fault: SensorFault) -> None:
        """Register one fault."""
        self._faults.append(fault)

    def clear(self) -> None:
        """Remove all faults (repair)."""
        self._faults.clear()

    @property
    def fault_count(self) -> int:
        """Number of registered faults."""
        return len(self._faults)

    def transform(self, time_s: float, reading: float) -> float:
        """Apply every active fault to *reading*."""
        value = reading
        for fault in self._faults:
            if fault.active(time_s):
                value = fault.apply(time_s, value)
        return value

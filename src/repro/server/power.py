"""Ground-truth power model of the simulated server.

The decomposition mirrors the paper's Eqn. (1):

``P_total = P_active(U) + P_leak(T) + P_fan(rpm)``

with the additional always-on terms (board/PSU overhead, DIMM power,
per-socket idle floors) that the paper's fitted constant ``C`` absorbs.
Leakage follows the paper's Eqn. (2) per socket:
``P_leak = C + k2 * exp(k3 * T_junction)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.server.specs import CpuSocketSpec, ServerSpec
from repro.units import validate_temperature_c, validate_utilization_pct

#: Leakage is evaluated at min(T, this) to keep the exponential finite
#: during thermal-runaway scenarios (exp leakage has positive feedback:
#: past the point where its slope exceeds 1/R_thermal the temperature
#: diverges; silicon would long have shut down, so the clamp only
#: affects simulations run with the critical trip disabled).
LEAKAGE_EVAL_MAX_C = 150.0


def scalar_leakage_w(
    leak_const_w: float,
    leak_k2_w: float,
    leak_k3_per_c: float,
    t_junction_c: float,
) -> float:
    """Eqn. (2) leakage for one socket at one temperature, via
    :func:`math.exp`.

    This is the scalar arithmetic path the single-server trace contract
    is pinned to: ``math.exp`` and ``np.exp`` are *not* bit-identical
    on all platforms, so the execution kernel's N=1 substep loop (which
    inlines this exact expression) and :class:`PowerModel` must share
    it rather than the vectorized form below.
    """
    t_eval = min(float(t_junction_c), LEAKAGE_EVAL_MAX_C)
    return leak_const_w + leak_k2_w * math.exp(leak_k3_per_c * t_eval)


def leakage_power_w(
    leak_const_w,
    leak_k2_w,
    leak_k3_per_c,
    t_junction_c,
):
    """Eqn. (2) leakage, array-friendly.

    Every argument may be a scalar or a broadcastable ndarray, so the
    fleet engine can evaluate whole racks of sockets in one call.  The
    scalar branch avoids numpy's per-call scalar overhead — this sits
    inside the thermal substep loop.
    """
    if all(
        isinstance(arg, (int, float))
        for arg in (leak_const_w, leak_k2_w, leak_k3_per_c, t_junction_c)
    ):
        return scalar_leakage_w(
            leak_const_w, leak_k2_w, leak_k3_per_c, t_junction_c
        )
    t_eval = np.minimum(t_junction_c, LEAKAGE_EVAL_MAX_C)
    return leak_const_w + leak_k2_w * np.exp(leak_k3_per_c * t_eval)


def leakage_slope_w_per_c(
    leak_k2_w,
    leak_k3_per_c,
    t_junction_c,
):
    """Marginal leakage cost ``dP_leak/dT_j`` of Eqn. (2), W/°C.

    Array-friendly like :func:`leakage_power_w`; evaluated at the
    clamped temperature so both stay consistent.  The fleet's
    leakage-aware placement ranks servers by this slope.
    """
    t_eval = np.minimum(t_junction_c, LEAKAGE_EVAL_MAX_C)
    return leak_k2_w * leak_k3_per_c * np.exp(leak_k3_per_c * t_eval)


def active_power_w(
    p_idle_w,
    k_active_w_per_pct,
    utilization_pct,
    static_scale=1.0,
    dynamic_scale=1.0,
):
    """Active (idle floor + dynamic) power, array-friendly.

    The scales are the p-state ``V^2`` / ``f·V^2`` factors; at the
    nominal state both are 1.
    """
    return (
        p_idle_w * static_scale
        + k_active_w_per_pct * utilization_pct * dynamic_scale
    )


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous power decomposition of the whole server, watts."""

    board_w: float
    memory_w: float
    cpu_active_w: float
    cpu_leakage_w: float
    fan_w: float

    @property
    def total_w(self) -> float:
        """Whole-server wall power."""
        return (
            self.board_w
            + self.memory_w
            + self.cpu_active_w
            + self.cpu_leakage_w
            + self.fan_w
        )

    @property
    def compute_w(self) -> float:
        """Power through the server PSU (everything except the fans,
        which the testbed powers externally)."""
        return self.total_w - self.fan_w


class PowerModel:
    """Evaluates the ground-truth power decomposition for a spec.

    The model carries one piece of mutable state: the current p-state
    index (always 0 — nominal — unless the spec defines a DVFS ladder
    and a controller commands a deeper state).  Utilization arguments
    are *executed* (busy-fraction) utilization; the simulator converts
    demanded work to executed utilization per the active p-state.
    """

    def __init__(self, spec: ServerSpec):
        self.spec = spec
        self._pstate_index = 0

    # ------------------------------------------------------------------
    # DVFS state
    # ------------------------------------------------------------------
    @property
    def pstate_index(self) -> int:
        """Currently active p-state (0 = nominal)."""
        return self._pstate_index

    def set_pstate(self, index: int) -> None:
        """Switch the sockets to p-state *index* (validated)."""
        self.spec.dvfs.state(index)  # raises IndexError if out of range
        self._pstate_index = index

    # ------------------------------------------------------------------
    # per-component terms
    # ------------------------------------------------------------------
    def socket_active_w(self, socket: CpuSocketSpec, utilization_pct: float) -> float:
        """Active (dynamic + idle-floor) power of one socket.

        At reduced p-states the idle floor scales with ``V^2`` and the
        per-percent dynamic slope with ``f * V^2``.
        """
        validate_utilization_pct(utilization_pct)
        dvfs = self.spec.dvfs
        return float(
            active_power_w(
                socket.p_idle_w,
                socket.k_active_w_per_pct,
                utilization_pct,
                static_scale=dvfs.static_power_scale(self._pstate_index),
                dynamic_scale=dvfs.dynamic_power_scale(self._pstate_index),
            )
        )

    def socket_leakage_w(self, socket: CpuSocketSpec, t_junction_c: float) -> float:
        """Leakage power of one socket at junction temperature ``T_j``."""
        validate_temperature_c(t_junction_c, "t_junction_c")
        return float(
            leakage_power_w(
                socket.leak_const_w,
                socket.leak_k2_w,
                socket.leak_k3_per_c,
                t_junction_c,
            )
        )

    def memory_w(self, utilization_pct: float) -> float:
        """DIMM-bank power as a function of CPU utilization."""
        validate_utilization_pct(utilization_pct)
        mem = self.spec.memory
        return mem.p_idle_w + mem.k_active_w_per_pct * utilization_pct

    def board_w(self) -> float:
        """Constant board / PSU-overhead / disk power."""
        return self.spec.board_power_w

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def breakdown(
        self,
        utilization_pct: float,
        junction_temps_c: Sequence[float],
        fan_power_w: float,
    ) -> PowerBreakdown:
        """Full-server power decomposition.

        Parameters
        ----------
        utilization_pct:
            Instantaneous CPU utilization, evenly spread across sockets
            (LoadGen guarantees even spreading).
        junction_temps_c:
            One junction temperature per socket, in spec order.
        fan_power_w:
            Aggregate fan-bank electrical power.
        """
        if len(junction_temps_c) != self.spec.socket_count:
            raise ValueError(
                f"expected {self.spec.socket_count} junction temperatures, "
                f"got {len(junction_temps_c)}"
            )
        active = sum(
            self.socket_active_w(socket, utilization_pct)
            for socket in self.spec.sockets
        )
        leakage = sum(
            self.socket_leakage_w(socket, t_j)
            for socket, t_j in zip(self.spec.sockets, junction_temps_c)
        )
        return PowerBreakdown(
            board_w=self.board_w(),
            memory_w=self.memory_w(utilization_pct),
            cpu_active_w=active,
            cpu_leakage_w=leakage,
            fan_w=fan_power_w,
        )

    def socket_heat_w(
        self, socket: CpuSocketSpec, utilization_pct: float, t_junction_c: float
    ) -> float:
        """Heat dissipated into one socket's junction node (active + leak)."""
        return self.socket_active_w(socket, utilization_pct) + self.socket_leakage_w(
            socket, t_junction_c
        )

    def core_voltage_v(self, utilization_pct: float) -> float:
        """Per-core supply voltage including p-state and loadline droop."""
        validate_utilization_pct(utilization_pct)
        nominal = self.spec.core_voltage_v * self.spec.dvfs.voltage_ratio(
            self._pstate_index
        )
        return nominal - self.spec.core_voltage_droop_v_per_pct * utilization_pct

    def per_core_current_a(
        self, utilization_pct: float, junction_temps_c: Sequence[float]
    ) -> Tuple[float, ...]:
        """Per-core current draw, derived from socket power and voltage.

        CSTH exposes per-core voltage/current channels; the simulator
        derives them by dividing each socket's power evenly among its
        cores at the drooped supply voltage.
        """
        voltage = self.core_voltage_v(utilization_pct)
        currents = []
        for socket, t_j in zip(self.spec.sockets, junction_temps_c):
            socket_power = self.socket_heat_w(socket, utilization_pct, t_j)
            per_core = socket_power / socket.core_count / voltage
            currents.extend([per_core] * socket.core_count)
        return tuple(currents)

    def static_idle_w(self) -> float:
        """Power that fan control cannot influence: board + idle DIMM +
        socket idle floors, *excluding* leakage and fan power.

        Table I's "net savings" subtract exactly this component (the
        paper: "we discard the idle server power as that part of the
        consumption is dependent on the server hardware configuration
        and cannot be influenced by the fan control").
        """
        return (
            self.spec.board_power_w
            + self.spec.memory.p_idle_w
            + sum(socket.p_idle_w for socket in self.spec.sockets)
        )

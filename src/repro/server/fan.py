"""Fan models: cubic power law, airflow, slew limiting, fan banks.

The testbed drives three *pairs* of fans from external Agilent E3644A
supplies, so each pair can be commanded independently.  All the paper's
experiments nevertheless command the same speed to all pairs; the bank
API supports both styles.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.server.specs import FanSpec
from repro.units import clamp, validate_non_negative


def uniform_bank_total(per_fan_value: float, fan_count: int) -> float:
    """Bank aggregate of *fan_count* identical per-fan values.

    Replicates the left-to-right ``sum()`` fold :class:`FanBank` uses
    for :meth:`FanBank.total_power_w` / :meth:`FanBank.total_airflow_cfm`
    (``0.0 + v + v + ...``), which is *not* bit-identical to
    ``fan_count * per_fan_value`` in floating point.  The single-server
    execution kernel uses this to reproduce the bank totals without
    instantiating per-fan objects.
    """
    total = 0.0
    for _ in range(fan_count):
        total += per_fan_value
    return total


def fan_speed_ladder(
    spec: FanSpec, step_rpm: float = 600.0
) -> Tuple[float, ...]:
    """Return the discrete RPM settings used by the paper's controllers.

    With the default spec this is ``(1800, 2400, 3000, 3600, 4200)`` —
    the five speeds characterized in §IV.
    """
    validate_non_negative(step_rpm, "step_rpm")
    if step_rpm == 0:
        raise ValueError("step_rpm must be positive")
    speeds: List[float] = []
    rpm = spec.rpm_min
    while rpm <= spec.rpm_max + 1e-9:
        speeds.append(round(rpm, 6))
        rpm += step_rpm
    return tuple(speeds)


class FanModel:
    """One fan: command tracking with slew limits, power, airflow."""

    def __init__(self, spec: FanSpec, initial_rpm: float | None = None):
        self.spec = spec
        if initial_rpm is None:
            initial_rpm = spec.rpm_min
        self._rpm = self._validated_rpm(initial_rpm)
        self._command_rpm = self._rpm

    def _validated_rpm(self, rpm: float) -> float:
        validate_non_negative(rpm, "rpm")
        if not self.spec.rpm_min <= rpm <= self.spec.rpm_max:
            raise ValueError(
                f"rpm {rpm} outside supported range "
                f"[{self.spec.rpm_min}, {self.spec.rpm_max}]"
            )
        return float(rpm)

    @property
    def rpm(self) -> float:
        """Current rotor speed."""
        return self._rpm

    @property
    def command_rpm(self) -> float:
        """Last commanded set point."""
        return self._command_rpm

    def set_command(self, rpm: float) -> None:
        """Command a new speed; the rotor slews toward it on `step`."""
        self._command_rpm = self._validated_rpm(rpm)

    def step(self, dt_s: float) -> None:
        """Advance rotor dynamics by ``dt_s`` seconds (slew-limited)."""
        validate_non_negative(dt_s, "dt_s")
        max_delta = self.spec.slew_rpm_per_s * dt_s
        delta = clamp(self._command_rpm - self._rpm, -max_delta, max_delta)
        self._rpm += delta

    def power_w(self, rpm: float | None = None) -> float:
        """Electrical power at *rpm* (defaults to the current speed)."""
        if rpm is None:
            rpm = self._rpm
        validate_non_negative(rpm, "rpm")
        ratio = rpm / self.spec.rpm_ref
        return self.spec.power_at_ref_w * ratio ** self.spec.power_exponent

    def airflow_cfm(self, rpm: float | None = None) -> float:
        """Volumetric airflow at *rpm* (defaults to the current speed)."""
        if rpm is None:
            rpm = self._rpm
        validate_non_negative(rpm, "rpm")
        return self.spec.cfm_at_ref * rpm / self.spec.rpm_ref


class FanBank:
    """The chassis fan complement: ``group_count`` independent pairs."""

    def __init__(
        self,
        spec: FanSpec,
        fan_count: int = 6,
        fans_per_group: int = 2,
        initial_rpm: float | None = None,
    ):
        if fan_count <= 0 or fans_per_group <= 0:
            raise ValueError("fan_count and fans_per_group must be positive")
        if fan_count % fans_per_group != 0:
            raise ValueError("fan_count must divide evenly into groups")
        self.spec = spec
        self.fans_per_group = fans_per_group
        self._fans = [
            FanModel(spec, initial_rpm=initial_rpm) for _ in range(fan_count)
        ]

    @property
    def fan_count(self) -> int:
        """Total number of fans."""
        return len(self._fans)

    @property
    def group_count(self) -> int:
        """Number of independently commanded fan groups."""
        return len(self._fans) // self.fans_per_group

    def _group_fans(self, group: int) -> Sequence[FanModel]:
        if not 0 <= group < self.group_count:
            raise IndexError(f"fan group {group} out of range")
        start = group * self.fans_per_group
        return self._fans[start : start + self.fans_per_group]

    def set_group_command(self, group: int, rpm: float) -> None:
        """Command one fan pair to *rpm*."""
        for fan in self._group_fans(group):
            fan.set_command(rpm)

    def set_all_commands(self, rpm: float) -> None:
        """Command every fan to *rpm* (the paper's usual configuration)."""
        for fan in self._fans:
            fan.set_command(rpm)

    def step(self, dt_s: float) -> None:
        """Advance all rotor dynamics by ``dt_s`` seconds."""
        for fan in self._fans:
            fan.step(dt_s)

    @property
    def rpms(self) -> Tuple[float, ...]:
        """Current speed of every fan."""
        return tuple(fan.rpm for fan in self._fans)

    @property
    def mean_rpm(self) -> float:
        """Average rotor speed across the bank."""
        return sum(self.rpms) / self.fan_count

    def total_power_w(self) -> float:
        """Aggregate electrical power of the bank at current speeds."""
        return sum(fan.power_w() for fan in self._fans)

    def total_airflow_cfm(self) -> float:
        """Aggregate chassis airflow at current speeds."""
        return sum(fan.airflow_cfm() for fan in self._fans)

    def power_at_uniform_rpm_w(self, rpm: float) -> float:
        """Bank power if every fan ran at *rpm* (steady-state planning)."""
        return self._fans[0].power_w(rpm) * self.fan_count

    def airflow_at_uniform_rpm_cfm(self, rpm: float) -> float:
        """Bank airflow if every fan ran at *rpm*."""
        return self._fans[0].airflow_cfm(rpm) * self.fan_count

"""The composed server simulator.

:class:`ServerSimulator` wires the fan bank, power model, thermal
network, ambient model and sensors together behind the same two
interfaces the physical testbed exposes:

* *actuation* — command fan speeds (the externally-powered fan pairs),
* *observation* — noisy sensor channels (CSTH: die temperatures, DIMM
  temperatures, per-core voltage/current, whole-system power).

Ground truth is also accessible for analysis and tests, clearly
separated from measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.server.ambient import AmbientModel, ConstantAmbient
from repro.server.fan import FanBank
from repro.server.faults import FaultableSensor, SensorFault
from repro.server.power import PowerBreakdown, PowerModel
from repro.server.sensors import Sensor, SensorSpec
from repro.server.specs import ServerSpec, default_server_spec
from repro.server.thermal import ThermalNetwork, ThermalState
from repro.units import validate_non_negative, validate_utilization_pct


class CriticalTemperatureError(RuntimeError):
    """Raised when a junction exceeds the hardware critical threshold."""


@dataclass(frozen=True)
class ServerState:
    """Ground-truth snapshot of the server after a simulation step."""

    time_s: float
    #: Executed (busy-fraction) utilization — equals the demanded
    #: utilization at the nominal p-state.
    utilization_pct: float
    fan_rpms: Tuple[float, ...]
    inlet_c: float
    power: PowerBreakdown
    thermal: ThermalState
    #: Active p-state (0 = nominal).
    pstate_index: int = 0
    #: Work demanded this step, in nominal-utilization percent.
    demand_pct: float = 0.0

    @property
    def mean_fan_rpm(self) -> float:
        """Average rotor speed across the bank."""
        return sum(self.fan_rpms) / len(self.fan_rpms)

    @property
    def max_junction_c(self) -> float:
        """Hottest CPU junction temperature."""
        return self.thermal.max_junction_c


class ServerSimulator:
    """Closed-loop simulation of the enterprise server testbed."""

    def __init__(
        self,
        spec: Optional[ServerSpec] = None,
        ambient: Optional[AmbientModel] = None,
        seed: int = 0,
        initial_fan_rpm: Optional[float] = None,
        trip_on_critical: bool = True,
    ):
        self.spec = spec if spec is not None else default_server_spec()
        self.ambient = ambient if ambient is not None else ConstantAmbient(24.0)
        self.power_model = PowerModel(self.spec)
        if initial_fan_rpm is None:
            initial_fan_rpm = self.spec.default_fan_rpm
        self.fans = FanBank(
            self.spec.fan,
            fan_count=self.spec.fan_count,
            fans_per_group=self.spec.fans_per_group,
            initial_rpm=initial_fan_rpm,
        )
        self.thermal = ThermalNetwork(
            self.spec, initial_temperature_c=self.ambient.temperature_c(0.0)
        )
        self.trip_on_critical = trip_on_critical

        self._rng = np.random.default_rng(seed)
        noise = self.spec.sensor_noise
        self._temp_sensor = Sensor(
            SensorSpec(noise.temperature_sigma_c, noise.temperature_quantum_c),
            self._rng,
        )
        self._power_sensor = Sensor(
            SensorSpec(noise.power_sigma_w, noise.power_quantum_w), self._rng
        )
        self._voltage_sensor = Sensor(SensorSpec(noise.voltage_sigma_v), self._rng)
        self._current_sensor = Sensor(SensorSpec(noise.current_sigma_a), self._rng)

        cpu_sensor_count = 2 * self.spec.socket_count
        self._cpu_temp_faults = [FaultableSensor() for _ in range(cpu_sensor_count)]
        self._power_fault = FaultableSensor()

        self._time_s = 0.0
        self._utilization_pct = 0.0
        self._demand_pct = 0.0
        self._inlet_c = self.ambient.temperature_c(0.0)
        self._energy_j = 0.0
        self._fan_energy_j = 0.0
        self._work_deficit_pct_s = 0.0
        self._last_state = self._snapshot()

    # ------------------------------------------------------------------
    # actuation
    # ------------------------------------------------------------------
    def set_fan_rpm(self, rpm: float) -> None:
        """Command every fan pair to *rpm* (the paper's configuration)."""
        self.fans.set_all_commands(rpm)

    def set_fan_group_rpm(self, group: int, rpm: float) -> None:
        """Command one fan pair independently."""
        self.fans.set_group_command(group, rpm)

    def set_pstate(self, index: int) -> None:
        """Command a p-state (no-op ladder on the default spec)."""
        self.power_model.set_pstate(index)

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def step(self, dt_s: float, utilization_pct: float) -> ServerState:
        """Advance the server by ``dt_s`` seconds.

        *utilization_pct* is the work **demanded** in nominal-frequency
        percent; at a reduced p-state the executed busy fraction is
        stretched by ``f_nom / f`` (saturating at 100%, with the excess
        accounted as a work deficit).
        """
        validate_non_negative(dt_s, "dt_s")
        validate_utilization_pct(utilization_pct)

        pstate = self.power_model.pstate_index
        executed = self.spec.dvfs.executed_utilization_pct(utilization_pct, pstate)
        self._work_deficit_pct_s += (
            self.spec.dvfs.work_deficit_pct(utilization_pct, pstate) * dt_s
        )

        self.fans.step(dt_s)
        # Sampled *before* the time advance: this is the inlet the
        # thermal step integrates against, and the one the snapshot
        # must report (a post-advance re-read disagrees with the
        # physics under any time-varying ambient).
        inlet_c = self.ambient.temperature_c(self._time_s)
        self.thermal.step(
            dt_s=dt_s,
            utilization_pct=executed,
            rpm=self.fans.mean_rpm,
            airflow_cfm=self.fans.total_airflow_cfm(),
            inlet_c=inlet_c,
            power_model=self.power_model,
        )
        self._time_s += dt_s
        self._utilization_pct = executed
        self._demand_pct = utilization_pct
        self._inlet_c = inlet_c

        state = self._snapshot()
        self._energy_j += state.power.total_w * dt_s
        self._fan_energy_j += state.power.fan_w * dt_s
        self._last_state = state

        if (
            self.trip_on_critical
            and state.max_junction_c > self.spec.critical_temperature_c
        ):
            raise CriticalTemperatureError(
                f"junction reached {state.max_junction_c:.1f} degC at "
                f"t={self._time_s:.0f}s (critical threshold "
                f"{self.spec.critical_temperature_c} degC)"
            )
        return state

    def _snapshot(self) -> ServerState:
        breakdown = self.power_model.breakdown(
            self._utilization_pct,
            self.thermal.state.junction_c,
            self.fans.total_power_w(),
        )
        return ServerState(
            time_s=self._time_s,
            utilization_pct=self._utilization_pct,
            fan_rpms=self.fans.rpms,
            inlet_c=self._inlet_c,
            power=breakdown,
            thermal=self.thermal.state.copy(),
            pstate_index=self.power_model.pstate_index,
            demand_pct=self._demand_pct,
        )

    def settle_to_steady_state(self, utilization_pct: float) -> ServerState:
        """Jump the thermal state to equilibrium at current fan speeds.

        Emulates the paper's stabilization phases without integrating
        minutes of transient (used for steady-state characterization).
        """
        demand_pct = utilization_pct
        utilization_pct = self.spec.dvfs.executed_utilization_pct(
            utilization_pct, self.power_model.pstate_index
        )
        inlet_c = self.ambient.temperature_c(self._time_s)
        steady = self.thermal.steady_state(
            utilization_pct=utilization_pct,
            rpm=self.fans.mean_rpm,
            airflow_cfm=self.fans.total_airflow_cfm(),
            inlet_c=inlet_c,
            power_model=self.power_model,
        )
        self.thermal.settle_to(steady)
        self._utilization_pct = utilization_pct
        self._demand_pct = demand_pct
        self._inlet_c = inlet_c
        self._last_state = self._snapshot()
        return self._last_state

    # ------------------------------------------------------------------
    # observation: ground truth
    # ------------------------------------------------------------------
    @property
    def time_s(self) -> float:
        """Current simulation time, seconds."""
        return self._time_s

    @property
    def state(self) -> ServerState:
        """Most recent ground-truth snapshot."""
        return self._last_state

    @property
    def temperature_sensor(self) -> Sensor:
        """The shared die/DIMM thermal sensor channel.

        Exposed so the execution kernel can take over the simulator's
        RNG stream (pre-drawing chunk noise) without reaching into
        private state.
        """
        return self._temp_sensor

    @property
    def cpu_temp_fault_sensors(self) -> Tuple[FaultableSensor, ...]:
        """The fault wrappers of the die thermal channels.

        One per sensor in :meth:`measured_cpu_temperatures_c` order;
        exposed so the execution kernel can replay injected faults on
        its chunked reads exactly as the scalar path applies them.
        """
        return tuple(self._cpu_temp_faults)

    @property
    def energy_joules(self) -> float:
        """Whole-server energy accumulated since construction."""
        return self._energy_j

    @property
    def fan_energy_joules(self) -> float:
        """Fan-bank energy accumulated since construction."""
        return self._fan_energy_j

    @property
    def work_deficit_pct_s(self) -> float:
        """Demanded-but-unexecuted work (DVFS saturation), in %·s.

        Zero unless a controller parked the sockets in a p-state too
        slow for the offered load — the performance cost a coordinated
        fan+DVFS policy must keep at zero.
        """
        return self._work_deficit_pct_s

    # ------------------------------------------------------------------
    # observation: CSTH-style noisy channels
    # ------------------------------------------------------------------
    def inject_cpu_temp_fault(self, sensor_index: int, fault: SensorFault) -> None:
        """Inject a fault into one of the die thermal sensors.

        Sensor indices follow :meth:`measured_cpu_temperatures_c`
        ordering (two sensors per socket, socket-major).
        """
        if not 0 <= sensor_index < len(self._cpu_temp_faults):
            raise IndexError(f"cpu temp sensor {sensor_index} out of range")
        self._cpu_temp_faults[sensor_index].inject(fault)

    def inject_power_sensor_fault(self, fault: SensorFault) -> None:
        """Inject a fault into the system power channel."""
        self._power_fault.inject(fault)

    def clear_sensor_faults(self) -> None:
        """Remove every injected sensor fault (repair action)."""
        for faultable in self._cpu_temp_faults:
            faultable.clear()
        self._power_fault.clear()

    def measured_cpu_temperatures_c(self) -> Tuple[float, ...]:
        """The four die thermal sensors (two per socket), with noise
        and any injected faults applied."""
        healthy = self._temp_sensor.read_many(
            self.thermal.die_sensor_temperatures_c(sensors_per_die=2)
        )
        return tuple(
            faultable.transform(self._time_s, reading)
            for faultable, reading in zip(self._cpu_temp_faults, healthy)
        )

    def measured_dimm_temperatures_c(self) -> Tuple[float, ...]:
        """The 32 DIMM thermal sensors, with noise."""
        return self._temp_sensor.read_many(self.thermal.dimm_temperatures_c())

    def measured_system_power_w(self) -> float:
        """Whole-system PSU power (excludes externally powered fans)."""
        reading = self._power_sensor.read(self._last_state.power.compute_w)
        return self._power_fault.transform(self._time_s, reading)

    def measured_fan_power_w(self) -> float:
        """Fan power measured at the external supplies."""
        return self._power_sensor.read(self._last_state.power.fan_w)

    def measured_core_voltages_v(self) -> Tuple[float, ...]:
        """Per-core supply voltage channels."""
        true_v = self.power_model.core_voltage_v(self._utilization_pct)
        core_total = sum(s.core_count for s in self.spec.sockets)
        return self._voltage_sensor.read_many([true_v] * core_total)

    def measured_core_currents_a(self) -> Tuple[float, ...]:
        """Per-core current channels."""
        true_currents = self.power_model.per_core_current_a(
            self._utilization_pct, self.thermal.state.junction_c
        )
        return self._current_sensor.read_many(true_currents)

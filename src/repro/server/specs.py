"""Hardware description of the simulated enterprise server.

The paper's testbed is a presently-shipping (2013) enterprise server
with two SPARC T3 CPUs (16 cores / 128 HW threads each), 32 DIMMs and
six fans arranged in three pairs that blow front-to-back, with the
airflow crossing the DIMM banks before it reaches the CPU heatsinks.

Every physical constant in :func:`default_server_spec` is *calibrated*
against the paper's published behaviour rather than copied from a
datasheet (none is public):

* steady-state CPU temperature at 100% utilization spans roughly
  55 °C (4200 RPM) to 85 °C (1800 RPM) — Fig. 1(a);
* thermal settle time is ~15 min at 1800 RPM and ~5 min at 4200 RPM —
  Fig. 1(a);
* a utilization step causes a fast 5–8 °C junction transient in under
  30 s — Fig. 1(b);
* `P_leak + P_fan` at 100% load is convex in temperature with its
  minimum near 70 °C / 2400 RPM, and fan-only savings can reach ~30 W —
  Fig. 2(a);
* whole-server power peaks at ~710–720 W and an 80-minute mixed test
  consumes ~0.62–0.69 kWh — Table I.

The exponential leakage coefficients ``k2 = 0.3231`` and
``k3 = 0.04749`` are the paper's fitted values, used per socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.server.dvfs import DvfsSpec
from repro.units import (
    validate_fraction,
    validate_non_negative,
    validate_temperature_c,
)


@dataclass(frozen=True)
class FanSpec:
    """Electro-mechanical description of one cooling fan.

    Fan power follows the cubic affinity law
    ``P(rpm) = power_at_ref_w * (rpm / rpm_ref) ** power_exponent`` and
    airflow the linear law ``Q(rpm) = cfm_at_ref * rpm / rpm_ref``.
    """

    rpm_min: float = 1800.0
    rpm_max: float = 4200.0
    rpm_ref: float = 4200.0
    #: Electrical power of one fan at ``rpm_ref``, watts.
    power_at_ref_w: float = 9.17
    #: Cubic law exponent (paper §I: "fan power is a cubic function").
    power_exponent: float = 3.0
    #: Effective through-chassis airflow of one fan at ``rpm_ref``, CFM.
    cfm_at_ref: float = 25.0
    #: Maximum RPM change rate while the rotor spins up/down, RPM/s.
    slew_rpm_per_s: float = 600.0

    def __post_init__(self) -> None:
        validate_non_negative(self.rpm_min, "rpm_min")
        validate_non_negative(self.power_at_ref_w, "power_at_ref_w")
        validate_non_negative(self.cfm_at_ref, "cfm_at_ref")
        validate_non_negative(self.slew_rpm_per_s, "slew_rpm_per_s")
        if self.rpm_max <= self.rpm_min:
            raise ValueError(
                f"rpm_max ({self.rpm_max}) must exceed rpm_min ({self.rpm_min})"
            )
        if self.rpm_ref <= 0:
            raise ValueError("rpm_ref must be positive")
        if self.power_exponent < 1.0:
            raise ValueError("power_exponent must be >= 1")


@dataclass(frozen=True)
class CpuSocketSpec:
    """Power and thermal description of one CPU socket.

    Power model (per socket):

    * active: ``p_idle_w + k_active_w_per_pct * utilization_pct``
    * leakage: ``leak_const_w + leak_k2_w * exp(leak_k3_per_c * T_j)``

    Thermal model: a two-node RC ladder.  The *junction* node (die +
    integrated heat spreader, small capacitance) receives the socket
    power and conducts through ``r_junction_heatsink_k_w`` into the
    *heatsink* node (large capacitance), which convects to the local
    air stream through an airflow-dependent resistance

    ``R_ha(rpm) = r_heatsink_air_ref_k_w * (rpm_ref_thermal / rpm) ** flow_exponent``
    """

    name: str = "CPU0"
    core_count: int = 16
    threads_per_core: int = 8
    #: Socket power with zero utilization (clock trees, uncore), watts.
    p_idle_w: float = 60.0
    #: Dynamic power slope, watts per percent utilization.
    k_active_w_per_pct: float = 1.75
    #: Temperature-independent leakage floor, watts.
    leak_const_w: float = 10.0
    #: Exponential leakage prefactor, watts (paper's fitted k2).
    leak_k2_w: float = 0.3231
    #: Exponential leakage temperature coefficient, 1/°C (paper's k3).
    leak_k3_per_c: float = 0.04749
    #: Junction-to-heatsink conduction resistance, K/W.
    r_junction_heatsink_k_w: float = 0.04
    #: Junction (die + spreader) heat capacity, J/K.
    c_junction_j_k: float = 375.0
    #: Heatsink-to-air resistance at ``rpm_ref_thermal``, K/W.
    r_heatsink_air_ref_k_w: float = 0.184
    #: Heatsink heat capacity, J/K.
    c_heatsink_j_k: float = 814.0
    #: Reference fan speed for ``r_heatsink_air_ref_k_w``, RPM.
    rpm_ref_thermal: float = 1800.0
    #: Convective scaling exponent (turbulent forced convection ~0.8).
    flow_exponent: float = 0.8

    def __post_init__(self) -> None:
        if self.core_count <= 0 or self.threads_per_core <= 0:
            raise ValueError("core_count and threads_per_core must be positive")
        for attr in (
            "p_idle_w",
            "k_active_w_per_pct",
            "leak_const_w",
            "leak_k2_w",
            "leak_k3_per_c",
            "r_junction_heatsink_k_w",
            "c_junction_j_k",
            "r_heatsink_air_ref_k_w",
            "c_heatsink_j_k",
            "rpm_ref_thermal",
            "flow_exponent",
        ):
            validate_non_negative(getattr(self, attr), attr)
        if self.c_junction_j_k == 0 or self.c_heatsink_j_k == 0:
            raise ValueError("thermal capacitances must be positive")

    @property
    def hardware_threads(self) -> int:
        """Total hardware threads exposed by this socket."""
        return self.core_count * self.threads_per_core


@dataclass(frozen=True)
class MemorySpec:
    """Power and thermal description of the DIMM banks.

    The DIMMs sit upstream of the CPUs in the airflow path, so their
    dissipated power preheats the air that reaches the CPU heatsinks.
    """

    dimm_count: int = 32
    #: Total DIMM power at idle, watts.
    p_idle_w: float = 30.0
    #: Additional DIMM power per percent CPU utilization, watts/%.
    k_active_w_per_pct: float = 0.5
    #: DIMM-bank-to-air resistance at ``rpm_ref_thermal``, K/W.
    r_bank_air_ref_k_w: float = 0.49
    #: DIMM bank heat capacity, J/K.
    c_bank_j_k: float = 3000.0
    rpm_ref_thermal: float = 1800.0
    flow_exponent: float = 0.8
    #: Fraction of DIMM power carried downstream into the CPU inlet air.
    preheat_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.dimm_count <= 0:
            raise ValueError("dimm_count must be positive")
        for attr in (
            "p_idle_w",
            "k_active_w_per_pct",
            "r_bank_air_ref_k_w",
            "c_bank_j_k",
            "rpm_ref_thermal",
            "flow_exponent",
        ):
            validate_non_negative(getattr(self, attr), attr)
        validate_fraction(self.preheat_fraction, "preheat_fraction")


@dataclass(frozen=True)
class SensorNoiseSpec:
    """Gaussian noise / quantization applied to telemetry channels."""

    temperature_sigma_c: float = 0.4
    temperature_quantum_c: float = 0.25
    power_sigma_w: float = 2.0
    power_quantum_w: float = 0.5
    voltage_sigma_v: float = 0.003
    current_sigma_a: float = 0.15

    def __post_init__(self) -> None:
        for attr in (
            "temperature_sigma_c",
            "temperature_quantum_c",
            "power_sigma_w",
            "power_quantum_w",
            "voltage_sigma_v",
            "current_sigma_a",
        ):
            validate_non_negative(getattr(self, attr), attr)


@dataclass(frozen=True)
class ServerSpec:
    """Complete server description used by :class:`ServerSimulator`."""

    sockets: Tuple[CpuSocketSpec, ...] = field(
        default_factory=lambda: (
            CpuSocketSpec(name="CPU0"),
            CpuSocketSpec(name="CPU1"),
        )
    )
    memory: MemorySpec = field(default_factory=MemorySpec)
    fan: FanSpec = field(default_factory=FanSpec)
    #: Number of fans in the chassis (three rows of two).
    fan_count: int = 6
    #: Fans per independently-controlled group (pairs, per the paper).
    fans_per_group: int = 2
    #: Constant board / PSU-overhead / disk power, watts.
    board_power_w: float = 106.0
    sensor_noise: SensorNoiseSpec = field(default_factory=SensorNoiseSpec)
    #: Hardware critical threshold — exceeding it shuts the server down.
    critical_temperature_c: float = 90.0
    #: Reliability-motivated operational ceiling (paper §IV).
    target_max_temperature_c: float = 75.0
    #: Default firmware fan setting ("close to a fixed 3300 RPM").
    default_fan_rpm: float = 3300.0
    #: Nominal per-core supply voltage, volts.
    core_voltage_v: float = 1.0
    #: Supply droop per percent utilization (loadline), volts/%.
    core_voltage_droop_v_per_pct: float = 0.0004
    #: Voltage/frequency ladder.  The default is nominal-only, which
    #: reproduces the paper's fixed-frequency testbed; pass
    #: :func:`repro.server.dvfs.default_dvfs_ladder` to study the
    #: coordinated fan + DVFS extension.
    dvfs: DvfsSpec = field(default_factory=DvfsSpec)

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ValueError("server needs at least one CPU socket")
        if self.fan_count <= 0 or self.fans_per_group <= 0:
            raise ValueError("fan_count and fans_per_group must be positive")
        if self.fan_count % self.fans_per_group != 0:
            raise ValueError(
                "fan_count must be a multiple of fans_per_group "
                f"({self.fan_count} % {self.fans_per_group} != 0)"
            )
        validate_non_negative(self.board_power_w, "board_power_w")
        validate_temperature_c(self.critical_temperature_c, "critical_temperature_c")
        validate_temperature_c(self.target_max_temperature_c, "target_max_temperature_c")
        if self.target_max_temperature_c >= self.critical_temperature_c:
            raise ValueError(
                "target_max_temperature_c must be below critical_temperature_c"
            )
        if not self.fan.rpm_min <= self.default_fan_rpm <= self.fan.rpm_max:
            raise ValueError(
                f"default_fan_rpm {self.default_fan_rpm} outside fan range "
                f"[{self.fan.rpm_min}, {self.fan.rpm_max}]"
            )

    @property
    def socket_count(self) -> int:
        """Number of CPU sockets."""
        return len(self.sockets)

    @property
    def fan_group_count(self) -> int:
        """Number of independently controllable fan groups."""
        return self.fan_count // self.fans_per_group

    @property
    def hardware_threads(self) -> int:
        """Total hardware threads across all sockets (256 on the T3 box)."""
        return sum(socket.hardware_threads for socket in self.sockets)


def default_server_spec() -> ServerSpec:
    """Return the calibrated SPARC-T3-class server specification.

    This is the single source of ground truth for every experiment in
    the reproduction; see the module docstring for the calibration
    targets each constant satisfies.
    """
    return ServerSpec()

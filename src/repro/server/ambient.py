"""Machine-room ambient temperature models.

All the paper's experiments run in an isolated environment at a
constant 24 °C.  The drifting model supports sensitivity studies of the
controllers under data-center-style ambient variation (the paper notes
its test room is colder than a production data center).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.units import validate_non_negative, validate_temperature_c


class AmbientModel(ABC):
    """Ambient (fan inlet) temperature as a function of time."""

    @abstractmethod
    def temperature_c(self, time_s: float) -> float:
        """Inlet air temperature at simulation time ``time_s``."""

    def temperature_chunk(self, times_s) -> np.ndarray:
        """Inlet temperatures for a whole chunk of tick times.

        The default evaluates :meth:`temperature_c` per element, so any
        subclass stays bit-identical with per-tick evaluation.
        Subclasses whose math is built from bit-stable elementwise
        operations (constants, piecewise holds) may vectorize; models
        using transcendental functions (e.g. ``sin``) must keep the
        scalar loop because numpy's SIMD transcendentals are not
        bit-identical to :mod:`math`.
        """
        return np.array([self.temperature_c(t) for t in times_s])


class ConstantAmbient(AmbientModel):
    """Fixed ambient temperature (the paper's 24 °C isolated room)."""

    def __init__(self, temperature_c: float = 24.0):
        self._temperature_c = validate_temperature_c(temperature_c)

    def temperature_c(self, time_s: float) -> float:
        return self._temperature_c

    def temperature_chunk(self, times_s) -> np.ndarray:
        """Constant inlet for the whole chunk (no per-tick calls)."""
        return np.full(len(times_s), self._temperature_c)


class SinusoidalAmbient(AmbientModel):
    """Slow sinusoidal ambient drift around a mean value.

    Used by sensitivity benches to emulate CRAC supply-temperature
    oscillation in a real data center aisle.
    """

    def __init__(
        self,
        mean_c: float = 24.0,
        amplitude_c: float = 2.0,
        period_s: float = 3600.0,
        phase_rad: float = 0.0,
    ):
        validate_temperature_c(mean_c, "mean_c")
        validate_non_negative(amplitude_c, "amplitude_c")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.mean_c = mean_c
        self.amplitude_c = amplitude_c
        self.period_s = period_s
        self.phase_rad = phase_rad

    def temperature_c(self, time_s: float) -> float:
        omega = 2.0 * math.pi / self.period_s
        return self.mean_c + self.amplitude_c * math.sin(
            omega * time_s + self.phase_rad
        )

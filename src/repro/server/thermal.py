"""RC thermal network of the server with airflow-dependent resistances.

Topology (one branch per socket, plus the DIMM bank)::

    inlet air --preheat(DIMM power / airflow)--> CPU-local air
    CPU-local air --R_ha(rpm)--> heatsink node (C_h)
    heatsink --R_jh--> junction node (C_j) <-- socket heat input
    inlet air --R_ma(rpm)--> DIMM bank node (C_m) <-- DIMM power

Two properties of the paper's measurements drive this structure:

* Fig. 1(b) shows a *fast* 5–8 °C transient in under 30 s after a load
  step (the junction node, ``tau_j = R_jh * C_j ~ 15 s``) riding on a
  *slow* multi-minute trend (the heatsink node).
* Fig. 1(a) shows that the slow time constant itself depends on fan
  speed (~15 min to settle at 1800 RPM vs ~5 min at 4200 RPM), because
  the convective resistance ``R_ha`` scales as ``(1/rpm)**0.8``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.server.power import PowerModel
from repro.server.specs import CpuSocketSpec, ServerSpec
from repro.units import (
    airflow_heat_capacity_w_per_k,
    validate_non_negative,
    validate_temperature_c,
    validate_utilization_pct,
)

#: Largest explicit-Euler substep, seconds.  The stiffest node is the
#: junction (tau ~ 15 s); 0.5 s keeps integration error negligible.
MAX_SUBSTEP_S = 0.5

#: Convergence tolerance for the steady-state fixed point, °C.
_STEADY_TOL_C = 1e-9
_STEADY_MAX_ITERATIONS = 200


def substep_schedule(dt_s: float) -> Tuple[int, float]:
    """Explicit-Euler substep count and length for a ``dt_s`` tick.

    Returns ``(substeps, h_s)`` with ``h_s = dt_s / substeps`` and every
    substep at most :data:`MAX_SUBSTEP_S`.  Shared by
    :meth:`ThermalNetwork.step` and the execution kernels
    (:mod:`repro.engine.kernel`) so chunked and tick-by-tick integration
    use the *same* substep grid — a prerequisite for their bit-identical
    trace contract.
    """
    substeps = max(1, int(np.ceil(dt_s / MAX_SUBSTEP_S)))
    return substeps, dt_s / substeps


def convective_resistance_k_w(r_ref_k_w, rpm, rpm_ref, flow_exponent):
    """Heat-transfer resistance to a forced air stream at *rpm*.

    ``R(rpm) = R_ref * (rpm_ref / rpm) ** flow_exponent`` — the standard
    turbulent forced-convection scaling.  *rpm* (and the reference
    parameters) may be scalars or broadcastable ndarrays; the fleet
    engine evaluates whole racks of sockets in one call.
    """
    if isinstance(rpm, (int, float)):  # scalar fast path (hot loop)
        validate_non_negative(rpm, "rpm")
        if rpm == 0.0:
            raise ValueError("rpm must be positive for forced convection")
        return r_ref_k_w * (rpm_ref / rpm) ** flow_exponent
    rpm_arr = np.asarray(rpm, dtype=float)
    if not np.all(np.isfinite(rpm_arr)):
        raise ValueError(f"rpm must be finite, got {rpm!r}")
    if np.any(rpm_arr < 0.0):
        raise ValueError(f"rpm must be non-negative, got {rpm!r}")
    if np.any(rpm_arr == 0.0):
        raise ValueError("rpm must be positive for forced convection")
    return r_ref_k_w * (rpm_ref / rpm_arr) ** flow_exponent


@dataclass
class ThermalState:
    """Mutable node temperatures of the network, °C."""

    junction_c: List[float]
    heatsink_c: List[float]
    dimm_bank_c: float

    def copy(self) -> "ThermalState":
        """Return an independent copy of this state."""
        return ThermalState(
            junction_c=list(self.junction_c),
            heatsink_c=list(self.heatsink_c),
            dimm_bank_c=self.dimm_bank_c,
        )

    @property
    def max_junction_c(self) -> float:
        """Hottest junction across sockets."""
        return max(self.junction_c)

    @property
    def mean_junction_c(self) -> float:
        """Average junction temperature across sockets."""
        return sum(self.junction_c) / len(self.junction_c)


class ThermalNetwork:
    """Integrates the RC network and solves its steady state."""

    def __init__(self, spec: ServerSpec, initial_temperature_c: float = 24.0):
        validate_temperature_c(initial_temperature_c, "initial_temperature_c")
        self.spec = spec
        self.state = ThermalState(
            junction_c=[initial_temperature_c] * spec.socket_count,
            heatsink_c=[initial_temperature_c] * spec.socket_count,
            dimm_bank_c=initial_temperature_c,
        )

    # ------------------------------------------------------------------
    # resistances / preheat
    # ------------------------------------------------------------------
    def socket_air_resistance_k_w(self, socket: CpuSocketSpec, rpm: float) -> float:
        """Heatsink-to-air resistance of *socket* at fan speed *rpm*."""
        return convective_resistance_k_w(
            socket.r_heatsink_air_ref_k_w,
            rpm,
            socket.rpm_ref_thermal,
            socket.flow_exponent,
        )

    def dimm_air_resistance_k_w(self, rpm: float) -> float:
        """DIMM-bank-to-air resistance at fan speed *rpm*."""
        mem = self.spec.memory
        return convective_resistance_k_w(
            mem.r_bank_air_ref_k_w, rpm, mem.rpm_ref_thermal, mem.flow_exponent
        )

    def cpu_inlet_temperature_c(
        self, inlet_c: float, memory_power_w: float, airflow_cfm: float
    ) -> float:
        """Air temperature reaching the CPU heatsinks.

        Airflow crosses the DIMMs first (paper §III), so the DIMM power
        preheats the stream by ``f * P_mem / (m_dot * c_p)``.
        """
        validate_temperature_c(inlet_c, "inlet_c")
        validate_non_negative(memory_power_w, "memory_power_w")
        capacity = airflow_heat_capacity_w_per_k(airflow_cfm)
        if capacity <= 0.0:
            raise ValueError("airflow must be positive to cool the server")
        preheat = self.spec.memory.preheat_fraction * memory_power_w / capacity
        return inlet_c + preheat

    # ------------------------------------------------------------------
    # transient integration
    # ------------------------------------------------------------------
    def step(
        self,
        dt_s: float,
        utilization_pct: float,
        rpm: float,
        airflow_cfm: float,
        inlet_c: float,
        power_model: PowerModel,
    ) -> ThermalState:
        """Advance all node temperatures by ``dt_s`` seconds.

        Leakage is re-evaluated every substep from the instantaneous
        junction temperature, closing the leakage↔temperature feedback
        loop the paper studies.
        """
        validate_non_negative(dt_s, "dt_s")
        validate_utilization_pct(utilization_pct)
        if dt_s == 0.0:
            return self.state

        substeps, h = substep_schedule(dt_s)
        memory_power = power_model.memory_w(utilization_pct)
        cpu_inlet = self.cpu_inlet_temperature_c(inlet_c, memory_power, airflow_cfm)
        r_ma = self.dimm_air_resistance_k_w(rpm)
        r_ha = [
            self.socket_air_resistance_k_w(socket, rpm)
            for socket in self.spec.sockets
        ]

        state = self.state
        for _ in range(substeps):
            for i, socket in enumerate(self.spec.sockets):
                t_j = state.junction_c[i]
                t_h = state.heatsink_c[i]
                heat_in = power_model.socket_heat_w(socket, utilization_pct, t_j)
                q_jh = (t_j - t_h) / socket.r_junction_heatsink_k_w
                q_ha = (t_h - cpu_inlet) / r_ha[i]
                state.junction_c[i] = t_j + h * (heat_in - q_jh) / socket.c_junction_j_k
                state.heatsink_c[i] = t_h + h * (q_jh - q_ha) / socket.c_heatsink_j_k
            q_ma = (state.dimm_bank_c - inlet_c) / r_ma
            state.dimm_bank_c += (
                h * (memory_power - q_ma) / self.spec.memory.c_bank_j_k
            )
        return state

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------
    def steady_state(
        self,
        utilization_pct: float,
        rpm: float,
        airflow_cfm: float,
        inlet_c: float,
        power_model: PowerModel,
    ) -> ThermalState:
        """Solve the equilibrium temperatures by fixed-point iteration.

        At equilibrium the heat into each junction flows through both
        resistors, so ``T_j = T_air + P(T_j) * (R_ha + R_jh)`` — a
        contraction because the leakage slope (<1 W/K per socket) times
        the total resistance is well below one.
        """
        validate_utilization_pct(utilization_pct)
        memory_power = power_model.memory_w(utilization_pct)
        cpu_inlet = self.cpu_inlet_temperature_c(inlet_c, memory_power, airflow_cfm)
        r_ma = self.dimm_air_resistance_k_w(rpm)

        junctions: List[float] = []
        heatsinks: List[float] = []
        for socket in self.spec.sockets:
            r_total = (
                self.socket_air_resistance_k_w(socket, rpm)
                + socket.r_junction_heatsink_k_w
            )
            t_j = cpu_inlet + 40.0  # any warm starting guess converges
            for _ in range(_STEADY_MAX_ITERATIONS):
                heat = power_model.socket_heat_w(socket, utilization_pct, t_j)
                t_next = cpu_inlet + heat * r_total
                if abs(t_next - t_j) < _STEADY_TOL_C:
                    t_j = t_next
                    break
                t_j = t_next
            heat = power_model.socket_heat_w(socket, utilization_pct, t_j)
            junctions.append(t_j)
            heatsinks.append(t_j - heat * socket.r_junction_heatsink_k_w)

        return ThermalState(
            junction_c=junctions,
            heatsink_c=heatsinks,
            dimm_bank_c=inlet_c + memory_power * r_ma,
        )

    def settle_to(self, state: ThermalState) -> None:
        """Overwrite the current state (e.g. jump to a steady state)."""
        if len(state.junction_c) != self.spec.socket_count:
            raise ValueError("state does not match the server socket count")
        self.state = state.copy()

    # ------------------------------------------------------------------
    # derived sensor values
    # ------------------------------------------------------------------
    def die_sensor_temperatures_c(self, sensors_per_die: int = 2) -> Tuple[float, ...]:
        """True (noise-free) per-die thermal sensor values.

        CSTH exposes two thermal sensors per die; the simulator models
        them as the junction temperature plus a small fixed spatial
        gradient.
        """
        if sensors_per_die <= 0:
            raise ValueError("sensors_per_die must be positive")
        readings: List[float] = []
        for t_j in self.state.junction_c:
            for k in range(sensors_per_die):
                offset = 1.0 * (k - (sensors_per_die - 1) / 2.0)
                readings.append(t_j + offset)
        return tuple(readings)

    def dimm_temperatures_c(self) -> Tuple[float, ...]:
        """True per-DIMM temperatures: bank mean plus a linear gradient.

        DIMMs nearer the chassis wall run cooler than those in the
        middle of the airflow shadow; a fixed ±3 °C linear gradient
        captures the spread CSTH reports.
        """
        n = self.spec.memory.dimm_count
        base = self.state.dimm_bank_c
        if n == 1:
            return (base,)
        spread = 3.0
        return tuple(
            base + spread * (2.0 * i / (n - 1) - 1.0) for i in range(n)
        )

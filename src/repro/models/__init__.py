"""Empirical power models and the paper's fitting methodology.

* :mod:`repro.models.leakage` — the analytical forms of Eqn. (2):
  exponential leakage, linear active power, cubic fan power,
* :mod:`repro.models.fitting` — least-squares fitting of those forms to
  characterization measurements (paper §IV "Leakage Model Fitting"),
* :mod:`repro.models.steady_state` — steady-state power/temperature
  maps used to locate the optimum fan speed per utilization.
"""

from repro.models.fitting import (
    CharacterizationSample,
    FittedPowerModel,
    FitQuality,
    fit_fan_power_model,
    fit_power_model,
)
from repro.models.leakage import ActivePowerModel, FanPowerModel, LeakageModel
from repro.models.reliability import (
    ReliabilityReport,
    arrhenius_acceleration,
    coffin_manson_damage,
    fan_bearing_wear,
    integrated_thermal_aging,
    reliability_report,
)
from repro.models.steady_state import (
    SteadyStatePoint,
    steady_state_map,
    steady_state_point,
)

__all__ = [
    "ActivePowerModel",
    "FanPowerModel",
    "LeakageModel",
    "ReliabilityReport",
    "arrhenius_acceleration",
    "coffin_manson_damage",
    "fan_bearing_wear",
    "integrated_thermal_aging",
    "reliability_report",
    "CharacterizationSample",
    "FittedPowerModel",
    "FitQuality",
    "fit_fan_power_model",
    "fit_power_model",
    "SteadyStatePoint",
    "steady_state_map",
    "steady_state_point",
]

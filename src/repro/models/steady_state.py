"""Steady-state power/temperature maps over (utilization, fan speed).

These maps are the raw material for the leakage–temperature tradeoff
analysis (Fig. 2) and for the LUT construction: at each grid point the
equilibrium CPU temperature, the leakage, and the fan power are known,
so ``P_leak + P_fan`` can be minimized per utilization level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.server.ambient import ConstantAmbient
from repro.server.server import ServerSimulator
from repro.server.specs import ServerSpec, default_server_spec
from repro.units import validate_utilization_pct


@dataclass(frozen=True)
class SteadyStatePoint:
    """Equilibrium operating point at one (utilization, rpm) setting."""

    utilization_pct: float
    fan_rpm: float
    avg_junction_c: float
    max_junction_c: float
    dimm_bank_c: float
    cpu_leakage_w: float
    cpu_active_w: float
    fan_power_w: float
    total_power_w: float

    @property
    def leak_plus_fan_w(self) -> float:
        """The convex tradeoff quantity of Fig. 2."""
        return self.cpu_leakage_w + self.fan_power_w


def steady_state_point(
    utilization_pct: float,
    fan_rpm: float,
    spec: ServerSpec | None = None,
    ambient_c: float = 24.0,
) -> SteadyStatePoint:
    """Solve one equilibrium operating point from the ground-truth model."""
    validate_utilization_pct(utilization_pct)
    if spec is None:
        spec = default_server_spec()
    sim = ServerSimulator(
        spec=spec,
        ambient=ConstantAmbient(ambient_c),
        seed=0,
        initial_fan_rpm=fan_rpm,
    )
    state = sim.settle_to_steady_state(utilization_pct)
    thermal = state.thermal
    return SteadyStatePoint(
        utilization_pct=utilization_pct,
        fan_rpm=fan_rpm,
        avg_junction_c=thermal.mean_junction_c,
        max_junction_c=thermal.max_junction_c,
        dimm_bank_c=thermal.dimm_bank_c,
        cpu_leakage_w=state.power.cpu_leakage_w,
        cpu_active_w=state.power.cpu_active_w,
        fan_power_w=state.power.fan_w,
        total_power_w=state.power.total_w,
    )


def steady_state_map(
    utilizations_pct: Sequence[float],
    fan_rpms: Sequence[float],
    spec: ServerSpec | None = None,
    ambient_c: float = 24.0,
) -> Dict[Tuple[float, float], SteadyStatePoint]:
    """Solve the full (utilization × rpm) equilibrium grid."""
    if not utilizations_pct or not fan_rpms:
        raise ValueError("grid axes must be non-empty")
    if spec is None:
        spec = default_server_spec()
    grid: Dict[Tuple[float, float], SteadyStatePoint] = {}
    for u in utilizations_pct:
        for rpm in fan_rpms:
            grid[(float(u), float(rpm))] = steady_state_point(
                u, rpm, spec=spec, ambient_c=ambient_c
            )
    return grid


def optimal_rpm_per_utilization(
    grid: Dict[Tuple[float, float], SteadyStatePoint],
    max_temperature_c: float = 75.0,
) -> Dict[float, SteadyStatePoint]:
    """Pick, per utilization, the grid point minimizing leak+fan power.

    Points whose equilibrium temperature exceeds the reliability
    ceiling are excluded; if every candidate violates it, the coolest
    (highest-RPM) point is selected instead, mirroring a controller
    that must still pick *some* speed.
    """
    by_util: Dict[float, List[SteadyStatePoint]] = {}
    for (u, _), point in grid.items():
        by_util.setdefault(u, []).append(point)

    best: Dict[float, SteadyStatePoint] = {}
    for u, points in by_util.items():
        admissible = [p for p in points if p.max_junction_c <= max_temperature_c]
        if admissible:
            best[u] = min(admissible, key=lambda p: p.leak_plus_fan_w)
        else:
            best[u] = max(points, key=lambda p: p.fan_rpm)
    return best

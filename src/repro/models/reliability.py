"""Reliability accounting for controller comparisons.

The paper's design choices are reliability-driven but unquantified:
the 75 °C operational ceiling cites nanometer-scale wear-out (its
ref. [7]), and the 1-minute fan-change lockout exists "to prevent fan
reliability issues".  This module scores an experiment trace on the
three standard wear-out channels so those choices can be evaluated:

* **Arrhenius thermal aging** — steady-state wear (electromigration,
  NBTI, TDDB) accelerates exponentially with junction temperature:
  ``AF = exp(Ea/k * (1/T_ref - 1/T))``.  We integrate the acceleration
  factor over the trace to get *consumed lifetime relative to
  operating constantly at the reference temperature*.
* **Coffin–Manson thermal cycling** — solder-joint fatigue from
  temperature swings: each cycle of amplitude ``dT`` consumes
  ``(dT / dT_ref) ** exponent`` reference-cycle equivalents.
* **Fan bearing wear** — bearing life shortens with speed (an L10-life
  inverse power law) and each speed change adds a start/stop-like
  stress event, which is why the paper limits change frequency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.telemetry.analysis import count_thermal_cycles
from repro.units import validate_non_negative

#: Boltzmann constant, eV/K.
BOLTZMANN_EV_K = 8.617333262e-5

#: Default activation energy for silicon wear-out mechanisms, eV.
DEFAULT_ACTIVATION_ENERGY_EV = 0.7

#: Default Coffin-Manson exponent for solder fatigue.
DEFAULT_COFFIN_MANSON_EXPONENT = 2.35


def arrhenius_acceleration(
    temperature_c: float,
    reference_c: float = 55.0,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """Wear acceleration factor at *temperature_c* vs *reference_c*.

    1.0 at the reference; roughly doubles every ~10 °C with the default
    activation energy.
    """
    validate_non_negative(activation_energy_ev, "activation_energy_ev")
    t_k = temperature_c + 273.15
    ref_k = reference_c + 273.15
    if t_k <= 0 or ref_k <= 0:
        raise ValueError("temperatures must be above absolute zero")
    return math.exp(
        activation_energy_ev / BOLTZMANN_EV_K * (1.0 / ref_k - 1.0 / t_k)
    )


def integrated_thermal_aging(
    times_s,
    junction_temps_c,
    reference_c: float = 55.0,
    activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV,
) -> float:
    """Consumed lifetime over a trace, in reference-temperature hours.

    Integrates the Arrhenius acceleration factor: a result of 2.0 for a
    1-hour trace means the hour aged the part as much as two hours at
    the reference temperature would have.
    """
    times = np.asarray(times_s, dtype=float)
    temps = np.asarray(junction_temps_c, dtype=float)
    if times.shape != temps.shape or times.size < 2:
        raise ValueError("need matching arrays with >= 2 samples")
    factors = np.array(
        [
            arrhenius_acceleration(t, reference_c, activation_energy_ev)
            for t in temps
        ]
    )
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    aged_s = float(trapezoid(factors, times))
    return aged_s / 3600.0


def coffin_manson_damage(
    junction_temps_c,
    reference_swing_c: float = 20.0,
    exponent: float = DEFAULT_COFFIN_MANSON_EXPONENT,
    counting_amplitude_c: float = 5.0,
) -> float:
    """Thermal-cycling fatigue consumed over a trace.

    Counts cycles above *counting_amplitude_c*, assigns each the trace's
    mean large-cycle amplitude, and converts to equivalent
    *reference_swing_c* cycles via the Coffin-Manson inverse power law.
    Returned unit: equivalent reference cycles.
    """
    temps = np.asarray(junction_temps_c, dtype=float)
    if temps.size < 3:
        return 0.0
    if reference_swing_c <= 0:
        raise ValueError("reference_swing_c must be positive")
    cycles = count_thermal_cycles(temps, amplitude_c=counting_amplitude_c)
    if cycles == 0:
        return 0.0
    # Amplitude estimate: the large-signal swing of the trace, which
    # upper-bounds per-cycle amplitude (conservative for reliability).
    amplitude = float(np.percentile(temps, 95) - np.percentile(temps, 5))
    amplitude = max(amplitude, counting_amplitude_c)
    return cycles * (amplitude / reference_swing_c) ** exponent


def fan_bearing_wear(
    times_s,
    rpms,
    speed_changes: int,
    reference_rpm: float = 3300.0,
    life_exponent: float = 3.0,
    change_penalty_hours: float = 0.05,
) -> float:
    """Bearing life consumed, in reference-speed hours.

    Running at speed ``w`` consumes life ``(w / w_ref) ** life_exponent``
    times faster than at the reference speed, and every commanded speed
    change adds *change_penalty_hours* of equivalent wear (a transient
    bearing-load event, on the order of minutes of life — the cost the
    paper's lockout bounds).
    """
    times = np.asarray(times_s, dtype=float)
    speeds = np.asarray(rpms, dtype=float)
    if times.shape != speeds.shape or times.size < 2:
        raise ValueError("need matching arrays with >= 2 samples")
    if reference_rpm <= 0:
        raise ValueError("reference_rpm must be positive")
    validate_non_negative(float(speed_changes), "speed_changes")
    factors = (speeds / reference_rpm) ** life_exponent
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    worn_s = float(trapezoid(factors, times))
    return worn_s / 3600.0 + speed_changes * change_penalty_hours


@dataclass(frozen=True)
class ReliabilityReport:
    """Wear-out summary of one experiment run."""

    thermal_aging_ref_hours: float
    thermal_cycling_ref_cycles: float
    fan_wear_ref_hours: float
    max_temperature_c: float
    duration_hours: float

    @property
    def aging_rate(self) -> float:
        """Thermal aging per wall hour (1.0 = reference-temperature pace)."""
        if self.duration_hours <= 0:
            return 0.0
        return self.thermal_aging_ref_hours / self.duration_hours


def reliability_report(result) -> ReliabilityReport:
    """Score an :class:`~repro.experiments.runner.ExperimentResult`."""
    times = result.column("time_s")
    temps = result.column("max_junction_c")
    rpms = result.column("mean_rpm")
    duration_h = float(times[-1] - times[0]) / 3600.0
    return ReliabilityReport(
        thermal_aging_ref_hours=integrated_thermal_aging(times, temps),
        thermal_cycling_ref_cycles=coffin_manson_damage(temps),
        fan_wear_ref_hours=fan_bearing_wear(
            times, rpms, result.metrics.fan_speed_changes
        ),
        max_temperature_c=float(np.max(temps)),
        duration_hours=duration_h,
    )

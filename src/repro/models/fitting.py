"""Least-squares fitting of the empirical power decomposition.

The paper's methodology (§IV): the testbed separately measures fan
power (external supplies) and compute power (the server PSU), so the
measured compute power at utilization ``U`` and average CPU temperature
``T`` is modeled as

``P_compute(U, T) = C + k1 * U + k2 * exp(k3 * T)``

where ``C`` absorbs every constant contribution (board, PSU overhead,
idle floors, temperature-independent leakage).  Fitting over the whole
characterization grid — utilization in {10..100}% crossed with fan
speeds in {1800..4200} RPM — identifies ``k1, C, k2, k3``.  The paper
reports a 2.243 W RMS error and ~98% accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.models.leakage import ActivePowerModel, FanPowerModel, LeakageModel
from repro.units import validate_non_negative


@dataclass(frozen=True)
class CharacterizationSample:
    """One steady-state measurement from the characterization sweep."""

    utilization_pct: float
    fan_rpm: float
    avg_cpu_temperature_c: float
    #: Server PSU power (everything except externally powered fans), W.
    compute_power_w: float
    #: Fan bank power measured at the external supplies, W.
    fan_power_w: float


@dataclass(frozen=True)
class FitQuality:
    """Goodness-of-fit metrics for a model fit."""

    rmse_w: float
    max_abs_error_w: float
    r_squared: float

    @property
    def accuracy_pct(self) -> float:
        """``100 * R^2`` — the paper's "98% accuracy" convention."""
        return 100.0 * self.r_squared


@dataclass(frozen=True)
class FittedPowerModel:
    """The identified decomposition ``C + k1*U + k2*exp(k3*T)``."""

    c_w: float
    k1_w_per_pct: float
    k2_w: float
    k3_per_c: float
    quality: FitQuality

    @property
    def active(self) -> ActivePowerModel:
        """The active-power component."""
        return ActivePowerModel(k1_w_per_pct=self.k1_w_per_pct)

    @property
    def leakage(self) -> LeakageModel:
        """The leakage component (constant C attributed here)."""
        return LeakageModel(c_w=self.c_w, k2_w=self.k2_w, k3_per_c=self.k3_per_c)

    def predict_compute_power_w(self, utilization_pct, temperature_c):
        """Predicted PSU power at (U, T)."""
        u = np.asarray(utilization_pct, dtype=float)
        t = np.asarray(temperature_c, dtype=float)
        result = self.c_w + self.k1_w_per_pct * u + self.k2_w * np.exp(
            self.k3_per_c * t
        )
        if np.isscalar(utilization_pct) and np.isscalar(temperature_c):
            return float(result)
        return result

    def leakage_variable_w(self, temperature_c):
        """Temperature-dependent leakage term ``k2 * exp(k3*T)``."""
        return self.leakage.variable_power_w(temperature_c)


def _fit_quality(measured: np.ndarray, predicted: np.ndarray) -> FitQuality:
    residual = measured - predicted
    rmse = float(np.sqrt(np.mean(residual**2)))
    max_abs = float(np.max(np.abs(residual)))
    ss_res = float(np.sum(residual**2))
    ss_tot = float(np.sum((measured - np.mean(measured)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitQuality(rmse_w=rmse, max_abs_error_w=max_abs, r_squared=r_squared)


def fit_power_model(
    samples: Sequence[CharacterizationSample],
    k3_bounds: Tuple[float, float] = (1e-4, 0.2),
) -> FittedPowerModel:
    """Identify ``C, k1, k2, k3`` from characterization samples.

    Strategy: for a trial ``k3``, the model is linear in
    ``(C, k1, k2)`` and solved exactly by least squares; a bounded
    scalar minimization over ``k3`` then finds the best exponent.  This
    is far more robust than a 4-parameter ``curve_fit`` because the
    exponential prefactor and exponent are strongly correlated.
    """
    if len(samples) < 4:
        raise ValueError("need at least 4 samples to identify 4 parameters")
    u = np.array([s.utilization_pct for s in samples])
    t = np.array([s.avg_cpu_temperature_c for s in samples])
    p = np.array([s.compute_power_w for s in samples])

    if np.ptp(u) == 0.0:
        raise ValueError("samples must span multiple utilization levels")
    if np.ptp(t) == 0.0:
        raise ValueError("samples must span multiple temperatures")

    def linear_solve(k3: float) -> Tuple[np.ndarray, float]:
        design = np.column_stack([np.ones_like(u), u, np.exp(k3 * t)])
        coeffs, _, _, _ = np.linalg.lstsq(design, p, rcond=None)
        residual = p - design @ coeffs
        return coeffs, float(np.sum(residual**2))

    result = optimize.minimize_scalar(
        lambda k3: linear_solve(k3)[1],
        bounds=k3_bounds,
        method="bounded",
        options={"xatol": 1e-7},
    )
    k3 = float(result.x)
    (c_w, k1, k2), _ = linear_solve(k3)

    if k2 < 0:
        # A negative prefactor means the data shows no positive
        # temperature dependence; refit without the exponential term.
        design = np.column_stack([np.ones_like(u), u])
        (c_w, k1), _, _, _ = np.linalg.lstsq(design, p, rcond=None)
        k2, k3 = 0.0, 0.0

    fitted = FittedPowerModel(
        c_w=float(c_w),
        k1_w_per_pct=float(max(k1, 0.0)),
        k2_w=float(max(k2, 0.0)),
        k3_per_c=float(k3),
        quality=_fit_quality(p, c_w + k1 * u + k2 * np.exp(k3 * t)),
    )
    return fitted


def fit_fan_power_model(
    rpms: Sequence[float],
    powers_w: Sequence[float],
    rpm_ref: float = 4200.0,
) -> FanPowerModel:
    """Fit the cubic-law fan model to measured (rpm, power) pairs.

    The exponent is fitted too, verifying the "fan power is a cubic
    function of fan speed" premise rather than assuming it.
    """
    rpms_arr = np.asarray(rpms, dtype=float)
    powers_arr = np.asarray(powers_w, dtype=float)
    if rpms_arr.shape != powers_arr.shape or rpms_arr.size < 2:
        raise ValueError("need at least two (rpm, power) pairs")
    validate_non_negative(float(np.min(powers_arr)), "fan power")
    if np.any(rpms_arr <= 0):
        raise ValueError("rpms must be positive")

    # log(P) = log(coeff) + n * log(rpm / rpm_ref): linear in logs.
    mask = powers_arr > 0
    if mask.sum() < 2:
        raise ValueError("need at least two positive power samples")
    x = np.log(rpms_arr[mask] / rpm_ref)
    y = np.log(powers_arr[mask])
    exponent, log_coeff = np.polyfit(x, y, 1)
    return FanPowerModel(
        coeff_w=float(np.exp(log_coeff)),
        exponent=float(exponent),
        rpm_ref=rpm_ref,
    )

"""Analytical power model forms from the paper's Eqn. (1)-(2).

``P_total = P_active + P_leak + P_fan`` with
``P_active = k1 * U`` and ``P_leak = C + k2 * exp(k3 * T)``.

These classes are the *model* side of the reproduction: they are what
the fitting pipeline produces and what the LUT builder consumes.  The
simulator's ground truth lives in :mod:`repro.server.power`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import validate_non_negative

#: The constants the paper reports from its fit (§IV).
PAPER_K1_W_PER_PCT = 0.4452
PAPER_K2_W = 0.3231
PAPER_K3_PER_C = 0.04749
PAPER_FIT_ERROR_W = 2.243
PAPER_FIT_ACCURACY_PCT = 98.0


@dataclass(frozen=True)
class LeakageModel:
    """``P_leak(T) = C + k2 * exp(k3 * T)`` — Eqn. (2)."""

    c_w: float
    k2_w: float
    k3_per_c: float

    def __post_init__(self) -> None:
        validate_non_negative(self.k2_w, "k2_w")
        validate_non_negative(self.k3_per_c, "k3_per_c")

    def power_w(self, temperature_c):
        """Leakage power at *temperature_c* (scalar or array)."""
        t = np.asarray(temperature_c, dtype=float)
        result = self.c_w + self.k2_w * np.exp(self.k3_per_c * t)
        return float(result) if np.isscalar(temperature_c) else result

    def variable_power_w(self, temperature_c):
        """The temperature-dependent part only, ``k2 * exp(k3 * T)``.

        This is the term that trades off against fan power; the
        constant ``C`` cannot be influenced by cooling.
        """
        t = np.asarray(temperature_c, dtype=float)
        result = self.k2_w * np.exp(self.k3_per_c * t)
        return float(result) if np.isscalar(temperature_c) else result

    def slope_w_per_c(self, temperature_c: float) -> float:
        """d P_leak / dT at *temperature_c* — the leakage sensitivity."""
        return self.k2_w * self.k3_per_c * math.exp(self.k3_per_c * temperature_c)

    @classmethod
    def paper_fit(cls, c_w: float = 0.0) -> "LeakageModel":
        """The paper's published constants (k2, k3); C is not reported."""
        return cls(c_w=c_w, k2_w=PAPER_K2_W, k3_per_c=PAPER_K3_PER_C)


@dataclass(frozen=True)
class ActivePowerModel:
    """``P_active(U) = k1 * U`` with U in percent — Eqn. (2)."""

    k1_w_per_pct: float

    def __post_init__(self) -> None:
        validate_non_negative(self.k1_w_per_pct, "k1_w_per_pct")

    def power_w(self, utilization_pct):
        """Active power at *utilization_pct* (scalar or array)."""
        u = np.asarray(utilization_pct, dtype=float)
        result = self.k1_w_per_pct * u
        return float(result) if np.isscalar(utilization_pct) else result

    @classmethod
    def paper_fit(cls) -> "ActivePowerModel":
        """The paper's published k1."""
        return cls(k1_w_per_pct=PAPER_K1_W_PER_PCT)


@dataclass(frozen=True)
class FanPowerModel:
    """``P_fan(rpm) = coeff * (rpm / rpm_ref) ** exponent`` for the bank."""

    coeff_w: float
    exponent: float
    rpm_ref: float

    def __post_init__(self) -> None:
        validate_non_negative(self.coeff_w, "coeff_w")
        if self.exponent < 1.0:
            raise ValueError("exponent must be >= 1")
        if self.rpm_ref <= 0:
            raise ValueError("rpm_ref must be positive")

    def power_w(self, rpm):
        """Bank power at *rpm* (scalar or array)."""
        r = np.asarray(rpm, dtype=float)
        result = self.coeff_w * (r / self.rpm_ref) ** self.exponent
        return float(result) if np.isscalar(rpm) else result

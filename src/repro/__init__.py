"""repro — reproduction of *Leakage and Temperature Aware Server
Control for Improving Energy Efficiency in Data Centers* (Zapater et
al., DATE 2013).

The package builds the paper's full stack on a calibrated server
simulator: characterization sweeps, the empirical leakage model fit,
LUT construction, and the runtime fan controllers, plus the experiment
harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import (
        build_paper_lut, LUTController, run_experiment,
        build_test3_random_steps,
    )

    lut = build_paper_lut()
    result = run_experiment(LUTController(lut), build_test3_random_steps())
    print(result.metrics)
"""

from repro.core import (
    BangBangController,
    CoordinatedController,
    ControllerObservation,
    FanController,
    FixedSpeedController,
    LookupTable,
    LUTController,
    ModelPredictiveController,
    OracleController,
    PIController,
    ThermalMap,
    build_lut_from_characterization,
    build_mpc_from_characterization,
    build_lut_from_spec,
    optimal_fan_speed,
)
from repro.experiments import (
    ExperimentConfig,
    ExperimentMetrics,
    ExperimentProtocol,
    ExperimentResult,
    build_table1,
    compute_metrics,
    energy_kwh,
    fig1a_series,
    fig1b_series,
    fig2a_series,
    fig2b_series,
    fig3_series,
    net_savings_pct,
    render_table1,
    run_characterization_steady,
    run_characterization_transient,
    run_constant_load_experiment,
    run_experiment,
)
from repro.experiments.report import build_paper_lut, paper_controllers
from repro.models import (
    ActivePowerModel,
    CharacterizationSample,
    FanPowerModel,
    FittedPowerModel,
    LeakageModel,
    fit_fan_power_model,
    fit_power_model,
    steady_state_map,
    steady_state_point,
)
from repro.server import (
    ConstantAmbient,
    DvfsSpec,
    PState,
    default_dvfs_ladder,
    ServerSimulator,
    ServerSpec,
    default_server_spec,
)
from repro.workloads import (
    LoadGen,
    MMcQueueSimulator,
    UtilizationMonitor,
    build_test1_ramp,
    build_test2_periods,
    build_test3_random_steps,
    build_test4_stochastic,
    paper_test_profiles,
)

__version__ = "1.0.0"

__all__ = [
    "BangBangController",
    "CoordinatedController",
    "ControllerObservation",
    "FanController",
    "FixedSpeedController",
    "LookupTable",
    "LUTController",
    "ModelPredictiveController",
    "OracleController",
    "PIController",
    "ThermalMap",
    "build_lut_from_characterization",
    "build_mpc_from_characterization",
    "build_lut_from_spec",
    "optimal_fan_speed",
    "ExperimentConfig",
    "ExperimentMetrics",
    "ExperimentProtocol",
    "ExperimentResult",
    "build_table1",
    "compute_metrics",
    "energy_kwh",
    "fig1a_series",
    "fig1b_series",
    "fig2a_series",
    "fig2b_series",
    "fig3_series",
    "net_savings_pct",
    "render_table1",
    "run_characterization_steady",
    "run_characterization_transient",
    "run_constant_load_experiment",
    "run_experiment",
    "build_paper_lut",
    "paper_controllers",
    "ActivePowerModel",
    "CharacterizationSample",
    "FanPowerModel",
    "FittedPowerModel",
    "LeakageModel",
    "fit_fan_power_model",
    "fit_power_model",
    "steady_state_map",
    "steady_state_point",
    "ConstantAmbient",
    "DvfsSpec",
    "PState",
    "default_dvfs_ladder",
    "ServerSimulator",
    "ServerSpec",
    "default_server_spec",
    "LoadGen",
    "MMcQueueSimulator",
    "UtilizationMonitor",
    "build_test1_ramp",
    "build_test2_periods",
    "build_test3_random_steps",
    "build_test4_stochastic",
    "paper_test_profiles",
    "__version__",
]

"""Command-line interface: the paper's workflow as subcommands.

::

    python -m repro characterize --output samples.csv
    python -m repro fit --samples samples.csv
    python -m repro lut --samples samples.csv --output lut.json
    python -m repro run --controller lut --test test3 --lut lut.json
    python -m repro table1
    python -m repro fig --figure 2a
    python -m repro fleet --racks 2 --servers-per-rack 4 --policy coolest-first
    python -m repro fleet --controller coordinated --policy dvfs-aware
    python -m repro fleet --faults drill.json

Every subcommand prints plain text and writes optional artifacts, so
the full reproduction can be driven from a shell with no Python.
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import logging
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.core.controllers.bangbang import BangBangController
from repro.core.controllers.coordinated import CoordinatedController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.lut import LUTController
from repro.core.controllers.mpc import build_mpc_from_characterization
from repro.core.controllers.oracle import OracleController
from repro.core.controllers.pid import PIController
from repro.core.lut import LookupTable, build_lut_from_characterization
from repro.engine.checkpoint import (
    EX_TEMPFAIL,
    CheckpointConfig,
    CheckpointError,
    RunInterrupted,
)
from repro.experiments.characterization import run_characterization_steady
from repro.experiments.report import (
    build_paper_lut,
    build_table1,
    fig1a_series,
    fig1b_series,
    fig2a_series,
    fig2b_series,
    fig3_series,
    render_table1,
)
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.models.fitting import (
    CharacterizationSample,
    fit_fan_power_model,
    fit_power_model,
)
from repro.fleet import (
    PLACEMENT_POLICIES,
    FaultSchedule,
    FleetEngine,
    FleetScheduler,
    build_uniform_fleet,
)
from repro.reporting import ascii_chart, format_table, sparkline
from repro.server.dvfs import default_dvfs_ladder
from repro.server.specs import default_server_spec
from repro.sweep import (
    DEFAULT_CACHE_DIR,
    build_fleet_workload,
    fleet_grid,
    run_sweep,
)
from repro.units import hours, kilowatts_to_watts
from repro.workloads.tests import paper_test_profiles

SAMPLE_COLUMNS = (
    "utilization_pct",
    "fan_rpm",
    "avg_cpu_temperature_c",
    "compute_power_w",
    "fan_power_w",
)


def _write_samples(samples: Sequence[CharacterizationSample], path: Path) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SAMPLE_COLUMNS)
        for s in samples:
            writer.writerow(
                [
                    s.utilization_pct,
                    s.fan_rpm,
                    s.avg_cpu_temperature_c,
                    s.compute_power_w,
                    s.fan_power_w,
                ]
            )


def _read_samples(path: Path) -> List[CharacterizationSample]:
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(SAMPLE_COLUMNS) - set(reader.fieldnames or ())
        if missing:
            raise SystemExit(f"samples file missing columns: {sorted(missing)}")
        return [
            CharacterizationSample(
                utilization_pct=float(row["utilization_pct"]),
                fan_rpm=float(row["fan_rpm"]),
                avg_cpu_temperature_c=float(row["avg_cpu_temperature_c"]),
                compute_power_w=float(row["compute_power_w"]),
                fan_power_w=float(row["fan_power_w"]),
            )
            for row in reader
        ]


def _samples_or_default(args) -> List[CharacterizationSample]:
    if args.samples is not None:
        return _read_samples(Path(args.samples))
    return run_characterization_steady(seed=args.seed)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_characterize(args) -> int:
    samples = run_characterization_steady(
        seed=args.seed, aggregate=not args.raw
    )
    rows = [
        [
            f"{s.utilization_pct:.0f}",
            f"{s.fan_rpm:.0f}",
            f"{s.avg_cpu_temperature_c:.1f}",
            f"{s.compute_power_w:.1f}",
            f"{s.fan_power_w:.1f}",
        ]
        for s in samples
    ]
    print(format_table(["util%", "rpm", "T(C)", "P_compute(W)", "P_fan(W)"], rows))
    if args.output:
        _write_samples(samples, Path(args.output))
        print(f"\nwrote {len(samples)} samples to {args.output}")
    return 0


def cmd_fit(args) -> int:
    samples = _samples_or_default(args)
    fitted = fit_power_model(samples)
    fan = fit_fan_power_model(
        [s.fan_rpm for s in samples], [s.fan_power_w for s in samples]
    )
    print("power model: P_compute = C + k1*U + k2*exp(k3*T)")
    print(f"  C  = {fitted.c_w:.2f} W")
    print(f"  k1 = {fitted.k1_w_per_pct:.4f} W/%")
    print(f"  k2 = {fitted.k2_w:.4f} W")
    print(f"  k3 = {fitted.k3_per_c:.5f} /degC")
    print(
        f"  RMSE = {fitted.quality.rmse_w:.3f} W, "
        f"accuracy = {fitted.quality.accuracy_pct:.2f}%"
    )
    print(
        f"fan model: P_fan = {fan.coeff_w:.1f} W * (rpm/{fan.rpm_ref:.0f})"
        f"^{fan.exponent:.2f}"
    )
    return 0


def cmd_lut(args) -> int:
    samples = _samples_or_default(args)
    fitted = fit_power_model(samples)
    fan = fit_fan_power_model(
        [s.fan_rpm for s in samples], [s.fan_power_w for s in samples]
    )
    lut, results = build_lut_from_characterization(
        samples, fitted, fan, max_temperature_c=args.max_temp
    )
    rows = [
        [
            f"{r.utilization_pct:.0f}",
            f"{r.fan_rpm:.0f}",
            f"{r.predicted_temperature_c:.1f}",
            f"{r.predicted_leak_plus_fan_w:.1f}",
        ]
        for r in results
    ]
    print(format_table(["util%", "rpm", "T_pred(C)", "leak+fan(W)"], rows))
    if args.output:
        lut.save(Path(args.output))
        print(f"\nwrote LUT to {args.output}")
    return 0


def _build_controller(name: str, args):
    if name == "default":
        return FixedSpeedController(rpm=args.rpm)
    if name == "bangbang":
        return BangBangController()
    if name == "pi":
        return PIController()
    if name == "oracle":
        return OracleController()
    if name == "lut":
        if args.lut:
            lut = LookupTable.load(Path(args.lut))
        else:
            lut = build_paper_lut(seed=args.seed)
        return LUTController(lut)
    if name == "mpc":
        samples = _samples_or_default(args)
        fitted = fit_power_model(samples)
        fan = fit_fan_power_model(
            [s.fan_rpm for s in samples], [s.fan_power_w for s in samples]
        )
        return build_mpc_from_characterization(samples, fitted, fan)
    raise SystemExit(f"unknown controller {name!r}")


def cmd_run(args) -> int:
    profiles = paper_test_profiles()
    if args.test not in profiles:
        raise SystemExit(f"unknown test {args.test!r} (have {sorted(profiles)})")
    controller = _build_controller(args.controller, args)
    result = run_experiment(
        controller, profiles[args.test], config=ExperimentConfig(seed=args.seed)
    )
    m = result.metrics
    print(f"controller : {result.controller_name}")
    print(f"test       : {args.test}")
    print(f"energy     : {m.energy_kwh:.4f} kWh (net {m.net_energy_kwh:.4f})")
    print(f"peak power : {m.peak_power_w:.0f} W")
    print(f"max temp   : {m.max_temperature_c:.1f} degC")
    print(f"fan changes: {m.fan_speed_changes}")
    print(f"avg RPM    : {m.avg_rpm:.0f}")
    if args.trace:
        path = result.recorder.to_csv(Path(args.trace))
        print(f"trace      : {path}")
    return 0


def cmd_table1(args) -> int:
    table = build_table1(config=ExperimentConfig(seed=args.seed))
    print(render_table1(table))
    return 0


def cmd_fig(args) -> int:
    if args.figure == "1a":
        series = fig1a_series(seed=args.seed)
        chart = {
            f"{rpm:.0f}RPM": (d["time_min"], d["cpu0_temp_c"])
            for rpm, d in sorted(series.items())
        }
        print(ascii_chart(chart, xlabel="time (min)", ylabel="temperature degC"))
    elif args.figure == "1b":
        series = fig1b_series(seed=args.seed)
        chart = {
            f"{u:.0f}%": (d["time_min"], d["cpu0_temp_c"])
            for u, d in sorted(series.items())
        }
        print(ascii_chart(chart, xlabel="time (min)", ylabel="temperature degC"))
    elif args.figure == "2a":
        data = fig2a_series()
        chart = {
            "leak": (data["temperature_c"], data["leakage_w"]),
            "fan": (data["temperature_c"], data["fan_power_w"]),
            "sum": (data["temperature_c"], data["leak_plus_fan_w"]),
        }
        print(ascii_chart(chart, xlabel="avg CPU temp (degC)", ylabel="power W"))
        best = int(np.argmin(data["leak_plus_fan_w"]))
        print(
            f"minimum {data['leak_plus_fan_w'][best]:.1f} W at "
            f"{data['temperature_c'][best]:.1f} degC / "
            f"{data['fan_rpm'][best]:.0f} RPM"
        )
    elif args.figure == "2b":
        series = fig2b_series()
        chart = {
            f"{u:.0f}%": (d["temperature_c"], d["leak_plus_fan_w"])
            for u, d in sorted(series.items())
        }
        print(ascii_chart(chart, xlabel="avg CPU temp (degC)", ylabel="leak+fan W"))
    elif args.figure == "3":
        series = fig3_series(seed=args.seed)
        chart = {
            scheme: (d["time_min"], d["max_cpu_temp_c"])
            for scheme, d in series.items()
        }
        print(ascii_chart(chart, xlabel="time (min)", ylabel="max CPU temp degC"))
    else:
        raise SystemExit(f"unknown figure {args.figure!r}")
    return 0


def _build_fleet_engine(args, backend: str) -> FleetEngine:
    """Shared fleet/workload/controller assembly for fleet-style commands."""
    if args.racks <= 0 or args.servers_per_rack <= 0:
        raise SystemExit("--racks and --servers-per-rack must be positive")
    if args.dt <= 0:
        raise SystemExit("--dt must be positive")
    if args.hours <= 0:
        raise SystemExit("--hours must be positive")
    spec = default_server_spec()
    if args.controller == "coordinated":
        # The coordinated fan+DVFS policy needs sockets with an actual
        # voltage/frequency ladder to actuate.
        spec = replace(spec, dvfs=default_dvfs_ladder())
    fleet = build_uniform_fleet(
        rack_count=args.racks,
        servers_per_rack=args.servers_per_rack,
        spec=spec,
        crac_supply_c=args.crac_supply,
    )
    try:
        profile = build_fleet_workload(
            args.workload, hours(args.hours), seed=args.seed
        )
    except ValueError as exc:
        raise SystemExit(f"cannot build {args.workload!r} workload: {exc}")
    faults = None
    if args.faults:
        try:
            faults = FaultSchedule.from_json(Path(args.faults))
            faults.validate_for(fleet)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load fault spec {args.faults!r}: {exc}")
    if args.controller in ("lut", "coordinated"):
        # build (or load) the LUT once and share it across all servers
        # instead of re-running the characterization per controller.
        if args.lut:
            lut = LookupTable.load(Path(args.lut))
        else:
            lut = build_paper_lut(seed=args.seed)
        if args.controller == "lut":
            factory = lambda index: LUTController(lut)  # noqa: E731
        else:
            factory = lambda index: CoordinatedController(  # noqa: E731
                lut, spec.dvfs
            )
    else:
        factory = lambda index: _build_controller(  # noqa: E731
            args.controller, args
        )

    sharded_kwargs = {}
    if getattr(args, "shards", None) is not None:
        sharded_kwargs["shards"] = args.shards
    if getattr(args, "trace_dir", None) is not None:
        sharded_kwargs["trace_dir"] = args.trace_dir
    if getattr(args, "barrier_timeout", None) is not None:
        sharded_kwargs["barrier_timeout_s"] = args.barrier_timeout
    if getattr(args, "checkpoint_dir", None) is not None:
        sharded_kwargs["checkpoint"] = CheckpointConfig(
            directory=args.checkpoint_dir,
            every_s=args.checkpoint_every,
            keep=args.checkpoint_keep,
            # serve has no --max-restarts (supervised restart is a
            # sharded-run concern); fall back to the config default
            max_restarts=getattr(args, "max_restarts", 2),
        )
    try:
        return FleetEngine(
            fleet,
            profile,
            scheduler=FleetScheduler(PLACEMENT_POLICIES[args.policy]()),
            controller_factory=factory,
            backend=backend,
            seed=args.seed,
            faults=faults,
            **sharded_kwargs,
        )
    except ValueError as exc:
        # e.g. --shards/--trace-dir without --backend sharded, or a
        # shard count exceeding the server count
        raise SystemExit(str(exc))


def cmd_fleet(args) -> int:
    engine = _build_fleet_engine(args, backend=args.backend)
    fleet = engine.fleet
    faults = engine.faults
    try:
        result = engine.run(dt_s=args.dt, resume_from=args.resume)
    except RunInterrupted as exc:
        # Exit-code hygiene: a stopped-but-checkpointed run is
        # resumable (EX_TEMPFAIL, 75); anything else is a failure.
        if exc.checkpoint_path is not None:
            print(
                f"run interrupted; resume with "
                f"--resume {exc.checkpoint_path}",
                file=sys.stderr,
            )
            return EX_TEMPFAIL
        print(f"run interrupted, no checkpoint: {exc}", file=sys.stderr)
        return 1
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 1
    m = result.metrics

    print(
        f"fleet      : {fleet.rack_count} racks x "
        f"{fleet.racks[0].server_count} servers "
        f"({fleet.server_count} total), CRAC {args.crac_supply:.1f} degC"
    )
    print(
        f"scenario   : {args.workload} x {args.hours:g} h, dt {args.dt:g} s, "
        f"policy {result.scheduler_name}, controller {result.controller_name}, "
        f"backend {result.backend}"
    )
    print()
    rows = [
        [
            rack.name,
            f"{rack.server_count}",
            f"{rack.energy_kwh:.3f}",
            f"{rack.fan_energy_kwh:.3f}",
            f"{rack.peak_power_w:.0f}",
            f"{rack.hot_spot_c:.1f}",
            f"{rack.mean_inlet_c:.2f}",
            f"{rack.mean_utilization_pct:.1f}",
            f"{rack.dvfs_deficit_pct_s:.1f}",
        ]
        for rack in m.racks
    ]
    rows.append(
        [
            "fleet",
            f"{m.server_count}",
            f"{m.energy_kwh:.3f}",
            f"{m.fan_energy_kwh:.3f}",
            f"{m.peak_power_w:.0f}",
            f"{m.hot_spot_c:.1f}",
            f"{m.mean_inlet_c:.2f}",
            f"{m.mean_utilization_pct:.1f}",
            f"{m.dvfs_deficit_pct_s:.1f}",
        ]
    )
    print(
        format_table(
            [
                "rack",
                "servers",
                "E(kWh)",
                "E_fan(kWh)",
                "peak(W)",
                "hotspot(C)",
                "inlet(C)",
                "util%",
                "deficit(%s)",
            ],
            rows,
        )
    )
    print()
    print(
        f"SLA        : {m.sla_unserved_pct_s:.1f} pct*s unserved demand + "
        f"{m.dvfs_deficit_pct_s:.1f} pct*s DVFS deficit = "
        f"{m.sla_total_pct_s:.1f} pct*s lost work over "
        f"{m.sla_violation_ticks} violation ticks"
    )
    if faults is not None:
        print(
            f"faults     : {len(faults)} events, {m.fault_time_s:.0f} s "
            f"in degraded operation ({m.fault_ticks} ticks); "
            f"{m.respilled_pct_s:.1f} pct*s respilled off outage servers, "
            f"{m.fault_sla_pct_s:.1f} pct*s SLA loss attributable to faults"
        )
    print(f"fleet power: {sparkline(result.fleet_power_w)}")
    return 0


def cmd_facility(args) -> int:
    from repro.facility import (
        CoolingPlant,
        FacilityEngine,
        PowerChain,
        build_diurnal_carbon_model,
        build_job_queue,
    )
    from repro.facility.workload import QUEUE_KINDS

    if args.racks <= 0 or args.servers_per_rack <= 0:
        raise SystemExit("--racks and --servers-per-rack must be positive")
    if args.dt <= 0 or args.hours <= 0:
        raise SystemExit("--dt and --hours must be positive")
    if args.arrivals not in QUEUE_KINDS:
        raise SystemExit(f"unknown arrival process {args.arrivals!r}")
    spec = default_server_spec()
    if args.controller == "coordinated":
        spec = replace(spec, dvfs=default_dvfs_ladder())
    fleet = build_uniform_fleet(
        rack_count=args.racks,
        servers_per_rack=args.servers_per_rack,
        spec=spec,
        crac_supply_c=args.crac_supply,
    )
    try:
        queue = build_job_queue(
            args.arrivals,
            server_count=fleet.server_count,
            duration_s=hours(args.hours),
            seed=args.seed,
            jobs_per_hour=args.jobs_per_hour,
            mean_work_pct_s=args.mean_work_minutes * 60.0 * 100.0,
        )
    except ValueError as exc:
        raise SystemExit(f"cannot build {args.arrivals!r} queue: {exc}")
    if args.controller in ("lut", "coordinated"):
        if args.lut:
            lut = LookupTable.load(Path(args.lut))
        else:
            lut = build_paper_lut(seed=args.seed)
        if args.controller == "lut":
            factory = lambda index: LUTController(lut)  # noqa: E731
        else:
            factory = lambda index: CoordinatedController(  # noqa: E731
                lut, spec.dvfs
            )
    else:
        factory = lambda index: _build_controller(  # noqa: E731
            args.controller, args
        )
    try:
        engine = FleetEngine(
            fleet,
            queue,
            scheduler=FleetScheduler(PLACEMENT_POLICIES[args.policy]()),
            controller_factory=factory,
            backend=args.backend,
            seed=args.seed,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    cooling = (
        None
        if args.no_cooling
        else CoolingPlant(supply_c=args.plant_supply)
    )
    rated_w = (
        kilowatts_to_watts(args.rated_kw)
        if args.rated_kw is not None
        else fleet.server_count * 600.0
    )
    power = None if args.no_power_chain else PowerChain(rated_power_w=rated_w)
    carbon = (
        None
        if args.no_carbon
        else build_diurnal_carbon_model(
            duration_s=hours(args.hours),
            base_g_per_kwh=args.carbon_base,
            peak_g_per_kwh=args.carbon_peak,
        )
    )
    facility = FacilityEngine(engine, cooling=cooling, power=power, carbon=carbon)
    result = facility.run(dt_s=args.dt)
    m = result.metrics
    q = m.queue

    print(
        f"facility   : {fleet.rack_count} racks x "
        f"{fleet.racks[0].server_count} servers "
        f"({fleet.server_count} total), CRAC {args.crac_supply:.1f} degC, "
        f"plant supply {args.plant_supply:.1f} degC"
    )
    print(
        f"scenario   : {args.arrivals} arrivals x {args.hours:g} h, "
        f"dt {args.dt:g} s, policy {result.fleet.scheduler_name}, "
        f"controller {result.fleet.controller_name}, backend "
        f"{result.fleet.backend}"
    )
    print()
    print(
        format_table(
            ["energy", "kWh"],
            [
                ["IT (racks)", f"{m.it_energy_kwh:.3f}"],
                ["cooling plant", f"{m.cooling_energy_kwh:.3f}"],
                ["UPS/PDU losses", f"{m.chain_loss_kwh:.3f}"],
                ["facility (utility)", f"{m.facility_energy_kwh:.3f}"],
            ],
        )
    )
    print()
    print(f"PUE        : {m.pue:.3f}")
    print(
        f"carbon     : {m.carbon_kg:.3f} kg CO2 "
        f"(mean intensity {m.mean_intensity_g_per_kwh:.0f} g/kWh)"
    )
    print(f"peak feed  : {m.peak_utility_power_w:.0f} W at the utility meter")
    if q is not None:
        print(
            f"queue      : {q.arrived} arrived = {q.completed} completed + "
            f"{q.running} running + {q.pending} pending"
            f"{' (drained)' if q.drained else ''}"
        )
        print(
            f"SLA        : {q.sla_violations} deadline violation(s), "
            f"mean wait {q.mean_wait_s:.0f} s, "
            f"mean turnaround {q.mean_turnaround_s:.0f} s"
        )
    print(f"utility W  : {sparkline(result.utility_power_w)}")
    return 0


def cmd_serve(args) -> int:
    from repro.obs import LiveTelemetryService, ServiceConfig

    engine = _build_fleet_engine(args, backend="vector")
    if args.time_scale < 0:
        raise SystemExit("--time-scale must be >= 0 (0 = fastest possible)")
    service = LiveTelemetryService(
        engine,
        config=ServiceConfig(
            host=args.host,
            port=args.port,
            dt_s=args.dt,
            time_scale=args.time_scale,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_s=args.checkpoint_every,
            checkpoint_keep=args.checkpoint_keep,
        ),
    )
    print(
        f"serving {engine.fleet.server_count}-server "
        f"{args.workload} x {args.hours:g} h scenario on "
        f"http://{args.host}:{args.port}  "
        f"(/metrics /channels /alerts /stream; Ctrl-C stops)"
    )
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:
        pass
    if service.interrupted_checkpoint is not None:
        # Graceful degradation: SIGTERM sealed a final checkpoint; the
        # next start with the same --checkpoint-dir resumes from it.
        print(
            f"interrupted; will resume from {service.interrupted_checkpoint}",
            file=sys.stderr,
        )
        return EX_TEMPFAIL
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import Baseline, LintEngine, render_json, render_text

    root = Path(args.root).resolve()
    engine = LintEngine(root)
    findings = engine.run([Path(p) for p in args.paths])

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    if args.write_baseline:
        Baseline().save(baseline_path, findings)
        print(
            f"wrote baseline with {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, old = LintEngine.split_baselined(findings, baseline)
    if args.report:
        Path(args.report).write_text(render_json(new, old))
    if args.format == "json":
        print(render_json(new, old), end="")
    else:
        print(render_text(new, old, baseline))
    return 1 if new else 0


def _parse_list(text: str, cast, option: str) -> List:
    """Split a comma-separated CLI value and cast each element."""
    items = [item.strip() for item in str(text).split(",") if item.strip()]
    if not items:
        raise SystemExit(f"{option} needs at least one value")
    try:
        return [cast(item) for item in items]
    except ValueError:
        raise SystemExit(f"{option}: cannot parse {text!r}")


def cmd_sweep(args) -> int:
    if args.racks <= 0:
        raise SystemExit("--racks must be positive")
    if args.hours <= 0 or args.dt <= 0:
        raise SystemExit("--hours and --dt must be positive")
    if args.workers < 0:
        raise SystemExit("--workers must be >= 0 (0 = one per core)")
    servers = _parse_list(args.servers_per_rack, int, "--servers-per-rack")
    if any(n <= 0 for n in servers):
        raise SystemExit("--servers-per-rack values must be positive")
    policies = _parse_list(args.policy, str, "--policy")
    for policy in policies:
        if policy not in PLACEMENT_POLICIES:
            raise SystemExit(
                f"unknown policy {policy!r} (have {sorted(PLACEMENT_POLICIES)})"
            )
    controllers = _parse_list(args.controller, str, "--controller")
    for controller in controllers:
        if controller not in ("default", "bangbang", "lut", "pi", "coordinated"):
            raise SystemExit(f"unknown controller {controller!r}")
    cracs = _parse_list(args.crac, float, "--crac")

    grid = fleet_grid(
        server_counts=servers,
        policies=policies,
        controllers=controllers,
        crac_supplies_c=cracs,
        racks=args.racks,
        workload=args.workload,
        hours=args.hours,
        dt_s=args.dt,
        seed=args.seed,
        backend=args.backend,
        shards=args.shards,
    )
    workers = args.workers if args.workers > 0 else None
    cache = None if args.no_cache else args.cache_dir
    # Progress lines flow through the executor's logger (see
    # repro.sweep.executor); --quiet swallows them, and the global
    # --log-level flag controls whether they reach the terminal.
    progress = (lambda line: None) if args.quiet else None  # noqa: E731
    table = run_sweep(
        grid,
        workers=workers,
        cache=cache,
        progress=progress,
        retries=args.retries,
        backoff_s=args.backoff,
    )

    failures = 0
    rows = []
    for row in table.rows():
        if row.get("error") is not None:
            failures += 1
            rows.append(
                [
                    f"{args.racks * row['servers_per_rack']}",
                    row["policy"],
                    row["controller"],
                    f"{row['crac_supply_c']:.1f}",
                    f"FAILED: {row['error']}",
                    "-",
                    "-",
                    "-",
                    "-",
                ]
            )
            continue
        rows.append(
            [
                f"{args.racks * row['servers_per_rack']}",
                row["policy"],
                row["controller"],
                f"{row['crac_supply_c']:.1f}",
                f"{row['energy_kwh']:.3f}",
                f"{row['fan_energy_kwh']:.3f}",
                f"{row['peak_power_w']:.0f}",
                f"{row['hot_spot_c']:.1f}",
                f"{row['sla_total_pct_s']:.1f}",
            ]
        )
    print(
        format_table(
            [
                "servers",
                "policy",
                "controller",
                "crac(C)",
                "E(kWh)",
                "E_fan(kWh)",
                "peak(W)",
                "hotspot(C)",
                "SLA(%s)",
            ],
            rows,
        )
    )
    print(
        f"\npoints     : {len(table)} total, {table.executed_count} executed, "
        f"{table.cache_hit_count} cached"
    )
    if cache is not None:
        print(f"cache      : {cache}")
    if failures:
        print(
            f"failures   : {failures} point(s) exhausted their retry "
            f"budget (kept uncached; re-run retries exactly those)"
        )
    if args.csv:
        path = table.to_csv(Path(args.csv))
        print(f"table      : {path}")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leakage/temperature-aware server control (DATE'13) reproduction",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        dest="log_level",
        help="logging threshold for all repro modules (sweep progress "
        "and serve alerts flow through logging)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="run the steady-state sweep")
    p.add_argument("--output", help="write samples CSV here")
    p.add_argument("--raw", action="store_true", help="keep raw per-poll samples")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("fit", help="fit the power/fan models")
    p.add_argument("--samples", help="samples CSV (default: run a sweep)")
    p.set_defaults(func=cmd_fit)

    p = sub.add_parser("lut", help="build the optimum-fan-speed table")
    p.add_argument("--samples", help="samples CSV (default: run a sweep)")
    p.add_argument("--output", help="write LUT JSON here")
    p.add_argument("--max-temp", type=float, default=75.0, dest="max_temp")
    p.set_defaults(func=cmd_lut)

    p = sub.add_parser("run", help="run one controller on one test workload")
    p.add_argument(
        "--controller",
        default="lut",
        choices=("default", "bangbang", "lut", "pi", "oracle", "mpc"),
    )
    p.add_argument("--test", default="test3")
    p.add_argument("--lut", help="LUT JSON for the lut controller")
    p.add_argument("--samples", help="samples CSV for the mpc controller")
    p.add_argument("--rpm", type=float, default=3300.0, help="default-controller RPM")
    p.add_argument("--trace", help="write the full trace CSV here")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("table1", help="regenerate Table I")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("fig", help="regenerate a figure as an ASCII chart")
    p.add_argument("--figure", required=True, choices=("1a", "1b", "2a", "2b", "3"))
    p.set_defaults(func=cmd_fig)

    p = sub.add_parser("fleet", help="run a multi-server fleet scenario")
    p.add_argument("--racks", type=int, default=2, help="number of racks")
    p.add_argument(
        "--servers-per-rack", type=int, default=4, dest="servers_per_rack"
    )
    p.add_argument(
        "--policy",
        default="coolest-first",
        choices=sorted(PLACEMENT_POLICIES),
        help="job placement policy",
    )
    p.add_argument(
        "--workload",
        default="diurnal",
        choices=("diurnal", "batch", "flashcrowd", "mixed"),
    )
    p.add_argument(
        "--controller",
        default="lut",
        choices=("default", "bangbang", "lut", "pi", "coordinated"),
        help="per-server fan (or coordinated fan+DVFS) controller",
    )
    p.add_argument("--hours", type=float, default=24.0, help="scenario length")
    p.add_argument("--dt", type=float, default=60.0, help="tick length, s")
    p.add_argument(
        "--crac-supply", type=float, default=24.0, dest="crac_supply",
        help="CRAC supply temperature, degC",
    )
    p.add_argument("--rpm", type=float, default=3300.0, help="default-controller RPM")
    p.add_argument("--lut", help="LUT JSON for the lut controller")
    p.add_argument(
        "--faults",
        help="JSON fault spec (list of sensor/fan/outage/crac events, "
        "see docs/faults.md) injected into the run",
    )
    p.add_argument(
        "--backend",
        default="vector",
        choices=("vector", "vector-legacy", "reference", "sharded"),
        help="vector = kernelized batch, vector-legacy = pre-kernel "
        "per-tick loop (equivalence oracle), reference = one "
        "ServerSimulator per server, sharded = multi-process workers "
        "with streamed traces (see docs/scaling.md)",
    )
    p.add_argument(
        "--shards",
        type=int,
        help="worker shard count for --backend sharded",
    )
    p.add_argument(
        "--trace-dir",
        dest="trace_dir",
        help="directory for streamed trace segments "
        "(--backend sharded; default: a self-cleaning temp dir)",
    )
    p.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        help="write periodic run checkpoints here (see docs/resilience.md); "
        "an interrupted run exits 75 and can continue with --resume",
    )
    p.add_argument(
        "--checkpoint-every",
        type=float,
        default=300.0,
        dest="checkpoint_every",
        help="checkpoint cadence in simulated seconds",
    )
    p.add_argument(
        "--checkpoint-keep",
        type=int,
        default=2,
        dest="checkpoint_keep",
        help="retained checkpoint generations",
    )
    p.add_argument(
        "--resume",
        help="continue a checkpointed run: a checkpoint directory, or a "
        "checkpoint root (resumes from its latest cut); the continued "
        "run is bit-identical to an uninterrupted one",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        dest="max_restarts",
        help="automatic in-run restarts of a crashed shard worker from "
        "the last checkpoint (--backend sharded with --checkpoint-dir)",
    )
    p.add_argument(
        "--barrier-timeout",
        type=float,
        dest="barrier_timeout",
        help="sharded tick-barrier timeout in seconds (default scales "
        "with the server count; env REPRO_BARRIER_TIMEOUT_S also works)",
    )
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "facility",
        help="run a facility-composed scenario: job queue -> fleet -> "
        "cooling plant -> power chain -> carbon",
    )
    p.add_argument("--racks", type=int, default=2, help="number of racks")
    p.add_argument(
        "--servers-per-rack", type=int, default=4, dest="servers_per_rack"
    )
    p.add_argument(
        "--policy",
        default="coolest-first",
        choices=sorted(PLACEMENT_POLICIES),
        help="job placement policy",
    )
    p.add_argument(
        "--arrivals",
        default="diurnal",
        choices=("poisson", "diurnal", "bursty"),
        help="job arrival process feeding the queue",
    )
    p.add_argument(
        "--jobs-per-hour",
        type=float,
        default=12.0,
        dest="jobs_per_hour",
        help="arrival rate (peak rate for diurnal arrivals)",
    )
    p.add_argument(
        "--mean-work-minutes",
        type=float,
        default=5.0,
        dest="mean_work_minutes",
        help="mean job size, minutes of one full server",
    )
    p.add_argument(
        "--controller",
        default="lut",
        choices=("default", "bangbang", "lut", "pi", "coordinated"),
        help="per-server fan (or coordinated fan+DVFS) controller",
    )
    p.add_argument("--hours", type=float, default=24.0, help="scenario length")
    p.add_argument("--dt", type=float, default=60.0, help="tick length, s")
    p.add_argument(
        "--crac-supply", type=float, default=24.0, dest="crac_supply",
        help="CRAC supply temperature, degC",
    )
    p.add_argument(
        "--plant-supply",
        type=float,
        default=24.0,
        dest="plant_supply",
        help="cooling-plant supply setpoint for the COP curve, degC",
    )
    p.add_argument(
        "--rated-kw",
        type=float,
        dest="rated_kw",
        help="UPS/PDU nameplate rating, kW (default: 0.6 kW per server)",
    )
    p.add_argument(
        "--carbon-base",
        type=float,
        default=120.0,
        dest="carbon_base",
        help="cleanest grid intensity, g CO2 per kWh",
    )
    p.add_argument(
        "--carbon-peak",
        type=float,
        default=450.0,
        dest="carbon_peak",
        help="dirtiest grid intensity, g CO2 per kWh",
    )
    p.add_argument(
        "--no-cooling",
        action="store_true",
        dest="no_cooling",
        help="disable the cooling plant (no cooling power)",
    )
    p.add_argument(
        "--no-power-chain",
        action="store_true",
        dest="no_power_chain",
        help="disable the UPS/PDU chain (lossless delivery)",
    )
    p.add_argument(
        "--no-carbon",
        action="store_true",
        dest="no_carbon",
        help="disable carbon accounting",
    )
    p.add_argument("--rpm", type=float, default=3300.0, help="default-controller RPM")
    p.add_argument("--lut", help="LUT JSON for the lut controller")
    p.add_argument(
        "--backend",
        default="vector",
        choices=("vector", "vector-legacy", "reference"),
        help="queue-driven demand is evaluated tick by tick, so the "
        "sharded backend is not available here",
    )
    p.set_defaults(func=cmd_facility)

    p = sub.add_parser(
        "sweep",
        help="run a cross-product fleet scenario sweep in parallel",
    )
    p.add_argument("--racks", type=int, default=2, help="racks per point")
    p.add_argument(
        "--servers-per-rack",
        default="2,4",
        dest="servers_per_rack",
        help="comma-separated axis, servers per rack",
    )
    p.add_argument(
        "--policy",
        default="round-robin,coolest-first",
        help="comma-separated placement-policy axis",
    )
    p.add_argument(
        "--controller",
        default="lut",
        help="comma-separated controller axis "
        "(default,bangbang,lut,pi,coordinated)",
    )
    p.add_argument(
        "--crac",
        default="24",
        help="comma-separated CRAC supply axis, degC",
    )
    p.add_argument(
        "--workload",
        default="diurnal",
        choices=("diurnal", "batch", "flashcrowd", "mixed"),
    )
    p.add_argument("--hours", type=float, default=24.0, help="scenario length")
    p.add_argument("--dt", type=float, default=60.0, help="tick length, s")
    p.add_argument(
        "--backend",
        default="vector",
        choices=("vector", "vector-legacy", "reference", "sharded"),
        help="vector = kernelized batch, vector-legacy = pre-kernel "
        "per-tick loop (equivalence oracle), reference = one "
        "ServerSimulator per server, sharded = multi-process workers "
        "with streamed traces (see docs/scaling.md)",
    )
    p.add_argument(
        "--shards",
        type=int,
        help="worker shard count per point for --backend sharded "
        "(enters the result-cache hash)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = one per core)",
    )
    p.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        dest="cache_dir",
        help="content-hash result cache directory",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="neither read nor write the result cache",
    )
    p.add_argument("--csv", help="write the tidy sweep table CSV here")
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="per-point retry budget: a point that still fails lands in "
        "the table as an error row while the rest of the grid completes",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        help="first retry delay in seconds (doubles per attempt)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run a fleet scenario live and serve its telemetry over HTTP",
    )
    p.add_argument("--racks", type=int, default=2, help="number of racks")
    p.add_argument(
        "--servers-per-rack", type=int, default=4, dest="servers_per_rack"
    )
    p.add_argument(
        "--policy",
        default="coolest-first",
        choices=sorted(PLACEMENT_POLICIES),
        help="job placement policy",
    )
    p.add_argument(
        "--workload",
        default="diurnal",
        choices=("diurnal", "batch", "flashcrowd", "mixed"),
    )
    p.add_argument(
        "--controller",
        default="pi",
        choices=("default", "bangbang", "lut", "pi", "coordinated"),
        help="per-server fan (or coordinated fan+DVFS) controller",
    )
    p.add_argument("--hours", type=float, default=12.0, help="scenario length")
    p.add_argument("--dt", type=float, default=60.0, help="tick length, s")
    p.add_argument(
        "--crac-supply", type=float, default=24.0, dest="crac_supply",
        help="CRAC supply temperature, degC",
    )
    p.add_argument("--rpm", type=float, default=3300.0, help="default-controller RPM")
    p.add_argument("--lut", help="LUT JSON for the lut controller")
    p.add_argument(
        "--faults",
        help="JSON fault spec injected into the run; detection is "
        "scored against it once the scenario completes",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8787, help="bind port")
    p.add_argument(
        "--time-scale",
        type=float,
        default=60.0,
        dest="time_scale",
        help="simulated seconds per wall second (0 = fastest possible)",
    )
    p.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        help="checkpoint the live run here: SIGTERM seals a final cut "
        "(exit 75) and the next start resumes from the latest one",
    )
    p.add_argument(
        "--checkpoint-every",
        type=float,
        default=300.0,
        dest="checkpoint_every",
        help="checkpoint cadence in simulated seconds",
    )
    p.add_argument(
        "--checkpoint-keep",
        type=int,
        default=2,
        dest="checkpoint_keep",
        help="retained checkpoint generations",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "lint",
        help="run the reprolint domain checkers (units, RNG, hot paths, "
        "trace schemas)",
    )
    p.add_argument("paths", nargs="+", help="files or directories to lint")
    p.add_argument(
        "--root",
        default=".",
        help="lint root; relative paths and the baseline resolve against it",
    )
    p.add_argument(
        "--baseline",
        default="reprolint-baseline.json",
        help="grandfathered-findings JSON (a missing file is empty)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        dest="write_baseline",
        help="capture the current findings as the new baseline and exit 0",
    )
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.add_argument("--report", help="also write the JSON report to this path")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(message)s",
    )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Project-wide configuration for the ``reprolint`` checkers.

Everything domain-specific the rules need lives here in one place: the
unit-suffix lexicon (mirroring the conventions documented in
:mod:`repro.units`), the sanctioned unit-conversion functions, the
modules allowed to construct RNGs, the marked hot functions, and the
trace-schema surface.  Rules import from this module only, so adding a
new unit or hot function never requires touching checker logic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

#: Recognized unit-suffix strings, longest-match-first at the *end* of
#: a ``snake_case`` name, mapped to a canonical unit token.  Compound
#: suffixes (rates, products, thermal resistances) must precede their
#: components so ``sla_total_pct_s`` reads as percent-seconds, not
#: seconds.  Single-letter suffixes additionally require a stem of at
#: least two characters (``time_s`` carries a unit, the physics-local
#: ``t_j`` / ``c_j`` subscripts do not).
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("g_per_kwh", "g/kWh"),
    ("w_per_pct", "W/%"),
    ("w_per_c", "W/degC"),
    ("w_per_k", "W/K"),
    ("rpm_per_s", "RPM/s"),
    ("j_kg_k", "J/(kg*K)"),
    ("kg_m3", "kg/m^3"),
    ("pct_s", "%*s"),
    ("m3_s", "m^3/s"),
    ("per_c", "1/degC"),
    ("k_w", "K/W"),
    ("j_k", "J/K"),
    ("kwh", "kWh"),
    ("rpm", "RPM"),
    ("kg", "kg"),
    ("cfm", "CFM"),
    ("pct", "%"),
    ("hz", "Hz"),
    ("c", "degC"),
    ("w", "W"),
    ("s", "s"),
    ("j", "J"),
    ("v", "V"),
    ("a", "A"),
)

#: Minimum stem length (characters before the suffix) for
#: single-letter unit suffixes; filters physics subscripts like
#: ``t_j`` / ``c_h`` / ``q_ma`` out of the lexicon.
SINGLE_LETTER_MIN_STEM = 2

#: :mod:`repro.units` conversion functions, as sanctioned casts: a
#: call yields the mapped unit regardless of the argument's unit.
CONVERSION_RESULT_UNITS: Mapping[str, str] = {
    "minutes": "s",
    "hours": "s",
    "joules_to_kwh": "kWh",
    "kwh_to_joules": "J",
    "cfm_to_m3_s": "m^3/s",
    "m3_s_to_cfm": "CFM",
    "grams_to_kilograms": "kg",
    "kilowatts_to_watts": "W",
    "validate_temperature_c": "degC",
    "validate_utilization_pct": "%",
}

#: Builtins that return a value in the same unit as their argument(s).
UNIT_PRESERVING_CALLS: FrozenSet[str] = frozenset(
    {"float", "abs", "min", "max", "round", "sum"}
)

#: Modules (``/``-separated path suffixes relative to the lint root)
#: allowed to construct RNGs via ``np.random.default_rng``.  Keeping
#: construction confined to these entry points is what keeps the
#: repository's draw-order contracts auditable: every bit-identity
#: test (kernel vs. reference, vector vs. legacy, serial vs. parallel
#: sweeps) relies on knowing exactly who draws from which stream.
RNG_ENTRY_MODULES: FrozenSet[str] = frozenset(
    {
        "repro/server/server.py",
        "repro/server/faults.py",
        "repro/workloads/datacenter.py",
        "repro/workloads/queuing.py",
        "repro/workloads/profile.py",
        "repro/facility/workload.py",
    }
)

#: Marked hot functions: ``module-path-suffix -> qualified names``.
#: Inside these, per-tick allocation (allocating numpy calls,
#: list-appends in loops, comprehensions) is flagged by R003 —
#: PR 4's kernelization exists precisely to keep these loops
#: allocation-free.  Functions carrying a ``# reprolint: hot`` marker
#: comment on their ``def`` line are treated identically.
HOT_FUNCTIONS: Mapping[str, FrozenSet[str]] = {
    "repro/engine/kernel.py": frozenset(
        {
            "SingleServerKernel.integrate",
            "FleetVectorKernel.step_into",
        }
    ),
    "repro/telemetry/recorder.py": frozenset(
        {"TraceRecorder.record_chunk"}
    ),
    "repro/engine/sharded.py": frozenset(
        {
            "_ShardWorker.step",
            "_ShardWorker.maybe_checkpoint",
            "_Coordinator.begin_tick",
            "_Coordinator.maybe_request_checkpoint",
            "_Coordinator.maybe_commit_checkpoint",
        }
    ),
    "repro/telemetry/segments.py": frozenset(
        {"ShardTraceWriter.record_chunk"}
    ),
    "repro/facility/workload.py": frozenset(
        {
            "WorkloadQueue.total_demand_pct",
            "WorkloadQueue.record_executed",
        }
    ),
}

#: numpy namespace calls that allocate a fresh array per invocation.
ALLOCATING_NP_CALLS: FrozenSet[str] = frozenset(
    {
        "array",
        "asarray",
        "asanyarray",
        "ascontiguousarray",
        "empty",
        "empty_like",
        "zeros",
        "zeros_like",
        "ones",
        "ones_like",
        "full",
        "full_like",
        "concatenate",
        "append",
        "stack",
        "vstack",
        "hstack",
        "dstack",
        "column_stack",
        "tile",
        "repeat",
        "arange",
        "linspace",
        "copy",
    }
)

#: Module-level constants whose names end with this suffix declare a
#: trace schema (a tuple of column-name strings).
SCHEMA_CONSTANT_SUFFIX = "TRACE_COLUMNS"

#: Column names legitimately recorded/consumed outside any declared
#: ``*TRACE_COLUMNS`` schema (sweep tables carry per-kind metric
#: columns assembled dynamically by the scenario runners).
EXTRA_TRACE_COLUMNS: FrozenSet[str] = frozenset()

#: Rule identifiers, in catalog order.
RULE_IDS: Tuple[str, ...] = ("R001", "R002", "R003", "R004")

#: One-line rule summaries (also rendered by the reporters).
RULE_SUMMARIES: Dict[str, str] = {
    "R001": "unit-consistency: no cross-unit arithmetic on suffixed names",
    "R002": "RNG discipline: seeded Generators, constructed only at entry points",
    "R003": "hot-path allocation: marked kernels stay allocation-free",
    "R004": "trace-schema consistency: recorded/consumed columns match schemas",
}

"""Render lint findings as human text or a machine-readable JSON report."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.config import RULE_SUMMARIES
from repro.analysis.engine import Baseline, Finding

#: Schema version of the JSON report document.
REPORT_VERSION = 1


def render_text(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    baseline: Optional[Baseline] = None,
) -> str:
    """One line per new finding plus a summary footer."""
    lines: List[str] = [finding.render() for finding in new]
    if new:
        per_rule: Dict[str, int] = {}
        for finding in new:
            per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(f"{len(new)} finding(s): {breakdown}")
        for rule in sorted(per_rule):
            lines.append(f"  {rule}: {RULE_SUMMARIES.get(rule, '')}")
    else:
        lines.append("reprolint: clean (0 new findings)")
    if baselined:
        lines.append(f"{len(baselined)} baselined finding(s) suppressed")
    if baseline is not None and baseline.path is not None and len(baseline):
        lines.append(f"baseline: {baseline.path} ({len(baseline)} entries)")
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
) -> str:
    """Stable JSON document with new and baselined findings."""

    def encode(finding: Finding) -> Dict[str, object]:
        """One finding as a JSON-ready mapping."""
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "fingerprint": finding.fingerprint,
        }

    document = {
        "version": REPORT_VERSION,
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
        },
        "findings": [encode(f) for f in new],
        "baselined": [encode(f) for f in baselined],
    }
    return json.dumps(document, indent=1, sort_keys=True) + "\n"

"""AST lint engine: file model, suppression, baseline, rule driver.

The engine parses every target file once, hands each rule a
two-phase pass over the whole file set — ``collect`` (build cross-file
state, e.g. the union of declared trace schemas) then ``check`` (emit
findings) — and post-filters findings through per-line suppression
comments and the committed JSON baseline:

* ``# reprolint: disable=R001`` on a line suppresses the named
  rule(s) for findings anchored to that line (comma-separate several,
  or ``disable=all``).
* ``# reprolint: disable-file=R001`` anywhere in a file suppresses
  the rule for the whole file.
* A baseline file (see :class:`Baseline`) grandfathers existing
  findings by stable fingerprint, so the CI gate fails only on *new*
  findings while the backlog is burned down explicitly.

Fingerprints hash the rule id, the file's path relative to the lint
root, and the stripped source line text (plus an occurrence counter
for repeated lines) — never the line *number*, so unrelated edits
above a grandfathered finding do not invalidate the baseline.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Matches one suppression comment; group 1 is ``disable`` or
#: ``disable-file``, group 2 the comma-separated rule list.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)

#: Matches the hot-function marker comment on a ``def`` line.
_HOT_MARKER_RE = re.compile(r"#\s*reprolint:\s*hot\b")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line."""

    #: Rule identifier (``R001`` .. ``R004``).
    rule: str
    #: Path relative to the lint root, ``/``-separated.
    path: str
    #: 1-indexed source line.
    line: int
    #: 0-indexed column.
    col: int
    #: Human-readable description of the violation.
    message: str
    #: Stable identity for baselining (line-number independent).
    fingerprint: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (the text reporter's row)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceFile:
    """One parsed lint target: source text, AST, and suppressions."""

    def __init__(self, path: Path, relpath: str, text: str):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        #: 1-indexed line -> rule ids suppressed on that line.
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: Rule ids suppressed for the whole file.
        self.file_suppressions: Set[str] = set()
        #: 1-indexed lines carrying a ``# reprolint: hot`` marker.
        self._hot_lines: Set[int] = set()
        for number, line in enumerate(self.lines, start=1):
            if "reprolint" not in line:
                continue
            if _HOT_MARKER_RE.search(line):
                self._hot_lines.add(number)
            for match in _SUPPRESS_RE.finditer(line):
                rules = {
                    item.strip().upper()
                    for item in match.group(2).split(",")
                    if item.strip()
                }
                if match.group(1) == "disable-file":
                    self.file_suppressions |= rules
                else:
                    self.line_suppressions.setdefault(number, set()).update(
                        rules
                    )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether *rule* findings on *line* are suppressed."""
        for rules in (
            self.file_suppressions,
            self.line_suppressions.get(line, ()),
        ):
            if rule in rules or "ALL" in rules:
                return True
        return False

    def has_hot_marker(self, line: int) -> bool:
        """Whether the ``def`` on *line* carries the hot marker."""
        return line in self._hot_lines

    def line_text(self, line: int) -> str:
        """The 1-indexed source line (empty string when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Rule:
    """Base class for one checker; subclasses override the hooks."""

    #: Rule identifier, e.g. ``"R001"``.
    id: str = ""
    #: One-line summary rendered in reports.
    summary: str = ""

    def begin_run(self, files: Sequence[SourceFile]) -> None:
        """Reset per-run state before any collect/check call."""

    def collect(self, file: SourceFile) -> None:
        """Phase 1: accumulate cross-file state (optional)."""

    def check(self, file: SourceFile) -> Iterable[Tuple[int, int, str]]:
        """Phase 2: yield ``(line, col, message)`` violations."""
        return ()

    def finish_run(self) -> Iterable[Tuple[str, int, int, str]]:
        """Optional run-level findings: ``(relpath, line, col, message)``."""
        return ()


@dataclass
class Baseline:
    """Committed fingerprints of grandfathered findings.

    The JSON document maps fingerprints to a descriptive entry (rule,
    path, message at capture time) purely for human review — matching
    uses the fingerprint keys only.
    """

    path: Optional[Path] = None
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    VERSION = 1

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        with path.open("r") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or "findings" not in document:
            raise ValueError(
                f"{path}: not a reprolint baseline (missing 'findings')"
            )
        entries = document["findings"]
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: baseline 'findings' must be an object")
        return cls(path=path, entries=dict(entries))

    def save(self, path: Path, findings: Sequence[Finding]) -> None:
        """Write *findings* as the new baseline document."""
        document = {
            "version": self.VERSION,
            "findings": {
                f.fingerprint: {
                    "rule": f.rule,
                    "path": f.path,
                    "message": f.message,
                }
                for f in sorted(
                    findings, key=lambda f: (f.path, f.line, f.rule)
                )
            },
        }
        with Path(path).open("w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def _fingerprint(rule: str, relpath: str, line_text: str, occurrence: int) -> str:
    digest = hashlib.sha256(
        f"{rule}:{relpath}:{line_text.strip()}:{occurrence}".encode("utf-8")
    ).hexdigest()
    return digest[:20]


class LintEngine:
    """Drives the rules over a file set and assembles findings."""

    def __init__(self, root: Path, rules: Optional[Sequence[Rule]] = None):
        from repro.analysis.rules import default_rules

        self.root = Path(root).resolve()
        self.rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )

    # ------------------------------------------------------------------
    def gather(self, paths: Sequence[Path]) -> List[SourceFile]:
        """Parse every ``.py`` file under *paths* (files or directories).

        Paths are resolved against the engine root; files that fail to
        parse raise ``SyntaxError`` with their path (a lint run over
        unparsable code is meaningless).
        """
        seen: Set[Path] = set()
        targets: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            path = path.resolve()
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            elif path.suffix == ".py":
                candidates = [path]
            else:
                raise FileNotFoundError(f"not a python file or directory: {raw}")
            for candidate in candidates:
                if candidate not in seen:
                    seen.add(candidate)
                    targets.append(candidate)
        files = []
        for target in targets:
            try:
                relpath = target.relative_to(self.root).as_posix()
            except ValueError:
                relpath = target.as_posix()
            files.append(
                SourceFile(target, relpath, target.read_text(encoding="utf-8"))
            )
        return files

    def run(self, paths: Sequence[Path]) -> List[Finding]:
        """Lint *paths* and return suppression-filtered findings."""
        files = self.gather(paths)
        for rule in self.rules:
            rule.begin_run(files)
        for rule in self.rules:
            for file in files:
                rule.collect(file)
        by_relpath = {file.relpath: file for file in files}
        raw: List[Tuple[SourceFile, str, int, int, str]] = []
        for rule in self.rules:
            for file in files:
                for line, col, message in rule.check(file):
                    raw.append((file, rule.id, line, col, message))
            for relpath, line, col, message in rule.finish_run():
                file = by_relpath.get(relpath)
                if file is not None:
                    raw.append((file, rule.id, line, col, message))

        findings: List[Finding] = []
        occurrences: Dict[Tuple[str, str, str], int] = {}
        for file, rule_id, line, col, message in sorted(
            raw, key=lambda item: (item[0].relpath, item[2], item[3], item[1])
        ):
            if file.is_suppressed(rule_id, line):
                continue
            text = file.line_text(line)
            key = (rule_id, file.relpath, text.strip())
            occurrence = occurrences.get(key, 0)
            occurrences[key] = occurrence + 1
            findings.append(
                Finding(
                    rule=rule_id,
                    path=file.relpath,
                    line=line,
                    col=col,
                    message=message,
                    fingerprint=_fingerprint(
                        rule_id, file.relpath, text, occurrence
                    ),
                )
            )
        return findings

    @staticmethod
    def split_baselined(
        findings: Sequence[Finding], baseline: Baseline
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, grandfathered-by-baseline)."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            (old if finding.fingerprint in baseline else new).append(finding)
        return new, old


def qualname_stack(node_stack: Sequence[ast.AST]) -> str:
    """Dotted qualified name from a class/function node stack."""
    parts = []
    for node in node_stack:
        name = getattr(node, "name", None)
        if name is not None:
            parts.append(name)
    return ".".join(parts)

"""``reprolint`` — domain-aware static analysis for this repository.

An AST-based lint engine plus four project-specific checkers that keep
the reproduction's load-bearing conventions machine-checked:

* **R001** unit-consistency over the ``_c``/``_w``/``_s``/``_pct``/...
  suffix lexicon (:mod:`repro.analysis.rules.units`);
* **R002** RNG discipline — seeded ``default_rng`` at declared entry
  points only (:mod:`repro.analysis.rules.rng`);
* **R003** hot-path allocation — marked kernel loops stay
  allocation-free (:mod:`repro.analysis.rules.hotpath`);
* **R004** trace-schema consistency between ``TraceRecorder``
  producers/consumers and declared ``*TRACE_COLUMNS`` schemas
  (:mod:`repro.analysis.rules.schema`).

Run it via ``repro lint src/repro`` (see ``docs/static_analysis.md``
for the rule catalog, suppression comments, and baseline workflow).
"""

from repro.analysis.config import RULE_IDS, RULE_SUMMARIES
from repro.analysis.engine import Baseline, Finding, LintEngine, Rule, SourceFile
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "RULE_IDS",
    "RULE_SUMMARIES",
    "Rule",
    "SourceFile",
    "default_rules",
    "render_json",
    "render_text",
]

"""R002 — RNG discipline: seeded Generators at declared entry points.

Every bit-identity contract in this repository (chunked kernel vs.
reference engine, vector vs. legacy fleet backends, serial vs.
parallel sweeps, golden traces) depends on knowing exactly which
component draws from which RNG stream, in which order.  That is only
auditable when randomness enters through explicit, seeded
``np.random.default_rng(seed)`` constructions in a small set of
declared entry-point modules and flows everywhere else as a passed
``Generator``.  This rule enforces that discipline:

* no ``import random`` / ``from random import ...`` (stdlib module)
  anywhere in ``src/repro``;
* no legacy global-state numpy API (``np.random.seed``,
  ``np.random.rand``, ``np.random.normal``, ...) — only
  ``default_rng`` / ``Generator`` / ``SeedSequence`` attributes of
  ``np.random`` are sanctioned;
* every ``default_rng(...)`` call must pass an explicit seed argument
  (``default_rng()`` reseeds from the OS and is unreproducible);
* ``default_rng`` calls may appear only in the entry-point modules
  listed in :data:`repro.analysis.config.RNG_ENTRY_MODULES`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.config import RNG_ENTRY_MODULES
from repro.analysis.engine import Rule, SourceFile

#: ``np.random`` attributes that are part of the sanctioned API.
_SANCTIONED_NP_RANDOM = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)


def _is_entry_module(relpath: str) -> bool:
    return any(relpath.endswith(entry) for entry in RNG_ENTRY_MODULES)


class _RngVisitor(ast.NodeVisitor):
    def __init__(self, relpath: str):
        self.relpath = relpath
        self.findings: List[Tuple[int, int, str]] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append((node.lineno, node.col_offset, message))

    # -- stdlib random ------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        """Ban ``import random``."""
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._flag(
                    node,
                    "stdlib 'random' is banned in src/repro; use a seeded "
                    "np.random.Generator passed in explicitly",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Ban ``from random import ...``."""
        if node.module == "random" and node.level == 0:
            self._flag(
                node,
                "stdlib 'random' is banned in src/repro; use a seeded "
                "np.random.Generator passed in explicitly",
            )
        self.generic_visit(node)

    # -- np.random.* --------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        """Ban non-sanctioned ``np.random.*`` attributes."""
        # match <np|numpy>.random.<attr> with a non-sanctioned attr
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy")
            and node.attr not in _SANCTIONED_NP_RANDOM
        ):
            self._flag(
                node,
                f"legacy global-state API np.random.{node.attr} is banned; "
                "only default_rng/Generator/SeedSequence are sanctioned",
            )
        self.generic_visit(node)

    # -- default_rng calls --------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        """Check ``default_rng`` calls for seed and entry-point module."""
        if _is_default_rng(node.func):
            if not node.args and not node.keywords:
                self._flag(
                    node,
                    "default_rng() without an explicit seed reseeds from "
                    "the OS and breaks reproducibility; pass a seed or "
                    "SeedSequence",
                )
            elif not _is_entry_module(self.relpath):
                self._flag(
                    node,
                    "RNG construction is confined to the declared entry-point "
                    "modules (see repro.analysis.config.RNG_ENTRY_MODULES); "
                    "accept a Generator parameter instead",
                )
        self.generic_visit(node)


def _is_default_rng(func: ast.AST) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    if isinstance(func, ast.Attribute):
        return func.attr == "default_rng"
    return False


class RngDisciplineRule(Rule):
    """R002: seeded Generators only, constructed at declared entry points."""

    id = "R002"
    summary = "RNG discipline: seeded Generators at declared entry points"

    def check(self, file: SourceFile) -> Iterable[Tuple[int, int, str]]:
        """Run the RNG visitor over *file*."""
        visitor = _RngVisitor(file.relpath)
        visitor.visit(file.tree)
        return visitor.findings

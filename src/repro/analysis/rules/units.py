"""R001 — unit-consistency over the suffix-naming convention.

The repository encodes units in ``snake_case`` suffixes (``inlet_c``,
``power_w``, ``dt_s``, ``sla_total_pct_s`` — see :mod:`repro.units`
and :data:`repro.analysis.config.UNIT_SUFFIXES`).  This checker infers
a unit for every name, attribute, and keyword argument from that
lexicon and flags the expressions where two *different known* units
meet in an operation that requires agreement:

* ``+`` / ``-`` between operands of different units
  (``temp_c + power_w``);
* comparisons between operands of different units
  (``rpm < junction_c``);
* assignment of a differently-suffixed value to a suffixed target
  (``duration_s = distance_cfm``), including ``+=`` / ``-=``;
* keyword arguments whose name carries one unit while the value
  carries another (``f(supply_c=fan_rpm)``).

Inference is deliberately conservative: unknown names, multiplication
and division (which change dimensions), and numeric literals are all
unit-neutral, so only provable cross-unit mixes are reported.  The
:mod:`repro.units` conversion functions are sanctioned casts — their
*result* carries the target unit, so
``duration_s = hours(runtime_h)`` is clean.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.config import (
    CONVERSION_RESULT_UNITS,
    SINGLE_LETTER_MIN_STEM,
    UNIT_PRESERVING_CALLS,
    UNIT_SUFFIXES,
)
from repro.analysis.engine import Rule, SourceFile

#: Inference result for expressions with no unit information.
UNKNOWN = None


def unit_of_name(name: str) -> Optional[str]:
    """The unit a ``snake_case`` identifier carries, if any.

    Longest suffix wins (``pct_s`` before ``s``); single-letter
    suffixes require a stem of ``SINGLE_LETTER_MIN_STEM`` characters
    so physics subscripts (``t_j``, ``c_h``) stay unit-neutral.
    """
    lowered = name.lower()
    for suffix, unit in UNIT_SUFFIXES:
        tail = "_" + suffix
        if lowered.endswith(tail):
            stem = lowered[: -len(tail)]
            if not stem:
                return UNKNOWN
            if len(suffix) == 1 and len(stem) < SINGLE_LETTER_MIN_STEM:
                return UNKNOWN
            return unit
    return UNKNOWN


class _UnitVisitor(ast.NodeVisitor):
    """Walks one module, inferring units and recording mismatches."""

    def __init__(self) -> None:
        self.findings: List[Tuple[int, int, str]] = []

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer(self, node: ast.AST) -> Optional[str]:
        """Best-effort unit of *node* (None when not provable)."""
        if isinstance(node, ast.Name):
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        return UNKNOWN

    def _infer_binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not UNKNOWN and right is not UNKNOWN:
                return left if left == right else UNKNOWN
            return UNKNOWN
        if isinstance(node.op, ast.Mult):
            # only scaling by a bare numeric literal preserves the unit
            if left is not UNKNOWN and _is_number(node.right):
                return left
            if right is not UNKNOWN and _is_number(node.left):
                return right
            return UNKNOWN
        if isinstance(node.op, ast.Div):
            if left is not UNKNOWN and _is_number(node.right):
                return left
            return UNKNOWN
        return UNKNOWN

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        name = _call_name(node)
        if name in CONVERSION_RESULT_UNITS:
            return CONVERSION_RESULT_UNITS[name]
        if name in UNIT_PRESERVING_CALLS and node.args:
            units = {self.infer(arg) for arg in node.args}
            units.discard(UNKNOWN)
            if len(units) == 1:
                return units.pop()
        return UNKNOWN

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append((node.lineno, node.col_offset, message))

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag cross-unit ``+`` / ``-``."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if left is not UNKNOWN and right is not UNKNOWN and left != right:
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self._flag(
                    node,
                    f"cross-unit arithmetic: [{left}] {op} [{right}] "
                    "(convert via repro.units first)",
                )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag cross-unit comparisons (pairwise over chains)."""
        operands = [node.left, *node.comparators]
        for first, second in zip(operands, operands[1:]):
            left = self.infer(first)
            right = self.infer(second)
            if left is not UNKNOWN and right is not UNKNOWN and left != right:
                self._flag(
                    node,
                    f"cross-unit comparison: [{left}] vs [{right}]",
                )
        self.generic_visit(node)

    def _check_assignment(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            target_unit = unit_of_name(target.id)
            label = target.id
        elif isinstance(target, ast.Attribute):
            target_unit = unit_of_name(target.attr)
            label = target.attr
        else:
            return
        if target_unit is UNKNOWN:
            return
        value_unit = self.infer(value)
        if value_unit is not UNKNOWN and value_unit != target_unit:
            self._flag(
                target,
                f"assignment of [{value_unit}] value to "
                f"[{target_unit}] name {label!r}",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Flag mismatched assignments to suffixed names."""
        for target in node.targets:
            self._check_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Flag mismatched annotated assignments."""
        if node.value is not None:
            self._check_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Flag mismatched ``+=`` / ``-=``."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_assignment(node.target, node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag keyword arguments fed a differently-united value."""
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            kw_unit = unit_of_name(keyword.arg)
            if kw_unit is UNKNOWN:
                continue
            value_unit = self.infer(keyword.value)
            if value_unit is not UNKNOWN and value_unit != kw_unit:
                self._flag(
                    keyword.value,
                    f"keyword {keyword.arg!r} expects [{kw_unit}], "
                    f"got a [{value_unit}] value",
                )
        self.generic_visit(node)


def _is_number(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_number(node.operand)
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class UnitConsistencyRule(Rule):
    """R001: flag provable cross-unit arithmetic/comparison/assignment."""

    id = "R001"
    summary = "unit-consistency over the suffix-naming convention"

    def check(self, file: SourceFile) -> Iterable[Tuple[int, int, str]]:
        """Run the unit visitor over *file*."""
        visitor = _UnitVisitor()
        visitor.visit(file.tree)
        return visitor.findings

"""The ``reprolint`` rule registry.

Each rule module implements one checker on top of
:class:`repro.analysis.engine.Rule`; :func:`default_rules` builds the
catalog the engine runs by default.  To add a rule: implement it in a
new module here, give it the next free ``R0xx`` id, register it below,
and add it to ``RULE_IDS`` / ``RULE_SUMMARIES`` in
:mod:`repro.analysis.config` (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.hotpath import HotPathAllocationRule
from repro.analysis.rules.rng import RngDisciplineRule
from repro.analysis.rules.schema import TraceSchemaRule
from repro.analysis.rules.units import UnitConsistencyRule

__all__ = [
    "HotPathAllocationRule",
    "RngDisciplineRule",
    "TraceSchemaRule",
    "UnitConsistencyRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in catalog order."""
    return [
        UnitConsistencyRule(),
        RngDisciplineRule(),
        HotPathAllocationRule(),
        TraceSchemaRule(),
    ]

"""R003 — hot-path allocation: marked kernels stay allocation-free.

PR 4's kernelization bought its speedups by hoisting every per-tick
allocation out of the simulation loops — persistent state arrays,
preallocated trace blocks, in-place ``out=`` writes.  This rule keeps
that property machine-checked: inside the hot functions declared in
:data:`repro.analysis.config.HOT_FUNCTIONS` (or any function whose
``def`` line carries a ``# reprolint: hot`` marker comment), it flags

* calls to allocating numpy constructors
  (``np.zeros`` / ``np.concatenate`` / ``np.asarray`` / ... — see
  :data:`repro.analysis.config.ALLOCATING_NP_CALLS`);
* list/set/dict comprehensions and generator expressions (each builds
  a fresh container per evaluation);
* ``.append`` / ``.extend`` / ``.insert`` calls inside ``for`` /
  ``while`` loops (amortized reallocation per tick).

Ufunc calls like ``np.minimum`` / ``np.where`` / ``np.clip`` are *not*
flagged: the vector kernel uses them with preallocated operands, and a
temporaries-level check would need dataflow this linter does not do.
One-time allocations that are genuinely amortized across a whole chunk
(not per tick) are false positives by design — suppress them inline
with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from repro.analysis.config import ALLOCATING_NP_CALLS, HOT_FUNCTIONS
from repro.analysis.engine import Rule, SourceFile, qualname_stack

_MUTATING_LIST_METHODS = frozenset({"append", "extend", "insert"})


def _declared_hot(relpath: str) -> frozenset:
    for suffix, names in HOT_FUNCTIONS.items():
        if relpath.endswith(suffix):
            return names
    return frozenset()


class _HotPathVisitor(ast.NodeVisitor):
    """Finds hot functions, then scans their bodies for allocations."""

    def __init__(self, file: SourceFile):
        self.file = file
        self.declared = _declared_hot(file.relpath)
        self.findings: List[Tuple[int, int, str]] = []
        self._stack: List[ast.AST] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append((node.lineno, node.col_offset, message))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Track the class stack for qualified names."""
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._stack.append(node)
        qualname = qualname_stack(self._stack)
        if qualname in self.declared or self.file.has_hot_marker(node.lineno):
            scanner = _AllocationScanner(qualname)
            for child in node.body:
                scanner.visit(child)
            self.findings.extend(scanner.findings)
        else:
            self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


class _AllocationScanner(ast.NodeVisitor):
    """Scans one hot function body; does not descend into nested defs."""

    def __init__(self, qualname: str):
        self.qualname = qualname
        self.findings: List[Tuple[int, int, str]] = []
        self._loop_depth = 0

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            (
                node.lineno,
                node.col_offset,
                f"{message} in hot function {self.qualname!r}",
            )
        )

    # nested function definitions get their own hot/cold classification
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Skip: nested defs get their own hot/cold classification."""
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Skip: nested defs get their own hot/cold classification."""
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        """Skip: lambdas are classified with their enclosing scope."""
        return

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_While = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        """Flag allocating numpy calls and loop-body list mutation."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and func.attr in ALLOCATING_NP_CALLS
        ):
            self._flag(
                node,
                f"allocating call np.{func.attr}(...) "
                "(preallocate and write in place)",
            )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_LIST_METHODS
            and self._loop_depth > 0
        ):
            self._flag(
                node,
                f"list .{func.attr}(...) inside a loop "
                "(preallocate the container)",
            )
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        kind = {
            ast.ListComp: "list comprehension",
            ast.SetComp: "set comprehension",
            ast.DictComp: "dict comprehension",
            ast.GeneratorExp: "generator expression",
        }[type(node)]
        self._flag(
            node,
            f"{kind} allocates a fresh container per evaluation",
        )
        # don't generic_visit: one finding per comprehension is enough

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


class HotPathAllocationRule(Rule):
    """R003: no per-tick allocation inside marked hot functions."""

    id = "R003"
    summary = "hot-path allocation: marked kernels stay allocation-free"

    def check(self, file: SourceFile) -> Iterable[Tuple[int, int, str]]:
        """Scan marked hot functions in *file* for allocations."""
        visitor = _HotPathVisitor(file)
        visitor.visit(file.tree)
        return visitor.findings

"""R004 — trace-schema consistency across recorders and consumers.

The repository declares its trace schemas as module-level tuples of
column-name strings whose names end in ``TRACE_COLUMNS``
(``SINGLE_SERVER_TRACE_COLUMNS`` in :mod:`repro.engine.kernel`,
``DLCPC_TRACE_COLUMNS`` in the DLC-PC controller, plus aliases like
``TRACE_COLUMNS = SINGLE_SERVER_TRACE_COLUMNS``).  Rows flow in via
``TraceRecorder.record({...})`` / ``record_chunk({...})`` and out via
``TraceRecorder.column("name")`` — across the reference engine, the
chunked kernel, and the golden-trace suite.  A typo'd column on either
side silently yields missing-column KeyErrors at best and schema drift
between engines at worst.

This is the engine's one genuinely cross-file rule: the *collect*
phase gathers every declared schema (following one level of
``NAME = OTHER_TRACE_COLUMNS`` aliasing) over the whole file set, and
the *check* phase then verifies

* every string-literal argument to a ``.column("...")`` call, and
* every string key of a dict-literal argument to ``.record({...})``
  or ``.record_chunk({...})``

against the union of declared columns (plus
:data:`repro.analysis.config.EXTRA_TRACE_COLUMNS`).  When no schema
constant is in the linted file set the rule stays silent — there is
nothing to be consistent *with*.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.config import (
    EXTRA_TRACE_COLUMNS,
    SCHEMA_CONSTANT_SUFFIX,
)
from repro.analysis.engine import Rule, SourceFile

_RECORD_METHODS = frozenset({"record", "record_chunk"})


def _schema_assignments(
    tree: ast.Module,
) -> Iterable[Tuple[str, ast.AST]]:
    """Yield ``(constant_name, value_node)`` for module-level schemas."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            value = node.value
        else:
            continue
        if isinstance(target, ast.Name) and target.id.endswith(
            SCHEMA_CONSTANT_SUFFIX
        ):
            yield target.id, value


def _literal_columns(value: ast.AST) -> List[str]:
    """String elements of a tuple/list literal (``[]`` when not one)."""
    if not isinstance(value, (ast.Tuple, ast.List)):
        return []
    columns = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(
            element.value, str
        ):
            columns.append(element.value)
    return columns


class TraceSchemaRule(Rule):
    """R004: recorded/consumed trace columns match declared schemas."""

    id = "R004"
    summary = "trace-schema consistency: columns match declared schemas"

    def begin_run(self, files: Sequence[SourceFile]) -> None:
        """Reset the collected schema/alias tables."""
        #: schema constant name -> tuple of columns
        self._schemas: Dict[str, Tuple[str, ...]] = {}
        #: alias constant name -> referenced schema constant name
        self._aliases: Dict[str, str] = {}

    def collect(self, file: SourceFile) -> None:
        """Gather ``*TRACE_COLUMNS`` declarations from *file*."""
        for name, value in _schema_assignments(file.tree):
            columns = _literal_columns(value)
            if columns:
                self._schemas[name] = tuple(columns)
            elif isinstance(value, ast.Name) and value.id.endswith(
                SCHEMA_CONSTANT_SUFFIX
            ):
                self._aliases[name] = value.id

    def _known_columns(self) -> Set[str]:
        known = set(EXTRA_TRACE_COLUMNS)
        for columns in self._schemas.values():
            known.update(columns)
        # aliases add no columns of their own, but a dangling alias
        # (referencing a schema outside the linted set) disables the
        # check rather than producing spurious findings
        for referenced in self._aliases.values():
            if referenced not in self._schemas:
                return set()
        return known

    def check(self, file: SourceFile) -> Iterable[Tuple[int, int, str]]:
        """Check recorded/consumed columns against the collected union."""
        known = self._known_columns()
        if not known:
            return []
        findings: List[Tuple[int, int, str]] = []
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "column" and node.args:
                arg = node.args[0]
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value not in known
                ):
                    findings.append(
                        (
                            arg.lineno,
                            arg.col_offset,
                            f"column {arg.value!r} is not declared in any "
                            f"*{SCHEMA_CONSTANT_SUFFIX} schema",
                        )
                    )
            elif func.attr in _RECORD_METHODS and node.args:
                arg = node.args[0]
                if not isinstance(arg, ast.Dict):
                    continue
                for key in arg.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value not in known
                    ):
                        findings.append(
                            (
                                key.lineno,
                                key.col_offset,
                                f"recorded column {key.value!r} is not "
                                f"declared in any *{SCHEMA_CONSTANT_SUFFIX} "
                                "schema",
                            )
                        )
        return findings

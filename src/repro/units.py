"""Physical units, conversions, and shared numeric helpers.

The simulator works internally in SI-adjacent units chosen for
readability in the data-center domain:

* temperature — degrees Celsius (``°C``)
* power — watts (``W``)
* energy — joules internally, kilowatt-hours at reporting boundaries
* fan speed — revolutions per minute (``RPM``)
* airflow — cubic feet per minute (``CFM``), the unit server fan
  datasheets use
* time — seconds

Only trivially-testable pure functions live here so that every other
module can depend on this one without creating import cycles.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

#: Seconds in one minute / one hour, for readable conversions.
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0

#: Joules in one kilowatt-hour.
JOULES_PER_KWH = 3.6e6

#: Grams in one kilogram — grid carbon intensity is quoted in g/kWh
#: but fleet totals are reported in kg.
GRAMS_PER_KILOGRAM = 1000.0

#: Watts in one kilowatt — facility ratings are quoted in kW.
WATTS_PER_KILOWATT = 1000.0

#: Density of air at ~25 °C sea level, kg/m^3.
AIR_DENSITY_KG_M3 = 1.184

#: Specific heat capacity of air, J/(kg K).
AIR_SPECIFIC_HEAT_J_KG_K = 1006.0

#: One cubic foot per minute in m^3/s.
CFM_TO_M3_S = 4.719474e-4

#: Absolute zero in Celsius; used for sanity checks.
ABSOLUTE_ZERO_C = -273.15


def minutes(value: float) -> float:
    """Convert *value* minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert *value* hours to seconds."""
    return value * SECONDS_PER_HOUR


def joules_to_kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return energy_j / JOULES_PER_KWH


def kwh_to_joules(energy_kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return energy_kwh * JOULES_PER_KWH


def grams_to_kilograms(mass_g: float) -> float:
    """Convert grams to kilograms."""
    return mass_g / GRAMS_PER_KILOGRAM


def kilowatts_to_watts(power_kw: float) -> float:
    """Convert kilowatts to watts."""
    return power_kw * WATTS_PER_KILOWATT


def cfm_to_m3_s(cfm: float) -> float:
    """Convert airflow from CFM to m^3/s."""
    return cfm * CFM_TO_M3_S


def m3_s_to_cfm(m3_s: float) -> float:
    """Convert airflow from m^3/s to CFM."""
    return m3_s / CFM_TO_M3_S


def airflow_heat_capacity_w_per_k(
    cfm: Union[float, np.ndarray],
) -> Union[float, np.ndarray]:
    """Heat capacity rate of an air stream, in W/K.

    This is ``m_dot * c_p``: the power needed to raise the stream
    temperature by one kelvin.  It converts a DIMM-bank power draw into
    the preheat seen by the downstream CPUs.  *cfm* may be a scalar or
    an ndarray (the fleet engine evaluates whole fleets at once).
    """
    if isinstance(cfm, (int, float)):  # scalar fast path (hot loop)
        if cfm < 0.0:
            raise ValueError(f"airflow must be non-negative, got {cfm}")
        mass_flow_kg_s = cfm_to_m3_s(cfm) * AIR_DENSITY_KG_M3
        return mass_flow_kg_s * AIR_SPECIFIC_HEAT_J_KG_K
    cfm_arr = np.asarray(cfm, dtype=float)
    if np.any(cfm_arr < 0.0):
        raise ValueError(f"airflow must be non-negative, got {cfm!r}")
    return cfm_arr * CFM_TO_M3_S * AIR_DENSITY_KG_M3 * AIR_SPECIFIC_HEAT_J_KG_K


def clamp(value: float, low: float, high: float) -> float:
    """Clamp *value* to the inclusive interval [low, high]."""
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))


def validate_temperature_c(value: float, name: str = "temperature") -> float:
    """Raise ``ValueError`` if *value* is not a physical Celsius value."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < ABSOLUTE_ZERO_C:
        raise ValueError(f"{name} below absolute zero: {value} degC")
    return value


def validate_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` if *value* is negative or non-finite."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def validate_fraction(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def validate_utilization_pct(value: float, name: str = "utilization") -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 100``."""
    if not math.isfinite(value) or not 0.0 <= value <= 100.0:
        raise ValueError(f"{name} must be in [0, 100] percent, got {value!r}")
    return value

"""Content-addressed result cache: scenario hash → metrics row.

Each cached point is one JSON file named by the spec's content hash
(see :meth:`repro.sweep.spec.ScenarioSpec.cache_key`), so a warm
re-run of a sweep reads rows straight off disk with **zero** engine
invocations.  The canonical location is ``benchmarks/results/cache/``
(:data:`DEFAULT_CACHE_DIR`), but any directory works.

Entries carry the schema version; bumping
:data:`repro.sweep.spec.CACHE_SCHEMA_VERSION` (done whenever a
runner's row shape changes) invalidates every older entry without
touching the files.  Note the hash covers the scenario *inputs* — a
change to the simulation physics itself does not change keys, so
delete the cache directory (or pass ``--no-cache``) after modifying
model code.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.sweep.spec import CACHE_SCHEMA_VERSION, ScenarioSpec

#: Where sweeps persist their rows unless told otherwise.  Relative to
#: the *current working directory*: invoke the CLI from the repo root
#: (or pass an absolute ``--cache-dir``) to share one warm cache.
DEFAULT_CACHE_DIR = Path("benchmarks") / "results" / "cache"


class ResultCache:
    """Directory of ``<kind>-<hash>.json`` files, one per sweep point."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _path(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.kind}-{spec.cache_key()}.json"

    def get(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        """The cached row for *spec*, or ``None`` on miss / stale schema."""
        if not spec.cacheable:
            return None
        path = self._path(spec)
        try:
            with path.open("r") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if entry.get("kind") != spec.kind:
            return None
        row = entry.get("row")
        return dict(row) if isinstance(row, dict) else None

    def put(self, spec: ScenarioSpec, row: Dict[str, Any]) -> bool:
        """Persist *row* for *spec*; returns False for uncacheable specs.

        The write is atomic (tmp file + rename) so a parallel sweep
        interrupted mid-write never leaves a torn entry behind.
        """
        if not spec.cacheable:
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(spec)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": spec.kind,
            "label": spec.label,
            "row": row,
        }
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        with tmp.open("w") as handle:
            # Keep the runner's row-key order: loading an entry must
            # rebuild the table with bit-identical column ordering.
            json.dump(entry, handle, indent=1)
        os.replace(tmp, path)
        return True

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

"""Declarative scenario and grid specifications.

A :class:`ScenarioSpec` names one simulation to run — a scenario
*kind* (resolved against the runner registry in
:mod:`repro.sweep.scenarios`) plus a flat parameter mapping.  A
:class:`GridSpec` is the cross product of parameter axes layered onto
a base scenario; enumerating it yields one :class:`ScenarioSpec` per
grid point in a deterministic order (first axis slowest, last axis
fastest — ``itertools.product`` order).

Parameters may be plain primitives (numbers, strings, booleans,
``None``), tuples/lists of them, numpy arrays, dataclasses (e.g.
:class:`~repro.server.specs.ServerSpec`), or ordinary objects whose
state lives in ``__dict__`` (the workload profiles).  Everything a
spec holds is reduced to a canonical JSON document, whose SHA-256 is
the spec's *content hash* — the key the result cache files under
``benchmarks/results/cache/`` are named by.  Parameters that cannot
be canonicalized (anything holding a callable) make the spec
uncacheable but still runnable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import types
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Sequence, Tuple

import numpy as np

#: Bumped whenever the row schema produced by the scenario runners
#: changes shape; stale cache entries from older schemas are ignored.
#: v2: fleet rows gained the degraded-mode columns (fault_time_s,
#: respilled_pct_s, fault_sla_pct_s).
CACHE_SCHEMA_VERSION = 2

#: Parameter values rendered directly into the tidy result table.
_SCALAR_TYPES = (bool, int, float, str)

#: Memo sentinel for specs whose parameters cannot be hashed (a plain
#: value so the memo survives pickling to worker processes).
_UNCACHEABLE = "__uncacheable__"


def canonical(value: Any) -> Any:
    """Reduce *value* to a JSON-able document with deterministic order.

    Raises :class:`TypeError` for values with no stable content
    representation (callables, open files, ...).
    """
    if value is None or isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, type) or isinstance(
        value,
        (
            types.FunctionType,
            types.BuiltinFunctionType,
            types.MethodType,
            types.ModuleType,
        ),
    ):
        raise TypeError(
            f"{value!r} has no stable content representation"
        )
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__type__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(f"mapping keys must be strings, got {key!r}")
            out[key] = canonical(value[key])
        return out
    state = getattr(value, "__dict__", None)
    if state is not None:
        cls = type(value)
        return {
            "__type__": f"{cls.__module__}.{cls.__qualname__}",
            "state": canonical(state),
        }
    raise TypeError(
        f"value of type {type(value).__name__!r} has no canonical "
        "content representation"
    )


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of *value*."""
    document = json.dumps(
        canonical(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


@dataclass(frozen=True, eq=False)
class ScenarioSpec:
    """One runnable sweep point: a scenario kind plus its parameters."""

    #: Registered runner name (see :data:`repro.sweep.scenarios.SCENARIO_KINDS`).
    kind: str
    #: Flat parameter mapping handed to the runner.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Human-readable point label for progress logging and tables.
    label: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("kind must be a non-empty string")
        object.__setattr__(self, "params", dict(self.params))

    def cache_key(self) -> str:
        """Content hash of (schema, kind, params) naming the cache entry.

        Memoized: specs are frozen and ``params`` is treated as
        immutable after construction, so the (potentially deep)
        canonicalization runs at most once per spec.
        """
        cached = self.__dict__.get("_cache_key")
        if cached is None:
            try:
                cached = content_hash(
                    {
                        "schema": CACHE_SCHEMA_VERSION,
                        "kind": self.kind,
                        "params": self.params,
                    }
                )
            except TypeError:
                object.__setattr__(self, "_cache_key", _UNCACHEABLE)
                raise
            object.__setattr__(self, "_cache_key", cached)
        elif cached == _UNCACHEABLE:
            raise TypeError(
                f"spec {self.kind!r} holds parameters with no stable "
                "content representation"
            )
        return cached

    @property
    def cacheable(self) -> bool:
        """Whether every parameter has a stable content representation."""
        try:
            self.cache_key()
        except TypeError:
            return False
        return True

    def describe(self) -> str:
        """The label, or a ``k=v`` rendering of the scalar parameters."""
        if self.label:
            return self.label
        scalars = ", ".join(
            f"{k}={v!r}"
            for k, v in self.params.items()
            if v is None or isinstance(v, _SCALAR_TYPES)
        )
        return f"{self.kind}({scalars})"


@dataclass(frozen=True, eq=False)
class GridSpec:
    """A cross product of parameter axes over a base scenario.

    ``axes`` maps parameter names to the values each takes; the grid
    enumerates every combination (first axis slowest).  ``base`` holds
    the parameters shared by every point.  Axis names must not repeat
    base names — a silent override would make two different sweeps
    hash identically.
    """

    kind: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in self.axes.items()}
        )
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
            if name in self.base:
                raise ValueError(
                    f"axis {name!r} collides with a base parameter"
                )

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def points(self) -> Tuple[ScenarioSpec, ...]:
        """Every grid point as a :class:`ScenarioSpec`, in product order."""
        names = list(self.axes)
        specs = []
        for combo in itertools.product(*self.axes.values()):
            params: Dict[str, Any] = dict(self.base)
            params.update(zip(names, combo))
            label = ", ".join(
                f"{name}={value}" for name, value in zip(names, combo)
            )
            specs.append(
                ScenarioSpec(kind=self.kind, params=params, label=label)
            )
        return tuple(specs)

"""Parallel scenario-sweep orchestration.

The paper's argument is built on sweeps — workload tests, ambient /
leakage / noise sensitivity, controller ablations — and the ROADMAP's
north star is "as many scenarios as you can imagine".  This package
makes a sweep a *declaration* instead of a hand-rolled loop:

* :mod:`repro.sweep.spec` — :class:`ScenarioSpec` (one point) and
  :class:`GridSpec` (a cross product of parameter axes), both reduced
  to a canonical content hash,
* :mod:`repro.sweep.scenarios` — the runner registry mapping spec
  kinds (``experiment``, ``lut_vs_default``, ``fleet``) onto the
  existing engines, with per-process memoization of expensive
  artifacts (LUT characterizations, model fits),
* :mod:`repro.sweep.executor` — :func:`run_sweep`: cache resolution,
  a ``multiprocessing`` fan-out, deterministic row ordering, progress
  logging,
* :mod:`repro.sweep.cache` — the content-addressed JSON result cache
  (``benchmarks/results/cache/`` by default): a warm re-run performs
  zero engine invocations,
* :mod:`repro.sweep.result` — :class:`SweepResult`, the tidy table
  (named ndarray columns, lossless CSV export, bit-identical
  comparison).

Quickstart::

    from repro.sweep import GridSpec, run_sweep

    grid = GridSpec(
        kind="fleet",
        base={"racks": 1, "hours": 1.0, "controller": "default"},
        axes={
            "servers_per_rack": [2, 4],
            "policy": ["round-robin", "coolest-first"],
            "crac_supply_c": [22.0, 24.0, 27.0],
        },
    )
    table = run_sweep(grid, workers=4, cache="benchmarks/results/cache")
    print(table.column("energy_kwh"))
"""

from typing import Sequence

from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.executor import default_worker_count, run_sweep
from repro.sweep.result import SweepResult
from repro.sweep.scenarios import (
    SCENARIO_KINDS,
    build_fleet_workload,
    metrics_from_row,
    register_scenario,
    run_scenario,
)
from repro.sweep.spec import (
    CACHE_SCHEMA_VERSION,
    GridSpec,
    ScenarioSpec,
    canonical,
    content_hash,
)


def fleet_grid(
    server_counts: Sequence[int] = (2, 4),
    policies: Sequence[str] = ("round-robin", "coolest-first"),
    controllers: Sequence[str] = ("lut",),
    crac_supplies_c: Sequence[float] = (24.0,),
    racks: int = 2,
    workload: str = "diurnal",
    hours: float = 24.0,
    dt_s: float = 60.0,
    seed: int = 0,
    backend: str = "vector",
    shards=None,
    spec=None,
    lut=None,
) -> GridSpec:
    """The cross-product fleet sweep: servers × policy × controller × CRAC.

    ``server_counts`` are servers *per rack* (total servers per point is
    ``racks`` times that); ``crac_supplies_c`` are CRAC supply setpoints
    in °C.  Single-valued axes are allowed — the grid simply has extent
    1 along them.
    """
    base = {
        "racks": int(racks),
        "workload": workload,
        "hours": float(hours),
        "dt_s": float(dt_s),
        "seed": int(seed),
        "backend": backend,
    }
    if shards is not None:
        # sharded-backend shard count (or explicit sizes); part of the
        # base params, so it enters every point's content hash
        base["shards"] = shards
    if spec is not None:
        base["spec"] = spec
    if lut is not None:
        base["lut"] = lut
    return GridSpec(
        kind="fleet",
        base=base,
        axes={
            "servers_per_rack": [int(n) for n in server_counts],
            "policy": list(policies),
            "controller": list(controllers),
            "crac_supply_c": [float(t) for t in crac_supplies_c],
        },
    )


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "GridSpec",
    "ResultCache",
    "SCENARIO_KINDS",
    "ScenarioSpec",
    "SweepResult",
    "build_fleet_workload",
    "canonical",
    "content_hash",
    "default_worker_count",
    "fleet_grid",
    "metrics_from_row",
    "register_scenario",
    "run_scenario",
    "run_sweep",
]

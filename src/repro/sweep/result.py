"""Tidy sweep-result tables: named ndarray columns + CSV export.

A :class:`SweepResult` is one row per sweep point.  Its columns are
the scalar grid parameters (the axes plus any scalar base parameters)
followed by the metric columns the scenario runner produced, each
stored as a named ndarray — numeric columns as ``float64``/``int64``,
anything else as an object array.  Two results from the same grid are
expected to be *bit-identical* regardless of worker count or cache
state; :meth:`SweepResult.equals` checks exactly that.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.sweep.spec import ScenarioSpec, _SCALAR_TYPES


def _column_array(values: List[Any]) -> np.ndarray:
    """Pack one column, preferring exact numeric dtypes."""
    present = [v for v in values if v is not None]
    if present and all(
        isinstance(v, int) and not isinstance(v, bool) for v in present
    ):
        if len(present) == len(values):
            return np.array(values, dtype=np.int64)
        values = [np.nan if v is None else v for v in values]
        return np.array(values, dtype=float)
    if present and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in present
    ):
        values = [np.nan if v is None else v for v in values]
        return np.array(values, dtype=float)
    out = np.empty(len(values), dtype=object)
    out[:] = values
    return out


class SweepResult:
    """One row per sweep point: parameter columns, then metric columns."""

    def __init__(
        self,
        param_columns: Dict[str, np.ndarray],
        metric_columns: Dict[str, np.ndarray],
        labels: Tuple[str, ...],
        executed_count: int = 0,
        cache_hit_count: int = 0,
    ) -> None:
        self.param_columns = dict(param_columns)
        self.metric_columns = dict(metric_columns)
        #: Per-point labels (the grid's ``axis=value`` rendering).
        self.labels = tuple(labels)
        #: Points actually simulated in this invocation.
        self.executed_count = int(executed_count)
        #: Points served from the on-disk result cache.
        self.cache_hit_count = int(cache_hit_count)

    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: Sequence[ScenarioSpec],
        rows: Sequence[Dict[str, Any]],
        executed_count: int = 0,
        cache_hit_count: int = 0,
    ) -> "SweepResult":
        """Assemble the table from specs and their runner rows (in order)."""
        if len(points) != len(rows):
            raise ValueError("points and rows must have matching lengths")
        param_names: List[str] = []
        for spec in points:
            for name, value in spec.params.items():
                if name in param_names:
                    continue
                if value is None or isinstance(value, _SCALAR_TYPES):
                    param_names.append(name)
        metric_names: List[str] = []
        for row in rows:
            for name in row:
                if name not in metric_names:
                    metric_names.append(name)
        params = {
            name: _column_array(
                [spec.params.get(name) for spec in points]
            )
            for name in param_names
        }
        metrics = {
            name: _column_array([row.get(name) for row in rows])
            for name in metric_names
        }
        return cls(
            params,
            metrics,
            labels=tuple(spec.describe() for spec in points),
            executed_count=executed_count,
            cache_hit_count=cache_hit_count,
        )

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """All column names, parameters first."""
        return tuple(self.param_columns) + tuple(self.metric_columns)

    def __len__(self) -> int:
        for column in self.param_columns.values():
            return len(column)
        for column in self.metric_columns.values():
            return len(column)
        return 0

    def column(self, name: str) -> np.ndarray:
        """One named column (parameter or metric)."""
        if name in self.param_columns:
            return self.param_columns[name]
        if name in self.metric_columns:
            return self.metric_columns[name]
        raise KeyError(f"no column {name!r} (have {self.names})")

    def rows(self) -> Iterator[Dict[str, Any]]:
        """Iterate points as flat dicts (parameters + metrics)."""
        names = self.names
        for i in range(len(self)):
            yield {name: self.column(name)[i].item()
                   if isinstance(self.column(name)[i], np.generic)
                   else self.column(name)[i]
                   for name in names}

    def row(self, index: int) -> Dict[str, Any]:
        """One point as a flat dict."""
        for i, row in enumerate(self.rows()):
            if i == index:
                return row
        raise IndexError(index)

    # ------------------------------------------------------------------
    def equals(self, other: "SweepResult") -> bool:
        """Bit-identical table comparison (column names, order, values)."""
        if not isinstance(other, SweepResult):
            return False
        if self.names != other.names:
            return False
        for name in self.names:
            a, b = self.column(name), other.column(name)
            if a.dtype.kind != b.dtype.kind or a.shape != b.shape:
                return False
            if a.dtype.kind == "f":
                if not np.array_equal(a, b, equal_nan=True):
                    return False
            elif not all(x == y for x, y in zip(a, b)):
                return False
        return True

    def to_csv(self, path) -> Path:
        """Write the table as CSV (floats via ``repr``: lossless)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.names)
            for i in range(len(self)):
                cells = []
                for name in self.names:
                    value = self.column(name)[i]
                    if isinstance(value, np.generic):
                        value = value.item()
                    cells.append(repr(value) if isinstance(value, float)
                                 else value)
                writer.writerow(cells)
        return path

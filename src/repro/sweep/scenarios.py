"""Scenario runners: one function per sweep-point *kind*.

Each runner maps a flat parameter dict onto the existing simulation
entry points (:func:`repro.experiments.runner.run_experiment`,
:class:`repro.fleet.engine.FleetEngine`) and returns the point's
*row* — a flat ``{column: float | int | str}`` mapping that the
executor assembles into a :class:`~repro.sweep.result.SweepResult`
table and the cache persists as JSON.

Expensive shared artifacts — the characterization behind
:func:`~repro.experiments.report.build_paper_lut`, the fitted power
models the MPC needs — are memoized **per worker process** keyed by
their content hash, so a grid that re-characterizes per silicon
variant (e.g. the leakage sweep) builds each LUT once per worker, not
once per point.

Registered kinds:

* ``"experiment"`` — one controller on one workload profile on one
  (possibly scaled) server spec; row = Table-I metrics (kWh, W, °C,
  RPM) plus the junction-temperature spread (°C).
* ``"lut_vs_default"`` — the sensitivity pairing: the LUT scheme vs
  the firmware default on the same spec/profile; row = both metric
  sets plus the net saving (%) and the LUT's full-load speed (RPM).
* ``"fleet"`` — a rack-scale :class:`FleetEngine` scenario; row =
  fleet aggregates (kWh, W, °C, %·s of lost work).
* ``"facility"`` — a fleet scenario composed with the facility layers
  (job queue → cooling plant → power chain → carbon); row = facility
  energy split (kWh), PUE, carbon (kg), and queue/SLA counters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Any, Callable, Dict, Mapping

import numpy as np

from repro.sweep.spec import ScenarioSpec, content_hash

#: Registered scenario runners, keyed by spec kind.
SCENARIO_KINDS: Dict[str, Callable[[Mapping[str, Any]], Dict[str, Any]]] = {}

#: Per-process memo for expensive derived artifacts (LUTs, model fits).
_PROCESS_MEMO: Dict[str, Any] = {}


def register_scenario(kind: str):
    """Class-less plugin hook: register *func* as the runner for *kind*."""

    def decorator(func):
        """Install *func* in the registry under *kind* (must be new)."""
        if kind in SCENARIO_KINDS:
            raise ValueError(f"scenario kind {kind!r} already registered")
        SCENARIO_KINDS[kind] = func
        return func

    return decorator


def run_scenario(spec: ScenarioSpec) -> Dict[str, Any]:
    """Execute one sweep point and return its row of scalar results."""
    try:
        runner = SCENARIO_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown scenario kind {spec.kind!r} "
            f"(registered: {sorted(SCENARIO_KINDS)})"
        ) from None
    return runner(spec.params)


def _memoized(tag: str, key_value: Any, build: Callable[[], Any]) -> Any:
    """Build-once-per-process cache for expensive derived artifacts."""
    try:
        key = f"{tag}:{content_hash(key_value)}"
    except TypeError:
        return build()  # unhashable inputs: just rebuild
    if key not in _PROCESS_MEMO:
        _PROCESS_MEMO[key] = build()
    return _PROCESS_MEMO[key]


# ----------------------------------------------------------------------
# shared parameter resolution
# ----------------------------------------------------------------------
#: Controller-selection parameters shared by the built-in kinds.
_CONTROLLER_PARAMS = frozenset(
    {
        "controller",
        "rpm",
        "thresholds",
        "pi_target_c",
        "lut",
        "lut_lockout_s",
        "lut_candidates_rpm",
        "lut_max_temperature_c",
        "characterization_seed",
    }
)
#: Server-spec derivation parameters (scaling applied by _derived_spec).
_SPEC_PARAMS = frozenset({"spec", "leakage_factor", "noise_factor"})
#: Workload-profile resolution parameters.
_PROFILE_PARAMS = frozenset({"profile", "profile_seed"})


def _check_params(
    params: Mapping[str, Any], allowed: frozenset, kind: str
) -> None:
    """Reject typo'd / unsupported parameters instead of ignoring them.

    A silently-dropped axis (e.g. ``ambeint_c``) would yield N
    identical rows presented as a real sweep.
    """
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for scenario kind {kind!r}: {unknown} "
            f"(allowed: {sorted(allowed)})"
        )


def _derived_spec(params: Mapping[str, Any]):
    """The server spec after leakage / sensor-noise scaling."""
    from repro.experiments.sensitivity import (  # runner-local: avoid cycle
        scale_leakage,
        scale_sensor_noise,
    )
    from repro.server.specs import default_server_spec

    spec = params.get("spec")
    spec = spec if spec is not None else default_server_spec()
    leakage_factor = float(params.get("leakage_factor", 1.0))
    if leakage_factor != 1.0:
        spec = scale_leakage(spec, leakage_factor)
    noise_factor = float(params.get("noise_factor", 1.0))
    if noise_factor != 1.0:
        spec = scale_sensor_noise(spec, noise_factor)
    return spec


def _resolve_profile(params: Mapping[str, Any]):
    """The workload profile: an object, a paper-test name, or Test-3."""
    from repro.workloads.tests import (
        build_test3_random_steps,
        paper_test_profiles,
    )

    profile = params.get("profile")
    if profile is None:
        return build_test3_random_steps(
            seed=int(params.get("profile_seed", 1234))
        )
    if isinstance(profile, str):
        seed = int(params.get("profile_seed", 1234))
        named = _memoized(
            "paper_tests", seed, lambda: paper_test_profiles(seed=seed)
        )
        if profile not in named:
            raise ValueError(
                f"unknown test profile {profile!r} (have {sorted(named)})"
            )
        return named[profile]
    return profile


def _resolve_lut(params: Mapping[str, Any], spec):
    """The lookup table: given, ladder-rebuilt, or the paper pipeline's."""
    from repro.core.lut import build_lut_from_spec
    from repro.experiments.report import build_paper_lut

    lut = params.get("lut")
    if lut is not None:
        return lut
    max_temp = float(params.get("lut_max_temperature_c", 75.0))
    ladder = params.get("lut_candidates_rpm")
    if ladder is not None:
        ladder = tuple(float(r) for r in ladder)
        return _memoized(
            "ladder_lut",
            {"spec": spec, "ladder": ladder, "max_temp": max_temp},
            lambda: build_lut_from_spec(
                spec, candidates_rpm=ladder, max_temperature_c=max_temp
            ),
        )
    seed = int(params.get("characterization_seed", params.get("seed", 0)))
    return _memoized(
        "paper_lut",
        {"spec": spec, "seed": seed, "max_temp": max_temp},
        lambda: build_paper_lut(
            spec=spec, seed=seed, max_temperature_c=max_temp
        ),
    )


def _build_controller(name: str, params: Mapping[str, Any], spec):
    """Instantiate the named fan controller for *spec*."""
    from repro.core.controllers.bangbang import BangBangController
    from repro.core.controllers.coordinated import CoordinatedController
    from repro.core.controllers.default import FixedSpeedController
    from repro.core.controllers.lut import LUTController
    from repro.core.controllers.oracle import OracleController
    from repro.core.controllers.pid import PIController

    if name == "default":
        # Baseline consistency: without an explicit rpm the firmware
        # default of *this* spec is used, matching the lut_vs_default
        # kind's baseline (not a hardcoded 3300 RPM).
        rpm = params.get("rpm")
        rpm = float(rpm) if rpm is not None else spec.default_fan_rpm
        return FixedSpeedController(rpm=rpm)
    if name == "bangbang":
        thresholds = params.get("thresholds")
        if thresholds is None:
            return BangBangController()
        return BangBangController(thresholds=thresholds)
    if name == "pi":
        return PIController(target_c=float(params.get("pi_target_c", 70.0)))
    if name == "oracle":
        return OracleController(spec=spec)
    if name == "lut":
        return LUTController(
            _resolve_lut(params, spec),
            lockout_s=float(params.get("lut_lockout_s", 60.0)),
        )
    if name == "coordinated":
        return CoordinatedController(
            _resolve_lut(params, spec),
            spec.dvfs,
            lockout_s=float(params.get("lut_lockout_s", 60.0)),
        )
    if name == "mpc":
        from repro.core.controllers.mpc import build_mpc_from_characterization

        seed = int(params.get("characterization_seed", 0))
        # Memoize the characterization *artifacts*, not the controller:
        # MPC instances are stateful (lockout clock) and must be fresh
        # per call — a fleet hands one controller to each server.
        samples, fitted, fan = _memoized(
            "mpc_models",
            {"spec": spec, "seed": seed},
            lambda: _mpc_models(spec, seed),
        )
        return build_mpc_from_characterization(samples, fitted, fan)
    raise ValueError(f"unknown controller {name!r}")


def _mpc_models(spec, seed: int):
    """Characterize *spec* and fit the power/fan models the MPC needs."""
    from repro.experiments.characterization import run_characterization_steady
    from repro.models.fitting import fit_fan_power_model, fit_power_model

    samples = run_characterization_steady(spec=spec, seed=seed)
    fitted = fit_power_model(samples)
    fan = fit_fan_power_model(
        [s.fan_rpm for s in samples], [s.fan_power_w for s in samples]
    )
    return samples, fitted, fan


def _metrics_row(metrics, prefix: str = "") -> Dict[str, Any]:
    """Flatten :class:`ExperimentMetrics` into ``prefix``-ed columns.

    Derived from the dataclass fields so the sweep tables track the
    metrics schema automatically.
    """
    return {
        f"{prefix}{field.name}": getattr(metrics, field.name)
        for field in dataclasses.fields(metrics)
    }


def metrics_from_row(row: Mapping[str, Any], prefix: str = ""):
    """Rebuild :class:`ExperimentMetrics` from ``prefix``-ed row columns.

    The inverse of the flattening the ``experiment`` and
    ``lut_vs_default`` runners apply; works on table rows and cached
    JSON rows alike (units as in the dataclass: kWh, W, °C, RPM, %, s).
    """
    from repro.experiments.metrics import ExperimentMetrics

    return ExperimentMetrics(
        **{
            field.name: row[f"{prefix}{field.name}"]
            for field in dataclasses.fields(ExperimentMetrics)
        }
    )


# ----------------------------------------------------------------------
# kind: experiment — one controller, one profile, one (scaled) spec
# ----------------------------------------------------------------------
@register_scenario("experiment")
def run_experiment_scenario(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Single-server closed-loop run; row = Table-I metrics + T spread."""
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.server.ambient import ConstantAmbient
    from repro.server.dvfs import default_dvfs_ladder

    _check_params(
        params,
        _CONTROLLER_PARAMS | _SPEC_PARAMS | _PROFILE_PARAMS
        | {"ambient_c", "seed"},
        "experiment",
    )
    spec = _derived_spec(params)
    controller_name = str(params.get("controller", "lut"))
    if controller_name == "coordinated" and len(spec.dvfs) == 1:
        # The coordinated fan+DVFS policy needs a real p-state ladder.
        spec = replace(spec, dvfs=default_dvfs_ladder())
    profile = _resolve_profile(params)
    controller = _build_controller(controller_name, params, spec)
    ambient_c = params.get("ambient_c")
    ambient = None if ambient_c is None else ConstantAmbient(float(ambient_c))
    result = run_experiment(
        controller,
        profile,
        spec=spec,
        config=ExperimentConfig(seed=int(params.get("seed", 0))),
        ambient=ambient,
    )
    row = _metrics_row(result.metrics)
    row["controller_name"] = result.controller_name
    row["temperature_std_c"] = float(
        np.std(result.column("max_junction_c"))
    )
    return row


# ----------------------------------------------------------------------
# kind: lut_vs_default — the sensitivity pairing
# ----------------------------------------------------------------------
@register_scenario("lut_vs_default")
def run_lut_vs_default_scenario(params: Mapping[str, Any]) -> Dict[str, Any]:
    """LUT scheme vs firmware default on one spec/profile/ambient.

    With no explicit ``lut`` parameter the LUT is re-characterized on
    the (scaled) spec — the behaviour the leakage-strength sweep needs
    — memoized per worker process.
    """
    from repro.core.controllers.default import FixedSpeedController
    from repro.core.controllers.lut import LUTController
    from repro.experiments.metrics import net_savings_pct
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.server.ambient import ConstantAmbient

    _check_params(
        params,
        _SPEC_PARAMS | _PROFILE_PARAMS
        | {
            "lut",
            "lut_candidates_rpm",
            "lut_max_temperature_c",
            "characterization_seed",
            "ambient_c",
            "seed",
        },
        "lut_vs_default",
    )
    spec = _derived_spec(params)
    profile = _resolve_profile(params)
    lut = _resolve_lut(params, spec)
    config = ExperimentConfig(seed=int(params.get("seed", 0)))
    ambient = ConstantAmbient(float(params.get("ambient_c", 24.0)))
    default_run = run_experiment(
        FixedSpeedController(rpm=spec.default_fan_rpm),
        profile,
        spec=spec,
        config=config,
        ambient=ambient,
    )
    lut_run = run_experiment(
        LUTController(lut), profile, spec=spec, config=config, ambient=ambient
    )
    row = _metrics_row(default_run.metrics, "default_")
    row.update(_metrics_row(lut_run.metrics, "lut_"))
    row["net_savings_pct"] = net_savings_pct(
        default_run.metrics, lut_run.metrics
    )
    row["lut_rpm_at_100"] = float(lut.query(100.0))
    return row


# ----------------------------------------------------------------------
# kind: fleet — a rack-scale FleetEngine scenario
# ----------------------------------------------------------------------
def build_fleet_workload(name: str, duration_s: float, seed: int = 0):
    """Named aggregate-demand profile for fleet scenarios."""
    from repro.workloads.datacenter import (
        build_batch_window_profile,
        build_diurnal_profile,
        build_flash_crowd_profile,
        combine_profiles,
    )

    if name == "diurnal":
        return build_diurnal_profile(duration_s=duration_s, seed=seed)
    if name == "batch":
        return build_batch_window_profile(duration_s=duration_s)
    if name == "flashcrowd":
        return build_flash_crowd_profile(duration_s=duration_s, seed=seed)
    if name == "mixed":
        return combine_profiles(
            [
                build_diurnal_profile(duration_s=duration_s, seed=seed),
                build_batch_window_profile(
                    duration_s=duration_s, batch_pct=40.0
                ),
            ]
        )
    raise ValueError(f"unknown fleet workload {name!r}")


@register_scenario("fleet")
def run_fleet_scenario(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One FleetEngine scenario; row = fleet aggregates (kWh, W, °C, %·s).

    The optional ``faults`` parameter (a
    :class:`~repro.fleet.faults.FaultSchedule` or a list of event
    mappings, the JSON form) injects fleet-scale fault events; the row
    then carries the degraded-mode aggregates (``fault_time_s``,
    ``respilled_pct_s``, ``fault_sla_pct_s``).  Both forms
    content-hash deterministically, so fault grids are cache-correct;
    pick one representation per sweep (they hash differently).
    """
    from repro.core.controllers.coordinated import CoordinatedController
    from repro.core.controllers.lut import LUTController
    from repro.fleet.engine import FleetEngine
    from repro.fleet.faults import FaultSchedule
    from repro.fleet.scheduler import PLACEMENT_POLICIES, FleetScheduler
    from repro.server.dvfs import default_dvfs_ladder
    from repro.units import hours

    _check_params(
        params,
        _CONTROLLER_PARAMS | _SPEC_PARAMS
        | {
            "racks",
            "servers_per_rack",
            "policy",
            "workload",
            "hours",
            "dt_s",
            "crac_supply_c",
            "seed",
            "backend",
            "shards",
            "faults",
        },
        "fleet",
    )
    fault_schedule = FaultSchedule.resolve(params.get("faults"))
    # Leakage / sensor-noise scaling applies at fleet scale too — a
    # leakage_factor axis must change the silicon, not be ignored.
    spec = _derived_spec(params)
    controller_name = str(params.get("controller", "lut"))
    if controller_name == "coordinated" and len(spec.dvfs) == 1:
        spec = replace(spec, dvfs=default_dvfs_ladder())
    policy_name = str(params.get("policy", "coolest-first"))
    if policy_name not in PLACEMENT_POLICIES:
        raise ValueError(
            f"unknown placement policy {policy_name!r} "
            f"(have {sorted(PLACEMENT_POLICIES)})"
        )

    from repro.fleet.topology import build_uniform_fleet

    fleet = build_uniform_fleet(
        rack_count=int(params.get("racks", 2)),
        servers_per_rack=int(params.get("servers_per_rack", 4)),
        spec=spec,
        crac_supply_c=float(params.get("crac_supply_c", 24.0)),
    )
    seed = int(params.get("seed", 0))
    duration_s = hours(float(params.get("hours", 24.0)))
    profile = build_fleet_workload(
        str(params.get("workload", "diurnal")), duration_s, seed=seed
    )

    if controller_name == "lut":
        lut = _resolve_lut(params, spec)
        factory = lambda index: LUTController(lut)  # noqa: E731
    elif controller_name == "coordinated":
        lut = _resolve_lut(params, spec)
        factory = lambda index: CoordinatedController(  # noqa: E731
            lut, spec.dvfs
        )
    else:
        factory = lambda index: _build_controller(  # noqa: E731
            controller_name, params, spec
        )

    backend = str(params.get("backend", "vector"))
    engine_kwargs: Dict[str, Any] = {}
    if "shards" in params:
        # sharded-only knob: an int or explicit shard sizes; enters the
        # cache hash like every other param, so sharded rows never
        # collide with vector rows.
        raw_shards = params["shards"]
        engine_kwargs["shards"] = (
            tuple(int(s) for s in raw_shards)
            if isinstance(raw_shards, (list, tuple))
            else int(raw_shards)
        )
    engine = FleetEngine(
        fleet,
        profile,
        scheduler=FleetScheduler(PLACEMENT_POLICIES[policy_name]()),
        controller_factory=factory,
        backend=backend,
        seed=seed,
        faults=fault_schedule,
        **engine_kwargs,
    )
    m = engine.run(dt_s=float(params.get("dt_s", 60.0))).metrics
    return {
        "server_count": m.server_count,
        "duration_s": m.duration_s,
        "energy_kwh": m.energy_kwh,
        "fan_energy_kwh": m.fan_energy_kwh,
        "peak_power_w": m.peak_power_w,
        "avg_power_w": m.avg_power_w,
        "hot_spot_c": m.hot_spot_c,
        "mean_utilization_pct": m.mean_utilization_pct,
        "mean_inlet_c": m.mean_inlet_c,
        "sla_unserved_pct_s": m.sla_unserved_pct_s,
        "dvfs_deficit_pct_s": m.dvfs_deficit_pct_s,
        "sla_total_pct_s": m.sla_total_pct_s,
        "sla_violation_ticks": m.sla_violation_ticks,
        "fault_time_s": m.fault_time_s,
        "respilled_pct_s": m.respilled_pct_s,
        "fault_sla_pct_s": m.fault_sla_pct_s,
    }


# ----------------------------------------------------------------------
# kind: facility — fleet + cooling plant + power chain + carbon
# ----------------------------------------------------------------------
@register_scenario("facility")
def run_facility_scenario(params: Mapping[str, Any]) -> Dict[str, Any]:
    """One facility-composed scenario; row = PUE/energy/carbon + queue.

    The IT side is a :class:`FleetEngine` driven by a
    :class:`~repro.facility.workload.WorkloadQueue` job-arrival
    process (``arrivals`` ∈ poisson/diurnal/bursty) instead of an
    aggregate utilization profile; the facility layers are composed
    around the run by :class:`~repro.facility.engine.FacilityEngine`.
    Queue-driven demand is evaluated tick by tick, so the sharded
    backend is rejected here (the engine raises).
    """
    from repro.core.controllers.coordinated import CoordinatedController
    from repro.core.controllers.lut import LUTController
    from repro.facility import (
        CoolingPlant,
        FacilityEngine,
        PowerChain,
        build_diurnal_carbon_model,
        build_job_queue,
    )
    from repro.fleet.engine import FleetEngine
    from repro.fleet.scheduler import PLACEMENT_POLICIES, FleetScheduler
    from repro.server.dvfs import default_dvfs_ladder
    from repro.units import hours, kilowatts_to_watts

    _check_params(
        params,
        _CONTROLLER_PARAMS | _SPEC_PARAMS
        | {
            "racks",
            "servers_per_rack",
            "policy",
            "arrivals",
            "jobs_per_hour",
            "mean_work_pct_s",
            "deadline_slack",
            "hours",
            "dt_s",
            "crac_supply_c",
            "plant_supply_c",
            "rated_kw",
            "carbon_base_g_per_kwh",
            "carbon_peak_g_per_kwh",
            "seed",
            "backend",
        },
        "facility",
    )
    spec = _derived_spec(params)
    controller_name = str(params.get("controller", "lut"))
    if controller_name == "coordinated" and len(spec.dvfs) == 1:
        spec = replace(spec, dvfs=default_dvfs_ladder())
    policy_name = str(params.get("policy", "coolest-first"))
    if policy_name not in PLACEMENT_POLICIES:
        raise ValueError(
            f"unknown placement policy {policy_name!r} "
            f"(have {sorted(PLACEMENT_POLICIES)})"
        )

    from repro.fleet.topology import build_uniform_fleet

    fleet = build_uniform_fleet(
        rack_count=int(params.get("racks", 2)),
        servers_per_rack=int(params.get("servers_per_rack", 4)),
        spec=spec,
        crac_supply_c=float(params.get("crac_supply_c", 24.0)),
    )
    seed = int(params.get("seed", 0))
    duration_s = hours(float(params.get("hours", 24.0)))
    queue = build_job_queue(
        str(params.get("arrivals", "diurnal")),
        fleet.server_count,
        duration_s=duration_s,
        seed=seed,
        jobs_per_hour=float(params.get("jobs_per_hour", 12.0)),
        mean_work_pct_s=float(params.get("mean_work_pct_s", 30000.0)),
        deadline_slack=float(params.get("deadline_slack", 4.0)),
    )

    if controller_name == "lut":
        lut = _resolve_lut(params, spec)
        factory = lambda index: LUTController(lut)  # noqa: E731
    elif controller_name == "coordinated":
        lut = _resolve_lut(params, spec)
        factory = lambda index: CoordinatedController(  # noqa: E731
            lut, spec.dvfs
        )
    else:
        factory = lambda index: _build_controller(  # noqa: E731
            controller_name, params, spec
        )

    engine = FleetEngine(
        fleet,
        queue,
        scheduler=FleetScheduler(PLACEMENT_POLICIES[policy_name]()),
        controller_factory=factory,
        backend=str(params.get("backend", "vector")),
        seed=seed,
    )
    rated_kw = params.get("rated_kw")
    rated_w = (
        kilowatts_to_watts(float(rated_kw))
        if rated_kw is not None
        else fleet.server_count * 600.0
    )
    facility = FacilityEngine(
        engine,
        cooling=CoolingPlant(
            supply_c=float(
                params.get(
                    "plant_supply_c", params.get("crac_supply_c", 24.0)
                )
            )
        ),
        power=PowerChain(rated_power_w=rated_w),
        carbon=build_diurnal_carbon_model(
            duration_s=duration_s,
            base_g_per_kwh=float(params.get("carbon_base_g_per_kwh", 120.0)),
            peak_g_per_kwh=float(params.get("carbon_peak_g_per_kwh", 450.0)),
        ),
    )
    m = facility.run(dt_s=float(params.get("dt_s", 60.0))).metrics
    q = m.queue
    row: Dict[str, Any] = {
        "server_count": m.fleet.server_count,
        "duration_s": m.fleet.duration_s,
        "it_energy_kwh": m.it_energy_kwh,
        "cooling_energy_kwh": m.cooling_energy_kwh,
        "chain_loss_kwh": m.chain_loss_kwh,
        "facility_energy_kwh": m.facility_energy_kwh,
        "pue": m.pue,
        "carbon_kg": m.carbon_kg,
        "mean_intensity_g_per_kwh": m.mean_intensity_g_per_kwh,
        "peak_utility_power_w": m.peak_utility_power_w,
        "hot_spot_c": m.fleet.hot_spot_c,
        "sla_unserved_pct_s": m.fleet.sla_unserved_pct_s,
    }
    if q is not None:
        row.update(
            {
                "jobs_arrived": q.arrived,
                "jobs_completed": q.completed,
                "jobs_pending": q.pending,
                "jobs_running": q.running,
                "queue_sla_violations": q.sla_violations,
                "mean_wait_s": q.mean_wait_s,
                "mean_turnaround_s": q.mean_turnaround_s,
                "queue_drained": int(q.drained),
            }
        )
    return row

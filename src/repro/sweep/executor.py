"""Parallel sweep executor: cache-aware fan-out over worker processes.

:func:`run_sweep` takes a :class:`~repro.sweep.spec.GridSpec` (or an
explicit sequence of :class:`~repro.sweep.spec.ScenarioSpec` points),
resolves cache hits first, fans the remaining points out over a
``multiprocessing`` pool, and assembles every row — hit or miss — into
one :class:`~repro.sweep.result.SweepResult` in the grid's own
deterministic order.  The table is *bit-identical* whatever the worker
count or cache state: the physics is seeded and rows are placed by
grid index, never by completion order, and cached floats round-trip
JSON exactly.

Worker processes keep their scenario memo (LUT characterizations,
model fits) alive across the points of a chunk, so grids that share
expensive artifacts amortize them per process instead of per point.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from time import perf_counter, sleep
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.sweep.cache import ResultCache
from repro.sweep.result import SweepResult
from repro.sweep.scenarios import run_scenario
from repro.sweep.spec import GridSpec, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.metrics import MetricsRegistry

#: A sweep input: a grid, or explicit points.
Sweepable = Union[GridSpec, Sequence[ScenarioSpec]]

_LOG = logging.getLogger(__name__)


def default_worker_count() -> int:
    """Workers used when ``workers`` is ``None``: one per available core."""
    return max(1, os.cpu_count() or 1)


def _execute_point(spec: ScenarioSpec) -> Dict[str, Any]:
    """Module-level worker target (must be picklable)."""
    return run_scenario(spec)


def _execute_point_safe(
    task: Tuple[ScenarioSpec, int, float],
) -> Tuple[bool, Dict[str, Any]]:
    """Isolated worker target: ``(ok, row)`` instead of a raised error.

    A raising scenario is retried ``retries`` times with exponential
    backoff; when the budget is exhausted the failure is folded into an
    ``{"error": ...}`` row so one bad point cannot kill the pool (an
    exception raised inside ``imap`` aborts the whole sweep and
    discards every in-flight sibling).
    """
    spec, retries, backoff_s = task
    attempt = 0
    while True:
        try:
            return True, run_scenario(spec)
        except Exception as exc:
            if attempt >= retries:
                return False, {
                    "error": f"{type(exc).__name__}: {exc}",
                }
            if backoff_s > 0:
                sleep(backoff_s * 2**attempt)
            attempt += 1


def _resolve_points(sweep: Sweepable) -> Tuple[ScenarioSpec, ...]:
    if isinstance(sweep, GridSpec):
        return sweep.points()
    points = tuple(sweep)
    if not points:
        raise ValueError("sweep has no points")
    for point in points:
        if not isinstance(point, ScenarioSpec):
            raise TypeError(
                f"expected ScenarioSpec points, got {type(point).__name__}"
            )
    return points


def run_sweep(
    sweep: Sweepable,
    workers: Optional[int] = 1,
    cache: Union[ResultCache, str, os.PathLike, None] = None,
    progress: Optional[Callable[[str], None]] = None,
    metrics: Optional["MetricsRegistry"] = None,
    retries: int = 0,
    backoff_s: float = 0.1,
) -> SweepResult:
    """Run every point of *sweep* and return the tidy result table.

    ``workers=1`` runs in-process (serial); ``workers=N`` fans the
    uncached points over ``N`` worker processes; ``workers=None`` uses
    one worker per core.  ``cache`` (a directory path or
    :class:`ResultCache`) short-circuits previously-computed points by
    content hash and persists fresh rows.  ``progress`` receives one
    human-readable line per completed point; when omitted, the lines
    go to this module's logger at INFO instead.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives point /
    cache-hit counters and the per-point wall timer.

    Points are isolated: a raising scenario is retried ``retries``
    times with exponential backoff starting at ``backoff_s``, and a
    point that still fails lands in the table as an ``error`` row
    while every other point completes.  Failed rows are *not* cached,
    so re-running the sweep (with the same cache) retries exactly the
    failures — the partial ``SweepResult`` is resumable for free.  Row
    order stays bit-identical for succeeding points whatever the
    worker count, cache state or failure pattern.
    """
    points = _resolve_points(sweep)
    if progress is None:
        progress = _LOG.info
    if workers is None:
        workers = default_worker_count()
    if workers < 1:
        raise ValueError("workers must be >= 1 (or None for one per core)")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff_s < 0:
        raise ValueError("backoff_s must be >= 0")
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    total = len(points)
    rows: List[Optional[Dict[str, Any]]] = [None] * total
    misses: List[int] = []
    for i, spec in enumerate(points):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            rows[i] = hit
        else:
            misses.append(i)
    cache_hits = total - len(misses)
    if cache_hits:
        progress(f"cache: {cache_hits}/{total} points already computed")

    point_timer = None
    if metrics is not None:
        metrics.counter(
            "repro_sweep_points_total", "Sweep points resolved"
        ).inc(total)
        metrics.counter(
            "repro_sweep_cache_hits_total", "Sweep points served from cache"
        ).inc(cache_hits)
        metrics.counter(
            "repro_sweep_executed_total", "Sweep points actually simulated"
        ).inc(len(misses))
        point_timer = metrics.timer(
            "repro_sweep_point", "Wall time per executed sweep point"
        )

    failures = 0

    # Rows are cached as they complete (not after the whole sweep), so
    # an interrupted or failing run keeps its partial progress durable.
    # Failed rows are recorded in the table but never cached: the next
    # run with the same cache re-executes exactly the failed points.
    def finish(i: int, ok: bool, row: Dict[str, Any], done: int) -> None:
        """Record one completed point: table row, cache entry, progress."""
        nonlocal failures
        rows[i] = row
        if ok:
            if cache is not None:
                cache.put(points[i], row)
            progress(f"[{done}/{total}] {points[i].describe()}")
        else:
            failures += 1
            progress(
                f"[{done}/{total}] {points[i].describe()} "
                f"FAILED: {row['error']}"
            )

    tasks = [(points[i], int(retries), float(backoff_s)) for i in misses]
    done = cache_hits
    if len(misses) <= 1 or workers == 1:
        for i, task in zip(misses, tasks):
            done += 1
            _t0 = perf_counter()
            ok, row = _execute_point_safe(task)
            if point_timer is not None:
                point_timer.add(perf_counter() - _t0)
            finish(i, ok, row, done)
    else:
        pool_size = min(workers, len(misses))
        # Chunks keep each worker's per-process memo (LUTs, fits) warm
        # across several points; results still land by grid index.
        chunksize = max(1, len(misses) // (pool_size * 2))
        with multiprocessing.Pool(processes=pool_size) as pool:
            ordered = pool.imap(
                _execute_point_safe,
                tasks,
                chunksize=chunksize,
            )
            _t0 = perf_counter()
            for i, (ok, row) in zip(misses, ordered):
                done += 1
                # Pool wall time is attributed as it drains; with N
                # workers the per-point figure is an upper bound on
                # fleet-average latency, not a per-process CPU time.
                if point_timer is not None:
                    _t1 = perf_counter()
                    point_timer.add(_t1 - _t0)
                    _t0 = _t1
                finish(i, ok, row, done)

    if failures and metrics is not None:
        metrics.counter(
            "repro_sweep_point_failures_total",
            "Sweep points that exhausted their retry budget",
        ).inc(failures)

    return SweepResult.from_points(
        points,
        rows,
        executed_count=len(misses),
        cache_hit_count=cache_hits,
    )

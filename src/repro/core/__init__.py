"""The paper's primary contribution: leakage/temperature-aware cooling.

* :mod:`repro.core.thermal_map` — interpolated steady-state temperature
  over (utilization, fan speed) from characterization data,
* :mod:`repro.core.optimizer` — optimum-fan-speed search minimizing
  ``P_leak + P_fan`` under the reliability temperature ceiling,
* :mod:`repro.core.lut` — the lookup table addressed by utilization,
* :mod:`repro.core.controllers` — the runtime fan controllers
  (default fixed-speed, bang-bang, LUT-based, plus PI and oracle
  extensions).
"""

from repro.core.controllers import (
    BangBangController,
    CoordinatedController,
    ControllerObservation,
    FanController,
    FixedSpeedController,
    LUTController,
    ModelPredictiveController,
    OracleController,
    PIController,
    build_mpc_from_characterization,
)
from repro.core.lut import LookupTable, build_lut_from_characterization, build_lut_from_spec
from repro.core.optimizer import OptimizationResult, optimal_fan_speed
from repro.core.thermal_map import ThermalMap

__all__ = [
    "BangBangController",
    "CoordinatedController",
    "ControllerObservation",
    "FanController",
    "FixedSpeedController",
    "LUTController",
    "ModelPredictiveController",
    "OracleController",
    "PIController",
    "LookupTable",
    "build_lut_from_characterization",
    "build_lut_from_spec",
    "OptimizationResult",
    "optimal_fan_speed",
    "build_mpc_from_characterization",
    "ThermalMap",
]

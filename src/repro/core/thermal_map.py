"""Steady-state temperature map over (utilization, fan speed).

The LUT builder needs to predict the equilibrium CPU temperature a
candidate fan speed would produce at a given utilization.  The paper
derives this from its characterization measurements; this class
interpolates bilinearly over the measured grid.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.models.fitting import CharacterizationSample
from repro.units import validate_utilization_pct


class ThermalMap:
    """Bilinear interpolation of avg CPU temperature over (U, rpm)."""

    def __init__(
        self,
        utilizations_pct: Sequence[float],
        fan_rpms: Sequence[float],
        temperatures_c: np.ndarray,
    ):
        utils = np.asarray(utilizations_pct, dtype=float)
        rpms = np.asarray(fan_rpms, dtype=float)
        temps = np.asarray(temperatures_c, dtype=float)
        if utils.ndim != 1 or rpms.ndim != 1:
            raise ValueError("grid axes must be 1-D")
        if np.any(np.diff(utils) <= 0) or np.any(np.diff(rpms) <= 0):
            raise ValueError("grid axes must be strictly increasing")
        if temps.shape != (utils.size, rpms.size):
            raise ValueError(
                f"temperature grid shape {temps.shape} does not match axes "
                f"({utils.size}, {rpms.size})"
            )
        if not np.all(np.isfinite(temps)):
            raise ValueError("temperature grid contains non-finite values")
        self._utils = utils
        self._rpms = rpms
        self._temps = temps

    @property
    def utilizations_pct(self) -> np.ndarray:
        """The utilization grid axis."""
        return self._utils.copy()

    @property
    def fan_rpms(self) -> np.ndarray:
        """The fan-speed grid axis."""
        return self._rpms.copy()

    @classmethod
    def from_samples(cls, samples: Sequence[CharacterizationSample]) -> "ThermalMap":
        """Build from a full-factorial characterization sweep.

        Raises ``ValueError`` if any (utilization, rpm) grid cell is
        missing, because silent extrapolation over holes would corrupt
        the LUT.
        """
        if not samples:
            raise ValueError("no characterization samples")
        utils = sorted({s.utilization_pct for s in samples})
        rpms = sorted({s.fan_rpm for s in samples})
        by_key: Dict[Tuple[float, float], list] = {}
        for s in samples:
            by_key.setdefault((s.utilization_pct, s.fan_rpm), []).append(
                s.avg_cpu_temperature_c
            )
        temps = np.empty((len(utils), len(rpms)))
        for i, u in enumerate(utils):
            for j, r in enumerate(rpms):
                cell = by_key.get((u, r))
                if not cell:
                    raise ValueError(
                        f"characterization grid missing cell (U={u}%, {r} RPM)"
                    )
                temps[i, j] = float(np.mean(cell))
        return cls(utils, rpms, temps)

    def temperature_c(self, utilization_pct: float, fan_rpm: float) -> float:
        """Interpolated equilibrium temperature; clamps outside the grid."""
        validate_utilization_pct(utilization_pct)
        u = float(np.clip(utilization_pct, self._utils[0], self._utils[-1]))
        r = float(np.clip(fan_rpm, self._rpms[0], self._rpms[-1]))

        i = int(np.searchsorted(self._utils, u, side="right") - 1)
        i = min(max(i, 0), self._utils.size - 2) if self._utils.size > 1 else 0
        j = int(np.searchsorted(self._rpms, r, side="right") - 1)
        j = min(max(j, 0), self._rpms.size - 2) if self._rpms.size > 1 else 0

        if self._utils.size == 1 and self._rpms.size == 1:
            return float(self._temps[0, 0])
        if self._utils.size == 1:
            return float(
                np.interp(r, self._rpms, self._temps[0, :])
            )
        if self._rpms.size == 1:
            return float(np.interp(u, self._utils, self._temps[:, 0]))

        u0, u1 = self._utils[i], self._utils[i + 1]
        r0, r1 = self._rpms[j], self._rpms[j + 1]
        fu = (u - u0) / (u1 - u0)
        fr = (r - r0) / (r1 - r0)
        t00 = self._temps[i, j]
        t01 = self._temps[i, j + 1]
        t10 = self._temps[i + 1, j]
        t11 = self._temps[i + 1, j + 1]
        return float(
            t00 * (1 - fu) * (1 - fr)
            + t01 * (1 - fu) * fr
            + t10 * fu * (1 - fr)
            + t11 * fu * fr
        )

"""The lookup table at the heart of the paper's controller.

The LUT maps workload utilization to the fan speed that minimizes
``P_leak + P_fan`` at that load (§V): it is generated offline from the
leakage and fan power analysis, then addressed at runtime by the
polled utilization level.  Querying rounds *up* to the next
characterized level so intermediate utilizations always get at least
as much cooling as their nearest characterized upper bound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.optimizer import OptimizationResult, optimal_fan_speed
from repro.core.thermal_map import ThermalMap
from repro.models.fitting import CharacterizationSample, FittedPowerModel
from repro.models.leakage import FanPowerModel, LeakageModel
from repro.models.steady_state import (
    optimal_rpm_per_utilization,
    steady_state_map,
)
from repro.server.specs import ServerSpec
from repro.units import validate_utilization_pct

#: Utilization levels characterized in the paper (§IV).
PAPER_UTILIZATION_LEVELS_PCT = (10.0, 25.0, 40.0, 50.0, 60.0, 75.0, 90.0, 100.0)

#: Fan speeds characterized in the paper (§IV).
PAPER_FAN_SPEEDS_RPM = (1800.0, 2400.0, 3000.0, 3600.0, 4200.0)


@dataclass(frozen=True)
class LookupTable:
    """Sorted (utilization level → optimum fan RPM) mapping."""

    levels_pct: Tuple[float, ...]
    rpms: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.levels_pct) != len(self.rpms) or not self.levels_pct:
            raise ValueError("levels and rpms must be equal-length, non-empty")
        if any(
            b <= a for a, b in zip(self.levels_pct[:-1], self.levels_pct[1:])
        ):
            raise ValueError("utilization levels must be strictly increasing")
        for level in self.levels_pct:
            validate_utilization_pct(level)
        if any(r <= 0 for r in self.rpms):
            raise ValueError("fan speeds must be positive")

    def query(self, utilization_pct: float) -> float:
        """Fan speed for *utilization_pct* (rounds up to the next level)."""
        validate_utilization_pct(utilization_pct)
        for level, rpm in zip(self.levels_pct, self.rpms):
            if utilization_pct <= level + 1e-9:
                return rpm
        return self.rpms[-1]

    def __len__(self) -> int:
        return len(self.levels_pct)

    def as_dict(self) -> Dict[float, float]:
        """Plain ``{level: rpm}`` mapping."""
        return dict(zip(self.levels_pct, self.rpms))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(
            {
                "levels_pct": list(self.levels_pct),
                "rpms": list(self.rpms),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, document: str) -> "LookupTable":
        """Deserialize from :meth:`to_json` output."""
        payload = json.loads(document)
        return cls(
            levels_pct=tuple(float(v) for v in payload["levels_pct"]),
            rpms=tuple(float(v) for v in payload["rpms"]),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the table to *path* as JSON."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LookupTable":
        """Read a table previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_mapping(cls, mapping: Mapping[float, float]) -> "LookupTable":
        """Build from a ``{level: rpm}`` mapping (sorted by level)."""
        levels = tuple(sorted(float(k) for k in mapping))
        return cls(
            levels_pct=levels,
            rpms=tuple(float(mapping[level]) for level in levels),
        )


def build_lut_from_characterization(
    samples: Sequence[CharacterizationSample],
    fitted_model: FittedPowerModel,
    fan_power_model: FanPowerModel,
    candidates_rpm: Sequence[float] = PAPER_FAN_SPEEDS_RPM,
    levels_pct: Optional[Sequence[float]] = None,
    max_temperature_c: float = 75.0,
) -> Tuple[LookupTable, List[OptimizationResult]]:
    """The paper's offline LUT generation pipeline.

    1. Interpolate the measured steady-state temperature over the
       characterization grid (:class:`ThermalMap`).
    2. For each utilization level, minimize the *fitted* leakage plus
       the *measured* fan power across candidate speeds, subject to the
       75 °C reliability ceiling.

    Returns the LUT together with the per-level optimization details
    (useful for reporting and the Fig. 2 reproduction).
    """
    thermal_map = ThermalMap.from_samples(samples)
    if levels_pct is None:
        levels = sorted({s.utilization_pct for s in samples})
        # Always provide an idle entry so the controller has an answer
        # for utilizations below the lowest characterized level.
        if levels[0] > 0.0:
            levels = [0.0] + levels
    else:
        levels = sorted(levels_pct)
    leakage: LeakageModel = fitted_model.leakage

    results: List[OptimizationResult] = []
    mapping: Dict[float, float] = {}
    for level in levels:
        # Idle entries below the characterized grid reuse the lowest
        # characterized utilization's thermal behaviour (clamped in the
        # map), which is conservative.
        result = optimal_fan_speed(
            utilization_pct=level,
            candidates_rpm=candidates_rpm,
            thermal_map=thermal_map,
            leakage_model=leakage,
            fan_power_model=fan_power_model,
            max_temperature_c=max_temperature_c,
        )
        results.append(result)
        mapping[level] = result.fan_rpm
    return LookupTable.from_mapping(mapping), results


def build_lut_from_spec(
    spec: ServerSpec,
    candidates_rpm: Sequence[float] = PAPER_FAN_SPEEDS_RPM,
    levels_pct: Sequence[float] = (0.0,) + PAPER_UTILIZATION_LEVELS_PCT,
    max_temperature_c: float = 75.0,
    ambient_c: float = 24.0,
) -> LookupTable:
    """Oracle LUT built directly from the ground-truth server model.

    Used as a reference in tests and ablations: the data-driven LUT of
    :func:`build_lut_from_characterization` should agree with it when
    the characterization is clean.
    """
    grid = steady_state_map(
        utilizations_pct=levels_pct,
        fan_rpms=candidates_rpm,
        spec=spec,
        ambient_c=ambient_c,
    )
    best = optimal_rpm_per_utilization(grid, max_temperature_c=max_temperature_c)
    return LookupTable.from_mapping(
        {u: point.fan_rpm for u, point in best.items()}
    )

"""Optimum-fan-speed search: minimize ``P_leak + P_fan`` at fixed load.

This implements the insight of Fig. 2: at any utilization the sum of
leakage power (decreasing with fan speed through lower temperature)
and fan power (cubic in fan speed) is convex, so there is a single
optimum fan speed — and it always lands below the 75 °C reliability
ceiling on the characterized server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.thermal_map import ThermalMap
from repro.models.leakage import FanPowerModel, LeakageModel
from repro.units import validate_utilization_pct


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of the per-utilization fan speed optimization."""

    utilization_pct: float
    fan_rpm: float
    predicted_temperature_c: float
    predicted_leakage_w: float
    predicted_fan_power_w: float
    #: True when no candidate satisfied the temperature ceiling and the
    #: coolest (fastest) candidate was selected as a fallback.
    constraint_fallback: bool

    @property
    def predicted_leak_plus_fan_w(self) -> float:
        """The minimized objective."""
        return self.predicted_leakage_w + self.predicted_fan_power_w


def optimal_fan_speed(
    utilization_pct: float,
    candidates_rpm: Sequence[float],
    thermal_map: ThermalMap,
    leakage_model: LeakageModel,
    fan_power_model: FanPowerModel,
    max_temperature_c: float = 75.0,
) -> OptimizationResult:
    """Pick the candidate fan speed minimizing predicted leak+fan power.

    Only the temperature-*dependent* part of the leakage model enters
    the objective; the constant ``C`` (which also absorbs board power
    in the fitted model) shifts every candidate equally and cannot be
    influenced by cooling.
    """
    validate_utilization_pct(utilization_pct)
    if not candidates_rpm:
        raise ValueError("need at least one candidate fan speed")

    best: Optional[OptimizationResult] = None
    fallback: Optional[OptimizationResult] = None
    for rpm in sorted(candidates_rpm):
        temp = thermal_map.temperature_c(utilization_pct, rpm)
        leak = float(leakage_model.variable_power_w(temp))
        fan = float(fan_power_model.power_w(rpm))
        result = OptimizationResult(
            utilization_pct=utilization_pct,
            fan_rpm=float(rpm),
            predicted_temperature_c=temp,
            predicted_leakage_w=leak,
            predicted_fan_power_w=fan,
            constraint_fallback=False,
        )
        if fallback is None or temp < fallback.predicted_temperature_c:
            fallback = result
        if temp > max_temperature_c:
            continue
        if best is None or result.predicted_leak_plus_fan_w < (
            best.predicted_leak_plus_fan_w
        ):
            best = result

    if best is not None:
        return best
    assert fallback is not None  # candidates_rpm was non-empty
    return OptimizationResult(
        utilization_pct=fallback.utilization_pct,
        fan_rpm=fallback.fan_rpm,
        predicted_temperature_c=fallback.predicted_temperature_c,
        predicted_leakage_w=fallback.predicted_leakage_w,
        predicted_fan_power_w=fallback.predicted_fan_power_w,
        constraint_fallback=True,
    )

"""The reactive bang-bang temperature controller (paper §V).

Tracks only the maximum measured CPU temperature through CSTH (10 s
polling) and applies the paper's five-way action table:

1. ``T_max < 60 °C`` — set the lowest speed (1800 RPM);
2. ``60 <= T_max < 65 °C`` — lower speed by 600 RPM;
3. ``65 <= T_max <= 75 °C`` — no action (the desirable band);
4. ``75 < T_max <= 80 °C`` — raise speed by 600 RPM;
5. ``T_max > 80 °C`` — jump to the maximum speed (4200 RPM).

The thresholds were chosen experimentally in the paper to balance fan
speed-change frequency against temperature overshoot; the ablation
bench sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controllers.base import ControllerObservation, FanController
from repro.units import clamp


@dataclass(frozen=True)
class BangBangThresholds:
    """The four temperature thresholds of the action table, °C."""

    release_c: float = 60.0
    lower_band_c: float = 65.0
    upper_band_c: float = 75.0
    emergency_c: float = 80.0

    def __post_init__(self) -> None:
        ordered = (
            self.release_c,
            self.lower_band_c,
            self.upper_band_c,
            self.emergency_c,
        )
        if any(b <= a for a, b in zip(ordered[:-1], ordered[1:])):
            raise ValueError(
                "thresholds must be strictly increasing: "
                f"{ordered}"
            )


class BangBangController(FanController):
    """Reactive step controller on the hottest measured die sensor."""

    def __init__(
        self,
        thresholds: Optional[BangBangThresholds] = None,
        step_rpm: float = 600.0,
        min_rpm: float = 1800.0,
        max_rpm: float = 4200.0,
        poll_interval_s: float = 10.0,
    ):
        if step_rpm <= 0:
            raise ValueError("step_rpm must be positive")
        if max_rpm <= min_rpm:
            raise ValueError("max_rpm must exceed min_rpm")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.thresholds = thresholds or BangBangThresholds()
        self.step_rpm = step_rpm
        self.min_rpm = min_rpm
        self.max_rpm = max_rpm
        self.poll_interval_s = poll_interval_s

    @property
    def name(self) -> str:
        return "Bang-bang"

    def decide(self, observation: ControllerObservation) -> Optional[float]:
        t_max = observation.max_cpu_temperature_c
        current = observation.current_rpm_command
        th = self.thresholds

        if t_max > th.emergency_c:
            target = self.max_rpm
        elif t_max > th.upper_band_c:
            target = clamp(current + self.step_rpm, self.min_rpm, self.max_rpm)
        elif t_max >= th.lower_band_c:
            return None  # inside the desirable band
        elif t_max >= th.release_c:
            target = clamp(current - self.step_rpm, self.min_rpm, self.max_rpm)
        else:
            target = self.min_rpm

        if target == current:
            return None
        return target

"""Runtime fan controllers.

The paper evaluates three schemes: the server's default fixed-speed
firmware behaviour, a reactive temperature bang-bang controller, and
the proposed proactive LUT-based controller.  Two extensions beyond
the paper — a PI temperature tracker and an oracle with perfect model
knowledge — bound the design space from both sides.
"""

from repro.core.controllers.bangbang import BangBangController, BangBangThresholds
from repro.core.controllers.coordinated import CoordinatedController
from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.controllers.default import FixedSpeedController
from repro.core.controllers.lut import LUTController
from repro.core.controllers.mpc import (
    ModelPredictiveController,
    build_mpc_from_characterization,
)
from repro.core.controllers.oracle import OracleController
from repro.core.controllers.pid import PIController

__all__ = [
    "BangBangController",
    "BangBangThresholds",
    "CoordinatedController",
    "ControllerObservation",
    "FanController",
    "FixedSpeedController",
    "LUTController",
    "ModelPredictiveController",
    "build_mpc_from_characterization",
    "OracleController",
    "PIController",
]

"""The proposed LUT-based proactive controller (paper §V).

Polls the ``sar``-style utilization monitor every second — fast enough
to catch sudden spikes *before* a thermal event — looks up the optimum
fan speed for the current level, and commands it.  To protect fan
reliability under unstable workloads, after each RPM change further
changes are locked out for one minute (a safe choice given the large
thermal time constants): the controller reacts immediately to the
first spike, then holds.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.lut import LookupTable


class LUTController(FanController):
    """Utilization-driven lookup-table fan controller."""

    def __init__(
        self,
        lut: LookupTable,
        poll_interval_s: float = 1.0,
        lockout_s: float = 60.0,
    ):
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if lockout_s < 0:
            raise ValueError("lockout_s must be non-negative")
        self.lut = lut
        self.poll_interval_s = poll_interval_s
        self.lockout_s = lockout_s
        self._last_change_s: Optional[float] = None

    @property
    def name(self) -> str:
        return "LUT"

    def reset(self) -> None:
        self._last_change_s = None

    def initial_rpm(self) -> Optional[float]:
        # Start from the idle entry: the experiment protocol begins
        # with an idle stabilization phase.
        return self.lut.query(0.0)

    def _locked_out(self, time_s: float) -> bool:
        if self._last_change_s is None:
            return False
        return time_s - self._last_change_s < self.lockout_s

    def decide(self, observation: ControllerObservation) -> Optional[float]:
        target = self.lut.query(observation.utilization_pct)
        if target == observation.current_rpm_command:
            return None
        if self._locked_out(observation.time_s):
            return None
        self._last_change_s = observation.time_s
        return target

"""Coordinated fan + DVFS controller (extension beyond the paper).

The paper's related work (its ref. [5]) manages energy with DVFS and
fan control together; the paper itself controls only the fans.  This
extension closes that gap:

1. **P-state selection** — pick the deepest p-state that still executes
   the offered load below a busy-time headroom (no throughput loss),
   exploiting the ``f · V^2`` dynamic-power scaling.
2. **Fan selection** — look up the optimum fan speed for the *executed*
   utilization, exactly as the paper's LUT does.

The controller emits fan commands through the usual
:meth:`~repro.core.controllers.base.FanController.decide` interface and
p-state commands through :meth:`decide_pstate`, which the experiment
runner applies when the simulator spec carries a DVFS ladder.

.. note::
   Evaluate this controller with ``ExperimentConfig(loadgen_mode=
   "direct")``.  The paper's PWM load synthesis alternates between
   idle and 100% instantaneous demand, and an instantaneous 100%
   saturates the sockets at *any* frequency — so the windowed busy
   average reads the duty level regardless of p-state and saturation
   becomes invisible to the governor.  Real workloads (and the direct
   mode) present fractional instantaneous demand, which stretches
   observably as frequency drops.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.lut import LookupTable
from repro.server.dvfs import DvfsSpec


class CoordinatedController(FanController):
    """Joint p-state + LUT fan policy driven by the load monitor."""

    def __init__(
        self,
        lut: LookupTable,
        dvfs: DvfsSpec,
        headroom_pct: float = 90.0,
        poll_interval_s: float = 1.0,
        lockout_s: float = 60.0,
    ):
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if lockout_s < 0:
            raise ValueError("lockout_s must be non-negative")
        if not 0.0 < headroom_pct <= 100.0:
            raise ValueError("headroom_pct must be in (0, 100]")
        self.lut = lut
        self.dvfs = dvfs
        self.headroom_pct = headroom_pct
        self.poll_interval_s = poll_interval_s
        self.lockout_s = lockout_s
        self._last_fan_change_s: Optional[float] = None
        self._pstate = 0

    @property
    def name(self) -> str:
        return "Coordinated"

    def reset(self) -> None:
        self._last_fan_change_s = None
        self._pstate = 0

    def initial_rpm(self) -> Optional[float]:
        return self.lut.query(0.0)

    # ------------------------------------------------------------------
    # p-state policy
    # ------------------------------------------------------------------
    def decide_pstate(self, observation: ControllerObservation) -> Optional[int]:
        """Deepest sustainable p-state for the observed demand.

        The observed utilization is the *executed* busy fraction; to
        recover demanded work in nominal percent it is multiplied by
        the current state's frequency ratio before re-selecting.  When
        the busy fraction has reached the headroom, the true demand is
        unobservable (work is queueing behind the saturated sockets),
        so the policy escalates straight to nominal and re-descends
        from an unsaturated measurement on a later poll.
        """
        if observation.utilization_pct >= self.headroom_pct:
            target = 0
        else:
            demand_pct = min(
                100.0,
                observation.utilization_pct
                * self.dvfs.frequency_ratio(self._pstate),
            )
            target = self.dvfs.slowest_state_sustaining(
                demand_pct, headroom_pct=self.headroom_pct
            )
        if target == self._pstate:
            return None
        self._pstate = target
        return target

    # ------------------------------------------------------------------
    # fan policy
    # ------------------------------------------------------------------
    def decide(self, observation: ControllerObservation) -> Optional[float]:
        # The LUT is characterized against executed utilization, which
        # is exactly what the monitor reports.
        target = self.lut.query(observation.utilization_pct)
        if target == observation.current_rpm_command:
            return None
        if (
            self._last_fan_change_s is not None
            and observation.time_s - self._last_fan_change_s < self.lockout_s
        ):
            return None
        self._last_fan_change_s = observation.time_s
        return target

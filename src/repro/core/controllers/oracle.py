"""Oracle controller with perfect model knowledge (extension).

Upper-bounds what any utilization-driven policy can achieve: it solves
the ground-truth steady-state optimization for the *observed*
utilization at every poll, with no lookup-table quantization.  The gap
between the LUT controller and this oracle measures how much the
paper's discrete characterization grid costs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.controllers.base import ControllerObservation, FanController
from repro.models.steady_state import steady_state_point
from repro.server.specs import ServerSpec, default_server_spec


class OracleController(FanController):
    """Per-poll ground-truth optimum fan speed for the observed load."""

    def __init__(
        self,
        spec: Optional[ServerSpec] = None,
        candidates_rpm: Sequence[float] = (
            1800.0,
            2100.0,
            2400.0,
            2700.0,
            3000.0,
            3300.0,
            3600.0,
            3900.0,
            4200.0,
        ),
        max_temperature_c: float = 75.0,
        ambient_c: float = 24.0,
        poll_interval_s: float = 1.0,
        lockout_s: float = 60.0,
        utilization_quantum_pct: float = 5.0,
    ):
        if not candidates_rpm:
            raise ValueError("need at least one candidate speed")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if lockout_s < 0:
            raise ValueError("lockout_s must be non-negative")
        if utilization_quantum_pct <= 0:
            raise ValueError("utilization_quantum_pct must be positive")
        self.spec = spec if spec is not None else default_server_spec()
        self.candidates_rpm = tuple(sorted(candidates_rpm))
        self.max_temperature_c = max_temperature_c
        self.ambient_c = ambient_c
        self.poll_interval_s = poll_interval_s
        self.lockout_s = lockout_s
        self.utilization_quantum_pct = utilization_quantum_pct
        self._cache: Dict[float, float] = {}
        self._last_change_s: Optional[float] = None

    @property
    def name(self) -> str:
        return "Oracle"

    def reset(self) -> None:
        self._last_change_s = None

    def initial_rpm(self) -> Optional[float]:
        return self._optimal_rpm(0.0)

    def _optimal_rpm(self, utilization_pct: float) -> float:
        quantum = self.utilization_quantum_pct
        level = min(100.0, round(utilization_pct / quantum) * quantum)
        if level in self._cache:
            return self._cache[level]

        best_rpm: Optional[float] = None
        best_objective = float("inf")
        coolest_rpm = self.candidates_rpm[-1]
        for rpm in self.candidates_rpm:
            point = steady_state_point(
                level, rpm, spec=self.spec, ambient_c=self.ambient_c
            )
            if point.max_junction_c > self.max_temperature_c:
                continue
            if point.leak_plus_fan_w < best_objective:
                best_objective = point.leak_plus_fan_w
                best_rpm = rpm
        rpm = best_rpm if best_rpm is not None else coolest_rpm
        self._cache[level] = rpm
        return rpm

    def decide(self, observation: ControllerObservation) -> Optional[float]:
        target = self._optimal_rpm(observation.utilization_pct)
        if target == observation.current_rpm_command:
            return None
        if (
            self._last_change_s is not None
            and observation.time_s - self._last_change_s < self.lockout_s
        ):
            return None
        self._last_change_s = observation.time_s
        return target

"""PI temperature-tracking controller (extension beyond the paper).

The paper's conclusion points at richer runtime control as future
work.  A discrete PI loop that regulates the hottest die sensor to a
set point just under the reliability ceiling is the natural classical
baseline between bang-bang (reactive, coarse) and LUT (proactive,
model-based): it is reactive like bang-bang but produces smooth fan
commands.  Anti-windup clamps the integrator at the actuator limits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controllers.base import ControllerObservation, FanController
from repro.units import clamp


class PIController(FanController):
    """Discrete PI regulation of max die temperature via fan speed."""

    def __init__(
        self,
        target_c: float = 70.0,
        kp_rpm_per_c: float = 120.0,
        ki_rpm_per_c_s: float = 1.0,
        min_rpm: float = 1800.0,
        max_rpm: float = 4200.0,
        poll_interval_s: float = 10.0,
        deadband_rpm: float = 60.0,
    ):
        if max_rpm <= min_rpm:
            raise ValueError("max_rpm must exceed min_rpm")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if kp_rpm_per_c < 0 or ki_rpm_per_c_s < 0:
            raise ValueError("gains must be non-negative")
        if deadband_rpm < 0:
            raise ValueError("deadband_rpm must be non-negative")
        self.target_c = target_c
        self.kp = kp_rpm_per_c
        self.ki = ki_rpm_per_c_s
        self.min_rpm = min_rpm
        self.max_rpm = max_rpm
        self.poll_interval_s = poll_interval_s
        self.deadband_rpm = deadband_rpm
        self._integral_rpm = 0.0
        self._last_time_s: Optional[float] = None

    @property
    def name(self) -> str:
        return "PI"

    def reset(self) -> None:
        self._integral_rpm = 0.0
        self._last_time_s = None

    def initial_rpm(self) -> Optional[float]:
        return self.min_rpm

    def decide(self, observation: ControllerObservation) -> Optional[float]:
        # Positive error (too hot) must raise fan speed.
        error_c = observation.max_cpu_temperature_c - self.target_c
        dt = (
            observation.time_s - self._last_time_s
            if self._last_time_s is not None
            else self.poll_interval_s
        )
        self._last_time_s = observation.time_s

        self._integral_rpm += self.ki * error_c * dt
        span = self.max_rpm - self.min_rpm
        # Anti-windup: the integral alone may never demand more than the
        # actuator span in either direction.
        self._integral_rpm = clamp(self._integral_rpm, -span, span)

        command = self.min_rpm + self.kp * error_c + self._integral_rpm
        command = clamp(command, self.min_rpm, self.max_rpm)
        if abs(command - observation.current_rpm_command) < self.deadband_rpm:
            return None
        return command

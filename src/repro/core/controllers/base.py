"""Controller interface and the observation record controllers act on.

A controller periodically receives a :class:`ControllerObservation` —
exactly what the DLC-PC can see at runtime: measured (noisy) CPU
temperatures, the ``sar``-style windowed utilization, and its own last
fan command.  It returns a new RPM command or ``None`` to keep the
current speed.  Ground truth is deliberately *not* part of the
observation (except for the oracle extension, which models perfect
knowledge).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ControllerObservation:
    """What a controller can observe at one polling instant."""

    time_s: float
    #: Hottest measured CPU die sensor, °C (bang-bang's input).
    max_cpu_temperature_c: float
    #: Mean of the measured CPU die sensors, °C.
    avg_cpu_temperature_c: float
    #: Windowed utilization estimate from the monitor, percent.
    utilization_pct: float
    #: The currently commanded fan speed, RPM.
    current_rpm_command: float


class FanController(ABC):
    """Base class for all fan-speed control policies."""

    #: How often the policy is evaluated, seconds.
    poll_interval_s: float = 10.0

    @property
    def name(self) -> str:
        """Human-readable policy name (used in reports)."""
        return type(self).__name__

    @abstractmethod
    def decide(self, observation: ControllerObservation) -> Optional[float]:
        """Return a new RPM command, or ``None`` to hold the current one."""

    def initial_rpm(self) -> Optional[float]:
        """RPM to command at experiment start (``None``: leave as-is)."""
        return None

    def reset(self) -> None:
        """Clear internal state between experiments."""

"""Model-predictive fan controller (extension beyond the paper).

The LUT controller maps utilization straight to the steady-state
optimal fan speed.  That is optimal *if the workload stays put* — but
during transients the machine is still cold, and leakage (which is
what the fan speed trades against) depends on the temperature the
machine will actually traverse, not the equilibrium it would
eventually reach.

This controller rolls a first-order thermal prediction forward over a
finite horizon for every candidate fan speed and picks the speed with
the lowest predicted leak+fan *energy* subject to the temperature
ceiling.  All model pieces are deployable artifacts of the paper's own
pipeline: the interpolated steady-state map, the fitted exponential
leakage, the fitted cubic fan law, and a fan-speed-dependent time
constant matching the Fig. 1(a) observation
``tau(rpm) = tau_ref * (rpm_ref / rpm) ** 0.8``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.controllers.base import ControllerObservation, FanController
from repro.core.thermal_map import ThermalMap
from repro.models.leakage import FanPowerModel, LeakageModel


class ModelPredictiveController(FanController):
    """Horizon-based predictive fan speed selection."""

    def __init__(
        self,
        thermal_map: ThermalMap,
        leakage_model: LeakageModel,
        fan_power_model: FanPowerModel,
        candidates_rpm: Sequence[float] = (1800.0, 2400.0, 3000.0, 3600.0, 4200.0),
        horizon_s: float = 600.0,
        step_s: float = 30.0,
        tau_ref_s: float = 210.0,
        tau_rpm_ref: float = 1800.0,
        tau_exponent: float = 0.8,
        max_temperature_c: float = 75.0,
        poll_interval_s: float = 10.0,
        lockout_s: float = 60.0,
    ):
        if not candidates_rpm:
            raise ValueError("need at least one candidate fan speed")
        if horizon_s <= 0 or step_s <= 0 or step_s > horizon_s:
            raise ValueError("need 0 < step_s <= horizon_s")
        if tau_ref_s <= 0 or tau_rpm_ref <= 0:
            raise ValueError("tau parameters must be positive")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if lockout_s < 0:
            raise ValueError("lockout_s must be non-negative")
        self.thermal_map = thermal_map
        self.leakage_model = leakage_model
        self.fan_power_model = fan_power_model
        self.candidates_rpm = tuple(sorted(candidates_rpm))
        self.horizon_s = horizon_s
        self.step_s = step_s
        self.tau_ref_s = tau_ref_s
        self.tau_rpm_ref = tau_rpm_ref
        self.tau_exponent = tau_exponent
        self.max_temperature_c = max_temperature_c
        self.poll_interval_s = poll_interval_s
        self.lockout_s = lockout_s
        self._last_change_s: Optional[float] = None

    @property
    def name(self) -> str:
        return "MPC"

    def reset(self) -> None:
        self._last_change_s = None

    def initial_rpm(self) -> Optional[float]:
        return self.candidates_rpm[0]

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def time_constant_s(self, rpm: float) -> float:
        """First-order thermal time constant at *rpm* (Fig. 1a scaling)."""
        if rpm <= 0:
            raise ValueError("rpm must be positive")
        return self.tau_ref_s * (self.tau_rpm_ref / rpm) ** self.tau_exponent

    def predict_horizon_energy_j(
        self, t0_c: float, utilization_pct: float, rpm: float
    ) -> tuple:
        """Predicted (leak+fan energy over the horizon, peak temperature).

        The temperature relaxes exponentially from *t0_c* toward the
        steady-state map value for (utilization, rpm).
        """
        t_ss = self.thermal_map.temperature_c(utilization_pct, rpm)
        tau = self.time_constant_s(rpm)
        fan_w = float(self.fan_power_model.power_w(rpm))
        energy = 0.0
        peak = t0_c
        steps = int(round(self.horizon_s / self.step_s))
        temp = t0_c
        for _ in range(steps):
            temp = t_ss + (temp - t_ss) * math.exp(-self.step_s / tau)
            peak = max(peak, temp)
            leak_w = float(self.leakage_model.variable_power_w(temp))
            energy += (leak_w + fan_w) * self.step_s
        return energy, peak

    # ------------------------------------------------------------------
    # policy
    # ------------------------------------------------------------------
    def decide(self, observation: ControllerObservation) -> Optional[float]:
        t0 = observation.avg_cpu_temperature_c
        util = observation.utilization_pct

        best_rpm: Optional[float] = None
        best_energy = math.inf
        fallback_rpm = self.candidates_rpm[-1]
        for rpm in self.candidates_rpm:
            energy, peak = self.predict_horizon_energy_j(t0, util, rpm)
            if peak > self.max_temperature_c:
                continue
            if energy < best_energy:
                best_energy = energy
                best_rpm = rpm
        target = best_rpm if best_rpm is not None else fallback_rpm

        if target == observation.current_rpm_command:
            return None
        if (
            self._last_change_s is not None
            and observation.time_s - self._last_change_s < self.lockout_s
        ):
            return None
        self._last_change_s = observation.time_s
        return target


def build_mpc_from_characterization(
    samples,
    fitted_model,
    fan_power_model: FanPowerModel,
    **kwargs,
) -> ModelPredictiveController:
    """Assemble the MPC from the paper's offline pipeline artifacts."""
    thermal_map = ThermalMap.from_samples(samples)
    return ModelPredictiveController(
        thermal_map=thermal_map,
        leakage_model=fitted_model.leakage,
        fan_power_model=fan_power_model,
        **kwargs,
    )

"""The server's default cooling behaviour: a fixed fan speed.

The paper observes that the stock firmware keeps the fans "rotating
close to a fixed speed of 3300 RPM" regardless of load — a high
minimum chosen so the machine stays reliable across wide ambient and
altitude ranges, at the cost of systematic overcooling.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controllers.base import ControllerObservation, FanController


class FixedSpeedController(FanController):
    """Holds one constant fan speed for the whole run."""

    def __init__(self, rpm: float = 3300.0, poll_interval_s: float = 10.0):
        if rpm <= 0:
            raise ValueError("rpm must be positive")
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.rpm = float(rpm)
        self.poll_interval_s = poll_interval_s

    @property
    def name(self) -> str:
        return "Default"

    def initial_rpm(self) -> Optional[float]:
        return self.rpm

    def decide(self, observation: ControllerObservation) -> Optional[float]:
        if observation.current_rpm_command != self.rpm:
            return self.rpm
        return None

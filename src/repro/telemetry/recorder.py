"""Tabular trace capture and CSV export (the DLC-PC's logging role)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

import numpy as np


class TraceRecorder:
    """Accumulates fixed-schema rows and exposes them as arrays/CSV."""

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("recorder needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self.columns = tuple(columns)
        self._rows: List[tuple] = []

    def record(self, row: Mapping[str, float]) -> None:
        """Append one row; every schema column must be present."""
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise ValueError(f"row missing columns: {missing}")
        self._rows.append(tuple(float(row[c]) for c in self.columns))

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, name: str) -> np.ndarray:
        """One column as a numpy array."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        index = self.columns.index(name)
        return np.array([row[index] for row in self._rows])

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """All columns as a name → array mapping."""
        return {name: self.column(name) for name in self.columns}

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace to *path* as CSV; returns the path."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self._rows)
        return path

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceRecorder":
        """Load a trace previously written by :meth:`to_csv`."""
        path = Path(path)
        with path.open("r", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            recorder = cls(header)
            for row in reader:
                recorder.record(dict(zip(header, map(float, row))))
        return recorder

"""Tabular trace capture and CSV export (the DLC-PC's logging role).

The recorder stores every column in a preallocated float64 buffer that
grows by doubling, so recording a multi-hour trace never degenerates
into per-tick Python-object churn.  The execution kernel
(:mod:`repro.engine.kernel`) records whole chunks of ticks in one
:meth:`TraceRecorder.record_chunk` call; the per-row :meth:`record`
surface is kept for incremental writers (DLC-PC, telemetry harness,
tests).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Mapping, Sequence, Union

import numpy as np

#: Initial per-column buffer capacity, rows.
_INITIAL_CAPACITY = 256


class TraceRecorder:
    """Accumulates fixed-schema rows and exposes them as arrays/CSV."""

    def __init__(self, columns: Sequence[str], capacity: int = _INITIAL_CAPACITY):
        if not columns:
            raise ValueError("recorder needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self.columns = tuple(columns)
        self._index = {name: k for k, name in enumerate(self.columns)}
        self._buffer = np.empty((len(self.columns), max(1, int(capacity))))
        self._length = 0
        # column() results are materialized once and reused until the
        # next append (the metrics pipeline reads the same column many
        # times; rebuilding it per call was O(rows) each).
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _reserve(self, extra_rows: int) -> None:
        needed = self._length + extra_rows
        capacity = self._buffer.shape[1]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty((len(self.columns), capacity))
        grown[:, : self._length] = self._buffer[:, : self._length]
        self._buffer = grown

    def record(self, row: Mapping[str, float]) -> None:
        """Append one row; every schema column must be present."""
        missing = [c for c in self.columns if c not in row]
        if missing:
            raise ValueError(f"row missing columns: {missing}")
        self._reserve(1)
        buffer = self._buffer
        n = self._length
        for k, name in enumerate(self.columns):
            buffer[k, n] = float(row[name])
        self._length = n + 1
        self._cache.clear()

    def record_chunk(self, chunk: Mapping[str, np.ndarray]) -> None:
        """Append many rows at once from equal-length column arrays.

        *chunk* maps every schema column to a 1-D array-like; scalar
        values broadcast across the chunk only when at least one real
        array fixes the chunk length.
        """
        # chunk-amortized validation: one pass per chunk of hundreds of
        # rows, not per tick, so these allocations are off the hot path
        missing = [c for c in self.columns if c not in chunk]  # reprolint: disable=R003
        if missing:
            raise ValueError(f"chunk missing columns: {missing}")
        arrays = {}
        rows = None
        for name in self.columns:
            values = np.asarray(chunk[name], dtype=float)  # reprolint: disable=R003
            if values.ndim > 1:
                raise ValueError(f"column {name!r} must be 1-D, got {values.shape}")
            if values.ndim == 1:
                if rows is None:
                    rows = values.shape[0]
                elif values.shape[0] != rows:
                    raise ValueError(
                        f"column {name!r} has {values.shape[0]} rows, "
                        f"expected {rows}"
                    )
            arrays[name] = values
        if rows is None:
            raise ValueError("record_chunk needs at least one array column")
        if rows == 0:
            return
        self._reserve(rows)
        n = self._length
        for k, name in enumerate(self.columns):
            self._buffer[k, n : n + rows] = arrays[name]
        self._length = n + rows
        self._cache.clear()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        """One column as a **read-only** numpy array.

        The array is materialized once and shared between callers
        until the next append; copy it (``column(name).copy()``)
        before mutating.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        if name not in self._index:
            raise KeyError(f"unknown column {name!r}")
        values = self._buffer[self._index[name], : self._length].copy()
        # The cache hands the same array to every caller; freezing it
        # keeps one caller's in-place edit from corrupting the others.
        values.flags.writeable = False
        self._cache[name] = values
        return values

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """All columns as a name → array mapping (read-only arrays,
        see :meth:`column`)."""
        return {name: self.column(name) for name in self.columns}

    # ------------------------------------------------------------------
    # CSV round-trip
    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace to *path* as CSV; returns the path."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self._buffer[:, : self._length].T.tolist())
        return path

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "TraceRecorder":
        """Load a trace previously written by :meth:`to_csv`."""
        path = Path(path)
        with path.open("r", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            recorder = cls(header)
            rows = [[float(v) for v in row] for row in reader]
        if rows:
            table = np.asarray(rows)
            recorder.record_chunk(
                {name: table[:, k] for k, name in enumerate(recorder.columns)}
            )
        return recorder

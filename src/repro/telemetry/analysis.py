"""Trace statistics used throughout the evaluation.

These reproduce the quantities the paper reads off its measurements:
settle times (Fig. 1a), overshoot past the 75 °C reliability ceiling
(bang-bang discussion), thermal cycling (fan reliability discussion),
and windowed averages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _as_arrays(times_s, values) -> tuple:
    times = np.asarray(times_s, dtype=float)
    vals = np.asarray(values, dtype=float)
    if times.shape != vals.shape:
        raise ValueError("times and values must have the same shape")
    if times.ndim != 1:
        raise ValueError("expected 1-D series")
    if times.size == 0:
        raise ValueError("empty series")
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    return times, vals


def rolling_mean(times_s, values, window_s: float) -> np.ndarray:
    """Trailing-window mean of an (irregular) time series.

    ``result[i]`` is the mean of all samples with
    ``times[i] - window_s < t <= times[i]``.
    """
    times, vals = _as_arrays(times_s, values)
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    out = np.empty_like(vals)
    start = 0
    acc = 0.0
    for i in range(len(vals)):
        acc += vals[i]
        while times[i] - times[start] >= window_s:
            acc -= vals[start]
            start += 1
        out[i] = acc / (i - start + 1)
    return out


def settle_time_s(
    times_s, values, tolerance: float = 1.0, hold_s: float = 120.0
) -> float:
    """Time at which the series enters and stays inside a tolerance
    band around its final value.

    Used on Fig. 1(a)-style transients: the paper reads ~15 min at
    1800 RPM vs ~5 min at 4200 RPM.
    """
    times, vals = _as_arrays(times_s, values)
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    final = vals[-1]
    inside = np.abs(vals - final) <= tolerance
    # Earliest index from which the series stays inside the band for at
    # least hold_s (and through the end of the trace).
    for i in range(len(vals)):
        if not inside[i]:
            continue
        if np.all(inside[i:]) and times[-1] - times[i] >= min(
            hold_s, times[-1] - times[0]
        ):
            return float(times[i] - times[0])
    return float(times[-1] - times[0])


def max_overshoot(values, threshold: float) -> float:
    """Largest excursion above *threshold* (0 if never exceeded)."""
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("empty series")
    excess = vals - threshold
    peak = float(np.max(excess))
    return max(0.0, peak)


def count_threshold_crossings(values, threshold: float) -> int:
    """Number of upward crossings of *threshold*."""
    vals = np.asarray(values, dtype=float)
    if vals.size < 2:
        return 0
    above = vals > threshold
    return int(np.sum(~above[:-1] & above[1:]))


def count_thermal_cycles(values, amplitude_c: float = 5.0) -> int:
    """Count peak-to-trough thermal cycles exceeding *amplitude_c*.

    Uses a rainflow-style turning-point scan: consecutive local
    extrema whose span exceeds the amplitude threshold count as one
    half-cycle; two half-cycles make a cycle.  Thermal cycling drives
    solder-joint wear-out, which is why the paper limits fan-speed
    change frequency.
    """
    vals = np.asarray(values, dtype=float)
    if amplitude_c <= 0:
        raise ValueError("amplitude_c must be positive")
    if vals.size < 3:
        return 0
    # Reduce to turning points.
    diffs = np.diff(vals)
    direction = np.sign(diffs)
    turning = [vals[0]]
    for i in range(1, len(direction)):
        if direction[i] != 0 and direction[i] != direction[i - 1] and direction[i - 1] != 0:
            turning.append(vals[i])
    turning.append(vals[-1])
    half_cycles = 0
    for a, b in zip(turning[:-1], turning[1:]):
        if abs(b - a) >= amplitude_c:
            half_cycles += 1
    return half_cycles // 2


@dataclass(frozen=True)
class TraceSummary:
    """Descriptive statistics of one telemetry series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def peak_to_peak(self) -> float:
        """Total excursion of the series."""
        return self.maximum - self.minimum


def summarize(values) -> TraceSummary:
    """Compute :class:`TraceSummary` for a series."""
    vals = np.asarray(values, dtype=float)
    if vals.size == 0:
        raise ValueError("empty series")
    return TraceSummary(
        count=int(vals.size),
        mean=float(np.mean(vals)),
        std=float(np.std(vals)),
        minimum=float(np.min(vals)),
        maximum=float(np.max(vals)),
    )

"""Continuous System Telemetry Harness (CSTH) substrate.

The paper collects runtime dynamics through Oracle's CSTH running on
the service processor: four CPU die temperatures, 32 DIMM temperatures,
per-core voltage/current and whole-system power, polled every 10 s.
This package reimplements that telemetry path:

* :mod:`repro.telemetry.channel` — named sample channels with bounded
  history,
* :mod:`repro.telemetry.harness` — periodic polling of provider
  callables into channels,
* :mod:`repro.telemetry.recorder` — tabular trace capture / CSV export,
* :mod:`repro.telemetry.analysis` — trace statistics used in the
  evaluation (settle time, overshoot, thermal cycles, rolling means).
"""

from repro.telemetry.analysis import (
    count_threshold_crossings,
    count_thermal_cycles,
    max_overshoot,
    rolling_mean,
    settle_time_s,
    summarize,
    TraceSummary,
)
from repro.telemetry.anomaly import (
    SimilarityModel,
    SprtDetector,
    TelemetryWatchdog,
)
from repro.telemetry.channel import TelemetryChannel, TelemetrySample
from repro.telemetry.harness import TelemetryHarness
from repro.telemetry.recorder import TraceRecorder

__all__ = [
    "SimilarityModel",
    "SprtDetector",
    "TelemetryWatchdog",
    "TelemetryChannel",
    "TelemetrySample",
    "TelemetryHarness",
    "TraceRecorder",
    "TraceSummary",
    "count_threshold_crossings",
    "count_thermal_cycles",
    "max_overshoot",
    "rolling_mean",
    "settle_time_s",
    "summarize",
]

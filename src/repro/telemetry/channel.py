"""Telemetry channels: named, unit-tagged, bounded sample history."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class TelemetrySample:
    """One timestamped observation on a channel."""

    time_s: float
    value: float


class TelemetryChannel:
    """A single telemetry signal (e.g. ``cpu0.temp0``).

    Samples are kept in a bounded ring buffer, mirroring the service
    processor's limited history; the recorder persists full traces.
    """

    def __init__(self, name: str, unit: str, maxlen: Optional[int] = 100_000):
        if not name:
            raise ValueError("channel name must be non-empty")
        self.name = name
        self.unit = unit
        self._samples: Deque[TelemetrySample] = deque(maxlen=maxlen)

    def append(self, time_s: float, value: float) -> None:
        """Record one observation."""
        if self._samples and time_s < self._samples[-1].time_s:
            raise ValueError(
                f"non-monotonic sample time on {self.name}: "
                f"{time_s} < {self._samples[-1].time_s}"
            )
        self._samples.append(TelemetrySample(time_s, float(value)))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[TelemetrySample]:
        return iter(self._samples)

    @property
    def latest(self) -> Optional[TelemetrySample]:
        """Most recent sample, or ``None`` if empty."""
        return self._samples[-1] if self._samples else None

    def times(self) -> np.ndarray:
        """Sample times as a numpy array."""
        return np.array([s.time_s for s in self._samples])

    def values(self) -> np.ndarray:
        """Sample values as a numpy array."""
        return np.array([s.value for s in self._samples])

    def window(self, start_s: float, end_s: float) -> List[TelemetrySample]:
        """Samples with ``start_s <= time < end_s``."""
        if end_s < start_s:
            raise ValueError("window end before start")
        return [s for s in self._samples if start_s <= s.time_s < end_s]

    def mean_over(self, start_s: float, end_s: float) -> float:
        """Mean value over a time window; raises if the window is empty."""
        samples = self.window(start_s, end_s)
        if not samples:
            raise ValueError(
                f"no samples on {self.name} in [{start_s}, {end_s})"
            )
        return float(np.mean([s.value for s in samples]))

    def as_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` arrays for plotting or analysis."""
        return self.times(), self.values()

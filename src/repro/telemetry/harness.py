"""Periodic polling of sensor providers into telemetry channels.

Mirrors the CSTH deployment in the paper: the harness knows a set of
named providers (callables returning the current sensor value), polls
them every ``poll_interval_s`` (10 s in the paper) and appends the
readings to per-channel histories.  The Data Logging and Control PC
(DLC-PC) role of draining those channels belongs to
:class:`repro.telemetry.recorder.TraceRecorder` and the experiment
runner.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.telemetry.channel import TelemetryChannel

Provider = Callable[[], float]


class TelemetryHarness:
    """Polls registered providers on a fixed period."""

    def __init__(self, poll_interval_s: float = 10.0):
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.poll_interval_s = poll_interval_s
        self._providers: Dict[str, Provider] = {}
        self._channels: Dict[str, TelemetryChannel] = {}
        self._last_poll_s: Optional[float] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, unit: str, provider: Provider) -> TelemetryChannel:
        """Register one provider; returns its backing channel."""
        if name in self._providers:
            raise ValueError(f"channel {name!r} already registered")
        channel = TelemetryChannel(name, unit)
        self._providers[name] = provider
        self._channels[name] = channel
        return channel

    def register_vector(
        self,
        prefix: str,
        unit: str,
        provider: Callable[[], Sequence[float]],
        count: int,
    ) -> None:
        """Register a multi-element provider as ``prefix.0 .. prefix.N-1``.

        The provider is invoked once per poll and its elements fan out
        to the individual channels (e.g. the 32 DIMM temperatures).
        """
        if count <= 0:
            raise ValueError("count must be positive")

        cache: Dict[str, Sequence[float]] = {}

        def element(index: int) -> Provider:
            def read() -> float:
                # One underlying read per poll: the first element drains
                # the provider, later elements reuse the cached vector.
                if index == 0 or "values" not in cache:
                    cache["values"] = tuple(provider())
                values = cache["values"]
                if len(values) != count:
                    raise ValueError(
                        f"provider for {prefix!r} returned {len(values)} "
                        f"elements, expected {count}"
                    )
                value = values[index]
                if index == count - 1:
                    cache.pop("values", None)
                return value

            return read

        for i in range(count):
            self.register(f"{prefix}.{i}", unit, element(i))

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    @property
    def channel_names(self) -> Iterable[str]:
        """Names of all registered channels."""
        return tuple(self._channels)

    def channel(self, name: str) -> TelemetryChannel:
        """Look up one channel by name."""
        if name not in self._channels:
            raise KeyError(f"unknown telemetry channel {name!r}")
        return self._channels[name]

    def due(self, time_s: float) -> bool:
        """Whether a poll is due at simulation time *time_s*."""
        if self._last_poll_s is None:
            return True
        return time_s - self._last_poll_s >= self.poll_interval_s - 1e-9

    def poll(self, time_s: float) -> Dict[str, float]:
        """Read every provider and append samples at *time_s*."""
        readings: Dict[str, float] = {}
        for name, provider in self._providers.items():
            value = float(provider())
            self._channels[name].append(time_s, value)
            readings[name] = value
        self._last_poll_s = time_s
        return readings

    def maybe_poll(self, time_s: float) -> Optional[Dict[str, float]]:
        """Poll only if the polling period has elapsed."""
        if self.due(time_s):
            return self.poll(time_s)
        return None

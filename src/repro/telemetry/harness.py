"""Periodic polling of sensor providers into telemetry channels.

Mirrors the CSTH deployment in the paper: the harness knows a set of
named providers (callables returning the current sensor value), polls
them every ``poll_interval_s`` (10 s in the paper) and appends the
readings to per-channel histories.  The Data Logging and Control PC
(DLC-PC) role of draining those channels belongs to
:class:`repro.telemetry.recorder.TraceRecorder` and the experiment
runner.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.telemetry.channel import TelemetryChannel

Provider = Callable[[], float]


class TelemetryHarness:
    """Polls registered providers on a fixed period.

    Poll deadlines are generated *by index* from the first poll's
    epoch (``epoch + k * interval``), never by accumulating the
    interval or re-anchoring at the observed poll time.  Re-anchoring
    lets float jitter compound: a tick grid built by ``t += dt`` sits
    a few ULPs past the nominal times, each poll then lands "late",
    and the late anchor pushes every later deadline further — over a
    long horizon the harness drops polls (same failure mode
    :func:`repro.engine.kernel.monitor_warmup_times` exists to avoid
    on the warm-up grid).
    """

    def __init__(self, poll_interval_s: float = 10.0):
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.poll_interval_s = poll_interval_s
        self._providers: Dict[str, Provider] = {}
        self._channels: Dict[str, TelemetryChannel] = {}
        self._last_poll_s: Optional[float] = None
        self._epoch_s: Optional[float] = None
        self._poll_count = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, unit: str, provider: Provider) -> TelemetryChannel:
        """Register one provider; returns its backing channel."""
        if name in self._providers:
            raise ValueError(f"channel {name!r} already registered")
        channel = TelemetryChannel(name, unit)
        self._providers[name] = provider
        self._channels[name] = channel
        return channel

    def register_vector(
        self,
        prefix: str,
        unit: str,
        provider: Callable[[], Sequence[float]],
        count: int,
    ) -> None:
        """Register a multi-element provider as ``prefix.0 .. prefix.N-1``.

        The provider is invoked once per poll and its elements fan out
        to the individual channels (e.g. the 32 DIMM temperatures).
        """
        if count <= 0:
            raise ValueError("count must be positive")

        cache: Dict[str, Sequence[float]] = {}

        def element(index: int) -> Provider:
            def read() -> float:
                # One underlying read per poll: the first element drains
                # the provider, later elements reuse the cached vector.
                if index == 0 or "values" not in cache:
                    cache["values"] = tuple(provider())
                values = cache["values"]
                if len(values) != count:
                    raise ValueError(
                        f"provider for {prefix!r} returned {len(values)} "
                        f"elements, expected {count}"
                    )
                value = values[index]
                if index == count - 1:
                    cache.pop("values", None)
                return value

            return read

        for i in range(count):
            self.register(f"{prefix}.{i}", unit, element(i))

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    @property
    def channel_names(self) -> Iterable[str]:
        """Names of all registered channels."""
        return tuple(self._channels)

    def channel(self, name: str) -> TelemetryChannel:
        """Look up one channel by name."""
        if name not in self._channels:
            raise KeyError(f"unknown telemetry channel {name!r}")
        return self._channels[name]

    @property
    def poll_count(self) -> int:
        """Polls performed since construction."""
        return self._poll_count

    def next_poll_s(self) -> Optional[float]:
        """The next scheduled poll time (``None`` before the first poll)."""
        if self._epoch_s is None:
            return None
        return self._epoch_s + self._poll_count * self.poll_interval_s

    def due(self, time_s: float) -> bool:
        """Whether a poll is due at simulation time *time_s*."""
        if self._epoch_s is None:
            return True
        return time_s >= self.next_poll_s() - 1e-9

    def poll(self, time_s: float) -> Dict[str, float]:
        """Read every provider and append samples at *time_s*."""
        readings: Dict[str, float] = {}
        for name, provider in self._providers.items():
            value = float(provider())
            self._channels[name].append(time_s, value)
            readings[name] = value
        self._last_poll_s = time_s
        if self._epoch_s is None:
            self._epoch_s = time_s
        # Advance to the first index-generated deadline beyond time_s:
        # one poll per period, and a time jump (paused consumer, coarse
        # dt) skips the missed deadlines instead of polling a burst.
        elapsed = (time_s - self._epoch_s) / self.poll_interval_s
        self._poll_count = max(self._poll_count + 1, int(math.floor(elapsed + 1e-9)) + 1)
        return readings

    def maybe_poll(self, time_s: float) -> Optional[Dict[str, float]]:
        """Poll only if the polling period has elapsed."""
        if self.due(time_s):
            return self.poll(time_s)
        return None
